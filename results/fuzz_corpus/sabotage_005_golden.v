module rand30 (ck, in_0, in_1, out_0, out_1);
  input ck;
  input in_0;
  input in_1;
  output out_0;
  output out_1;
  wire ck;
  wire in_0;
  wire in_1;
  wire u_w0;
  wire u_w2;
  assign out_0 = u_w0;
  assign out_1 = u_w2;
  AND2_X1 u_g1 (.A0(in_0), .A1(in_1), .Y(u_w0));
  AND2_X1 u_g3 (.A0(in_1), .A1(in_0), .Y(u_w2));
endmodule
