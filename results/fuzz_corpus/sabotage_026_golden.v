module rand75 (ck, in_0, out_0);
  input ck;
  input in_0;
  output out_0;
  wire ck;
  wire in_0;
  wire u_w0;
  assign out_0 = u_w0;
  INV_X1 u_g1 (.A(in_0), .Y(u_w0));
endmodule
