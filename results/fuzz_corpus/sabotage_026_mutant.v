module rand75 (in_0, out_0, p1, p2, p3);
  input in_0;
  output out_0;
  input p1;
  input p2;
  input p3;
  wire in_0;
  wire u_w0;
  wire p1;
  wire p2;
  wire p3;
  assign out_0 = u_w0;
  BUF_X1 u_g1 (.A(in_0), .Y(u_w0));
endmodule
