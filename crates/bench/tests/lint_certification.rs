//! Lint certification: the analyzer reports zero errors on every circuit
//! generator (no false positives), `LintPolicy::Deny` flows pass end to
//! end, and deliberately corrupted netlists are rejected with the right
//! rule codes.

use triphase_bench::{benchmarks, quick_benchmarks, Scale};
use triphase_cells::{CellKind, Library};
use triphase_circuits::iscas::s27;
use triphase_circuits::pipeline::linear_pipeline;
use triphase_core::{
    assign_phases, extract_ff_graph, gated_clock_style, run_flow, to_three_phase, Error, LintPolicy,
};
use triphase_ilp::PhaseConfig;
use triphase_lint::{LintStage, Linter};
use triphase_netlist::Netlist;

/// Every registered benchmark generator (all ISCAS89 profiles, the CEP
/// crypto cores, and the CPUs) plus the free-standing generators produce
/// structurally clean netlists.
#[test]
fn every_generator_is_lint_clean() {
    let linter = Linter::new();
    for b in benchmarks() {
        let report = linter.run(&b.build(), LintStage::Input);
        assert!(
            report.errors().is_empty(),
            "{}: false positives:\n{report}",
            b.name
        );
    }
    for (name, nl) in [
        ("linear_pipeline", linear_pipeline(5, 8, 2, 900.0)),
        ("s27", s27(1000.0)),
    ] {
        let report = linter.run(&nl, LintStage::Input);
        assert!(
            report.errors().is_empty(),
            "{name}: false positives:\n{report}"
        );
    }
}

/// The full flow under `LintPolicy::Deny` succeeds on the quick benchmark
/// set — every per-stage checkpoint is clean on real designs.
#[test]
fn deny_policy_flows_pass_on_quick_benchmarks() {
    let lib = Library::synthetic_28nm();
    for b in quick_benchmarks() {
        let mut cfg = b.flow_config(Scale::Quick);
        cfg.lint = LintPolicy::Deny;
        let report = run_flow(&b.build(), &lib, &cfg)
            .unwrap_or_else(|e| panic!("{}: deny flow failed: {e}", b.name));
        assert_eq!(report.lint.len(), 4, "{}: one report per stage", b.name);
        assert!(
            report.lint.iter().all(|r| r.errors().is_empty()),
            "{}: checkpoint errors slipped past Deny",
            b.name
        );
    }
}

/// An injected combinational loop aborts a `Deny` flow at the first
/// checkpoint with the loop rule code.
#[test]
fn injected_comb_loop_fails_deny_flow_with_s001() {
    let mut nl = linear_pipeline(4, 4, 1, 900.0);
    let x = nl.add_net("loop_x");
    let y = nl.add_net("loop_y");
    nl.add_cell("loop_i1", CellKind::Inv, vec![x, y]);
    nl.add_cell("loop_i2", CellKind::Inv, vec![y, x]);
    nl.add_output("loop_out", y);
    let lib = Library::synthetic_28nm();
    let cfg = triphase_core::FlowConfig {
        lint: LintPolicy::Deny,
        ..triphase_core::FlowConfig::default()
    };
    match run_flow(&nl, &lib, &cfg) {
        Err(Error::Lint(report)) => {
            assert!(report.has("S001"), "want S001 in: {report}");
            assert_eq!(report.stage, Some(LintStage::Preprocess));
        }
        other => panic!("expected lint rejection, got {other:?}"),
    }
}

/// A net shorted between two drivers is rejected with the multi-driver code.
#[test]
fn injected_multi_driven_net_is_rejected_with_s002() {
    let mut nl = linear_pipeline(4, 4, 1, 900.0);
    let victim = nl
        .cells()
        .find(|(_, c)| !c.kind.is_storage() && c.kind != CellKind::Const0)
        .map(|(_, c)| c.output())
        .expect("pipeline has comb gates");
    let (_, a) = nl.add_input("short_a");
    nl.add_cell("short_buf", CellKind::Buf, vec![a, victim]);
    let report = Linter::new().run(&nl, LintStage::Input);
    assert!(report.has("S002"), "want S002 in: {report}");
    assert!(!report.is_clean());
}

/// Rewiring a converted latch onto its predecessor's phase recreates the
/// co-transparency hazard and is rejected with the phase-order code.
#[test]
fn injected_same_phase_latch_pair_is_rejected_with_p001() {
    // Convert a pipeline for real, then corrupt one latch's gate.
    let mut pre = linear_pipeline(4, 4, 1, 900.0);
    gated_clock_style(&mut pre, 32).unwrap();
    let pre = pre.compact();
    let idx = pre.index();
    let graph = extract_ff_graph(&pre, &idx).unwrap();
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (mut tp, _) = to_three_phase(&pre, &assignment).unwrap();

    assert!(
        Linter::new()
            .run(&tp, LintStage::Convert)
            .errors()
            .is_empty(),
        "converted pipeline must start clean"
    );
    let (victim, gate_net) = latch_fed_by_latch(&tp).expect("latch pair exists");
    tp.set_pin(victim, 1, gate_net); // G pin: same phase as the feeder
    let report = Linter::new().run(&tp, LintStage::Convert);
    assert!(report.has("P001"), "want P001 in: {report}");
}

/// Find a latch whose `D` is driven by another latch; return it and the
/// feeder's gate net.
fn latch_fed_by_latch(nl: &Netlist) -> Option<(triphase_netlist::CellId, triphase_netlist::NetId)> {
    let idx = nl.index();
    for (id, cell) in nl.cells() {
        if !cell.kind.is_latch() {
            continue;
        }
        let d = cell.pin(cell.kind.data_pin().expect("latch has D"));
        if let Some(driver) = idx.driver(d) {
            let feeder = nl.cell(driver.cell);
            if feeder.kind.is_latch() {
                return Some((id, feeder.pin(1)));
            }
        }
    }
    None
}
