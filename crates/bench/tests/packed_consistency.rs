//! Three-way consistency certification of the simulation backends: for
//! every registered benchmark, the packed 64-lane kernel **and** the
//! compiled bytecode VM must be **bit-exact** with the scalar
//! interpreter — identical per-net values and identical toggle counts —
//! over seeded random stimulus starting from `reset_zero` (which
//! exercises X-propagation out of the all-X reset state).
//!
//! Coverage:
//! - single-lane packed vs scalar AND single-lane compiled vs scalar on
//!   all 18 benchmarks: full net-value sweep and full per-net
//!   toggle-count vector equality;
//! - 64-lane packed vs per-lane-seeded scalar runs on sampled lanes
//!   (0 / 17 / 63): every net value equal lane-by-lane, with the
//!   compiled VM checked against the same references and its 64-lane
//!   toggle vector against the packed one;
//! - multi-word compiled lanes (`W > 1`, 320 streams) vs per-seed scalar
//!   runs on lanes above 64 (`lane_seeds` is count-independent);
//! - 64-lane toggle totals = sum of all 64 scalar runs, and 128-lane
//!   compiled totals = sum of 128 scalar runs (smallest ISCAS circuit,
//!   where scalar reruns stay cheap);
//! - clock-gated (`Icg`) and converted 3-phase (`IcgM1` + latch)
//!   variants of s5378, covering gated-clock X and enable-latch
//!   semantics in all three kernels.
//!
//! `TRIPHASE_SCALE=quick` trims cycle counts for smoke runs.

use triphase_bench::benchmarks;
use triphase_core::{assign_phases, extract_ff_graph, gated_clock_style, to_three_phase};
use triphase_ilp::PhaseConfig;
use triphase_netlist::Netlist;
use triphase_sim::{lane_seeds, run_random, run_random_compiled, run_random_packed, LANES};

fn quick() -> bool {
    std::env::var("TRIPHASE_SCALE").is_ok_and(|v| v == "quick")
}

/// Assert scalar, packed, and compiled agree on every net value and
/// every toggle count for the same seed/cycles: packed/compiled run
/// single-lane against the scalar activity vector, then at `LANES` lanes
/// against per-lane-seeded scalar references (and each other), then the
/// compiled VM alone at a multi-word width on lanes past 64.
fn assert_consistent(name: &str, nl: &Netlist, seed: u64, cycles: u64) {
    // Single lane: bit-identical activity (cycles + full toggle vector)
    // and values.
    let scalar = run_random(nl, seed, cycles).unwrap();
    let packed1 = run_random_packed(nl, seed, cycles, 1).unwrap();
    let pa = packed1.activity();
    assert_eq!(pa.cycles, scalar.activity().cycles, "{name}: cycles");
    assert_eq!(
        pa.net_toggles,
        scalar.activity().net_toggles,
        "{name}: single-lane toggle counts diverge"
    );
    let compiled1 = run_random_compiled(nl, seed, cycles, 1).unwrap();
    let ca = compiled1.activity();
    assert_eq!(
        ca.cycles,
        scalar.activity().cycles,
        "{name}: compiled cycles"
    );
    assert_eq!(
        ca.net_toggles,
        scalar.activity().net_toggles,
        "{name}: compiled single-lane toggle counts diverge"
    );
    for (net, _) in nl.nets() {
        assert_eq!(
            packed1.net_value(net).get(0),
            scalar.net_value(net),
            "{name}: single-lane value of net {net:?}"
        );
        assert_eq!(
            compiled1.net_value_lane(net, 0),
            scalar.net_value(net),
            "{name}: compiled single-lane value of net {net:?}"
        );
    }

    // 64 lanes: sampled lanes must match a scalar run with that lane's
    // seed (lane 0 is the historical stream); the compiled VM must match
    // the same references and the packed toggle vector exactly.
    let packed = run_random_packed(nl, seed, cycles, LANES).unwrap();
    let compiled = run_random_compiled(nl, seed, cycles, LANES).unwrap();
    assert_eq!(
        compiled.activity().net_toggles,
        packed.activity().net_toggles,
        "{name}: compiled vs packed 64-lane toggle vectors diverge"
    );
    let seeds = lane_seeds(seed, LANES);
    for lane in [0usize, 17, LANES - 1] {
        let reference = run_random(nl, seeds[lane], cycles).unwrap();
        for (net, _) in nl.nets() {
            assert_eq!(
                packed.net_value(net).get(lane),
                reference.net_value(net),
                "{name}: lane {lane} value of net {net:?}"
            );
            assert_eq!(
                compiled.net_value_lane(net, lane),
                reference.net_value(net),
                "{name}: compiled lane {lane} value of net {net:?}"
            );
        }
    }

    // Multi-word width (W = 8, 320 streams): lanes beyond the packed
    // kernel's reach still replay their per-seed scalar run exactly.
    let wide_lanes = 320;
    let wide = run_random_compiled(nl, seed, cycles, wide_lanes).unwrap();
    let wide_seeds = lane_seeds(seed, wide_lanes);
    for lane in [64usize, 200, wide_lanes - 1] {
        let reference = run_random(nl, wide_seeds[lane], cycles).unwrap();
        for (net, _) in nl.nets() {
            assert_eq!(
                wide.net_value_lane(net, lane),
                reference.net_value(net),
                "{name}: compiled wide lane {lane} value of net {net:?}"
            );
        }
    }
}

/// Sum of scalar toggle vectors over all 64 lane seeds equals the packed
/// 64-lane totals (run on the cheapest circuit only).
#[test]
fn packed_toggle_totals_sum_over_lanes() {
    let all = benchmarks();
    let smallest = all
        .iter()
        .min_by_key(|b| b.build().net_count())
        .expect("non-empty registry");
    let nl = smallest.build();
    let cycles = if quick() { 8 } else { 24 };
    let packed = run_random_packed(&nl, 7, cycles, LANES).unwrap();
    let mut summed = vec![0u64; packed.activity().net_toggles.len()];
    for lane_seed in lane_seeds(7, LANES) {
        let scalar = run_random(&nl, lane_seed, cycles).unwrap();
        for (total, t) in summed.iter_mut().zip(&scalar.activity().net_toggles) {
            *total += t;
        }
    }
    assert_eq!(
        packed.activity().net_toggles,
        summed,
        "{}: 64-lane toggle totals != sum of scalar lanes",
        smallest.name
    );
}

/// Multi-word compiled toggle totals (128 lanes, W = 2) equal the sum of
/// 128 per-seed scalar runs on the cheapest circuit.
#[test]
fn compiled_toggle_totals_sum_over_multiword_lanes() {
    let all = benchmarks();
    let smallest = all
        .iter()
        .min_by_key(|b| b.build().net_count())
        .expect("non-empty registry");
    let nl = smallest.build();
    let cycles = if quick() { 8 } else { 24 };
    let lanes = 128;
    let compiled = run_random_compiled(&nl, 7, cycles, lanes).unwrap();
    let mut summed = vec![0u64; compiled.activity().net_toggles.len()];
    for lane_seed in lane_seeds(7, lanes) {
        let scalar = run_random(&nl, lane_seed, cycles).unwrap();
        for (total, t) in summed.iter_mut().zip(&scalar.activity().net_toggles) {
            *total += t;
        }
    }
    assert_eq!(
        compiled.activity().net_toggles,
        summed,
        "{}: compiled 128-lane toggle totals != sum of scalar lanes",
        smallest.name
    );
}

#[test]
fn backends_match_scalar_on_all_benchmarks() {
    let q = quick();
    for b in benchmarks() {
        let nl = b.build();
        // AES is by far the largest circuit; trim its window so the
        // full-registry sweep stays tractable on one core.
        let big = nl.net_count() > 20_000;
        let cycles = match (q, big) {
            (true, _) => 6,
            (false, true) => 12,
            (false, false) => 32,
        };
        assert_consistent(b.name, &nl, 11, cycles);
    }
}

/// Clock-gated and converted 3-phase variants: `Icg` enable latches,
/// `IcgM1` gating of the P3 clock, and transparent-latch storage all go
/// through every kernel's clock-network path.
#[test]
fn backends_match_scalar_on_gated_and_three_phase() {
    let all = benchmarks();
    let b = all.iter().find(|b| b.name == "s5378").expect("s5378 row");
    let mut pre = b.build();
    gated_clock_style(&mut pre, 32).unwrap();
    let pre = pre.compact();
    let cycles = if quick() { 8 } else { 32 };
    assert_consistent("s5378+icg", &pre, 11, cycles);

    let idx = pre.index();
    let graph = extract_ff_graph(&pre, &idx).unwrap();
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (tp, _) = to_three_phase(&pre, &assignment).unwrap();
    assert_consistent("s5378+3phase", &tp, 11, cycles);
}
