//! Formal equivalence certification over the registered benchmark
//! generators: every conversion in the quick suite is proven cycle-exact
//! by chain induction, and retiming is proven function-preserving by
//! signal correspondence on a representative design. `TRIPHASE_SCALE=full`
//! extends conversion certification to all 18 registered benchmarks (the
//! `equiv` CLI and CI run the same checks at scale).

use triphase_bench::{benchmarks, quick_benchmarks, Benchmark};
use triphase_cells::Library;
use triphase_core::{
    assign_phases, extract_ff_graph, gated_clock_style, retime_three_phase, to_three_phase,
};
use triphase_equiv::{check_conversion, check_sequential, Method, Options, Verdict};
use triphase_ilp::PhaseConfig;
use triphase_netlist::Netlist;

/// The flow's preprocessing + conversion (same recipe as `run_flow_with`
/// and the `equiv` bin).
fn prepare(nl: &Netlist) -> (Netlist, Netlist) {
    let mut pre = nl.clone();
    gated_clock_style(&mut pre, 32).unwrap();
    let pre = pre.compact();
    let idx = pre.index();
    let graph = extract_ff_graph(&pre, &idx).unwrap();
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (tp, _) = to_three_phase(&pre, &assignment).unwrap();
    (pre, tp)
}

fn certify_conversion(b: &Benchmark) {
    let (pre, tp) = prepare(&b.build());
    let outcome = check_conversion(&pre, &tp, &Options::default())
        .unwrap_or_else(|e| panic!("{}: checker error: {e}", b.name));
    match outcome.verdict {
        Verdict::Equivalent {
            method: Method::ChainInduction,
            from_cycle: 0,
            ..
        } => {}
        other => panic!("{}: conversion not certified: {other:?}", b.name),
    }
}

#[test]
fn quick_suite_conversions_are_certified() {
    for b in quick_benchmarks() {
        certify_conversion(&b);
    }
}

#[test]
fn full_suite_conversions_are_certified() {
    if std::env::var("TRIPHASE_SCALE").as_deref() != Ok("full") {
        return; // the release `equiv` bin and CI cover the full suite
    }
    for b in benchmarks() {
        certify_conversion(&b);
    }
}

/// Retiming certification on a representative design: the modified
/// retiming must preserve function, proven by simulation-seeded signal
/// correspondence from the flush depth onward.
#[test]
fn retimed_s1423_is_certified_by_signal_correspondence() {
    let b = benchmarks()
        .into_iter()
        .find(|b| b.name == "s1423")
        .unwrap();
    let (_, tp) = prepare(&b.build());
    let lib = Library::synthetic_28nm();
    let (rt, report) = retime_three_phase(&tp, &lib, 0.5).unwrap();
    assert!(report.ran, "retiming must actually run on s1423");
    let outcome = check_sequential(&tp, &rt, &Options::default()).unwrap();
    match outcome.verdict {
        Verdict::Equivalent {
            method: Method::SignalCorrespondence,
            from_cycle,
            ..
        } => assert!(from_cycle <= 16, "flush depth bounded by warmup cap"),
        other => panic!("retime not certified: {other:?}"),
    }
}
