//! Benchmark registry and reporting helpers for regenerating the paper's
//! tables and figures.
//!
//! Binaries (see DESIGN.md §3 for the experiment index):
//!
//! - `table1` — register counts and area (paper Table I);
//! - `table2` — grouped power (paper Table II);
//! - `fig1_pipeline` — linear-pipeline conversion minimality (Fig. 1);
//! - `fig4` — CPU power under Dhrystone-like / Coremark-like workloads;
//! - `runtime_report` — flow runtime decomposition (§V discussion).
//!
//! Every binary accepts `--quick` (or `TRIPHASE_SCALE=quick`) to run a
//! reduced configuration for smoke testing; the full configuration is the
//! EXPERIMENTS.md reference.

pub mod fuzz;
pub mod microbench;
pub mod perf;
pub mod report;

/// Hand-rolled JSON tree (re-exported from the service crate, which
/// owns it as its wire format; the report writers predate the move).
pub use triphase_serve::json;

use triphase_cells::Library;
use triphase_circuits::cpu::{self, CpuConfig, Workload};
use triphase_circuits::crypto::{aes, des3, md5, sha256};
use triphase_circuits::iscas::{generate_iscas, iscas_profiles, IscasProfile};
use triphase_core::{run_flow_with, FlowConfig, FlowReport};
use triphase_netlist::Netlist;
use triphase_pnr::PnrOptions;
use triphase_sim::{data_inputs, lane_seeds, Activity, CompiledSim, Lanes, Logic, Stream, LANES};

/// Benchmark grouping, mirroring the paper's table sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// ISCAS89 circuits (1 GHz).
    Iscas,
    /// MIT-LL CEP crypto submodules (500 MHz).
    Cep,
    /// CPU cores (500 / 333 MHz).
    Cpu,
}

impl Group {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Group::Iscas => "ISCAS",
            Group::Cep => "CEP",
            Group::Cpu => "CPU",
        }
    }
}

#[derive(Debug, Clone)]
enum Kind {
    Iscas(IscasProfile),
    Aes,
    Des3,
    Sha256,
    Md5,
    Cpu(CpuConfig, Workload),
}

/// One benchmark circuit of the paper's evaluation.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Row name as in the paper.
    pub name: &'static str,
    /// Table section.
    pub group: Group,
    kind: Kind,
    seed: u64,
}

/// Run scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced stimulus/anneal for smoke tests.
    Quick,
    /// The EXPERIMENTS.md reference configuration.
    Full,
}

impl Scale {
    /// Parse from argv/environment (`--quick` or `TRIPHASE_SCALE=quick`).
    pub fn from_env() -> Scale {
        let argv_quick = std::env::args().any(|a| a == "--quick");
        let env_quick = std::env::var("TRIPHASE_SCALE").is_ok_and(|v| v == "quick");
        if argv_quick || env_quick {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}

impl Benchmark {
    /// Construct the benchmark netlist.
    pub fn build(&self) -> Netlist {
        match &self.kind {
            Kind::Iscas(profile) => generate_iscas(profile, self.seed),
            Kind::Aes => aes::aes128_pipelined(2000.0),
            Kind::Des3 => des3::des3_core(&des3::Des3Spec::new(self.seed), 2000.0),
            Kind::Sha256 => sha256::sha256_core(2000.0),
            Kind::Md5 => md5::md5_core(2000.0),
            Kind::Cpu(cfg, _) => cpu::build_cpu(cfg, self.seed).0,
        }
    }

    /// Flow configuration for this benchmark at a scale.
    pub fn flow_config(&self, scale: Scale) -> FlowConfig {
        let big = matches!(self.kind, Kind::Aes);
        let cep = self.group == Group::Cep;
        let (sim, equiv, moves) = match (scale, big) {
            (Scale::Quick, false) => (if cep { 120 } else { 48 }, 64, 2),
            (Scale::Quick, true) => (96, 24, 1),
            (Scale::Full, false) => (if cep { 240 } else { 200 }, 200, 12),
            (Scale::Full, true) => (144, 64, 4),
        };
        FlowConfig {
            seed: self.seed,
            sim_cycles: sim,
            equiv_cycles: equiv,
            // The paper's DDCG threshold is "activity below 1% of the
            // clock" measured over full testbench programs (thousands of
            // mostly-idle cycles). Our self-check bursts compress that
            // idle time, so the equivalent threshold over the shortened
            // window is somewhat higher for the CEP cores — but kept
            // tight enough that the *active* registers of the iterative
            // cores stay ungated (the comparison XORs would otherwise
            // cost more combinational power than the gating saves).
            ddcg_threshold: if cep { 0.08 } else { 0.02 },
            pnr: PnrOptions {
                seed: self.seed,
                moves_per_cell: moves,
                ..PnrOptions::default()
            },
            ..FlowConfig::default()
        }
    }

    /// The workload this benchmark is evaluated under (CPUs only).
    pub fn workload(&self) -> Option<Workload> {
        match &self.kind {
            Kind::Cpu(_, w) => Some(*w),
            _ => None,
        }
    }

    /// The stimulus style for this benchmark: ISCAS circuits stream
    /// pseudo-random vectors, CEP cores run self-check-style bursts (one
    /// operation, then idle — the open-source testbenches the paper
    /// uses), CPUs run their instruction-mix segment.
    pub fn stimulus(&self) -> Stimulus {
        match &self.kind {
            Kind::Iscas(_) => Stimulus::Random,
            Kind::Aes => Stimulus::SelfCheck { interval: 48 },
            Kind::Des3 => Stimulus::SelfCheck { interval: 60 },
            Kind::Sha256 | Kind::Md5 => Stimulus::SelfCheck { interval: 78 },
            Kind::Cpu(_, w) => Stimulus::Cpu(*w),
        }
    }

    /// Stimulus seed of this benchmark row.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Run the full three-variant flow.
    ///
    /// # Errors
    ///
    /// Propagates flow failures (equivalence or constraint violations are
    /// hard errors — a benchmark must not silently produce a wrong design).
    pub fn run(&self, lib: &Library, scale: Scale) -> triphase_core::Result<FlowReport> {
        self.run_netlist_with_config(&self.build(), lib, &self.flow_config(scale))
    }

    /// Run the flow on a caller-supplied netlist and configuration, with
    /// this benchmark's own stimulus style. Fault-injection campaigns use
    /// this to sweep budgets/faults (and adversarially mutated netlists)
    /// while keeping the stimulus identical to the real row.
    ///
    /// # Errors
    ///
    /// See [`Benchmark::run`].
    pub fn run_netlist_with_config(
        &self,
        nl: &Netlist,
        lib: &Library,
        cfg: &FlowConfig,
    ) -> triphase_core::Result<FlowReport> {
        let seed = self.seed;
        let stim = self.stimulus();
        run_flow_with(nl, lib, cfg, &move |n: &Netlist, cycles: u64| {
            drive_stimulus(n, cycles, seed, stim)
        })
    }
}

/// Stimulus styles.
#[derive(Debug, Clone, Copy)]
pub enum Stimulus {
    /// Fresh pseudo-random input vectors every cycle (the paper's ISCAS
    /// methodology).
    Random,
    /// Self-check style: pulse the start port (`load`/`valid_in`) with a
    /// fresh random operand every `interval` cycles; inputs are held
    /// static in between (the CEP testbench shape — the core computes,
    /// then idles).
    SelfCheck {
        /// Cycles between operations.
        interval: u64,
    },
    /// CPU instruction-mix workload (`mode` pinned to its ROM segment).
    Cpu(Workload),
}

/// One packed vector of fresh random bits, one per lane stream.
fn draw(streams: &mut [Stream]) -> Lanes<1> {
    let mut bits = 0u64;
    for (l, s) in streams.iter_mut().enumerate() {
        bits |= u64::from(s.next_bit()) << l;
    }
    Lanes::from_bits([bits])
}

/// Drive a benchmark netlist with a stimulus style and return its
/// activity profile.
///
/// Runs on the compiled bytecode kernel (a certified bit-exact twin of
/// the packed one, so toggle counts are unchanged from the packed era):
/// the requested `cycles` are split across up to 64 independent stimulus
/// lanes (lane 0 replays the historical scalar stream for `seed`).
/// Stimuli with temporal structure
/// ([`Stimulus::SelfCheck`]) keep at least one full burst interval per
/// lane so the compute/idle activity shape is preserved; purely random
/// stimuli split down to one cycle per lane.
///
/// # Errors
///
/// Simulator construction errors.
pub fn drive_stimulus(
    nl: &Netlist,
    cycles: u64,
    seed: u64,
    stim: Stimulus,
) -> triphase_sim::Result<Activity> {
    run_stimulus(nl, cycles, seed, stim, |_| {})
}

/// Measured per-net profile: toggle counts plus the cycles each net
/// spent at logic one, the empirical (probability, density) pair the
/// static activity model is cross-validated against.
#[derive(Debug, Clone)]
pub struct StimulusProfile {
    /// Toggle counts, as [`drive_stimulus`] returns them.
    pub activity: Activity,
    /// Per-net count of observed-one samples (net index → count); the
    /// empirical signal probability is `ones[net] / activity.cycles`.
    pub ones: Vec<u64>,
}

impl StimulusProfile {
    /// Empirical signal probability of `net`.
    pub fn probability(&self, net: triphase_netlist::NetId) -> f64 {
        if self.activity.cycles == 0 {
            0.5
        } else {
            self.ones[net.index()] as f64 / self.activity.cycles as f64
        }
    }

    /// Empirical transition density (toggles/cycle) of `net`.
    pub fn density(&self, net: triphase_netlist::NetId) -> f64 {
        if self.activity.cycles == 0 {
            0.0
        } else {
            self.activity.net_toggles[net.index()] as f64 / self.activity.cycles as f64
        }
    }
}

/// [`drive_stimulus`], additionally sampling every net's value once per
/// cycle to accumulate empirical signal probabilities.
///
/// # Errors
///
/// Simulator construction errors.
pub fn profile_stimulus(
    nl: &Netlist,
    cycles: u64,
    seed: u64,
    stim: Stimulus,
) -> triphase_sim::Result<StimulusProfile> {
    let mut ones = vec![0u64; nl.net_capacity()];
    let activity = run_stimulus(nl, cycles, seed, stim, |sim| {
        let mask = triphase_sim::Mask::first(sim.lanes());
        for (i, count) in ones.iter_mut().enumerate() {
            let word = sim.net_value(triphase_netlist::NetId::from_index(i));
            *count += word.ones(mask);
        }
    })?;
    Ok(StimulusProfile { activity, ones })
}

/// Shared compiled-kernel stimulus loop behind [`drive_stimulus`] and
/// [`profile_stimulus`]; `observe` runs after every stepped cycle. Lane
/// counts keep the packed-era ≤64 formulas so activity certification
/// thresholds (and every recorded toggle count) are bit-for-bit stable.
fn run_stimulus(
    nl: &Netlist,
    cycles: u64,
    seed: u64,
    stim: Stimulus,
    mut observe: impl FnMut(&CompiledSim<'_, 1>),
) -> triphase_sim::Result<Activity> {
    let lanes = match stim {
        Stimulus::SelfCheck { interval } => (cycles / interval.max(1)).clamp(1, LANES as u64),
        Stimulus::Random | Stimulus::Cpu(_) => cycles.clamp(1, LANES as u64),
    } as usize;
    let per_lane = cycles.div_ceil(lanes as u64);
    let inputs = data_inputs(nl);
    let mut sim = CompiledSim::<1>::new(nl, lanes)?;
    sim.reset_zero();
    let mut streams: Vec<Stream> = lane_seeds(seed, lanes)
        .into_iter()
        .map(Stream::new)
        .collect();
    match stim {
        Stimulus::Random => {
            for _ in 0..per_lane {
                for &p in &inputs {
                    sim.set_input(p, draw(&mut streams));
                }
                sim.step_cycle();
                observe(&sim);
            }
        }
        Stimulus::SelfCheck { interval } => {
            let start = nl.find_port("load").or_else(|| nl.find_port("valid_in"));
            for cycle in 0..per_lane {
                let pulse = cycle % interval.max(1) == 0;
                if pulse {
                    for &p in &inputs {
                        if Some(p) == start {
                            continue;
                        }
                        sim.set_input(p, draw(&mut streams));
                    }
                }
                if let Some(p) = start {
                    sim.set_input(p, Lanes::splat(Logic::from_bool(pulse)));
                }
                sim.step_cycle();
                observe(&sim);
            }
        }
        Stimulus::Cpu(workload) => {
            let mode_port = nl.find_port("mode");
            let mode = Lanes::splat(Logic::from_bool(workload.mode_bit()));
            for _ in 0..per_lane {
                for &p in &inputs {
                    let v = if Some(p) == mode_port {
                        mode
                    } else {
                        draw(&mut streams)
                    };
                    sim.set_input(p, v);
                }
                sim.step_cycle();
                observe(&sim);
            }
        }
    }
    Ok(sim.activity())
}

/// Back-compat wrapper used by the Fig. 4 binary: CPU workload or random.
///
/// # Errors
///
/// Simulator construction errors.
pub fn drive_benchmark(
    nl: &Netlist,
    cycles: u64,
    seed: u64,
    workload: Option<Workload>,
) -> triphase_sim::Result<Activity> {
    match workload {
        Some(w) => drive_stimulus(nl, cycles, seed, Stimulus::Cpu(w)),
        None => drive_stimulus(nl, cycles, seed, Stimulus::Random),
    }
}

/// The full benchmark suite (paper Tables I & II rows), in paper order.
pub fn benchmarks() -> Vec<Benchmark> {
    let mut v: Vec<Benchmark> = iscas_profiles()
        .into_iter()
        .map(|p| Benchmark {
            name: p.name,
            group: Group::Iscas,
            kind: Kind::Iscas(p),
            seed: 42,
        })
        .collect();
    v.push(Benchmark {
        name: "AES",
        group: Group::Cep,
        kind: Kind::Aes,
        seed: 7,
    });
    v.push(Benchmark {
        name: "DES3",
        group: Group::Cep,
        kind: Kind::Des3,
        seed: 7,
    });
    v.push(Benchmark {
        name: "SHA256",
        group: Group::Cep,
        kind: Kind::Sha256,
        seed: 7,
    });
    v.push(Benchmark {
        name: "MD5",
        group: Group::Cep,
        kind: Kind::Md5,
        seed: 7,
    });
    v.push(Benchmark {
        name: "Plasma",
        group: Group::Cpu,
        kind: Kind::Cpu(cpu::plasma_like(), Workload::DhrystoneLike),
        seed: 11,
    });
    v.push(Benchmark {
        name: "RISCV",
        group: Group::Cpu,
        kind: Kind::Cpu(cpu::rocket_lite(), Workload::DhrystoneLike),
        seed: 11,
    });
    v.push(Benchmark {
        name: "ArmM0",
        group: Group::Cpu,
        kind: Kind::Cpu(cpu::m0_like(), Workload::DhrystoneLike),
        seed: 11,
    });
    v
}

/// A reduced suite for `--quick` runs (small ISCAS rows, the light CEP
/// cores, and the compact CPU).
pub fn quick_benchmarks() -> Vec<Benchmark> {
    benchmarks()
        .into_iter()
        .filter(|b| {
            matches!(
                b.name,
                "s1196" | "s1238" | "s1488" | "s1423" | "DES3" | "SHA256" | "ArmM0"
            )
        })
        .collect()
}

/// Pick the suite for a scale.
pub fn suite(scale: Scale) -> Vec<Benchmark> {
    match scale {
        Scale::Quick => quick_benchmarks(),
        Scale::Full => benchmarks(),
    }
}

/// Unweighted mean, the paper's averaging convention.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Run the whole suite at a scale, printing per-row progress to stderr.
///
/// The rows fan out over the [`triphase_par`] work-stealing pool (worker
/// count from `TRIPHASE_THREADS` or the machine); results come back in
/// paper row order regardless of thread count, and each row's flow is
/// itself deterministic, so the tables are thread-count independent.
///
/// # Errors
///
/// Fails on the first (in row order) benchmark whose flow fails
/// validation.
pub fn run_suite(scale: Scale) -> triphase_core::Result<Vec<(Benchmark, FlowReport)>> {
    run_suite_results(scale)
        .into_iter()
        .map(|(b, r)| r.map(|report| (b, report)))
        .collect()
}

/// Like [`run_suite`], but every row returns its own `Result`: one
/// failing (or even panicking) benchmark never takes down the rest of
/// the sweep. A panicking flow is contained per row and surfaced as
/// [`triphase_core::Error::Panic`].
pub fn run_suite_results(scale: Scale) -> Vec<(Benchmark, triphase_core::Result<FlowReport>)> {
    let lib = Library::synthetic_28nm();
    let rows = suite(scale);
    let results = triphase_par::par_map(&rows, |b| {
        let t0 = std::time::Instant::now();
        let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.run(&lib, scale)))
            .unwrap_or_else(|payload| {
                Err(triphase_core::Error::from_panic(
                    &format!("benchmark {}", b.name),
                    payload,
                ))
            });
        match &report {
            Ok(r) => eprintln!(
                "[{}] {:>8} ... done in {:.1}s (equiv {})",
                b.group.label(),
                b.name,
                t0.elapsed().as_secs_f64(),
                match (r.equiv_ms, r.equiv_3p) {
                    (Some(true), Some(true)) => "ok",
                    _ => "SKIPPED/FAILED",
                }
            ),
            Err(e) => eprintln!(
                "[{}] {:>8} ... FAILED in {:.1}s: {e}",
                b.group.label(),
                b.name,
                t0.elapsed().as_secs_f64()
            ),
        }
        report
    });
    rows.into_iter().zip(results).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_paper_rows() {
        let all = benchmarks();
        assert_eq!(all.len(), 18, "11 ISCAS + 4 CEP + 3 CPU");
        assert_eq!(all.iter().filter(|b| b.group == Group::Iscas).count(), 11);
        assert_eq!(all.iter().filter(|b| b.group == Group::Cep).count(), 4);
        assert_eq!(all.iter().filter(|b| b.group == Group::Cpu).count(), 3);
    }

    #[test]
    fn quick_suite_builds() {
        for b in quick_benchmarks() {
            let nl = b.build();
            nl.validate().unwrap();
            assert!(nl.stats().ffs > 0, "{}", b.name);
        }
    }

    #[test]
    fn quick_flow_on_smallest_row() {
        let lib = Library::synthetic_28nm();
        let b = quick_benchmarks()
            .into_iter()
            .find(|b| b.name == "s1488")
            .unwrap();
        let report = b.run(&lib, Scale::Quick).unwrap();
        assert_eq!(report.equiv_3p, Some(true));
        assert!(report.three_phase.registers() > 0);
    }

    #[test]
    fn mean_matches_paper_convention() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
