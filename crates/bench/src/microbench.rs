//! Minimal wall-clock micro-benchmark harness for the `benches/` targets.
//!
//! The container builds hermetically (no external registry), so the bench
//! targets are plain `harness = false` mains timed with `std::time`:
//! median-of-N wall-clock samples after one warm-up iteration. Invoke via
//! `cargo bench` (full samples) or with `--quick` for a single sample.

use std::time::Instant;

/// Number of timed samples, honouring `--quick` / `TRIPHASE_SCALE=quick`.
pub fn samples(full: usize) -> usize {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("TRIPHASE_SCALE").is_ok_and(|v| v == "quick");
    if quick {
        1
    } else {
        full
    }
}

/// Time `f` for `samples` iterations (after one warm-up) and print the
/// median/best wall-clock time. The closure's result is black-boxed so
/// the optimizer cannot elide the work.
pub fn time<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) {
    let _ = std::hint::black_box(f());
    let mut secs = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        secs.push(t0.elapsed().as_secs_f64());
    }
    secs.sort_by(f64::total_cmp);
    let median = secs[secs.len() / 2];
    println!(
        "{name:<44} median {:>9.3} ms  best {:>9.3} ms  ({} samples)",
        median * 1e3,
        secs[0] * 1e3,
        secs.len()
    );
}

/// [`time`] with a throughput annotation (elements per iteration).
pub fn time_throughput<T>(name: &str, samples: usize, elements: u64, mut f: impl FnMut() -> T) {
    let _ = std::hint::black_box(f());
    let mut secs = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        secs.push(t0.elapsed().as_secs_f64());
    }
    secs.sort_by(f64::total_cmp);
    let median = secs[secs.len() / 2];
    println!(
        "{name:<44} median {:>9.3} ms  {:>12.0} elem/s  ({} samples)",
        median * 1e3,
        elements as f64 / median,
        secs.len()
    );
}
