//! Minimal wall-clock micro-benchmark harness for the `benches/` targets.
//!
//! The container builds hermetically (no external registry), so the bench
//! targets are plain `harness = false` mains timed with `std::time`:
//! median-of-N wall-clock samples after one warm-up iteration. Invoke via
//! `cargo bench` (full samples) or with `--quick` for a single sample.
//!
//! [`time`]/[`time_throughput`] return the [`Measurement`] they printed,
//! so machine-readable reports (`results/BENCH_sim.json`) and the human
//! summary line always agree — both read the same median.

use std::time::Instant;

/// Number of timed samples, honouring `--quick` / `TRIPHASE_SCALE=quick`.
pub fn samples(full: usize) -> usize {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("TRIPHASE_SCALE").is_ok_and(|v| v == "quick");
    if quick {
        1
    } else {
        full
    }
}

/// One timed micro-benchmark result. All derived figures (elements/sec,
/// ns/element) come from the **median** sample — the stable summary
/// statistic the harness reports everywhere.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Median wall-clock seconds per iteration.
    pub median_secs: f64,
    /// Best (minimum) wall-clock seconds per iteration.
    pub best_secs: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Elements processed per iteration (throughput benches).
    pub elements: Option<u64>,
}

impl Measurement {
    /// Elements per second at the median sample (0 when not a
    /// throughput measurement).
    pub fn elements_per_sec(&self) -> f64 {
        match self.elements {
            Some(e) if self.median_secs > 0.0 => e as f64 / self.median_secs,
            _ => 0.0,
        }
    }

    /// Nanoseconds per element at the median sample (0 when not a
    /// throughput measurement).
    pub fn ns_per_element(&self) -> f64 {
        match self.elements {
            Some(e) if e > 0 => self.median_secs * 1e9 / e as f64,
            _ => 0.0,
        }
    }
}

fn run_samples<T>(samples: usize, f: &mut impl FnMut() -> T) -> Vec<f64> {
    let _ = std::hint::black_box(f());
    let mut secs = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        secs.push(t0.elapsed().as_secs_f64());
    }
    secs.sort_by(f64::total_cmp);
    secs
}

/// Time `f` for `samples` iterations (after one warm-up) and print the
/// median/best wall-clock time. The closure's result is black-boxed so
/// the optimizer cannot elide the work.
pub fn time<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Measurement {
    let secs = run_samples(samples, &mut f);
    let m = Measurement {
        name: name.to_owned(),
        median_secs: secs[secs.len() / 2],
        best_secs: secs[0],
        samples: secs.len(),
        elements: None,
    };
    println!(
        "{name:<44} median {:>9.3} ms  best {:>9.3} ms  ({} samples)",
        m.median_secs * 1e3,
        m.best_secs * 1e3,
        m.samples
    );
    m
}

/// [`time`] with a throughput annotation: `elements` processed per
/// iteration, summarized as median elements/sec.
pub fn time_throughput<T>(
    name: &str,
    samples: usize,
    elements: u64,
    mut f: impl FnMut() -> T,
) -> Measurement {
    let secs = run_samples(samples, &mut f);
    let m = Measurement {
        name: name.to_owned(),
        median_secs: secs[secs.len() / 2],
        best_secs: secs[0],
        samples: secs.len(),
        elements: Some(elements),
    };
    println!(
        "{name:<44} median {:>9.3} ms  {:>12.0} elem/s  ({} samples)",
        m.median_secs * 1e3,
        m.elements_per_sec(),
        m.samples
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_derivations_use_median() {
        let m = Measurement {
            name: "t".into(),
            median_secs: 0.5,
            best_secs: 0.25,
            samples: 3,
            elements: Some(1000),
        };
        assert_eq!(m.elements_per_sec(), 2000.0);
        assert_eq!(m.ns_per_element(), 0.5e9 / 1000.0);
        let plain = Measurement {
            elements: None,
            ..m
        };
        assert_eq!(plain.elements_per_sec(), 0.0);
        assert_eq!(plain.ns_per_element(), 0.0);
    }

    #[test]
    fn time_returns_what_it_prints() {
        let m = time_throughput("unit", 3, 64, || std::hint::black_box(17u64 * 3));
        assert_eq!(m.samples, 3);
        assert_eq!(m.elements, Some(64));
        assert!(m.best_secs <= m.median_secs);
    }
}
