//! Read-merge-write helpers for the machine-readable perf report
//! `results/BENCH_sim.json`.
//!
//! Several binaries contribute sections to the same file (`sim_perf`
//! writes kernel throughput and thread-scaling curves, `runtime_report`
//! writes the flow runtime decomposition, the `sim_throughput` bench
//! writes its raw measurements), so each merges its own top-level key and
//! leaves the others intact. A corrupt or missing file is replaced with a
//! fresh object rather than failing the run.

use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::microbench::Measurement;

/// Environment variable overriding the report directory (default
/// `results/`).
pub const RESULTS_DIR_ENV: &str = "TRIPHASE_RESULTS_DIR";

/// Path of the shared perf report. Without the env override, anchors at
/// the workspace root (nearest ancestor holding `Cargo.lock`) so bins run
/// from the repo root and benches run by cargo from the package directory
/// write the **same** `results/BENCH_sim.json`.
pub fn report_path() -> PathBuf {
    if let Ok(dir) = std::env::var(RESULTS_DIR_ENV) {
        return Path::new(&dir).join("BENCH_sim.json");
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("results").join("BENCH_sim.json");
        }
        if !dir.pop() {
            return Path::new("results").join("BENCH_sim.json");
        }
    }
}

/// Merge `section` into the report at `path`: existing top-level keys are
/// preserved, `section` is inserted or replaced, and the file rewritten
/// pretty-printed. Returns the path written.
pub fn merge_section_at(path: &Path, section: &str, value: Json) -> std::io::Result<PathBuf> {
    let mut doc = match std::fs::read_to_string(path) {
        Ok(text) => Json::parse(&text).unwrap_or_else(|_| Json::obj()),
        Err(_) => Json::obj(),
    };
    if !matches!(doc, Json::Obj(_)) {
        doc = Json::obj();
    }
    doc.set(section, value);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, doc.to_pretty())?;
    Ok(path.to_owned())
}

/// [`merge_section_at`] targeting [`report_path`].
pub fn merge_section(section: &str, value: Json) -> std::io::Result<PathBuf> {
    merge_section_at(&report_path(), section, value)
}

/// JSON record for one [`Measurement`]: name, median/best seconds,
/// sample count, and — for throughput measurements — elements (simulated
/// cycles), ns/element, and elements/sec.
pub fn measurement_json(m: &Measurement) -> Json {
    let mut rec = Json::obj();
    rec.set("name", m.name.as_str().into());
    rec.set("median_secs", m.median_secs.into());
    rec.set("best_secs", m.best_secs.into());
    rec.set("samples", m.samples.into());
    if let Some(elements) = m.elements {
        rec.set("cycles", elements.into());
        rec.set("ns_per_cycle", m.ns_per_element().into());
        rec.set("cycles_per_sec", m.elements_per_sec().into());
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_other_sections() {
        let dir = std::env::temp_dir().join(format!("triphase-perf-{}", std::process::id()));
        let path = dir.join("BENCH_sim.json");
        let mut a = Json::obj();
        a.set("x", 1u64.into());
        merge_section_at(&path, "alpha", a.clone()).unwrap();
        let mut b = Json::obj();
        b.set("y", 2u64.into());
        merge_section_at(&path, "beta", b.clone()).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("alpha"), Some(&a));
        assert_eq!(doc.get("beta"), Some(&b));

        // Corrupt file: replaced, not fatal.
        std::fs::write(&path, "not json").unwrap();
        merge_section_at(&path, "alpha", a.clone()).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("alpha"), Some(&a));
        assert_eq!(doc.get("beta"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn measurement_json_mirrors_derived_figures() {
        let m = Measurement {
            name: "packed".into(),
            median_secs: 0.5,
            best_secs: 0.4,
            samples: 5,
            elements: Some(1000),
        };
        let rec = measurement_json(&m);
        assert_eq!(rec.get("cycles").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(
            rec.get("cycles_per_sec").and_then(Json::as_f64),
            Some(m.elements_per_sec())
        );
        assert_eq!(
            rec.get("ns_per_cycle").and_then(Json::as_f64),
            Some(m.ns_per_element())
        );
    }
}
