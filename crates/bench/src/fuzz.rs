//! Differential fuzz campaign over the conversion pipeline (the `fuzz`
//! bin; report section `fuzz_campaign` in `results/BENCH_fuzz.json`).
//!
//! Three phases, all deterministic from one seed and independent of
//! `TRIPHASE_THREADS` (cases fan out over the work-stealing pool but
//! every case derives its own [`SplitMix64`] stream):
//!
//! 1. **differential** — recipe-generated netlists ([`Recipe`]) run
//!    through a stack of cross-checking oracles: structural validation,
//!    Verilog round-trip (stats + streamed equivalence), packed-kernel
//!    vs scalar-interpreter toggle exactness, and FF → 3-phase
//!    conversion proven both by input streaming and by the SAT checker.
//!    Any disagreement is a failure of the *tools*, not the input.
//! 2. **mutation** — adversarial structural mutants (stripped clocks,
//!    dangling nets, rewired pins, deleted cells, zeroed clock periods)
//!    and textual mutants (truncated/corrupted Verilog) are pushed
//!    through the same pipeline. Every mutant must end in `Ok` or a
//!    typed error — a panic is a certification failure. A mutant that
//!    stays structurally valid must still convert equivalently.
//! 3. **sabotage** — a semantic bug (gate-kind swap) is seeded into the
//!    *converted* design; when streaming finds a real output mismatch,
//!    the SAT checker must refuse to prove equivalence. A false proof is
//!    a failure. Detected cases are shrunk (greedy op removal while the
//!    detection persists) and the golden/mutant pair is persisted to the
//!    corpus directory for replay. Sabotage runs are intentional bugs:
//!    they are counted in their own section, never in the differential
//!    pass total.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

use triphase_core::{assign_phases, extract_ff_graph, gated_clock_style, to_three_phase};
use triphase_equiv::{check_conversion, Options, Verdict};
use triphase_ilp::PhaseConfig;
use triphase_netlist::gen::Recipe;
use triphase_netlist::{verilog, CellKind, Netlist, SplitMix64};
use triphase_sim::{equiv_stream, run_random, run_random_compiled, run_random_packed};

use crate::json::Json;

/// Campaign configuration (echoed into the report for reproducibility).
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every phase derives its streams from it.
    pub seed: u64,
    /// Differential cases (phase 1).
    pub cases: usize,
    /// Adversarial mutants (phase 2, half structural / half textual).
    pub mutants: usize,
    /// Sabotage runs (phase 3).
    pub sabotage: usize,
    /// Maximum recipe length (exclusive).
    pub max_ops: usize,
    /// Maximum word width (exclusive).
    pub max_width: usize,
    /// Where shrunk sabotage reproducers are written (`None` skips
    /// persistence — unit tests).
    pub corpus_dir: Option<PathBuf>,
}

impl FuzzConfig {
    /// The reference campaign (the committed `results/BENCH_fuzz.json`).
    pub fn full(seed: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            cases: 600,
            mutants: 300,
            sabotage: 40,
            max_ops: 12,
            max_width: 8,
            corpus_dir: None,
        }
    }

    /// Reduced configuration for the CI `fuzz-smoke` job.
    pub fn quick(seed: u64) -> FuzzConfig {
        FuzzConfig {
            cases: 60,
            mutants: 40,
            sabotage: 6,
            ..FuzzConfig::full(seed)
        }
    }
}

/// One certification failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Phase that failed (`differential` / `mutation` / `sabotage`).
    pub phase: &'static str,
    /// Case index within the phase.
    pub case: usize,
    /// Recipe that produced the failure (hex op string).
    pub recipe: String,
    /// What went wrong.
    pub detail: String,
}

/// A shrunk, persisted sabotage reproducer.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// Sabotage case index.
    pub case: usize,
    /// Shrunk recipe ops (hex).
    pub ops_hex: String,
    /// Recipe word width.
    pub width: usize,
    /// Recipe stimulus seed.
    pub seed: u64,
    /// Ops before shrinking.
    pub ops_before: usize,
    /// Ops after shrinking.
    pub ops_after: usize,
    /// Name of the sabotaged cell in the converted design.
    pub cell: String,
    /// The seeded bug (e.g. `And2->Or2`).
    pub mutation: String,
    /// How the checker rejected it (`refuted` / `unknown`).
    pub verdict: String,
    /// First observed divergence.
    pub mismatch: String,
    /// Corpus files written (empty when persistence is off).
    pub files: Vec<String>,
}

/// Aggregated campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Configuration the campaign ran under.
    pub config: FuzzConfig,
    /// Differential cases that passed every oracle.
    pub passed: usize,
    /// Mutants that stayed valid through the whole pipeline.
    pub survived: usize,
    /// Mutants rejected with a typed error (the expected adversarial
    /// outcome).
    pub typed_errors: usize,
    /// First few typed rejection messages (audit sample).
    pub rejections: Vec<String>,
    /// Sabotage mutations with no observable behaviour change.
    pub benign: usize,
    /// Sabotage bugs caught by the checker.
    pub detected: usize,
    /// Sabotage bugs the checker wrongly proved equivalent (must be 0).
    pub false_proofs: usize,
    /// All certification failures, in phase/case order.
    pub failures: Vec<Failure>,
    /// Shrunk reproducers for every detected sabotage case.
    pub reproducers: Vec<Reproducer>,
    /// Corpus files written.
    pub corpus_entries: usize,
    /// Wall-clock seconds per phase.
    pub seconds: [f64; 3],
    /// Determinism fingerprint over all outcome data (timings excluded).
    pub fingerprint: u64,
}

impl CampaignReport {
    /// `true` when the campaign certifies: no failures, no false proofs,
    /// every differential case passed, and the sabotage leg demonstrated
    /// at least one detection (a campaign that never catches a seeded
    /// bug proves nothing).
    pub fn certified(&self) -> bool {
        self.failures.is_empty()
            && self.false_proofs == 0
            && self.passed == self.config.cases
            && self.detected > 0
    }

    /// Render the `fuzz_campaign` report section.
    pub fn to_json(&self) -> Json {
        let mut doc = crate::report::section();
        doc.set("generated_by", "fuzz".into());
        doc.set(
            "commit",
            match git_commit() {
                Some(c) => Json::Str(c),
                None => Json::Str("unknown".into()),
            },
        );
        let mut cfg = Json::obj();
        cfg.set("seed", format!("{:#x}", self.config.seed).into());
        cfg.set("cases", self.config.cases.into());
        cfg.set("mutants", self.config.mutants.into());
        cfg.set("sabotage", self.config.sabotage.into());
        cfg.set("max_ops", self.config.max_ops.into());
        cfg.set("max_width", self.config.max_width.into());
        doc.set("config", cfg);

        let failures = |phase: &str| -> Json {
            Json::Arr(
                self.failures
                    .iter()
                    .filter(|f| f.phase == phase)
                    .map(|f| {
                        let mut row = Json::obj();
                        row.set("case", f.case.into());
                        row.set("recipe", f.recipe.as_str().into());
                        row.set("detail", f.detail.as_str().into());
                        row
                    })
                    .collect(),
            )
        };

        let mut diff = Json::obj();
        diff.set("cases", self.config.cases.into());
        diff.set("passed", self.passed.into());
        diff.set("seconds", self.seconds[0].into());
        diff.set("failures", failures("differential"));
        doc.set("differential", diff);

        let mut mutation = Json::obj();
        mutation.set("mutants", self.config.mutants.into());
        mutation.set("survived", self.survived.into());
        mutation.set("typed_errors", self.typed_errors.into());
        mutation.set(
            "sample_rejections",
            Json::Arr(self.rejections.iter().map(|r| r.as_str().into()).collect()),
        );
        mutation.set("seconds", self.seconds[1].into());
        mutation.set("failures", failures("mutation"));
        doc.set("mutation", mutation);

        let mut sab = Json::obj();
        sab.set("runs", self.config.sabotage.into());
        sab.set("detected", self.detected.into());
        sab.set("benign", self.benign.into());
        sab.set("false_proofs", self.false_proofs.into());
        sab.set("seconds", self.seconds[2].into());
        sab.set(
            "reproducers",
            Json::Arr(
                self.reproducers
                    .iter()
                    .map(|r| {
                        let mut row = Json::obj();
                        row.set("case", r.case.into());
                        row.set("ops", r.ops_hex.as_str().into());
                        row.set("width", r.width.into());
                        row.set("seed", r.seed.into());
                        row.set("ops_before", r.ops_before.into());
                        row.set("ops_after", r.ops_after.into());
                        row.set("cell", r.cell.as_str().into());
                        row.set("mutation", r.mutation.as_str().into());
                        row.set("verdict", r.verdict.as_str().into());
                        row.set("mismatch", r.mismatch.as_str().into());
                        row.set(
                            "files",
                            Json::Arr(r.files.iter().map(|f| f.as_str().into()).collect()),
                        );
                        row
                    })
                    .collect(),
            ),
        );
        sab.set("failures", failures("sabotage"));
        doc.set("sabotage", sab);

        doc.set("corpus_entries", self.corpus_entries.into());
        doc.set("fingerprint", format!("{:016x}", self.fingerprint).into());
        doc.set("certified", self.certified().into());
        doc
    }
}

/// The flow's preprocessing + conversion, kept in lockstep with
/// `run_flow_with` and the `equiv` bin: gated-clock style, compact,
/// phase assignment, 3-phase conversion.
fn prepare(nl: &Netlist) -> Result<(Netlist, Netlist), String> {
    let mut pre = nl.clone();
    gated_clock_style(&mut pre, 32).map_err(|e| e.to_string())?;
    let pre = pre.compact();
    let idx = pre.index();
    let graph = extract_ff_graph(&pre, &idx).map_err(|e| e.to_string())?;
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (tp, _) = to_three_phase(&pre, &assignment).map_err(|e| e.to_string())?;
    Ok((pre, tp))
}

/// Phase-1 oracle stack for one recipe.
fn differential_case(r: &Recipe) -> Result<(), String> {
    let nl = r.build();
    nl.validate().map_err(|e| format!("validate: {e}"))?;

    // Verilog round-trip: identical stats and streamed equivalence.
    // Structural Verilog carries no clock spec, so re-attach the
    // original one before streaming (else `ck` looks like a data input).
    let text = verilog::to_verilog(&nl);
    let mut back = verilog::from_verilog(&text).map_err(|e| format!("verilog parse: {e}"))?;
    if back.stats() != nl.stats() {
        return Err("verilog round-trip changed stats".into());
    }
    if let (Some(spec), Some(port)) = (nl.clock.as_ref(), back.find_port("ck")) {
        back.clock = Some(triphase_netlist::ClockSpec::single(port, spec.period_ps));
    }
    let rt = equiv_stream(&nl, &back, r.seed, 32).map_err(|e| format!("round-trip equiv: {e}"))?;
    if let Some(m) = rt.mismatch {
        return Err(format!(
            "verilog round-trip mismatch at cycle {} port {}",
            m.cycle, m.port
        ));
    }

    // Packed 64-lane kernel vs the scalar interpreter: bit-exact toggles.
    let scalar = run_random(&nl, r.seed, 24).map_err(|e| format!("scalar sim: {e}"))?;
    let packed = run_random_packed(&nl, r.seed, 24, 1).map_err(|e| format!("packed sim: {e}"))?;
    if packed.activity().net_toggles != scalar.activity().net_toggles {
        return Err("packed kernel toggles diverge from scalar interpreter".into());
    }

    // Compiled bytecode VM (fourth oracle): single-lane toggles bit-exact
    // with the scalar interpreter, and the multi-word path's lane 0 must
    // replay the identical trajectory value for value.
    let compiled =
        run_random_compiled(&nl, r.seed, 24, 1).map_err(|e| format!("compiled sim: {e}"))?;
    if compiled.activity().net_toggles != scalar.activity().net_toggles {
        return Err("compiled VM toggles diverge from scalar interpreter".into());
    }
    let wide =
        run_random_compiled(&nl, r.seed, 24, 96).map_err(|e| format!("compiled wide sim: {e}"))?;
    for (net, _) in nl.nets() {
        if wide.net_value_lane(net, 0) != scalar.net_value(net) {
            return Err(format!(
                "compiled multi-word lane 0 diverges from scalar on net {net:?}"
            ));
        }
    }

    // FF -> 3-phase conversion: streamed and SAT-proven equivalent.
    let (pre, tp) = prepare(&nl)?;
    let sim = equiv_stream(&pre, &tp, r.seed, 48).map_err(|e| format!("conversion stream: {e}"))?;
    if let Some(m) = sim.mismatch {
        return Err(format!(
            "conversion sim mismatch at cycle {} port {}",
            m.cycle, m.port
        ));
    }
    let conv = check_conversion(&pre, &tp, &Options::default())
        .map_err(|e| format!("check_conversion: {e}"))?;
    match conv.verdict {
        Verdict::Equivalent { .. } => Ok(()),
        Verdict::NotEquivalent { mismatch, .. } => Err(format!(
            "conversion refuted: cycle {} port {}",
            mismatch.cycle, mismatch.port
        )),
        Verdict::Unknown { reason, .. } => Err(format!("conversion unproven: {reason}")),
    }
}

/// Full pipeline on a (possibly mutated) netlist: `Ok(())` when the
/// design converts and both conversion proofs hold, `Err` for a typed
/// rejection anywhere along the way. A mutant that *converts* but fails
/// its own equivalence proof is reported distinctly — that is a tool
/// bug, not an input problem.
fn pipeline_outcome(nl: &Netlist, seed: u64) -> Result<(), PipelineReject> {
    nl.validate()
        .map_err(|e| PipelineReject::Typed(format!("validate: {e}")))?;
    let (pre, tp) = prepare(nl).map_err(PipelineReject::Typed)?;
    let sim = equiv_stream(&pre, &tp, seed, 16)
        .map_err(|e| PipelineReject::Typed(format!("equiv stream: {e}")))?;
    if let Some(m) = sim.mismatch {
        return Err(PipelineReject::ToolBug(format!(
            "conversion of valid mutant mismatches at cycle {} port {}",
            m.cycle, m.port
        )));
    }
    Ok(())
}

enum PipelineReject {
    /// Expected adversarial outcome: a typed error.
    Typed(String),
    /// The pipeline accepted the mutant but produced a wrong design.
    ToolBug(String),
}

/// Swap a combinational cell kind for its dual (a guaranteed-local,
/// usually behaviour-changing edit). Storage, clock-tree, and constant
/// cells are left alone.
fn swapped_kind(kind: CellKind) -> Option<(CellKind, &'static str)> {
    match kind {
        CellKind::And(n) => Some((CellKind::Or(n), "And->Or")),
        CellKind::Or(n) => Some((CellKind::And(n), "Or->And")),
        CellKind::Xor(n) => Some((CellKind::Xnor(n), "Xor->Xnor")),
        CellKind::Xnor(n) => Some((CellKind::Xor(n), "Xnor->Xor")),
        CellKind::Nand(n) => Some((CellKind::Nor(n), "Nand->Nor")),
        CellKind::Nor(n) => Some((CellKind::Nand(n), "Nor->Nand")),
        CellKind::Inv => Some((CellKind::Buf, "Inv->Buf")),
        CellKind::Buf => Some((CellKind::Inv, "Buf->Inv")),
        _ => None,
    }
}

/// Apply 1–3 structural mutations; returns a description.
fn mutate_structural(nl: &mut Netlist, rng: &mut SplitMix64) -> String {
    let count = rng.range(1, 4);
    let mut desc = Vec::new();
    for _ in 0..count {
        match rng.below(6) {
            0 => {
                nl.clock = None;
                desc.push("strip-clock".to_string());
            }
            1 => {
                let nets: Vec<_> = nl.nets().map(|(id, _)| id).collect();
                if !nets.is_empty() {
                    nl.remove_net(nets[rng.below(nets.len())]);
                    desc.push("remove-net".to_string());
                }
            }
            2 => {
                let cells: Vec<_> = nl
                    .cells()
                    .filter(|(_, c)| !c.inputs().is_empty())
                    .map(|(id, _)| id)
                    .collect();
                let nets: Vec<_> = nl.nets().map(|(id, _)| id).collect();
                if !cells.is_empty() && !nets.is_empty() {
                    let cell = cells[rng.below(cells.len())];
                    let pin = rng.below(nl.cell(cell).inputs().len());
                    let net = nets[rng.below(nets.len())];
                    nl.set_pin(cell, pin, net);
                    desc.push("rewire-pin".to_string());
                }
            }
            3 => {
                let cells: Vec<_> = nl
                    .cells()
                    .filter_map(|(id, c)| swapped_kind(c.kind).map(|(k, d)| (id, k, d)))
                    .collect();
                if !cells.is_empty() {
                    let (id, kind, d) = cells[rng.below(cells.len())];
                    let pins = nl.cell(id).pins().to_vec();
                    nl.replace_cell(id, kind, pins);
                    desc.push(d.to_string());
                }
            }
            4 => {
                let cells: Vec<_> = nl.cells().map(|(id, _)| id).collect();
                if !cells.is_empty() {
                    nl.remove_cell(cells[rng.below(cells.len())]);
                    desc.push("remove-cell".to_string());
                }
            }
            _ => {
                if let Some(c) = nl.clock.as_mut() {
                    c.period_ps = 0.0;
                    desc.push("zero-period".to_string());
                }
            }
        }
    }
    desc.join("+")
}

/// Corrupt Verilog text: truncate, flip a character, or drop/duplicate a
/// line.
fn mutate_text(text: &str, rng: &mut SplitMix64) -> String {
    match rng.below(4) {
        0 => {
            let mut at = rng.below(text.len().max(1));
            while at > 0 && !text.is_char_boundary(at) {
                at -= 1;
            }
            text[..at].to_string()
        }
        1 => {
            let mut bytes: Vec<u8> = text.bytes().collect();
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] = b' ' + (rng.next_u64() % 94) as u8; // printable ASCII
            }
            String::from_utf8_lossy(&bytes).into_owned()
        }
        2 => {
            let lines: Vec<&str> = text.lines().collect();
            let drop = rng.below(lines.len().max(1));
            lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, l)| *l)
                .collect::<Vec<_>>()
                .join("\n")
        }
        _ => {
            let lines: Vec<&str> = text.lines().collect();
            let dup = rng.below(lines.len().max(1));
            let mut out: Vec<&str> = Vec::new();
            for (i, l) in lines.iter().enumerate() {
                out.push(l);
                if i == dup {
                    out.push(l);
                }
            }
            out.join("\n")
        }
    }
}

/// Outcome of one sabotage case.
enum SabotageOutcome {
    /// The converted design had no swappable combinational cell.
    NoTarget,
    /// The swap changed nothing observable within the stream window.
    Benign,
    /// Streaming found a mismatch and the checker rejected the design.
    Detected {
        cell: String,
        mutation: String,
        verdict: String,
        mismatch: String,
    },
    /// Streaming found a mismatch but the checker proved equivalence.
    FalseProof(String),
    /// The pipeline errored before the oracle could run.
    Error(String),
}

/// Build the golden/mutant pair for a sabotage case. `pick` selects the
/// target cell deterministically (`pick % targets`), so the same raw
/// draw re-selects a comparable target as the recipe shrinks.
fn sabotage_pair(
    r: &Recipe,
    pick: u64,
) -> Result<Option<(Netlist, Netlist, String, String)>, String> {
    let nl = r.build();
    let (pre, tp) = prepare(&nl)?;
    let targets: Vec<_> = tp
        .cells()
        .filter_map(|(id, c)| swapped_kind(c.kind).map(|(k, d)| (id, k, d)))
        .collect();
    if targets.is_empty() {
        return Ok(None);
    }
    let (id, kind, desc) = targets[(pick % targets.len() as u64) as usize];
    let cell = tp.cell(id).name.clone();
    let pins = tp.cell(id).pins().to_vec();
    let mut mutant = tp;
    mutant.replace_cell(id, kind, pins);
    Ok(Some((pre, mutant, cell, desc.to_string())))
}

/// Run one sabotage case end to end.
fn sabotage_case(r: &Recipe, pick: u64) -> SabotageOutcome {
    let (pre, mutant, cell, mutation) = match sabotage_pair(r, pick) {
        Err(e) => return SabotageOutcome::Error(e),
        Ok(None) => return SabotageOutcome::NoTarget,
        Ok(Some(pair)) => pair,
    };
    let sim = match equiv_stream(&pre, &mutant, r.seed, 128) {
        Err(e) => return SabotageOutcome::Error(format!("sabotage stream: {e}")),
        Ok(sim) => sim,
    };
    let Some(mm) = sim.mismatch else {
        return SabotageOutcome::Benign;
    };
    let conv = match check_conversion(&pre, &mutant, &Options::default()) {
        Err(e) => return SabotageOutcome::Error(format!("sabotage check: {e}")),
        Ok(conv) => conv,
    };
    match conv.verdict {
        Verdict::Equivalent { .. } => SabotageOutcome::FalseProof(format!(
            "checker proved sabotaged cell {cell} ({mutation}) equivalent despite \
             sim mismatch at cycle {} port {}",
            mm.cycle, mm.port
        )),
        Verdict::NotEquivalent { mismatch, .. } => SabotageOutcome::Detected {
            cell,
            mutation,
            verdict: "refuted".into(),
            mismatch: format!("cycle {} port {}", mismatch.cycle, mismatch.port),
        },
        Verdict::Unknown { reason, .. } => SabotageOutcome::Detected {
            cell,
            mutation,
            verdict: "unknown".into(),
            mismatch: format!("sim cycle {} port {} ({reason})", mm.cycle, mm.port),
        },
    }
}

/// Greedy shrink: drop recipe ops left to right while the sabotage bug
/// stays detected (same raw `pick`, re-applied to the smaller design).
fn shrink(r: &Recipe, pick: u64) -> Recipe {
    let mut cur = r.clone();
    let mut i = 0;
    while i < cur.ops.len() && cur.ops.len() > 1 {
        let mut trial = cur.clone();
        trial.ops.remove(i);
        if matches!(
            sabotage_case(&trial, pick),
            SabotageOutcome::Detected { .. }
        ) {
            cur = trial;
        } else {
            i += 1;
        }
    }
    cur
}

fn ops_hex(ops: &[u8]) -> String {
    ops.iter().map(|b| format!("{b:02x}")).collect()
}

fn panic_detail(task: &str, payload: Box<dyn std::any::Any + Send>) -> String {
    triphase_core::Error::from_panic(task, payload).to_string()
}

fn mix(h: &mut u64, v: u64) {
    *h = SplitMix64::new(*h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
}

fn mix_str(h: &mut u64, s: &str) {
    mix(h, s.len() as u64);
    for chunk in s.as_bytes().chunks(8) {
        let mut v = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            v |= (b as u64) << (8 * i);
        }
        mix(h, v);
    }
}

/// Best-effort commit id for provenance: walk up to `.git`, chase `HEAD`.
fn git_commit() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git").join("HEAD");
        if let Ok(text) = std::fs::read_to_string(&head) {
            let text = text.trim().to_string();
            return match text.strip_prefix("ref: ") {
                Some(r) => std::fs::read_to_string(dir.join(".git").join(r))
                    .ok()
                    .map(|s| s.trim().to_string()),
                None => Some(text),
            };
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Run the full campaign. `progress` prints per-phase summaries to
/// stderr.
pub fn run_campaign(cfg: &FuzzConfig, progress: bool) -> CampaignReport {
    let mut failures: Vec<Failure> = Vec::new();

    // Phase 1: differential oracles.
    let t0 = Instant::now();
    let recipes = Recipe::stream(cfg.seed, cfg.cases, cfg.max_ops, cfg.max_width);
    let results = triphase_par::par_map(&recipes, |r| {
        catch_unwind(AssertUnwindSafe(|| differential_case(r)))
            .unwrap_or_else(|p| Err(panic_detail("fuzz.differential", p)))
    });
    let mut passed = 0usize;
    for (i, (r, res)) in recipes.iter().zip(results).enumerate() {
        match res {
            Ok(()) => passed += 1,
            Err(detail) => failures.push(Failure {
                phase: "differential",
                case: i,
                recipe: format!("ops {} width {} seed {}", ops_hex(&r.ops), r.width, r.seed),
                detail,
            }),
        }
    }
    let s0 = t0.elapsed().as_secs_f64();
    if progress {
        eprintln!(
            "[fuzz] differential: {passed}/{} passed in {s0:.1}s",
            cfg.cases
        );
    }

    // Phase 2: adversarial mutants (even index structural, odd textual).
    let t1 = Instant::now();
    let bases = Recipe::stream(
        cfg.seed.wrapping_add(1),
        cfg.mutants,
        cfg.max_ops,
        cfg.max_width,
    );
    let indexed: Vec<(usize, &Recipe)> = bases.iter().enumerate().collect();
    let outcomes = triphase_par::par_map(&indexed, |&(i, r)| {
        let mut rng = SplitMix64::new(cfg.seed ^ (0xB0B0_0000 + i as u64));
        let structural = i % 2 == 0;
        let run = catch_unwind(AssertUnwindSafe(|| {
            if structural {
                let mut nl = r.build();
                let desc = mutate_structural(&mut nl, &mut rng);
                (desc, pipeline_outcome(&nl, r.seed))
            } else {
                let text = mutate_text(&verilog::to_verilog(&r.build()), &mut rng);
                let desc = "verilog-corruption".to_string();
                match verilog::from_verilog(&text) {
                    Err(e) => (desc, Err(PipelineReject::Typed(format!("parse: {e}")))),
                    Ok(nl) => (desc, pipeline_outcome(&nl, r.seed)),
                }
            }
        }));
        match run {
            Err(p) => Err((String::new(), panic_detail("fuzz.mutation", p))),
            Ok((desc, Ok(()))) => Ok((desc, None)),
            Ok((desc, Err(PipelineReject::Typed(msg)))) => Ok((desc, Some(msg))),
            Ok((desc, Err(PipelineReject::ToolBug(msg)))) => Err((desc, msg)),
        }
    });
    let mut survived = 0usize;
    let mut typed_errors = 0usize;
    let mut rejections: Vec<String> = Vec::new();
    for ((i, r), out) in indexed.iter().zip(outcomes) {
        match out {
            Ok((_, None)) => survived += 1,
            Ok((desc, Some(msg))) => {
                typed_errors += 1;
                if rejections.len() < 5 {
                    rejections.push(format!("{desc}: {msg}"));
                }
            }
            Err((desc, detail)) => failures.push(Failure {
                phase: "mutation",
                case: *i,
                recipe: format!(
                    "ops {} width {} seed {} mutation {desc}",
                    ops_hex(&r.ops),
                    r.width,
                    r.seed
                ),
                detail,
            }),
        }
    }
    let s1 = t1.elapsed().as_secs_f64();
    if progress {
        eprintln!(
            "[fuzz] mutation: {survived} survived, {typed_errors} typed errors, \
             {} failures in {s1:.1}s",
            failures.iter().filter(|f| f.phase == "mutation").count()
        );
    }

    // Phase 3: sabotage. Draw extra candidates so recipes whose
    // conversion has no swappable cell can be skipped deterministically.
    let t2 = Instant::now();
    let candidates = Recipe::stream(
        cfg.seed.wrapping_add(2),
        cfg.sabotage * 4,
        cfg.max_ops,
        cfg.max_width,
    );
    let mut picks = SplitMix64::new(cfg.seed.wrapping_add(3));
    let runs: Vec<(Recipe, u64)> = candidates
        .into_iter()
        .map(|r| {
            let pick = picks.next_u64();
            (r, pick)
        })
        .filter(|(r, pick)| !matches!(sabotage_case_is_targetless(r, *pick), Some(true)))
        .take(cfg.sabotage)
        .collect();
    let outcomes = triphase_par::par_map(&runs, |(r, pick)| {
        catch_unwind(AssertUnwindSafe(|| sabotage_case(r, *pick)))
            .unwrap_or_else(|p| SabotageOutcome::Error(panic_detail("fuzz.sabotage", p)))
    });
    let mut benign = 0usize;
    let mut detected = 0usize;
    let mut false_proofs = 0usize;
    let mut reproducers: Vec<Reproducer> = Vec::new();
    let mut corpus_entries = 0usize;
    if let Some(dir) = &cfg.corpus_dir {
        let _ = std::fs::create_dir_all(dir);
    }
    for (i, ((r, pick), out)) in runs.iter().zip(outcomes).enumerate() {
        match out {
            SabotageOutcome::NoTarget | SabotageOutcome::Benign => benign += 1,
            SabotageOutcome::Error(detail) => failures.push(Failure {
                phase: "sabotage",
                case: i,
                recipe: format!("ops {} width {} seed {}", ops_hex(&r.ops), r.width, r.seed),
                detail,
            }),
            SabotageOutcome::FalseProof(detail) => {
                false_proofs += 1;
                failures.push(Failure {
                    phase: "sabotage",
                    case: i,
                    recipe: format!("ops {} width {} seed {}", ops_hex(&r.ops), r.width, r.seed),
                    detail,
                });
            }
            SabotageOutcome::Detected { .. } => {
                detected += 1;
                let small = shrink(r, *pick);
                // Re-derive the detection details on the shrunk recipe.
                let SabotageOutcome::Detected {
                    cell,
                    mutation,
                    verdict,
                    mismatch,
                } = sabotage_case(&small, *pick)
                else {
                    unreachable!("shrink preserves detection");
                };
                let mut files = Vec::new();
                if let Some(dir) = &cfg.corpus_dir {
                    if let Ok(Some((pre, mutant, _, _))) = sabotage_pair(&small, *pick) {
                        for (suffix, nl) in [("golden", &pre), ("mutant", &mutant)] {
                            let name = format!("sabotage_{i:03}_{suffix}.v");
                            if std::fs::write(dir.join(&name), verilog::to_verilog(nl)).is_ok() {
                                files.push(name);
                                corpus_entries += 1;
                            }
                        }
                    }
                }
                reproducers.push(Reproducer {
                    case: i,
                    ops_hex: ops_hex(&small.ops),
                    width: small.width,
                    seed: small.seed,
                    ops_before: r.ops.len(),
                    ops_after: small.ops.len(),
                    cell,
                    mutation,
                    verdict,
                    mismatch,
                    files,
                });
            }
        }
    }
    let s2 = t2.elapsed().as_secs_f64();
    if progress {
        eprintln!(
            "[fuzz] sabotage: {detected} detected ({} shrunk reproducers), {benign} benign, \
             {false_proofs} false proofs in {s2:.1}s",
            reproducers.len()
        );
    }

    // Determinism fingerprint over every outcome (timings excluded).
    let mut h = cfg.seed;
    for v in [
        passed,
        survived,
        typed_errors,
        benign,
        detected,
        false_proofs,
    ] {
        mix(&mut h, v as u64);
    }
    for f in &failures {
        mix_str(&mut h, f.phase);
        mix(&mut h, f.case as u64);
        mix_str(&mut h, &f.recipe);
        mix_str(&mut h, &f.detail);
    }
    for r in &rejections {
        mix_str(&mut h, r);
    }
    for r in &reproducers {
        mix(&mut h, r.case as u64);
        mix_str(&mut h, &r.ops_hex);
        mix(&mut h, r.width as u64);
        mix(&mut h, r.seed);
        mix_str(&mut h, &r.cell);
        mix_str(&mut h, &r.mutation);
        mix_str(&mut h, &r.verdict);
        mix_str(&mut h, &r.mismatch);
    }

    CampaignReport {
        config: cfg.clone(),
        passed,
        survived,
        typed_errors,
        rejections,
        benign,
        detected,
        false_proofs,
        failures,
        reproducers,
        corpus_entries,
        seconds: [s0, s1, s2],
        fingerprint: h,
    }
}

/// Cheap targetless pre-check used when selecting sabotage candidates:
/// `Some(true)` when the recipe's conversion definitely has no swappable
/// cell, `Some(false)` when it has one, `None` when the pipeline errors
/// (kept as a run so the error is reported, not silently dropped).
fn sabotage_case_is_targetless(r: &Recipe, pick: u64) -> Option<bool> {
    match sabotage_pair(r, pick) {
        Ok(None) => Some(true),
        Ok(Some(_)) => Some(false),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FuzzConfig {
        FuzzConfig {
            seed: 9,
            cases: 6,
            mutants: 6,
            sabotage: 2,
            max_ops: 8,
            max_width: 4,
            corpus_dir: None,
        }
    }

    #[test]
    fn tiny_campaign_is_deterministic_and_clean() {
        let a = run_campaign(&tiny(), false);
        let b = run_campaign(&tiny(), false);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(a.failures.is_empty(), "{:?}", a.failures);
        assert_eq!(a.false_proofs, 0);
        assert_eq!(a.passed, 6);
    }

    #[test]
    fn sabotage_is_detected_on_some_early_case() {
        // At least one of the first few sabotage candidates must be a
        // genuine, formally-refuted bug — otherwise the campaign's
        // sensitivity claim is vacuous.
        let mut picks = SplitMix64::new(9u64.wrapping_add(3));
        let mut hit = false;
        for r in Recipe::stream(9u64.wrapping_add(2), 8, 8, 4) {
            let pick = picks.next_u64();
            if let SabotageOutcome::Detected { verdict, .. } = sabotage_case(&r, pick) {
                assert_eq!(verdict, "refuted");
                hit = true;
                break;
            }
        }
        assert!(hit, "no sabotage case detected among the first 8");
    }

    #[test]
    fn shrink_preserves_detection_and_reduces_ops() {
        let mut picks = SplitMix64::new(9u64.wrapping_add(3));
        for r in Recipe::stream(9u64.wrapping_add(2), 8, 8, 4) {
            let pick = picks.next_u64();
            if matches!(sabotage_case(&r, pick), SabotageOutcome::Detected { .. }) {
                let small = shrink(&r, pick);
                assert!(small.ops.len() <= r.ops.len());
                assert!(matches!(
                    sabotage_case(&small, pick),
                    SabotageOutcome::Detected { .. }
                ));
                return;
            }
        }
        panic!("no detected case to shrink");
    }

    #[test]
    fn report_json_has_schema_keys_and_roundtrips() {
        let report = run_campaign(&tiny(), false);
        let json = report.to_json();
        for key in [
            "generated_by",
            "commit",
            "config",
            "differential",
            "mutation",
            "sabotage",
            "corpus_entries",
            "fingerprint",
            "certified",
        ] {
            assert!(json.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(
            json.get("generated_by").and_then(Json::as_str),
            Some("fuzz")
        );
        let parsed = Json::parse(&json.to_pretty()).unwrap();
        assert_eq!(parsed, json);
    }

    #[test]
    fn structural_mutants_reject_or_survive_without_panic() {
        // Direct regression for the no-panic contract, independent of the
        // campaign driver.
        for (i, r) in Recipe::stream(77, 12, 8, 4).iter().enumerate() {
            let mut rng = SplitMix64::new(0xDEAD ^ i as u64);
            let mut nl = r.build();
            let desc = mutate_structural(&mut nl, &mut rng);
            let out = catch_unwind(AssertUnwindSafe(|| pipeline_outcome(&nl, r.seed)));
            match out {
                Err(p) => panic!("mutant {desc} panicked: {}", panic_detail("test", p)),
                Ok(Err(PipelineReject::ToolBug(msg))) => panic!("mutant {desc}: {msg}"),
                Ok(_) => {}
            }
        }
    }
}
