//! Shared read-merge-write handle for the machine-readable
//! `results/BENCH_*.json` reports.
//!
//! Every campaign binary (`sim_perf`, `fault_campaign`, `fuzz`, `dfa`)
//! contributes sections to its own report file next to `BENCH_sim.json`.
//! [`ReportFile`] centralizes the convention the binaries used to repeat
//! by hand: anchor the file in the same `results/` directory as
//! [`crate::perf::report_path`] (honoring `TRIPHASE_RESULTS_DIR`), then
//! merge each top-level section while preserving the others, so a quick
//! run refreshes only its own sections and full-campaign rows survive.

use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::perf;

/// Version of the section shapes the campaign binaries write, stamped
/// as a `schema_version` field into every top-level object section (via
/// [`section`]) so downstream consumers of `results/BENCH_*.json` can
/// detect format drift. Bump when any binary changes a section's shape.
pub const SCHEMA_VERSION: u64 = 2;

/// A fresh section object pre-stamped with [`SCHEMA_VERSION`]. The
/// campaign binaries build their top-level sections from this instead
/// of a bare [`Json::obj`].
pub fn section() -> Json {
    let mut o = Json::obj();
    o.set("schema_version", SCHEMA_VERSION.into());
    o
}

/// Handle on one `results/BENCH_*.json` report file.
#[derive(Debug, Clone)]
pub struct ReportFile {
    path: PathBuf,
}

impl ReportFile {
    /// Handle on `results/<file_name>`, anchored exactly like
    /// [`crate::perf::report_path`] (workspace root or the
    /// `TRIPHASE_RESULTS_DIR` override).
    pub fn new(file_name: &str) -> ReportFile {
        ReportFile {
            path: perf::report_path().with_file_name(file_name),
        }
    }

    /// Handle on an explicit path (tests, ad-hoc output directories).
    pub fn at(path: PathBuf) -> ReportFile {
        ReportFile { path }
    }

    /// The file this handle writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Merge `section` into the report: existing top-level keys are
    /// preserved, `section` is inserted or replaced, the file rewritten
    /// pretty-printed (parent directories are created as needed).
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or writing the file.
    pub fn merge(&self, section: &str, value: Json) -> std::io::Result<PathBuf> {
        perf::merge_section_at(&self.path, section, value)
    }

    /// [`ReportFile::merge`], exiting the process with status `1` on I/O
    /// failure — the campaign binaries' shared convention (a report that
    /// cannot be written is a failed run, not a usage error).
    pub fn merge_or_exit(&self, section: &str, value: Json) {
        if let Err(e) = self.merge(section, value) {
            eprintln!("failed to write {}: {e}", self.path.display());
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_anchors_next_to_the_sim_report() {
        let f = ReportFile::new("BENCH_static.json");
        assert_eq!(
            f.path().file_name().and_then(|n| n.to_str()),
            Some("BENCH_static.json")
        );
        assert_eq!(f.path().parent(), perf::report_path().parent());
    }

    #[test]
    fn section_is_stamped_with_the_schema_version() {
        let s = section();
        assert_eq!(
            s.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
    }

    #[test]
    fn merge_preserves_other_sections() {
        let dir = std::env::temp_dir().join(format!("triphase-report-{}", std::process::id()));
        let f = ReportFile::at(dir.join("BENCH_x.json"));
        let mut a = Json::obj();
        a.set("x", 1u64.into());
        f.merge("alpha", a.clone()).unwrap();
        let mut b = Json::obj();
        b.set("y", 2u64.into());
        f.merge("beta", b.clone()).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(f.path()).unwrap()).unwrap();
        assert_eq!(doc.get("alpha"), Some(&a));
        assert_eq!(doc.get("beta"), Some(&b));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
