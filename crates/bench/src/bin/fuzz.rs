//! Differential fuzz campaign CLI: generate, mutate, and sabotage random
//! netlists to cross-check the simulator kernels, the Verilog
//! writer/parser, and the FF → 3-phase conversion + SAT equivalence
//! stack against each other.
//!
//! Three phases (see `triphase_bench::fuzz` for the oracles): generated
//! netlists must pass every cross-check; adversarial mutants must end in
//! a typed error or a valid conversion — never a panic; seeded semantic
//! bugs in the converted design must be caught by the checker, and every
//! caught bug is shrunk and persisted as a golden/mutant Verilog pair
//! under `results/fuzz_corpus/`. Sabotage runs are counted in their own
//! report section, never in the differential pass total.
//!
//! Output: the `fuzz_campaign` section of `results/BENCH_fuzz.json`
//! (read-merge-write, same convention as `BENCH_sim.json` /
//! `BENCH_fault.json`), with seed, config echo, commit id, per-phase
//! timings, and a determinism fingerprint.
//!
//! Usage: `fuzz [--quick] [--seed N]` — `--quick` runs the reduced CI
//! `fuzz-smoke` configuration. Exit codes: `0` = certified, `1` = at
//! least one failure (or a campaign that never detected a seeded bug),
//! `2` = usage error.

use triphase_bench::fuzz::{run_campaign, FuzzConfig};

/// Default master seed (the campaign is deterministic given the seed).
const DEFAULT_SEED: u64 = 0xda7e_2020;

fn main() {
    let mut quick = false;
    let mut seed = DEFAULT_SEED;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = match args.next().map(|v| parse_seed(&v)) {
                    Some(Ok(v)) => v,
                    _ => {
                        eprintln!("usage: fuzz [--quick] [--seed N]");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("usage: fuzz [--quick] [--seed N] (unknown arg {other:?})");
                std::process::exit(2);
            }
        }
    }

    let mut cfg = if quick {
        FuzzConfig::quick(seed)
    } else {
        FuzzConfig::full(seed)
    };
    let out = triphase_bench::report::ReportFile::new("BENCH_fuzz.json");
    cfg.corpus_dir = out.path().parent().map(|p| p.join("fuzz_corpus"));

    let report = run_campaign(&cfg, true);
    out.merge_or_exit("fuzz_campaign", report.to_json());
    println!(
        "fuzz campaign: {}/{} differential, {} typed errors, {} sabotage detected \
         ({} corpus files), {} failures -> {}",
        report.passed,
        report.config.cases,
        report.typed_errors,
        report.detected,
        report.corpus_entries,
        report.failures.len(),
        out.path().display()
    );
    for f in &report.failures {
        eprintln!(
            "FAILURE [{}] case {}: {} ({})",
            f.phase, f.case, f.detail, f.recipe
        );
    }
    std::process::exit(if report.certified() { 0 } else { 1 });
}

/// Parse a decimal or `0x`-prefixed hex seed.
fn parse_seed(text: &str) -> Result<u64, std::num::ParseIntError> {
    match text.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    }
}
