//! Simulation-backend performance report: scalar vs 64-lane packed vs
//! compiled bytecode VM throughput (with a lane-width sweep W=1/2/4/8),
//! thread-scaling of the work-stealing pool, and determinism checks
//! (results must not depend on the thread count, and the compiled VM
//! must fingerprint-match the packed kernel).
//!
//! Writes the `packed_kernel`, `compiled_vm`, and `thread_scaling`
//! sections of `results/BENCH_sim.json` (see `triphase_bench::perf`);
//! other sections of the file are preserved. `--quick` (or
//! `TRIPHASE_SCALE=quick`) runs a reduced configuration.
//!
//! Exit codes (stable): `0` report written, `1` determinism /
//! certification / speedup-floor check or report write failed, `2`
//! internal error (flow/simulation failure).

use triphase_bench::json::Json;
use triphase_bench::microbench::{samples, time_throughput, Measurement};
use triphase_bench::perf::measurement_json;
use triphase_bench::report::{section, ReportFile};
use triphase_circuits::iscas::{generate_iscas, iscas_profiles};
use triphase_core::{assign_phases, extract_ff_graph, gated_clock_style, to_three_phase};
use triphase_ilp::PhaseConfig;
use triphase_netlist::Netlist;
use triphase_par::ThreadPool;
use triphase_sim::{
    run_random, run_random_compiled, run_random_packed, Activity, CompiledAny, LANES,
};

/// Regression floor for compiled-vs-packed per-cycle throughput at the
/// widest lane count on the smoke circuit. Deliberately conservative
/// (the acceptance target is 3×; CI machines are noisy).
const COMPILED_SPEEDUP_FLOOR: f64 = 1.5;

/// Build the s5378 FF design and its converted 3-phase twin — the same
/// pair the `sim_throughput` bench times.
fn build_s5378() -> (Netlist, Netlist) {
    let profile = iscas_profiles()
        .into_iter()
        .find(|p| p.name == "s5378")
        .expect("s5378 profile");
    let mut ff_design = generate_iscas(&profile, 42);
    gated_clock_style(&mut ff_design, 32).expect("clock gating");
    let idx = ff_design.index();
    let graph = extract_ff_graph(&ff_design, &idx).expect("FF graph");
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (latch_design, _) = to_three_phase(&ff_design, &assignment).expect("conversion");
    (ff_design, latch_design)
}

/// FNV-1a over an activity's cycle count and toggle vector: a stable
/// fingerprint for the determinism check.
fn activity_hash(a: &Activity) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(a.cycles);
    for &t in &a.net_toggles {
        mix(t);
    }
    h
}

/// Time scalar vs packed random simulation of `nl` and return the two
/// measurements plus the packed-over-scalar speedup in cycles/sec.
fn kernel_pair(
    label: &str,
    nl: &Netlist,
    cycles: u64,
    n_samples: usize,
) -> (Measurement, Measurement, f64) {
    let scalar = time_throughput(&format!("{label}/scalar"), n_samples, cycles, || {
        run_random(nl, 1, cycles).expect("scalar run").cycles()
    });
    let packed_cycles = cycles * LANES as u64;
    let packed = time_throughput(
        &format!("{label}/packed x{LANES}"),
        n_samples,
        packed_cycles,
        || {
            run_random_packed(nl, 1, cycles, LANES)
                .expect("packed run")
                .activity()
                .cycles
        },
    );
    let speedup = if packed.ns_per_element() > 0.0 {
        scalar.ns_per_element() / packed.ns_per_element()
    } else {
        0.0
    };
    println!("{label:<44} packed speedup {speedup:>7.1}x");
    (scalar, packed, speedup)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("TRIPHASE_SCALE").is_ok_and(|v| v == "quick");
    let cycles: u64 = if quick { 32 } else { 256 };
    let n_samples = samples(5);

    let (ff_design, latch_design) = build_s5378();

    println!("== packed kernel vs scalar (per-lane cycles: {cycles}) ==");
    let mut circuits = Vec::new();
    let mut ff_baseline: Option<(Measurement, Measurement)> = None;
    for (label, nl) in [
        ("s5378/ff_design", &ff_design),
        ("s5378/three_phase", &latch_design),
    ] {
        let (scalar, packed, speedup) = kernel_pair(label, nl, cycles, n_samples);
        let mut rec = Json::obj();
        rec.set("name", label.into());
        rec.set("scalar", measurement_json(&scalar));
        rec.set("packed", measurement_json(&packed));
        rec.set("lanes", LANES.into());
        rec.set("speedup", speedup.into());
        circuits.push(rec);
        if label == "s5378/ff_design" {
            ff_baseline = Some((scalar, packed));
        }
    }
    let (scalar_base, packed_base) = ff_baseline.expect("ff_design measured");
    let mut kernel = section();
    kernel.set("generated_by", "sim_perf".into());
    kernel.set("per_lane_cycles", cycles.into());
    kernel.set("circuits", Json::Arr(circuits));

    // Compiled VM: lane-width sweep W=1/2/4/8 (64..512 streams/pass) on
    // the FF design, per-cycle speedups against both baselines.
    println!("== compiled VM lane sweep (per-lane cycles: {cycles}) ==");
    let mut sweep = Vec::new();
    let mut widest_vs_packed = 0.0f64;
    let mut widest_vs_scalar = 0.0f64;
    for width in [1usize, 2, 4, 8] {
        let lanes = 64 * width;
        let total = cycles * lanes as u64;
        let m = time_throughput(
            &format!("s5378/compiled x{lanes}"),
            n_samples,
            total,
            || {
                run_random_compiled(&ff_design, 1, cycles, lanes)
                    .expect("compiled run")
                    .activity()
                    .cycles
            },
        );
        let vs_scalar = scalar_base.ns_per_element() / m.ns_per_element();
        let vs_packed = packed_base.ns_per_element() / m.ns_per_element();
        println!(
            "compiled W={width} ({lanes:>3} streams)   vs scalar {vs_scalar:>8.1}x   vs packed {vs_packed:>6.2}x"
        );
        let mut rec = Json::obj();
        rec.set("width_words", width.into());
        rec.set("lanes", lanes.into());
        rec.set("compiled", measurement_json(&m));
        rec.set("speedup_vs_scalar", vs_scalar.into());
        rec.set("speedup_vs_packed", vs_packed.into());
        sweep.push(rec);
        if width == 8 {
            widest_vs_packed = vs_packed;
            widest_vs_scalar = vs_scalar;
        }
    }

    // Certification: the compiled VM must fingerprint-match the packed
    // kernel (values feed toggles, so matching toggle vectors over both
    // circuits is a deep trajectory check), and its own wide run must be
    // reproducible.
    let mut certified = true;
    let mut cert_fps = Vec::new();
    for (label, nl) in [
        ("s5378/ff_design", &ff_design),
        ("s5378/three_phase", &latch_design),
    ] {
        let p = activity_hash(
            &run_random_packed(nl, 11, cycles, LANES)
                .expect("packed cert run")
                .activity(),
        );
        let c = activity_hash(
            &run_random_compiled(nl, 11, cycles, LANES)
                .expect("compiled cert run")
                .activity(),
        );
        let w1 = activity_hash(
            &run_random_compiled(nl, 11, cycles, 512)
                .expect("compiled wide run")
                .activity(),
        );
        let w2 = activity_hash(
            &run_random_compiled(nl, 11, cycles, 512)
                .expect("compiled wide rerun")
                .activity(),
        );
        let ok = p == c && w1 == w2;
        certified &= ok;
        println!(
            "certify {label:<22} packed=={}compiled {:016x}  wide deterministic: {}",
            if p == c { "" } else { "!" },
            c,
            w1 == w2
        );
        let mut rec = Json::obj();
        rec.set("name", label.into());
        rec.set("fingerprint_x64", format!("{c:016x}").into());
        rec.set("fingerprint_x512", format!("{w1:016x}").into());
        rec.set("matches_packed", (p == c).into());
        cert_fps.push(rec);
    }

    let stats = CompiledAny::new(&ff_design, 512)
        .expect("compiled build")
        .lower_stats();
    let mut lower = Json::obj();
    lower.set("gates", stats.gates.into());
    lower.set("serial_words", stats.serial_words.into());
    lower.set("const_folded", stats.const_folded.into());
    lower.set("chains_collapsed", stats.chains_collapsed.into());
    lower.set("deduped", stats.deduped.into());
    lower.set("fused_pairs", stats.fused_pairs.into());
    lower.set("levels", stats.levels.into());

    let mut compiled_section = section();
    compiled_section.set("generated_by", "sim_perf".into());
    compiled_section.set("per_lane_cycles", cycles.into());
    compiled_section.set("lane_sweep", Json::Arr(sweep));
    compiled_section.set("certification", Json::Arr(cert_fps));
    compiled_section.set("certified", certified.into());
    compiled_section.set("speedup_floor_vs_packed", COMPILED_SPEEDUP_FLOOR.into());
    compiled_section.set("widest_speedup_vs_packed", widest_vs_packed.into());
    compiled_section.set("widest_speedup_vs_scalar", widest_vs_scalar.into());
    compiled_section.set("lower_stats", lower);

    // Thread scaling: independent packed activity collections fanned out
    // through explicit pools of 1/2/4/8 workers. The fingerprints of the
    // results must match across thread counts (deterministic scheduling-
    // independent output); wall-clock per pool size gives the curve.
    let tasks: u64 = if quick { 4 } else { 16 };
    let task_cycles: u64 = if quick { 8 } else { 32 };
    let seeds: Vec<u64> = (0..tasks).collect();
    println!("== thread scaling ({tasks} tasks, {task_cycles} cycles x {LANES} lanes each) ==");
    let run_tasks = |pool: &ThreadPool| -> Vec<u64> {
        pool.par_map(&seeds, |&seed| {
            let sim = run_random_packed(&ff_design, seed, task_cycles, LANES)
                .expect("thread-scaling run");
            activity_hash(&sim.activity())
        })
    };
    let mut curve = Vec::new();
    let mut baseline: Option<(f64, Vec<u64>)> = None;
    let mut deterministic = true;
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        let t0 = std::time::Instant::now();
        let hashes = run_tasks(&pool);
        let secs = t0.elapsed().as_secs_f64();
        let speedup_vs_1t = match &baseline {
            Some((base, base_hashes)) => {
                if *base_hashes != hashes {
                    deterministic = false;
                }
                if secs > 0.0 {
                    base / secs
                } else {
                    0.0
                }
            }
            None => {
                baseline = Some((secs, hashes.clone()));
                1.0
            }
        };
        println!(
            "threads {threads:>2}  {:>9.3} ms  speedup vs 1t {speedup_vs_1t:>6.2}x",
            secs * 1e3
        );
        let mut point = Json::obj();
        point.set("threads", threads.into());
        point.set("secs", secs.into());
        point.set("speedup_vs_1t", speedup_vs_1t.into());
        curve.push(point);
    }
    let fingerprint = baseline
        .as_ref()
        .map(|(_, hashes)| {
            hashes
                .iter()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, &v| h.rotate_left(7) ^ v)
        })
        .unwrap_or(0);
    println!(
        "deterministic across thread counts: {deterministic}  (fingerprint {fingerprint:016x})"
    );

    let mut scaling = section();
    scaling.set("tasks", tasks.into());
    scaling.set("lanes", LANES.into());
    scaling.set("per_task_cycles", task_cycles.into());
    scaling.set("deterministic", deterministic.into());
    scaling.set("fingerprint", format!("{fingerprint:016x}").into());
    scaling.set("curve", Json::Arr(curve));

    let out = ReportFile::new("BENCH_sim.json");
    let write = |section: &str, value: Json| {
        out.merge_or_exit(section, value);
        println!("wrote section {section:?} -> {}", out.path().display());
    };
    write("packed_kernel", kernel);
    write("compiled_vm", compiled_section);
    write("thread_scaling", scaling);

    if !deterministic {
        eprintln!("error: results varied with thread count");
        std::process::exit(1);
    }
    if !certified {
        eprintln!("error: compiled VM fingerprints diverged from the packed kernel");
        std::process::exit(1);
    }
    if widest_vs_packed < COMPILED_SPEEDUP_FLOOR {
        eprintln!(
            "error: compiled x512 speedup vs packed {widest_vs_packed:.2}x \
             below floor {COMPILED_SPEEDUP_FLOOR}x"
        );
        std::process::exit(1);
    }
}
