//! Regenerates the paper's **Table II**: power dissipation (mW) broken
//! into Clock / Seq / Comb groups for the FF, master-slave, and 3-phase
//! designs, with per-group and total saving percentages (unweighted
//! averages, the paper's convention).

use triphase_bench::{mean, run_suite, Group, Scale};
use triphase_core::FlowReport;
use triphase_power::percent_saving;

struct Row {
    group: Group,
    name: &'static str,
    ff: [f64; 4],
    ms: [f64; 4],
    tp: [f64; 4],
}

fn decompose(r: &triphase_core::VariantResult) -> [f64; 4] {
    [
        r.power.clock.total(),
        r.power.seq.total(),
        r.power.comb.total(),
        r.power.total_mw(),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let reports = run_suite(scale).unwrap_or_else(|e| {
        eprintln!("flow failed: {e}");
        std::process::exit(1);
    });
    let rows: Vec<Row> = reports
        .iter()
        .map(|(b, r): &(_, FlowReport)| Row {
            group: b.group,
            name: b.name,
            ff: decompose(&r.ff),
            ms: decompose(&r.ms),
            tp: decompose(&r.three_phase),
        })
        .collect();

    println!("Table II: Power dissipation (mW), simulation-based");
    println!(
        "{:<8}{:<9} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>7} {:>7}",
        "Group", "Design", "FF.Clk", "FF.Seq", "FF.Cmb", "FF.Tot", "MS.Clk", "MS.Seq", "MS.Cmb",
        "MS.Tot", "3P.Clk", "3P.Seq", "3P.Cmb", "3P.Tot", "Sv%FF", "Sv%MS"
    );
    for row in &rows {
        println!(
            "{:<8}{:<9} | {:>8.4} {:>8.4} {:>8.4} {:>8.4} | {:>8.4} {:>8.4} {:>8.4} {:>8.4} | {:>8.4} {:>8.4} {:>8.4} {:>8.4} | {:>7.1} {:>7.1}",
            row.group.label(),
            row.name,
            row.ff[0], row.ff[1], row.ff[2], row.ff[3],
            row.ms[0], row.ms[1], row.ms[2], row.ms[3],
            row.tp[0], row.tp[1], row.tp[2], row.tp[3],
            percent_saving(row.ff[3], row.tp[3]),
            percent_saving(row.ms[3], row.tp[3]),
        );
    }

    for group in [Some(Group::Iscas), Some(Group::Cep), Some(Group::Cpu), None] {
        let sel: Vec<&Row> = rows
            .iter()
            .filter(|r| group.is_none_or(|g| r.group == g))
            .collect();
        if sel.is_empty() {
            continue;
        }
        let label = group.map_or("Overall", |g| g.label());
        // Per-group average savings, component-wise (the paper's bottom rows).
        let avg = |f: &dyn Fn(&Row) -> f64| mean(&sel.iter().map(|r| f(r)).collect::<Vec<_>>());
        println!(
            "{label} avg savings vs FF : clock {:+6.1}%  seq {:+6.1}%  comb {:+6.1}%  total {:+6.1}%",
            avg(&|r| percent_saving(r.ff[0], r.tp[0])),
            avg(&|r| percent_saving(r.ff[1], r.tp[1])),
            avg(&|r| percent_saving(r.ff[2], r.tp[2])),
            avg(&|r| percent_saving(r.ff[3], r.tp[3])),
        );
        println!(
            "{label} avg savings vs M-S: clock {:+6.1}%  seq {:+6.1}%  comb {:+6.1}%  total {:+6.1}%",
            avg(&|r| percent_saving(r.ms[0], r.tp[0])),
            avg(&|r| percent_saving(r.ms[1], r.tp[1])),
            avg(&|r| percent_saving(r.ms[2], r.tp[2])),
            avg(&|r| percent_saving(r.ms[3], r.tp[3])),
        );
    }
    println!();
    println!(
        "Paper Table II overall: total saving 15.5% vs FF and 18.5% vs M-S \
         (clock 13.8%/27.3%, seq 6.6%/11.0%, comb 15.2%/-3.8%)."
    );
    println!(
        "Note: comb savings vs FF are not reproducible here — the paper attributes \
         them to glitch/hold-buffer reduction, which a cycle-accurate simulator \
         cannot observe (see EXPERIMENTS.md)."
    );
}
