//! Regenerates the paper's §V **runtime discussion**: the ILP is a tiny
//! fraction of the flow (the paper: ≤ 27 s, < 1% overall), while the
//! 3-phase design's place-and-route — three clock trees — dominates the
//! extra runtime (~3× CTS, ~35% more routing, 204%/44% more total runtime
//! vs FF/M-S).

use triphase_bench::{mean, run_suite, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = run_suite(scale).unwrap_or_else(|e| {
        eprintln!("flow failed: {e}");
        std::process::exit(1);
    });
    println!("Flow runtime decomposition (seconds)");
    println!(
        "{:<9} | {:>8} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>8} {:>8}",
        "Design", "ILP", "ILP opt?", "convert", "pnr(FF)", "pnr(M-S)", "pnr(3P)", "3P/FF", "ILP %"
    );
    let mut ratios = Vec::new();
    let mut ilp_fracs = Vec::new();
    for (b, r) in &rows {
        let pnr_ff = r.ff.pnr_seconds;
        let pnr_ms = r.ms.pnr_seconds;
        let pnr_tp = r.three_phase.pnr_seconds;
        let total_3p = r.ilp_seconds + r.convert_seconds + pnr_tp + r.three_phase.sim_seconds;
        let ratio = if pnr_ff > 0.0 { pnr_tp / pnr_ff } else { 0.0 };
        let ilp_frac = if total_3p > 0.0 {
            r.ilp_seconds / total_3p * 100.0
        } else {
            0.0
        };
        println!(
            "{:<9} | {:>8.3} {:>9} {:>9.3} | {:>9.3} {:>9.3} {:>9.3} | {:>8.2} {:>8.2}",
            b.name,
            r.ilp_seconds,
            r.ilp_optimal,
            r.convert_seconds,
            pnr_ff,
            pnr_ms,
            pnr_tp,
            ratio,
            ilp_frac
        );
        ratios.push(ratio);
        ilp_fracs.push(ilp_frac);
    }
    println!();
    println!(
        "Average 3-phase P&R runtime ratio vs FF: {:.2}x (paper: ~3x CTS, +35% routing)",
        mean(&ratios)
    );
    println!(
        "Average ILP share of the 3-phase flow:   {:.2}% (paper: < 1%, max 27 s)",
        mean(&ilp_fracs)
    );
    let max_ilp = rows
        .iter()
        .map(|(_, r)| r.ilp_seconds)
        .fold(0.0f64, f64::max);
    println!("Max ILP solve time across the suite:    {max_ilp:.3} s");
}
