//! Regenerates the paper's §V **runtime discussion**: the ILP is a tiny
//! fraction of the flow (the paper: ≤ 27 s, < 1% overall), while the
//! 3-phase design's place-and-route — three clock trees — dominates the
//! extra runtime (~3× CTS, ~35% more routing, 204%/44% more total runtime
//! vs FF/M-S).

use triphase_bench::json::Json;
use triphase_bench::perf::merge_section;
use triphase_bench::report::section as report_section;
use triphase_bench::{mean, run_suite, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = run_suite(scale).unwrap_or_else(|e| {
        eprintln!("flow failed: {e}");
        std::process::exit(1);
    });
    println!("Flow runtime decomposition (seconds)");
    println!(
        "{:<9} | {:>8} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>8} {:>8}",
        "Design", "ILP", "ILP opt?", "convert", "pnr(FF)", "pnr(M-S)", "pnr(3P)", "3P/FF", "ILP %"
    );
    let mut ratios = Vec::new();
    let mut ilp_fracs = Vec::new();
    for (b, r) in &rows {
        let pnr_ff = r.ff.pnr_seconds;
        let pnr_ms = r.ms.pnr_seconds;
        let pnr_tp = r.three_phase.pnr_seconds;
        let total_3p = r.ilp_seconds + r.convert_seconds + pnr_tp + r.three_phase.sim_seconds;
        let ratio = if pnr_ff > 0.0 { pnr_tp / pnr_ff } else { 0.0 };
        let ilp_frac = if total_3p > 0.0 {
            r.ilp_seconds / total_3p * 100.0
        } else {
            0.0
        };
        println!(
            "{:<9} | {:>8.3} {:>9} {:>9.3} | {:>9.3} {:>9.3} {:>9.3} | {:>8.2} {:>8.2}",
            b.name,
            r.ilp_seconds,
            r.ilp_optimal,
            r.convert_seconds,
            pnr_ff,
            pnr_ms,
            pnr_tp,
            ratio,
            ilp_frac
        );
        ratios.push(ratio);
        ilp_fracs.push(ilp_frac);
    }
    println!();
    println!(
        "Average 3-phase P&R runtime ratio vs FF: {:.2}x (paper: ~3x CTS, +35% routing)",
        mean(&ratios)
    );
    println!(
        "Average ILP share of the 3-phase flow:   {:.2}% (paper: < 1%, max 27 s)",
        mean(&ilp_fracs)
    );
    let max_ilp = rows
        .iter()
        .map(|(_, r)| r.ilp_seconds)
        .fold(0.0f64, f64::max);
    println!("Max ILP solve time across the suite:    {max_ilp:.3} s");

    // Machine-readable mirror of the table above, merged into the shared
    // perf report next to the packed-kernel sections from `sim_perf`.
    let mut benchmarks = Vec::new();
    for (b, r) in &rows {
        let mut rec = Json::obj();
        rec.set("name", b.name.into());
        rec.set("ilp_seconds", r.ilp_seconds.into());
        rec.set("ilp_optimal", r.ilp_optimal.into());
        rec.set("convert_seconds", r.convert_seconds.into());
        rec.set("pnr_ff_seconds", r.ff.pnr_seconds.into());
        rec.set("pnr_ms_seconds", r.ms.pnr_seconds.into());
        rec.set("pnr_3p_seconds", r.three_phase.pnr_seconds.into());
        rec.set("sim_ff_seconds", r.ff.sim_seconds.into());
        rec.set("sim_ms_seconds", r.ms.sim_seconds.into());
        rec.set("sim_3p_seconds", r.three_phase.sim_seconds.into());
        benchmarks.push(rec);
    }
    let mut section = report_section();
    section.set("generated_by", "runtime_report".into());
    section.set(
        "scale",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
        .into(),
    );
    section.set("pnr_3p_over_ff_avg", mean(&ratios).into());
    section.set("ilp_share_pct_avg", mean(&ilp_fracs).into());
    section.set("ilp_seconds_max", max_ilp.into());
    section.set("benchmarks", Json::Arr(benchmarks));
    match merge_section("flow_runtime", section) {
        Ok(path) => println!("wrote section \"flow_runtime\" -> {}", path.display()),
        Err(e) => {
            eprintln!("flow runtime report not written: {e}");
            std::process::exit(1);
        }
    }
}
