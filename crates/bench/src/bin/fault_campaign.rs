//! Fault-injection campaign: certifies that the flow degrades, never
//! crashes.
//!
//! Sweeps a set of injected faults over the benchmark suite — ILP
//! node/time-budget exhaustion, solver numeric instability, empty
//! simulation activity, task panics inside the parallel variant
//! evaluation, and adversarially malformed netlists — and certifies that
//! every single run ends in either a **typed error** or a
//! **degraded-but-valid result** (fallback rung recorded, equivalence
//! still proven). A panic escaping the flow, a wrong success, or a solver
//! blowing through its wall-clock deadline is a certification violation.
//!
//! Also certifies the deadline contract directly: a dense synthetic phase
//! problem solved under a tight `time_limit` must return within the
//! budget ±10%.
//!
//! Output: `results/BENCH_fault.json` (section per benchmark, scenario
//! rows with outcome/detail/seconds). Exit codes: `0` = all certified,
//! `1` = at least one violation, `2` = usage error.
//!
//! Usage: `fault_campaign [--quick]` — `--quick` sweeps a 3-benchmark
//! subset (the CI `fault-smoke` job); the default sweeps all 18 rows.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};
use triphase_bench::json::Json;
use triphase_bench::{benchmarks, Benchmark, Scale};
use triphase_cells::Library;
use triphase_core::{Error, FlowReport};
use triphase_fault::{Fault, FaultPlan};
use triphase_ilp::{PhaseConfig, PhaseProblem, SolveRung};

/// One injected-fault scenario.
#[derive(Clone, Copy)]
enum Scenario {
    /// No fault: the control row (must succeed with proven equivalence).
    Baseline,
    /// `max_nodes = 0`: the exact solver must degrade in place.
    IlpNodeBudget,
    /// `time_limit = 0`: the exact solver must degrade in place.
    IlpTimeBudget,
    /// Numeric fault in every solver rung that honors one: the chain
    /// must fall back to the greedy rung.
    IlpNumeric,
    /// Zero-cycle activity: downstream consumers must fail typed.
    SimEmpty,
    /// Panic inside the 3-phase variant evaluation task.
    TaskPanic,
    /// Input netlist with its clock specification stripped.
    NetlistNoClock,
    /// Input netlist with a net deleted (dangling pins).
    NetlistDangling,
}

const SCENARIOS: [Scenario; 8] = [
    Scenario::Baseline,
    Scenario::IlpNodeBudget,
    Scenario::IlpTimeBudget,
    Scenario::IlpNumeric,
    Scenario::SimEmpty,
    Scenario::TaskPanic,
    Scenario::NetlistNoClock,
    Scenario::NetlistDangling,
];

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::IlpNodeBudget => "ilp-node-budget",
            Scenario::IlpTimeBudget => "ilp-time-budget",
            Scenario::IlpNumeric => "ilp-numeric",
            Scenario::SimEmpty => "sim-empty",
            Scenario::TaskPanic => "task-panic",
            Scenario::NetlistNoClock => "netlist-no-clock",
            Scenario::NetlistDangling => "netlist-dangling",
        }
    }
}

/// Outcome classification of one scenario run.
struct RunOutcome {
    outcome: &'static str,
    detail: String,
    certified: bool,
    seconds: f64,
}

fn classify(
    scenario: Scenario,
    result: Result<triphase_core::Result<FlowReport>, String>,
) -> (&'static str, String, bool) {
    let flow = match result {
        // A panic escaped the flow: always a violation, for every scenario.
        Err(msg) => return ("panic-escaped", msg, false),
        Ok(flow) => flow,
    };
    match scenario {
        Scenario::Baseline => match flow {
            Ok(r) => {
                // The default DfaPolicy::Warn collects the semantic
                // checkpoints in the report; an empty list means they
                // silently did not run — a certification violation.
                let ok = r.equiv_3p == Some(true) && r.equiv_ms == Some(true) && !r.dfa.is_empty();
                (
                    "ok",
                    format!("rung {} status {}", r.ilp_rung, r.ilp_status.name()),
                    ok,
                )
            }
            Err(e) => ("typed-error", e.to_string(), false),
        },
        Scenario::IlpNodeBudget | Scenario::IlpTimeBudget => match flow {
            // Budget exhaustion must degrade in place: the flow succeeds,
            // the report carries a distinguishable limit status (or the
            // instance was trivially closed before the budget mattered),
            // and the degraded design still proves equivalent.
            Ok(r) => {
                let budget_visible = r.ilp_status.is_limit() || r.ilp_optimal;
                let valid = r.equiv_3p == Some(true);
                (
                    if r.ilp_optimal { "ok" } else { "degraded" },
                    format!(
                        "rung {} status {} cost {}",
                        r.ilp_rung,
                        r.ilp_status.name(),
                        r.ilp_cost
                    ),
                    budget_visible && valid,
                )
            }
            Err(e) => ("typed-error", e.to_string(), false),
        },
        Scenario::IlpNumeric => match flow {
            Ok(r) => (
                "degraded",
                format!(
                    "rung {} status {} fallbacks {}",
                    r.ilp_rung,
                    r.ilp_status.name(),
                    r.ilp_fallbacks
                ),
                r.ilp_rung == SolveRung::Greedy && r.ilp_fallbacks > 0 && r.equiv_3p == Some(true),
            ),
            Err(e) => ("typed-error", e.to_string(), false),
        },
        Scenario::SimEmpty => match flow {
            Ok(_) => ("ok", "zero-cycle activity silently accepted".into(), false),
            Err(e @ (Error::Sim(_) | Error::Power(_))) => ("typed-error", e.to_string(), true),
            Err(e) => ("typed-error", format!("wrong error class: {e}"), false),
        },
        Scenario::TaskPanic => match flow {
            Ok(_) => ("ok", "injected panic did not surface".into(), false),
            Err(e @ Error::Panic(_)) => ("typed-error", e.to_string(), true),
            Err(e) => ("typed-error", format!("wrong error class: {e}"), false),
        },
        Scenario::NetlistNoClock => match flow {
            Ok(_) => ("ok", "clockless netlist accepted".into(), false),
            Err(e @ Error::BadInput(_)) => ("typed-error", e.to_string(), true),
            Err(e) => ("typed-error", format!("wrong error class: {e}"), false),
        },
        Scenario::NetlistDangling => match flow {
            Ok(_) => ("ok", "dangling netlist accepted".into(), false),
            Err(e @ Error::Netlist(_)) => ("typed-error", e.to_string(), true),
            Err(e) => ("typed-error", format!("wrong error class: {e}"), false),
        },
    }
}

fn run_scenario(b: &Benchmark, lib: &Library, scale: Scale, scenario: Scenario) -> RunOutcome {
    let mut nl = b.build();
    let mut cfg = b.flow_config(scale);
    match scenario {
        Scenario::Baseline => {}
        Scenario::IlpNodeBudget => cfg.phase_cfg.max_nodes = 0,
        Scenario::IlpTimeBudget => cfg.phase_cfg.time_limit = Some(Duration::ZERO),
        Scenario::IlpNumeric => {
            cfg.phase_cfg.hook = Some(
                FaultPlan::new(b.seed())
                    .inject("phase.", Fault::Numeric)
                    .shared(),
            );
        }
        Scenario::SimEmpty => {
            cfg.fault = Some(
                FaultPlan::new(b.seed())
                    .inject("flow.drive", Fault::EmptyActivity)
                    .shared(),
            );
        }
        Scenario::TaskPanic => {
            cfg.fault = Some(
                FaultPlan::new(b.seed())
                    .inject("flow.variant.3p", Fault::Panic)
                    .shared(),
            );
        }
        Scenario::NetlistNoClock => nl.clock = None,
        Scenario::NetlistDangling => {
            let first = nl.nets().next().map(|(id, _)| id);
            if let Some(id) = first {
                nl.remove_net(id);
            }
        }
    }
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        b.run_netlist_with_config(&nl, lib, &cfg)
    }))
    .map_err(|payload| {
        Error::from_panic(&format!("{} {}", b.name, scenario.name()), payload).to_string()
    });
    let seconds = t0.elapsed().as_secs_f64();
    let (outcome, detail, certified) = classify(scenario, result);
    RunOutcome {
        outcome,
        detail,
        certified,
        seconds,
    }
}

/// Certify the solver deadline contract on a dense synthetic instance:
/// `solve_chain` under `time_limit` must return within budget +10%.
fn certify_deadline() -> (Json, bool) {
    // Dense pseudo-random fan-out graph, big enough that an unbudgeted
    // exact solve would run far past the deadline.
    let n = 2_000;
    let mut p = PhaseProblem::new(n);
    let mut s = 0x2545_f491_4f6c_dd1du64;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for u in 0..n {
        for _ in 0..6 {
            p.add_fanout(u, (rng() as usize) % n);
        }
    }
    let budget = Duration::from_millis(250);
    let cfg = PhaseConfig {
        time_limit: Some(budget),
        ..PhaseConfig::default()
    };
    let t0 = Instant::now();
    let outcome = p.solve_chain(&cfg);
    let elapsed = t0.elapsed();
    // ±10% of the budget, plus a small absolute allowance for scheduler
    // noise on loaded CI machines.
    let cap = budget.mul_f64(1.10) + Duration::from_millis(25);
    let ok = elapsed <= cap;
    let mut row = triphase_bench::report::section();
    row.set("budget_ms", Json::Num(budget.as_secs_f64() * 1e3));
    row.set("elapsed_ms", Json::Num(elapsed.as_secs_f64() * 1e3));
    row.set("cap_ms", Json::Num(cap.as_secs_f64() * 1e3));
    row.set("status", Json::Str(outcome.status.name().into()));
    row.set("rung", Json::Str(outcome.rung.name().into()));
    row.set("certified", Json::Bool(ok));
    (row, ok)
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("usage: fault_campaign [--quick] (unknown arg {other:?})");
                std::process::exit(2);
            }
        }
    }
    // Injected panics are expected and contained; keep them out of the
    // log so a real (escaped) panic stands out.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("injected fault:"));
        if !injected {
            default_hook(info);
        }
    }));

    let scale = if quick { Scale::Quick } else { Scale::Full };
    // The quick sweep is the CI smoke subset: one row per table section.
    let rows: Vec<Benchmark> = if quick {
        benchmarks()
            .into_iter()
            .filter(|b| matches!(b.name, "s1488" | "SHA256" | "ArmM0"))
            .collect()
    } else {
        benchmarks()
    };

    let lib = Library::synthetic_28nm();
    let mut sections: Vec<(&str, Json)> = Vec::new();
    let mut violations = 0usize;
    let total = rows.len() * SCENARIOS.len();
    let mut done = 0usize;
    for b in &rows {
        let mut scenarios = Vec::new();
        for scenario in SCENARIOS {
            let r = run_scenario(b, &lib, scale, scenario);
            done += 1;
            eprintln!(
                "[{done:>3}/{total}] {:>8} {:<16} {:<12} {:5.1}s {} {}",
                b.name,
                scenario.name(),
                r.outcome,
                r.seconds,
                if r.certified {
                    "certified"
                } else {
                    "VIOLATION"
                },
                r.detail
            );
            if !r.certified {
                violations += 1;
            }
            let mut row = Json::obj();
            row.set("fault", Json::Str(scenario.name().into()));
            row.set("outcome", Json::Str(r.outcome.into()));
            row.set("detail", Json::Str(r.detail));
            row.set("seconds", Json::Num(r.seconds));
            row.set("certified", Json::Bool(r.certified));
            scenarios.push(row);
        }
        let mut section = triphase_bench::report::section();
        section.set("group", Json::Str(b.group.label().into()));
        section.set(
            "certified",
            Json::Bool(
                scenarios
                    .iter()
                    .all(|s| s.get("certified") == Some(&Json::Bool(true))),
            ),
        );
        section.set("scenarios", Json::Arr(scenarios));
        sections.push((b.name, section));
    }

    let (deadline, deadline_ok) = certify_deadline();
    eprintln!(
        "deadline contract: {}",
        if deadline_ok {
            "certified"
        } else {
            "VIOLATION"
        }
    );
    if !deadline_ok {
        violations += 1;
    }
    sections.push(("deadline", deadline));
    sections.push(("violations", Json::Num(violations as f64)));

    // Read-merge-write (same convention as BENCH_sim.json): a quick run
    // refreshes only its own benchmark sections, leaving full-campaign
    // rows from other runs intact.
    let out = triphase_bench::report::ReportFile::new("BENCH_fault.json");
    for (key, value) in sections {
        out.merge_or_exit(key, value);
    }
    println!(
        "fault campaign: {} runs, {} violations -> {}",
        total + 1,
        violations,
        out.path().display()
    );
    std::process::exit(if violations == 0 { 0 } else { 1 });
}
