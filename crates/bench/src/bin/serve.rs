//! Conversion-as-a-service daemon: bind, print the address, serve until
//! a client sends `{"kind": "shutdown"}`.
//!
//! ```text
//! serve                       # bind 127.0.0.1:0 (ephemeral), serve
//! serve --addr 0.0.0.0:7070   # explicit bind address
//! serve --workers 4           # runner threads (default: CPU count)
//! serve --memo-capacity 8192  # cache entries per tier
//! serve --memo-bytes 1000000  # cache byte budget per tier
//! serve --max-frame 16777216  # per-frame payload cap (bytes)
//! serve --queue-depth 64      # admission bound: queued jobs
//! serve --queue-bytes 1000000 # admission bound: queued netlist bytes
//! serve --journal PATH        # durable job journal (resume on restart)
//! ```
//!
//! The bound address is printed to stdout as `listening <addr>` so
//! scripts (and the load generator) can discover the ephemeral port.
//!
//! Exit codes (stable): `0` clean shutdown, `1` bind failure, `2` usage
//! error. `--quick` is accepted for the suite-wide convention but has no
//! effect on a daemon.

use std::process::ExitCode;
use triphase_serve::{Server, ServerOptions};

struct Options {
    serve: ServerOptions,
}

fn parse_args() -> Result<Options, String> {
    let mut serve = ServerOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--addr" => serve.addr = value("--addr")?,
            "--workers" => {
                serve.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers requires an integer".to_owned())?;
            }
            "--memo-capacity" => {
                serve.memo_capacity = value("--memo-capacity")?
                    .parse()
                    .map_err(|_| "--memo-capacity requires an integer".to_owned())?;
            }
            "--memo-bytes" => {
                serve.memo_bytes = value("--memo-bytes")?
                    .parse()
                    .map_err(|_| "--memo-bytes requires an integer".to_owned())?;
            }
            "--max-frame" => {
                serve.max_frame = value("--max-frame")?
                    .parse()
                    .map_err(|_| "--max-frame requires an integer".to_owned())?;
            }
            "--queue-depth" => {
                serve.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth requires an integer".to_owned())?;
            }
            "--queue-bytes" => {
                serve.queue_bytes = value("--queue-bytes")?
                    .parse()
                    .map_err(|_| "--queue-bytes requires an integer".to_owned())?;
            }
            "--journal" => {
                serve.journal = Some(value("--journal")?.into());
            }
            "--quick" => {}
            "--help" | "-h" => {
                return Err(
                    "usage: serve [--addr HOST:PORT] [--workers N] [--memo-capacity N] \
                     [--memo-bytes BYTES] [--max-frame BYTES] [--queue-depth N] \
                     [--queue-bytes BYTES] [--journal PATH]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Options { serve })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::start(opts.serve) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::from(1);
        }
    };
    if server.resumed_jobs() > 0 {
        eprintln!("resumed {} journaled jobs", server.resumed_jobs());
    }
    println!("listening {}", server.addr());
    let (stage, report) = server.wait();
    eprintln!(
        "shutdown: stage cache {}/{} hit, report cache {}/{} hit",
        stage.hits,
        stage.hits + stage.misses,
        report.hits,
        report.hits + report.misses
    );
    ExitCode::SUCCESS
}
