//! Semantic static-analysis CLI: run the `triphase-dfa` analyses — the
//! same four checkpoints the flow runs — over the registered benchmark
//! generators.
//!
//! ```text
//! dfa                 # analyze every registered benchmark (summary)
//! dfa s5378           # analyze one benchmark by name
//! dfa --json [...]    # print machine-readable JSON reports
//! dfa --quick         # restrict to the quick suite
//! dfa --certify       # golden sweep + seeded defects -> results/BENCH_static.json
//! ```
//!
//! Per benchmark the netlist is converted exactly like the flow's front
//! end (gated-clock style, compact, phase assignment, 3-phase conversion)
//! and four reports run: `const` on the FF design, then `const`, `reset`
//! (preservation against the FF design), and `race` on the converted
//! design.
//!
//! `--certify` additionally checks the detectors themselves: every golden
//! benchmark must report zero warning/error findings, and three seeded
//! defects — a clock gate tied dead (`D102`), a register losing its
//! reset initialization (`D201`), and a same-phase min-delay race
//! (`D301`/`D302`) — must each be detected. The outcome is merged into
//! `results/BENCH_static.json` (`golden`, `seeded`, `summary` sections).
//!
//! Exit codes (stable): `0` all reports clean / certification passed,
//! `1` findings reported or certification failed, `2` usage error.

use std::process::ExitCode;
use triphase_bench::json::Json;
use triphase_bench::report::{section, ReportFile};
use triphase_bench::{benchmarks, quick_benchmarks, Benchmark};
use triphase_cells::{CellKind, Library};
use triphase_core::{
    assign_phases, extract_ff_graph, gated_clock_style, retime_three_phase, to_three_phase,
};
use triphase_dfa::{const_report, race_report, reset_report, DfaReport, DEFAULT_RESET_CYCLES};
use triphase_ilp::PhaseConfig;
use triphase_lint::Severity;
use triphase_netlist::{Builder, ClockSpec, Netlist};

struct Options {
    json: bool,
    quick: bool,
    certify: bool,
    names: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        quick: false,
        certify: false,
        names: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--quick" => opts.quick = true,
            "--certify" => opts.certify = true,
            "--help" | "-h" => {
                return Err("usage: dfa [--json] [--quick] [--certify] [NAME...]".to_owned())
            }
            name if name.starts_with('-') => return Err(format!("unknown flag {name:?}")),
            name => opts.names.push(name.to_owned()),
        }
    }
    Ok(opts)
}

/// The flow's preprocessing + conversion, in lockstep with the `lint` and
/// `equiv` bins: gated-clock style, compact, phase assignment, 3-phase
/// conversion. Returns the FF design and its converted twin.
fn convert(nl: &Netlist) -> Result<(Netlist, Netlist), String> {
    let mut pre = nl.clone();
    gated_clock_style(&mut pre, 32).map_err(|e| e.to_string())?;
    let pre = pre.compact();
    let idx = pre.index();
    let graph = extract_ff_graph(&pre, &idx).map_err(|e| e.to_string())?;
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (tp, _) = to_three_phase(&pre, &assignment).map_err(|e| e.to_string())?;
    Ok((pre, tp))
}

/// The four checkpoint analyses the flow runs, standalone. The race
/// analysis runs on the *retimed* netlist, like the flow's post-retiming
/// checkpoint: retiming balances the half-stages, so borrow chains on the
/// raw conversion (where a whole FF stage's logic sits in one half) would
/// report divergence the real flow never ships.
fn analyze(pre: &Netlist, tp: &Netlist, lib: &Library) -> Result<Vec<DfaReport>, String> {
    let e = |err: triphase_dfa::Error| err.to_string();
    let pre_idx = pre.index();
    let tp_idx = tp.index();
    let (rt, _) = retime_three_phase(tp, lib, 0.5).map_err(|err| err.to_string())?;
    Ok(vec![
        const_report(pre, &pre_idx, Some("preprocess")).map_err(e)?,
        const_report(tp, &tp_idx, Some("convert")).map_err(e)?,
        reset_report(pre, tp, DEFAULT_RESET_CYCLES, Some("convert")).map_err(e)?,
        race_report(&rt, lib, &rt.index(), Some("retime")).map_err(e)?,
    ])
}

/// Severity-count record for one report.
fn counts_json(r: &DfaReport) -> Json {
    let mut c = Json::obj();
    c.set("errors", r.count(Severity::Error).into());
    c.set("warnings", r.count(Severity::Warn).into());
    c.set("infos", r.count(Severity::Info).into());
    c
}

/// Self-contained 2-bit counter used as the reset-seeding victim: its
/// state loop never depends on inputs, so everything is reset-defined.
fn counter2() -> Netlist {
    let mut nl = Netlist::new("cnt2");
    let mut b = Builder::new(&mut nl, "u");
    let (ckp, ck) = b.netlist().add_input("ck");
    let q0 = b.net("q0");
    let q1 = b.net("q1");
    let n0 = b.not(q0);
    let t1 = b.gate(CellKind::Xor(2), &[q1, q0]);
    b.netlist().add_cell("b0", CellKind::Dff, vec![n0, ck, q0]);
    b.netlist().add_cell("b1", CellKind::Dff, vec![t1, ck, q1]);
    b.netlist().add_output("c0", q0);
    b.netlist().add_output("c1", q1);
    nl.clock = Some(ClockSpec::single(ckp, 1000.0));
    nl
}

/// Seeded defect 1 — stuck clock-gate enable: convert a real gated
/// benchmark, then tie one ICG's enable to constant 0. The `const`
/// analysis must report `D102` (gate never enabled).
fn seed_stuck_enable(suite: &[Benchmark]) -> Result<DfaReport, String> {
    for b in suite {
        let (_, tp) = convert(&b.build())?;
        let Some((icg, en_pin)) = tp
            .cells()
            .find(|(_, c)| c.kind.is_clock_gate())
            .and_then(|(id, c)| c.kind.enable_pin().map(|p| (id, p)))
        else {
            continue;
        };
        let mut bad = tp.clone();
        let zero = {
            let mut bld = Builder::new(&mut bad, "dfa_seed");
            bld.net("zero")
        };
        bad.add_cell("dfa_seed_tie0", CellKind::Const0, vec![zero]);
        bad.set_pin(icg, en_pin, zero);
        return const_report(&bad, &bad.index(), Some("seeded")).map_err(|e| e.to_string());
    }
    Err("no converted benchmark carries a clock gate".to_owned())
}

/// Seeded defect 2 — lost reset initialization: convert the counter, then
/// XOR a fresh primary input into one converted register's data pin. The
/// `reset` analysis must report `D201` (state X-reachable after
/// conversion) against the FF source.
fn seed_reset_loss() -> Result<DfaReport, String> {
    let (pre, tp) = convert(&counter2())?;
    let mut bad = tp.clone();
    let victim = bad
        .cells()
        .find(|(_, c)| c.kind.is_storage() && c.name == "b1")
        .map(|(id, c)| (id, c.kind.data_pin()))
        .ok_or("converted counter lost register b1")?;
    let (victim, Some(d_pin)) = victim else {
        return Err("register b1 has no data pin".to_owned());
    };
    let old_d = bad.cell(victim).pin(d_pin);
    let mixed = {
        let mut bld = Builder::new(&mut bad, "dfa_seed");
        let (_, noise) = bld.netlist().add_input("noise");
        bld.gate(CellKind::Xor(2), &[old_d, noise])
    };
    bad.set_pin(victim, d_pin, mixed);
    reset_report(&pre, &bad, DEFAULT_RESET_CYCLES, Some("seeded")).map_err(|e| e.to_string())
}

/// Seeded defect 3 — min-delay race: two transparent-high latches on the
/// same phase, one inverter apart. The `race` analysis must report
/// `D301` (min-delay race) and/or `D302` (co-transparent pair).
fn seed_race(lib: &Library) -> Result<DfaReport, String> {
    let mut nl = Netlist::new("seeded_race");
    let mut b = Builder::new(&mut nl, "u");
    let (p1, c1) = b.netlist().add_input("p1");
    let (p2, _c2) = b.netlist().add_input("p2");
    let (_, d) = b.netlist().add_input("d");
    let q0 = b.net("q0");
    let q1 = b.net("q1");
    b.netlist()
        .add_cell("l0", CellKind::LatchH, vec![d, c1, q0]);
    let x = b.not(q0);
    b.netlist()
        .add_cell("l1", CellKind::LatchH, vec![x, c1, q1]);
    b.netlist().add_output("q", q1);
    nl.clock = Some(ClockSpec::equal_phases(&[p1, p2], 1000.0));
    race_report(&nl, lib, &nl.index(), Some("seeded")).map_err(|e| e.to_string())
}

/// Golden sweep + seeded-defect detection, merged into
/// `results/BENCH_static.json`. Returns `true` when certification passed.
fn certify(suite: &[Benchmark], lib: &Library) -> Result<bool, String> {
    let rows = triphase_par::par_map(&suite.iter().collect::<Vec<_>>(), |b| {
        let t0 = std::time::Instant::now();
        let result = convert(&b.build()).and_then(|(pre, tp)| analyze(&pre, &tp, lib));
        match &result {
            Ok(reports) => eprintln!(
                "[golden] {:>8} ... {} finding(s) in {:.1}s",
                b.name,
                reports.iter().map(|r| r.findings()).sum::<usize>(),
                t0.elapsed().as_secs_f64()
            ),
            Err(e) => eprintln!("[golden] {:>8} ... FAILED: {e}", b.name),
        }
        result
    });

    let mut golden = section();
    let mut golden_clean = true;
    let mut golden_failures = Vec::new();
    for (b, result) in suite.iter().zip(rows) {
        match result {
            Ok(reports) => {
                let mut row = Json::obj();
                for r in &reports {
                    let key = format!("{}_{}", r.analysis, r.stage.as_deref().unwrap_or("-"));
                    row.set(&key, counts_json(r));
                    if r.findings() > 0 {
                        golden_clean = false;
                        eprintln!("golden finding on {}:\n{r}", b.name);
                    }
                }
                row.set("clean", reports.iter().all(|r| r.findings() == 0).into());
                golden.set(b.name, row);
            }
            Err(e) => {
                golden_clean = false;
                golden_failures.push(format!("{}: {e}", b.name));
            }
        }
    }

    let seeded_cases: Vec<(&str, Vec<&str>, Result<DfaReport, String>)> = vec![
        ("stuck_enable", vec!["D102"], seed_stuck_enable(suite)),
        ("reset_init_lost", vec!["D201"], seed_reset_loss()),
        ("min_delay_race", vec!["D301", "D302"], seed_race(lib)),
    ];
    let mut seeded = section();
    let mut seeded_detected = 0usize;
    for (name, codes, result) in &seeded_cases {
        let mut row = Json::obj();
        row.set(
            "expected",
            Json::Arr(codes.iter().map(|&c| c.into()).collect()),
        );
        let detected = match result {
            Ok(r) => {
                let hit: Vec<&str> = codes.iter().copied().filter(|c| r.has(c)).collect();
                row.set(
                    "reported",
                    Json::Arr(hit.iter().map(|&c| c.into()).collect()),
                );
                !hit.is_empty()
            }
            Err(e) => {
                row.set("error", e.as_str().into());
                false
            }
        };
        row.set("detected", detected.into());
        seeded_detected += usize::from(detected);
        eprintln!(
            "[seeded] {name:>16} ... {}",
            if detected { "detected" } else { "MISSED" }
        );
        seeded.set(name, row);
    }

    let certified = golden_clean && seeded_detected == seeded_cases.len();
    let mut summary = section();
    summary.set("benchmarks", suite.len().into());
    summary.set("golden_clean", golden_clean.into());
    summary.set("seeded_total", seeded_cases.len().into());
    summary.set("seeded_detected", seeded_detected.into());
    summary.set("certified", certified.into());
    if !golden_failures.is_empty() {
        summary.set(
            "failures",
            Json::Arr(golden_failures.iter().map(|f| f.as_str().into()).collect()),
        );
    }

    let out = ReportFile::new("BENCH_static.json");
    out.merge_or_exit("golden", golden);
    out.merge_or_exit("seeded", seeded);
    out.merge_or_exit("summary", summary);
    println!(
        "static analysis: {} benchmarks, golden {}, seeded {}/{} -> {}",
        suite.len(),
        if golden_clean { "clean" } else { "DIRTY" },
        seeded_detected,
        seeded_cases.len(),
        out.path().display()
    );
    Ok(certified)
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    let lib = Library::synthetic_28nm();
    let all = if opts.quick {
        quick_benchmarks()
    } else {
        benchmarks()
    };
    let selected: Vec<Benchmark> = if opts.names.is_empty() {
        all
    } else {
        opts.names
            .iter()
            .map(|n| {
                all.iter().find(|b| b.name == n).cloned().ok_or_else(|| {
                    let known: Vec<_> = all.iter().map(|b| b.name).collect();
                    format!("unknown benchmark {n:?}; known: {known:?}")
                })
            })
            .collect::<Result<_, String>>()?
    };

    if opts.certify {
        return certify(&selected, &lib);
    }

    // Fan the per-benchmark analyses out and print in registry order.
    let results = triphase_par::par_map(&selected, |b| {
        let (pre, tp) = convert(&b.build())?;
        let reports = analyze(&pre, &tp, &lib)?;
        let mut text = String::new();
        for r in &reports {
            if opts.json {
                text.push_str(&r.to_json());
                text.push('\n');
            } else {
                text.push_str(&r.to_string());
            }
        }
        Ok::<_, String>((reports, text))
    });
    let mut clean = true;
    for r in results {
        let (reports, text) = r?;
        print!("{text}");
        clean &= reports.iter().all(|r| r.findings() == 0);
    }
    Ok(clean)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
