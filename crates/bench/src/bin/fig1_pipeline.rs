//! Regenerates the paper's **Fig. 1** claim: converting a linear FF
//! pipeline to 3-phase adds exactly one extra latch stage for every other
//! original pipeline stage — the provable minimum under constraints
//! C1–C3. Sweeps the stage count and compares the ILP result against the
//! closed form.

use triphase_cells::Library;
use triphase_circuits::pipeline::linear_pipeline;
use triphase_core::{assign_phases, extract_ff_graph, to_three_phase};
use triphase_ilp::PhaseConfig;

fn main() {
    let lib = Library::synthetic_28nm();
    println!("Fig. 1: linear pipeline conversion (width 8, depth 1)");
    println!(
        "{:>7} {:>8} {:>9} {:>10} {:>10} {:>12} {:>10}",
        "stages", "FFs", "3P regs", "M-S regs", "p2 groups", "min p2 (thy)", "optimal?"
    );
    let width = 8;
    for stages in 2..=12usize {
        let nl = linear_pipeline(stages, width, 1, 1000.0);
        let idx = nl.index();
        let graph = extract_ff_graph(&nl, &idx).expect("pure FF design");
        let assignment = assign_phases(&graph, &PhaseConfig::default());
        let (tp, report) = to_three_phase(&nl, &assignment).expect("conversion");
        let ffs = nl.stats().ffs;
        let latches = tp.stats().latches;
        // Theory: stages alternate single/back-to-back; with the PI
        // treated as a p1 stage, ceil(stages/2) stages are back-to-back
        // (each costs `width` p2 latches), possibly trading one for a
        // PI-boundary latch row.
        let theory_groups = stages / 2;
        println!(
            "{:>7} {:>8} {:>9} {:>10} {:>10} {:>12} {:>10}",
            stages,
            ffs,
            latches,
            2 * ffs,
            report.back_to_back / width + report.pi_latches / width.max(1),
            theory_groups,
            assignment.optimal,
        );
        let _ = &lib;
        // Invariant from the paper: never more than one extra stage per
        // two original stages (plus at most one PI boundary row).
        assert!(
            report.back_to_back <= width * stages.div_ceil(2),
            "too many back-to-back groups"
        );
        assert!(latches < 2 * ffs || stages == 1, "beats master-slave");
    }
    println!();
    println!(
        "Paper Fig. 1: p2 latches are inserted for every other original stage — \
         the minimum possible while meeting C1-C3 (shown optimal by the ILP flag)."
    );
}
