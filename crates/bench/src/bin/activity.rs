//! Static switching-activity CLI: cross-validate the `triphase-activity`
//! probability/density propagation against the packed simulator over the
//! registered benchmark generators.
//!
//! ```text
//! activity                 # compare static vs simulated on every benchmark
//! activity s5378           # compare one benchmark by name
//! activity --json [...]    # print machine-readable JSON rows
//! activity --quick         # restrict to the quick suite
//! activity --certify       # full campaign -> results/BENCH_activity.json
//! ```
//!
//! Per benchmark the packed simulator runs the row's own stimulus style
//! and the static model is seeded from the measured boundary profile —
//! every primary input *and* every storage output gets its empirical
//! (probability, density) pair, then a single topological pass
//! propagates through the combinational network. The comparison
//! therefore isolates *propagation* error from stimulus-model and
//! state-space mismatch: what is measured is exactly the engine the
//! flow trusts (supergate collapsing, boolean-difference density,
//! correlation flagging), not the uninformative-prior seed.
//!
//! `--certify` runs four sub-campaigns and merges them into
//! `results/BENCH_activity.json`:
//!
//! 1. **cross_validation** — per-benchmark relative-error distribution of
//!    static density vs measured toggle rate on flag-free combinational
//!    nets, plus analysis-vs-simulation wall time (the speedup claim);
//! 2. **exact_zero** — the reconvergence cases (`XOR(a,a)`, `AND(a,!a)`)
//!    must resolve to exactly zero density, and a beyond-budget cut must
//!    raise the correlation flag instead of guessing;
//! 3. **scaling** — [`Recipe`]-generated netlists of growing size, the
//!    analysis runtime curve;
//! 4. **ab_flow** — the full flow with the static model on vs off: the
//!    post-conversion 3-phase power must be no worse (within 0.5%) on
//!    all but two suite rows.
//!
//! Exit codes (stable): `0` comparison clean / certification passed,
//! `1` excessive error or certification failed, `2` usage error.

use std::process::ExitCode;
use std::time::Instant;

use triphase_activity::{analyze, AnalysisOptions};
use triphase_bench::json::Json;
use triphase_bench::report::{section, ReportFile};
use triphase_bench::{
    benchmarks, drive_stimulus, mean, profile_stimulus, quick_benchmarks, Benchmark, Scale,
};
use triphase_cells::{CellKind, Library};
use triphase_core::{ActivityCfg, FlowConfig, FlowReport};
use triphase_netlist::gen::Recipe;
use triphase_netlist::Netlist;
use triphase_power::estimate_power;
use triphase_sim::{data_inputs, run_random};

/// Nets quieter than this (toggles/cycle, measured) are compared on a
/// floored denominator: a handful of boundary toggles on a near-silent
/// net would otherwise read as a huge *relative* error while being
/// irrelevant to power.
const DENSITY_FLOOR: f64 = 0.01;

/// Aggregate speedup the certification demands of the static analysis
/// over the scalar reference simulation.
const MIN_SPEEDUP: f64 = 50.0;

/// Density-weighted mean relative error a benchmark may show on its
/// flag-free combinational nets before the comparison is reported
/// dirty. Weighting by measured density makes this the power-relevant
/// aggregate `sum |static - measured| / sum measured`: a handful of
/// boundary toggles on a near-silent net cannot dominate the score the
/// way it would in an unweighted per-net mean (which is still reported
/// via the p95/max columns).
const MAX_MEAN_REL_ERR: f64 = 0.15;

/// Per-row cap for the plain (non-certify) comparison: individual rows
/// vary around the suite mean — a single benchmark is reported dirty
/// only when clearly out of family.
const ROW_MAX_REL_ERR: f64 = 0.25;

/// A/B power tolerance: static-guided selection counts as "no worse"
/// when the 3-phase total stays within this factor of the measured run.
const AB_TOLERANCE: f64 = 1.005;

/// Held-out evaluation depth for the flow A/B: both arms' converted
/// netlists are re-simulated with a fresh stimulus seed over this many
/// cycles, so neither arm is scored by the short window it selected
/// its clock gates on.
const AB_EVAL_CYCLES: u64 = 4096;

/// Seed perturbation for the held-out A/B stimulus.
const AB_EVAL_SEED: u64 = 0x5eed;

struct Options {
    json: bool,
    quick: bool,
    certify: bool,
    names: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        quick: false,
        certify: false,
        names: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--quick" => opts.quick = true,
            "--certify" => opts.certify = true,
            "--help" | "-h" => {
                return Err("usage: activity [--json] [--quick] [--certify] [NAME...]".to_owned())
            }
            name if name.starts_with('-') => return Err(format!("unknown flag {name:?}")),
            name => opts.names.push(name.to_owned()),
        }
    }
    Ok(opts)
}

/// One benchmark's static-vs-simulated comparison.
struct Comparison {
    name: &'static str,
    /// Flag-free combinational nets entering the error distribution.
    nets_compared: usize,
    /// Correlation-flagged share of combinational nets.
    correlation_rate: f64,
    /// Density-weighted mean relative error (see [`MAX_MEAN_REL_ERR`]).
    mean_rel_err: f64,
    /// Unweighted per-net tail statistics.
    p95_rel_err: f64,
    max_rel_err: f64,
    static_seconds: f64,
    /// Packed (64-lane) truth-run wall time.
    sim_seconds: f64,
    /// Scalar reference-simulator wall time over the same cycle count —
    /// the conventional simulation cost the static analysis replaces.
    scalar_seconds: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        if self.static_seconds > 0.0 {
            self.scalar_seconds / self.static_seconds
        } else {
            f64::INFINITY
        }
    }

    fn clean(&self) -> bool {
        self.mean_rel_err <= ROW_MAX_REL_ERR
    }

    fn to_json(&self) -> Json {
        let mut row = Json::obj();
        row.set("nets_compared", self.nets_compared.into());
        row.set("correlation_rate", Json::Num(self.correlation_rate));
        row.set("mean_rel_err", Json::Num(self.mean_rel_err));
        row.set("p95_rel_err", Json::Num(self.p95_rel_err));
        row.set("max_rel_err", Json::Num(self.max_rel_err));
        row.set("static_seconds", Json::Num(self.static_seconds));
        row.set("sim_seconds", Json::Num(self.sim_seconds));
        row.set("scalar_sim_seconds", Json::Num(self.scalar_seconds));
        row.set("speedup", Json::Num(self.speedup()));
        row.set("clean", self.clean().into());
        row
    }
}

/// Simulation depth of the cross-validation: long enough that the
/// measured toggle rates themselves have converged (the paper's
/// methodology simulates full testbench programs), and the honest
/// baseline for the speedup claim — this is what a simulation-based
/// power estimate actually costs.
fn validation_cycles(quick: bool) -> u64 {
    if quick {
        1 << 14
    } else {
        1 << 15
    }
}

/// Run one benchmark: measured profile via the row's own stimulus, the
/// static model seeded with the empirical (probability, density) of
/// every primary input and storage output, one topological propagation
/// pass, then the per-net relative-error distribution over flag-free
/// combinational nets.
fn compare(b: &Benchmark, cycles: u64) -> Result<Comparison, String> {
    let nl = b.build();

    let t0 = Instant::now();
    let profile =
        profile_stimulus(&nl, cycles, b.seed(), b.stimulus()).map_err(|e| e.to_string())?;
    let sim_seconds = t0.elapsed().as_secs_f64();

    // Boundary seed: primary inputs and storage outputs carry their
    // measured statistics, so the single pass validates combinational
    // propagation rather than the sequential fixpoint's prior.
    let mut overrides: Vec<(triphase_netlist::NetId, f64, f64)> = data_inputs(&nl)
        .into_iter()
        .map(|p| nl.port(p).net)
        .chain(
            nl.cells()
                .filter(|(_, c)| c.kind.is_storage())
                .map(|(_, c)| c.output()),
        )
        .map(|net| (net, profile.probability(net), profile.density(net)))
        .collect();
    overrides.sort_by_key(|&(net, _, _)| net.index());
    overrides.dedup_by_key(|&mut (net, _, _)| net.index());
    let opts = AnalysisOptions {
        overrides,
        max_iterations: 1,
        ..AnalysisOptions::default()
    };
    let t1 = Instant::now();
    let model = analyze(&nl, &opts).map_err(|e| e.to_string())?;
    let static_seconds = t1.elapsed().as_secs_f64();

    // Scalar reference baseline: same cycle count through the
    // conventional one-value-per-net simulator.
    let t2 = Instant::now();
    run_random(&nl, b.seed(), cycles).map_err(|e| e.to_string())?;
    let scalar_seconds = t2.elapsed().as_secs_f64();

    let mut errs: Vec<f64> = Vec::new();
    let mut abs_sum = 0.0f64;
    let mut den_sum = 0.0f64;
    for (_, cell) in nl.cells() {
        if !cell.kind.is_comb() {
            continue;
        }
        let net = cell.output();
        if model.correlated(net) {
            continue;
        }
        let m = profile.density(net);
        let s = model.density(net);
        errs.push((s - m).abs() / m.max(DENSITY_FLOOR));
        abs_sum += (s - m).abs();
        den_sum += m.max(DENSITY_FLOOR);
    }
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p95 = if errs.is_empty() {
        0.0
    } else {
        errs[(errs.len() * 95) / 100..][0]
    };
    Ok(Comparison {
        name: b.name,
        nets_compared: errs.len(),
        correlation_rate: model.correlation_rate(),
        mean_rel_err: if den_sum > 0.0 {
            abs_sum / den_sum
        } else {
            0.0
        },
        p95_rel_err: p95,
        max_rel_err: errs.last().copied().unwrap_or(0.0),
        static_seconds,
        sim_seconds,
        scalar_seconds,
    })
}

/// Exact-zero / correlation-flag spot checks, mirrored from the
/// `triphase-activity` regression suite: a certification run must prove
/// the installed binary still resolves reconvergence exactly.
fn exact_zero_cases() -> Vec<(&'static str, bool)> {
    let mut cases = Vec::new();

    let mut nl = Netlist::new("xaa");
    let (_, a) = nl.add_input("a");
    let x = nl.add_net("x");
    nl.add_cell("u", CellKind::Xor(2), vec![a, a, x]);
    nl.add_output("x", x);
    let ok = analyze(&nl, &AnalysisOptions::default())
        .map(|m| m.density(x) == 0.0 && m.probability(x) == 0.0 && !m.correlated(x))
        .unwrap_or(false);
    cases.push(("xor_a_a_exact_zero", ok));

    let mut nl = Netlist::new("ana");
    let (_, a) = nl.add_input("a");
    let na = nl.add_net("na");
    let x = nl.add_net("x");
    nl.add_cell("u_inv", CellKind::Inv, vec![a, na]);
    nl.add_cell("u_and", CellKind::And(2), vec![a, na, x]);
    nl.add_output("x", x);
    let ok = analyze(&nl, &AnalysisOptions::default())
        .map(|m| m.density(x) == 0.0 && m.probability(x) == 0.0 && !m.correlated(x))
        .unwrap_or(false);
    cases.push(("and_a_not_a_exact_zero", ok));

    // Beyond-budget reconvergence must flag, never silently guess.
    let mut nl = Netlist::new("cut");
    let (_, a) = nl.add_input("a");
    let (_, b) = nl.add_input("b");
    let (_, c) = nl.add_input("c");
    let x = nl.add_net("x");
    let y = nl.add_net("y");
    let z = nl.add_net("z");
    nl.add_cell("u_and", CellKind::And(2), vec![a, b, x]);
    nl.add_cell("u_or", CellKind::Or(2), vec![b, c, y]);
    nl.add_cell("u_xor", CellKind::Xor(2), vec![x, y, z]);
    nl.add_output("z", z);
    let tight = AnalysisOptions {
        cut_budget: 2,
        ..AnalysisOptions::default()
    };
    let ok = analyze(&nl, &tight)
        .map(|m| m.correlated(z))
        .unwrap_or(false);
    cases.push(("beyond_budget_cut_flagged", ok));

    cases
}

/// Analysis-runtime curve over recipe-generated netlists of growing
/// size: near-linear growth is the design claim (topological pass plus
/// a bounded fixpoint).
fn scaling_series(quick: bool) -> Json {
    let sizes: &[(usize, usize)] = if quick {
        &[(16, 8), (48, 12), (96, 16)]
    } else {
        &[(16, 8), (48, 12), (96, 16), (160, 24), (240, 32)]
    };
    let mut rows = Vec::new();
    for (i, &(max_ops, max_width)) in sizes.iter().enumerate() {
        // One recipe per size bucket; the tag pins the stream.
        let recipe = &Recipe::stream(0xAC71 + i as u64, 1, max_ops, max_width)[0];
        let nl = recipe.build();
        let t0 = Instant::now();
        let model = analyze(&nl, &AnalysisOptions::default());
        let seconds = t0.elapsed().as_secs_f64();
        let mut row = Json::obj();
        row.set("max_ops", max_ops.into());
        row.set("max_width", max_width.into());
        row.set("cells", nl.stats().cells.into());
        match model {
            Ok(m) => {
                row.set("comb_nets", m.comb_nets.into());
                row.set("flagged_nets", m.flagged_nets.into());
                row.set("iterations", m.iterations.into());
                row.set("converged", m.converged.into());
            }
            Err(e) => row.set("error", e.to_string().as_str().into()),
        }
        row.set("seconds", Json::Num(seconds));
        rows.push(row);
    }
    let mut out = section();
    out.set("series", Json::Arr(rows));
    out
}

/// Held-out power score of one flow arm: re-simulate the converted
/// design with a fresh stimulus seed over [`AB_EVAL_CYCLES`] cycles and
/// estimate power from *that* profile. The in-flow power number scores
/// each arm with the same short window it selected its clock gates on,
/// which makes the measured arm's selections look perfect by
/// construction; the held-out window is the fair test.
fn ab_eval_power(b: &Benchmark, lib: &Library, report: &FlowReport) -> Result<f64, String> {
    let tp = &report.three_phase.netlist;
    let activity = drive_stimulus(tp, AB_EVAL_CYCLES, b.seed() ^ AB_EVAL_SEED, b.stimulus())
        .map_err(|e| e.to_string())?;
    estimate_power(tp, lib, &activity, None)
        .map(|p| p.total_mw())
        .map_err(|e| e.to_string())
}

/// A/B the end-to-end flow: static activity model on (the default)
/// versus off (measured fallback). Selection driven by the static model
/// must not cost power under the held-out evaluation: the 3-phase total
/// stays within [`AB_TOLERANCE`] on all but two suite rows.
fn ab_flow(suite: &[Benchmark], lib: &Library) -> (Json, bool) {
    let rows = triphase_par::par_map(&suite.iter().collect::<Vec<_>>(), |b| {
        let nl = b.build();
        // Quick-scale flow configs keep the 2x18-run sweep tractable;
        // the A/B question is about *selection decisions*, which the
        // quick stimulus already exercises.
        let cfg_on = b.flow_config(Scale::Quick);
        let cfg_off = FlowConfig {
            activity: ActivityCfg {
                enabled: false,
                ..ActivityCfg::default()
            },
            ..b.flow_config(Scale::Quick)
        };
        let t0 = Instant::now();
        let result = b
            .run_netlist_with_config(&nl, lib, &cfg_on)
            .map_err(|e| e.to_string())
            .and_then(|on| {
                let off = b
                    .run_netlist_with_config(&nl, lib, &cfg_off)
                    .map_err(|e| e.to_string())?;
                let p_on = ab_eval_power(b, lib, &on)?;
                let p_off = ab_eval_power(b, lib, &off)?;
                Ok((on, p_on, p_off))
            });
        match &result {
            Ok((on, p_on, p_off)) => eprintln!(
                "[ab] {:>8} ... static {p_on:.3} mW vs measured {p_off:.3} mW ({}) in {:.1}s",
                b.name,
                on.activity_source,
                t0.elapsed().as_secs_f64()
            ),
            Err(e) => eprintln!("[ab] {:>8} ... FAILED: {e}", b.name),
        }
        result
    });

    let mut out = section();
    out.set("eval_cycles", AB_EVAL_CYCLES.into());
    let mut no_worse = 0usize;
    let mut failures = 0usize;
    for (b, result) in suite.iter().zip(rows) {
        let mut row = Json::obj();
        match result {
            Ok((on, p_on, p_off)) => {
                let ok = p_on <= p_off * AB_TOLERANCE;
                row.set("power_static_mw", Json::Num(p_on));
                row.set("power_measured_mw", Json::Num(p_off));
                row.set("activity_source", on.activity_source.into());
                if let Some(rate) = on.activity_correlation_rate {
                    row.set("correlation_rate", Json::Num(rate));
                }
                row.set("equiv_3p", on.equiv_3p.unwrap_or(false).into());
                row.set("no_worse", ok.into());
                no_worse += usize::from(ok);
            }
            Err(e) => {
                row.set("error", e.as_str().into());
                failures += 1;
            }
        }
        out.set(b.name, row);
    }
    let passed = failures == 0 && no_worse + 2 >= suite.len();
    out.set("no_worse", no_worse.into());
    out.set("required", suite.len().saturating_sub(2).into());
    out.set("passed", passed.into());
    (out, passed)
}

/// The full certification campaign, merged into
/// `results/BENCH_activity.json`. Returns `true` when every gate held.
fn certify(suite: &[Benchmark], lib: &Library, quick: bool) -> Result<bool, String> {
    let cycles = validation_cycles(quick);

    // 1. Cross-validation sweep (parallel across rows).
    let rows = triphase_par::par_map(&suite.iter().collect::<Vec<_>>(), |b| {
        let result = compare(b, cycles);
        match &result {
            Ok(c) => eprintln!(
                "[xval] {:>8} ... mean {:.1}% p95 {:.1}% on {} nets, {:.0}x speedup",
                b.name,
                c.mean_rel_err * 100.0,
                c.p95_rel_err * 100.0,
                c.nets_compared,
                c.speedup()
            ),
            Err(e) => eprintln!("[xval] {:>8} ... FAILED: {e}", b.name),
        }
        result
    });
    let mut xval = section();
    xval.set("cycles", cycles.into());
    let mut means = Vec::new();
    let mut scalar_total = 0.0;
    let mut static_total = 0.0;
    let mut xval_failures = Vec::new();
    for (b, result) in suite.iter().zip(rows) {
        match result {
            Ok(c) => {
                means.push(c.mean_rel_err);
                scalar_total += c.scalar_seconds;
                static_total += c.static_seconds;
                xval.set(b.name, c.to_json());
            }
            Err(e) => xval_failures.push(format!("{}: {e}", b.name)),
        }
    }
    let mean_err = mean(&means);
    let speedup = if static_total > 0.0 {
        scalar_total / static_total
    } else {
        f64::INFINITY
    };
    let xval_ok =
        xval_failures.is_empty() && mean_err <= MAX_MEAN_REL_ERR && speedup >= MIN_SPEEDUP;
    eprintln!(
        "[xval] suite mean rel err {:.1}% (cap {:.0}%), \
         aggregate speedup {speedup:.0}x (floor {MIN_SPEEDUP:.0}x)",
        mean_err * 100.0,
        MAX_MEAN_REL_ERR * 100.0
    );

    // 2. Exact-zero / correlation-flag spot checks.
    let mut zero = section();
    let mut zero_ok = true;
    for (name, detected) in exact_zero_cases() {
        eprintln!(
            "[zero] {name:>28} ... {}",
            if detected { "exact" } else { "MISSED" }
        );
        zero.set(name, detected.into());
        zero_ok &= detected;
    }

    // 3. Scaling series.
    let scaling = scaling_series(quick);

    // 4. Flow A/B.
    let (ab, ab_ok) = ab_flow(suite, lib);

    let certified = xval_ok && zero_ok && ab_ok;
    let mut summary = section();
    summary.set("benchmarks", suite.len().into());
    summary.set("mean_rel_err", Json::Num(mean_err));
    summary.set("speedup", Json::Num(speedup));
    summary.set("cross_validation_ok", xval_ok.into());
    summary.set("exact_zero_ok", zero_ok.into());
    summary.set("ab_flow_ok", ab_ok.into());
    summary.set("certified", certified.into());
    if !xval_failures.is_empty() {
        summary.set(
            "failures",
            Json::Arr(xval_failures.iter().map(|f| f.as_str().into()).collect()),
        );
    }

    let out = ReportFile::new("BENCH_activity.json");
    out.merge_or_exit("cross_validation", xval);
    out.merge_or_exit("exact_zero", zero);
    out.merge_or_exit("scaling", scaling);
    out.merge_or_exit("ab_flow", ab);
    out.merge_or_exit("summary", summary);
    println!(
        "activity: {} benchmarks, mean rel err {:.1}%, speedup {:.0}x, A/B {} -> {}",
        suite.len(),
        mean_err * 100.0,
        speedup,
        if ab_ok { "ok" } else { "FAILED" },
        out.path().display()
    );
    Ok(certified)
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    let lib = Library::synthetic_28nm();
    let all = if opts.quick {
        quick_benchmarks()
    } else {
        benchmarks()
    };
    let selected: Vec<Benchmark> = if opts.names.is_empty() {
        all
    } else {
        opts.names
            .iter()
            .map(|n| {
                all.iter().find(|b| b.name == n).cloned().ok_or_else(|| {
                    let known: Vec<_> = all.iter().map(|b| b.name).collect();
                    format!("unknown benchmark {n:?}; known: {known:?}")
                })
            })
            .collect::<Result<_, String>>()?
    };

    if opts.certify {
        return certify(&selected, &lib, opts.quick);
    }

    let cycles = validation_cycles(opts.quick);
    let results = triphase_par::par_map(&selected, |b| compare(b, cycles));
    let mut clean = true;
    for (b, result) in selected.iter().zip(results) {
        let c = result?;
        if opts.json {
            let mut row = c.to_json();
            row.set("name", b.name.into());
            println!("{}", row.to_pretty());
        } else {
            println!(
                "{:>8}: mean {:.1}% p95 {:.1}% max {:.1}% on {} flag-free nets \
                 (corr {:.1}%), static {:.3}s vs sim {:.3}s ({:.0}x)",
                c.name,
                c.mean_rel_err * 100.0,
                c.p95_rel_err * 100.0,
                c.max_rel_err * 100.0,
                c.nets_compared,
                c.correlation_rate * 100.0,
                c.static_seconds,
                c.sim_seconds,
                c.speedup()
            );
        }
        clean &= c.clean();
    }
    Ok(clean)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
