//! Regenerates the paper's **Table I**: number of registers (FFs or
//! latches) and total area (µm²) for the original FF-based, converted
//! master-slave, and proposed 3-phase latch-based designs, with the
//! paper's saving conventions (3-P registers vs **2×FF** and vs M-S;
//! unweighted group and overall averages).

use triphase_bench::{mean, run_suite, Group, Scale};
use triphase_power::percent_saving;

fn main() {
    let scale = Scale::from_env();
    let rows = run_suite(scale).unwrap_or_else(|e| {
        eprintln!("flow failed: {e}");
        std::process::exit(1);
    });

    println!("Table I: # of Regs and Total Area (um^2)");
    println!(
        "{:<8}{:<9} | {:>7} {:>7} {:>7} {:>8} {:>8} | {:>9} {:>9} {:>9} {:>8} {:>8}",
        "Group",
        "Design",
        "FF",
        "M-S",
        "3-P",
        "Sv2FF%",
        "SvM-S%",
        "AreaFF",
        "AreaM-S",
        "Area3P",
        "SvFF%",
        "SvM-S%"
    );
    let mut acc: Vec<(Group, [f64; 4])> = Vec::new();
    for (b, r) in &rows {
        let ff_regs = r.ff.stats.ffs;
        let ms_regs = r.ms.registers();
        let tp_regs = r.three_phase.registers();
        let s2ff = percent_saving(2.0 * ff_regs as f64, tp_regs as f64);
        let sms = percent_saving(ms_regs as f64, tp_regs as f64);
        let a_ff = r.ff.area_um2;
        let a_ms = r.ms.area_um2;
        let a_tp = r.three_phase.area_um2;
        let asff = percent_saving(a_ff, a_tp);
        let asms = percent_saving(a_ms, a_tp);
        println!(
            "{:<8}{:<9} | {:>7} {:>7} {:>7} {:>8.1} {:>8.1} | {:>9.0} {:>9.0} {:>9.0} {:>8.1} {:>8.1}",
            b.group.label(),
            b.name,
            ff_regs,
            ms_regs,
            tp_regs,
            s2ff,
            sms,
            a_ff,
            a_ms,
            a_tp,
            asff,
            asms
        );
        acc.push((b.group, [s2ff, sms, asff, asms]));
    }
    for group in [Group::Iscas, Group::Cep, Group::Cpu] {
        let sel: Vec<[f64; 4]> = acc
            .iter()
            .filter(|(g, _)| *g == group)
            .map(|(_, v)| *v)
            .collect();
        if sel.is_empty() {
            continue;
        }
        print_avg(&format!("{} avg", group.label()), &sel);
    }
    let all: Vec<[f64; 4]> = acc.iter().map(|(_, v)| *v).collect();
    print_avg("Overall avg", &all);
    println!();
    println!(
        "Paper Table I overall averages: regs saved 22.4% (vs 2xFF) / 21.3% (vs M-S); \
         area saved 11.0% (vs FF) / 0.8% (vs M-S)."
    );
}

fn print_avg(label: &str, rows: &[[f64; 4]]) {
    let col = |i: usize| mean(&rows.iter().map(|r| r[i]).collect::<Vec<_>>());
    println!(
        "{:<17} | {:>7} {:>7} {:>7} {:>8.1} {:>8.1} | {:>9} {:>9} {:>9} {:>8.1} {:>8.1}",
        label,
        "",
        "",
        "",
        col(0),
        col(1),
        "",
        "",
        "",
        col(2),
        col(3)
    );
}
