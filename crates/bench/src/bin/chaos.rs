//! Kill-9 chaos harness for the conversion daemon: seeded rounds of
//! open-loop load with the daemon SIGKILL'd mid-flight, restarted on
//! the same journal, and audited for the resilience contract:
//!
//! 1. **Zero lost acknowledged jobs** — after the final restart, every
//!    job in the round's mix is driven to a successful `done` (jobs the
//!    dead daemon had acknowledged resume from the journal; the rest
//!    are resubmitted by the retrying client).
//! 2. **Zero non-bit-exact reports** — every served report matches an
//!    in-process [`run_flow`] of the same job, timings stripped.
//! 3. **Bounded recovery** — spawn-to-`listening` latency of every
//!    restart stays under `--recovery-bound-ms` at p99.
//! 4. **Bounded shedding** — a burst at ~2x queue capacity sheds
//!    deterministically, under the shed-rate bound, every shed carrying
//!    a usable `retry_after_ms` hint; a drain shutdown then exits 0.
//!
//! ```text
//! chaos --quick               # 5 rounds, small mix (CI smoke)
//! chaos --rounds 8 --kills 2  # more rounds, two kills per round
//! chaos --json                # print the report section to stdout
//! ```
//!
//! Persists a `chaos` section into `results/BENCH_chaos.json`. Exit
//! codes (stable): `0` all gates met, `1` a gate failed (or the daemon
//! binary misbehaved), `2` usage error.

use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::mpsc::{channel, Receiver};
use std::time::{Duration, Instant};

use triphase_bench::json::Json;
use triphase_bench::report::{section, ReportFile};
use triphase_cells::Library;
use triphase_circuits::pipeline::linear_pipeline;
use triphase_core::{run_flow, FlowConfig};
use triphase_netlist::{Netlist, SplitMix64};
use triphase_serve::{report_json, strip_timings, Backoff, Client, ClientError};

struct Options {
    quick: bool,
    rounds: u64,
    kills: u64,
    jobs: usize,
    seed: u64,
    recovery_bound_ms: f64,
    shed_rate_bound: f64,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        quick: std::env::var("TRIPHASE_SCALE").as_deref() == Ok("quick"),
        rounds: 5,
        kills: 1,
        jobs: 0,
        seed: 0xc4a05,
        recovery_bound_ms: 15_000.0,
        shed_rate_bound: 0.9,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let int = |flag: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| format!("{flag} requires an integer"))
        };
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--json" => opts.json = true,
            "--rounds" => opts.rounds = int("--rounds", value("--rounds")?)?,
            "--kills" => opts.kills = int("--kills", value("--kills")?)?,
            "--jobs" => opts.jobs = int("--jobs", value("--jobs")?)? as usize,
            "--seed" => opts.seed = int("--seed", value("--seed")?)?,
            "--recovery-bound-ms" => {
                opts.recovery_bound_ms = value("--recovery-bound-ms")?
                    .parse()
                    .map_err(|_| "--recovery-bound-ms requires a number".to_owned())?;
            }
            "--shed-rate-bound" => {
                opts.shed_rate_bound = value("--shed-rate-bound")?
                    .parse()
                    .map_err(|_| "--shed-rate-bound requires a number".to_owned())?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: chaos [--quick] [--rounds N] [--kills N] [--jobs N] \
                            [--seed N] [--recovery-bound-ms MS] [--shed-rate-bound R] [--json]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if opts.jobs == 0 {
        opts.jobs = if opts.quick { 6 } else { 10 };
    }
    if opts.rounds == 0 || opts.kills == 0 {
        return Err("--rounds and --kills must be at least 1".to_owned());
    }
    Ok(opts)
}

/// The daemon binary ships next to this harness in the target dir.
fn serve_binary() -> Result<std::path::PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me
        .parent()
        .ok_or_else(|| "current_exe has no parent".to_owned())?;
    let bin = dir.join(if cfg!(windows) { "serve.exe" } else { "serve" });
    if !bin.exists() {
        return Err(format!(
            "daemon binary not found at {} — build it first (cargo build -p triphase-bench --bins)",
            bin.display()
        ));
    }
    Ok(bin)
}

/// Reserve a concrete port so every daemon incarnation of a round can
/// bind the *same* address (clients reconnect across restarts).
fn reserve_addr() -> Result<SocketAddr, String> {
    let l = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("reserve port: {e}"))?;
    l.local_addr().map_err(|e| format!("local_addr: {e}"))
}

/// One running daemon incarnation plus its boot latency.
struct Daemon {
    child: Child,
    boot_ms: f64,
    stderr: Receiver<String>,
}

fn spawn_daemon(
    bin: &std::path::Path,
    addr: &SocketAddr,
    journal: &std::path::Path,
) -> Result<Daemon, String> {
    let t0 = Instant::now();
    let mut child = Command::new(bin)
        .args(["--addr", &addr.to_string(), "--workers", "2"])
        .arg("--journal")
        .arg(journal)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn daemon: {e}"))?;
    let stdout = child.stdout.take().ok_or("no stdout")?;
    let (tx, rx) = channel::<String>();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let stderr = child.stderr.take().ok_or("no stderr")?;
    let (etx, erx) = channel::<String>();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if etx.send(line).is_err() {
                break;
            }
        }
    });
    // Wait for the `listening <addr>` banner: that instant bounds the
    // outage window a restart inflicts on clients.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(line) if line.starts_with("listening ") => break,
            Ok(_) => {}
            Err(_) => {
                if Instant::now() > deadline {
                    let _ = child.kill();
                    return Err("daemon never printed `listening`".to_owned());
                }
            }
        }
    }
    Ok(Daemon {
        child,
        boot_ms: t0.elapsed().as_secs_f64() * 1e3,
        stderr: erx,
    })
}

impl Daemon {
    /// SIGKILL — no drain, no flush, the crash the journal exists for.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Journaled jobs this incarnation resumed at boot (from its
    /// `resumed N journaled jobs` stderr banner).
    fn resumed(&self) -> u64 {
        self.stderr
            .try_iter()
            .filter_map(|line| {
                line.strip_prefix("resumed ")?
                    .split_whitespace()
                    .next()?
                    .parse::<u64>()
                    .ok()
            })
            .sum()
    }
}

/// The seeded per-round job mix: small pipelines varied in shape and
/// flow seed, heavy enough that a SIGKILL lands mid-flow.
fn job_mix(seed: u64, n: usize) -> Vec<(String, Netlist, FlowConfig)> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            // Heavy enough (tens of ms cold, even in release) that the
            // seeded SIGKILL usually lands *inside* a flow, exercising
            // the journal-resume path rather than restart-at-idle.
            let stages = 5 + (rng.next_u64() % 4) as usize;
            let width = 6 + (rng.next_u64() % 4) as usize;
            let nl = linear_pipeline(stages, width, 1, 900.0);
            let mut cfg = FlowConfig {
                seed: seed ^ i as u64,
                sim_cycles: 256,
                equiv_cycles: 512,
                ..FlowConfig::default()
            };
            cfg.pnr.moves_per_cell = 4;
            (format!("chaos-{seed:x}-{i}"), nl, cfg)
        })
        .collect()
}

struct RoundOutcome {
    recoveries_ms: Vec<f64>,
    resumed: u64,
    lost: u64,
    mismatches: u64,
}

/// One chaos round: boot a daemon on a fresh journal, submit the mix
/// under a seeded killer, restart after each kill, then verify every
/// job completes with a bit-exact report.
fn chaos_round(
    bin: &std::path::Path,
    opts: &Options,
    round: u64,
    lib: &Library,
) -> Result<RoundOutcome, String> {
    let addr = reserve_addr()?;
    let dir = std::env::temp_dir().join(format!("triphase_chaos_{}_{round}", opts.seed));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir: {e}"))?;
    let journal = dir.join("jobs.journal");
    let mix = job_mix(opts.seed.wrapping_add(round), opts.jobs);

    let mut out = RoundOutcome {
        recoveries_ms: Vec::new(),
        resumed: 0,
        lost: 0,
        mismatches: 0,
    };
    let mut daemon = spawn_daemon(bin, &addr, &journal)?;
    let mut rng = SplitMix64::new(opts.seed ^ (round << 32) ^ 0x9e3779b97f4a7c15);
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut backoff = Backoff::new(opts.seed ^ round);
    let mut next_job = 0usize;

    for _ in 0..opts.kills {
        // The killer fires at a seeded point inside the submission
        // window, so the SIGKILL lands between, inside, or after jobs
        // depending on the seed — that spread is the test.
        let kill_after = Duration::from_millis(5 + rng.below(150) as u64);
        let (ktx, krx) = channel::<()>();
        let mut victim_child = daemon;
        let killer = std::thread::spawn(move || {
            // Fire at the scheduled instant unless the round's jobs all
            // finished first (then fire immediately — a kill at idle
            // still exercises restart).
            let _ = krx.recv_timeout(kill_after);
            victim_child.kill9();
            victim_child
        });

        // Open-loop submission until the daemon dies under us.
        while next_job < mix.len() {
            let (name, nl, cfg) = &mix[next_job];
            match client.convert_resilient(name, nl, cfg, &mut backoff, 3) {
                Ok((_, done)) => {
                    if done.get("ok") != Some(&Json::Bool(true)) {
                        return Err(format!("job {name} failed outright: {}", done.to_pretty()));
                    }
                    next_job += 1;
                }
                Err(ClientError::RetriesExhausted(_) | ClientError::Frame(_)) => break,
                Err(e) => return Err(format!("job {name}: {e}")),
            }
        }
        drop(ktx); // all jobs done (or daemon dead): release the killer
        daemon = killer.join().map_err(|_| "killer thread panicked")?;
        daemon.kill9(); // idempotent; reaps if the timeout path lost the race

        // Restart on the same journal and let the client back in.
        daemon = spawn_daemon(bin, &addr, &journal)?;
        out.recoveries_ms.push(daemon.boot_ms);
        out.resumed += daemon.resumed();
        client.reconnect().map_err(|e| format!("reconnect: {e}"))?;
        // `next_job` still points at the job the kill interrupted (if
        // any): the next pass resubmits it, and the journal makes that
        // resubmission resume rather than recompute.
    }

    // Verification pass: EVERY job in the mix must now complete and
    // bit-match an in-process flow. Anything acknowledged before a kill
    // resumes from the journal; anything else is computed fresh here.
    for (name, nl, cfg) in &mix {
        match client.convert_resilient(name, nl, cfg, &mut backoff, 8) {
            Ok((_, done)) => {
                if done.get("ok") != Some(&Json::Bool(true)) {
                    out.lost += 1;
                    continue;
                }
                let direct = match run_flow(nl, lib, cfg) {
                    Ok(report) => report,
                    Err(e) => return Err(format!("direct flow for {name}: {e}")),
                };
                let mut served = done
                    .get("report")
                    .cloned()
                    .ok_or_else(|| format!("done without report for {name}"))?;
                let mut expected = report_json(&direct);
                strip_timings(&mut served);
                strip_timings(&mut expected);
                if served != expected {
                    out.mismatches += 1;
                }
            }
            Err(_) => out.lost += 1,
        }
    }

    daemon.kill9();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(out)
}

struct ShedOutcome {
    submitted: u64,
    shed: u64,
    min_hint_ms: u64,
    drained_ok: bool,
}

/// Overload phase: a deliberately tiny daemon (1 worker, depth-2
/// queue) takes a burst at ~2x its capacity; the excess must shed with
/// usable hints, the survivors and retries must all complete, and a
/// drain shutdown must exit 0.
fn overload_phase(bin: &std::path::Path, opts: &Options) -> Result<ShedOutcome, String> {
    let addr = reserve_addr()?;
    let mut child = Command::new(bin)
        .args([
            "--addr",
            &addr.to_string(),
            "--workers",
            "1",
            "--queue-depth",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn daemon: {e}"))?;
    {
        let stdout = child.stdout.take().ok_or("no stdout")?;
        let mut lines = BufReader::new(stdout).lines();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match lines.next() {
                Some(Ok(line)) if line.starts_with("listening ") => break,
                Some(_) => {}
                None => return Err("daemon exited before listening".to_owned()),
            }
            if Instant::now() > deadline {
                let _ = child.kill();
                return Err("daemon never printed `listening`".to_owned());
            }
        }
    }

    let mix = job_mix(opts.seed ^ 0x5ed, 8);
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    // One batch frame: all reservations race no one, so with a depth-2
    // queue exactly two jobs are admitted and the rest shed.
    let jobs: Vec<(&str, &Netlist, &FlowConfig)> = mix
        .iter()
        .map(|(name, nl, cfg)| (name.as_str(), nl, cfg))
        .collect();
    client
        .send(&Client::submit_request(&jobs))
        .map_err(|e| format!("burst submit: {e}"))?;
    let mut shed_names = Vec::new();
    let mut done = 0usize;
    let mut min_hint_ms = u64::MAX;
    while done < mix.len() {
        let ev = client.recv().map_err(|e| format!("recv: {e}"))?;
        if ev.get("event").and_then(Json::as_str) != Some("done") {
            continue;
        }
        done += 1;
        if ev.get("code").and_then(Json::as_str) == Some("overloaded") {
            let hint = ev
                .get("retry_after_ms")
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64;
            min_hint_ms = min_hint_ms.min(hint);
            let name = ev
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned();
            shed_names.push(name);
        } else if ev.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("burst job failed: {}", ev.to_pretty()));
        }
    }

    // Every shed job retries to completion under backoff.
    let mut backoff = Backoff::new(opts.seed ^ 0xbac0ff);
    for name in &shed_names {
        let (_, nl, cfg) = mix
            .iter()
            .find(|(n, _, _)| n == name)
            .ok_or_else(|| format!("shed done for unknown job {name}"))?;
        let (_, done) = client
            .convert_resilient(name, nl, cfg, &mut backoff, 16)
            .map_err(|e| format!("retry of shed {name}: {e}"))?;
        if done.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("shed {name} never completed: {}", done.to_pretty()));
        }
    }

    // Drain shutdown: daemon exits 0 on its own.
    client
        .send(&Json::parse("{\"kind\": \"shutdown\", \"mode\": \"drain\"}").expect("static json"))
        .map_err(|e| format!("shutdown: {e}"))?;
    let bye = client.recv().map_err(|e| format!("bye: {e}"))?;
    if bye.get("event").and_then(Json::as_str) != Some("bye") {
        return Err(format!("expected bye, got {}", bye.to_pretty()));
    }
    let status = child.wait().map_err(|e| format!("wait: {e}"))?;
    Ok(ShedOutcome {
        submitted: mix.len() as u64,
        shed: shed_names.len() as u64,
        min_hint_ms: if shed_names.is_empty() {
            0
        } else {
            min_hint_ms
        },
        drained_ok: status.success(),
    })
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let bin = match serve_binary() {
        Ok(bin) => bin,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    let lib = Library::synthetic_28nm();

    let mut recoveries_ms = Vec::new();
    let (mut lost, mut mismatches, mut resumed) = (0u64, 0u64, 0u64);
    for round in 0..opts.rounds {
        match chaos_round(&bin, &opts, round, &lib) {
            Ok(outcome) => {
                eprintln!(
                    "round {round}: {} restarts, {} resumed, {} lost, {} mismatched",
                    outcome.recoveries_ms.len(),
                    outcome.resumed,
                    outcome.lost,
                    outcome.mismatches
                );
                recoveries_ms.extend(outcome.recoveries_ms);
                lost += outcome.lost;
                mismatches += outcome.mismatches;
                resumed += outcome.resumed;
            }
            Err(e) => {
                eprintln!("round {round} failed: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let shed = match overload_phase(&bin, &opts) {
        Ok(shed) => shed,
        Err(e) => {
            eprintln!("overload phase failed: {e}");
            return ExitCode::from(1);
        }
    };

    let mut sorted = recoveries_ms.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let recovery_p99_ms = percentile(&sorted, 99.0);
    let shed_rate = shed.shed as f64 / shed.submitted as f64;

    let mut out = section();
    out.set("quick", opts.quick.into());
    out.set("rounds", opts.rounds.into());
    out.set("kills_per_round", opts.kills.into());
    out.set("jobs_per_round", opts.jobs.into());
    out.set("seed", opts.seed.into());
    out.set("restarts", recoveries_ms.len().into());
    out.set("resumed_jobs", resumed.into());
    out.set("lost_acknowledged_jobs", lost.into());
    out.set("report_mismatches", mismatches.into());
    out.set("recovery_p99_ms", recovery_p99_ms.into());
    let mut s = Json::obj();
    s.set("submitted", shed.submitted.into());
    s.set("shed", shed.shed.into());
    s.set("shed_rate", shed_rate.into());
    s.set("min_retry_hint_ms", shed.min_hint_ms.into());
    s.set("drain_exit_ok", shed.drained_ok.into());
    out.set("overload", s);

    let file = ReportFile::new("BENCH_chaos.json");
    file.merge_or_exit("chaos", out.clone());
    if opts.json {
        println!("{}", out.to_pretty());
    }
    eprintln!(
        "chaos: {} rounds x {} kills, {} restarts, {} resumed, lost {lost}, mismatched \
         {mismatches}, recovery p99 {recovery_p99_ms:.0} ms, shed rate {shed_rate:.2} \
         (min hint {} ms), drain ok {} | {}",
        opts.rounds,
        opts.kills,
        recoveries_ms.len(),
        resumed,
        shed.min_hint_ms,
        shed.drained_ok,
        file.path().display()
    );

    // Gates: the resilience contract, as hard numbers.
    let mut failed = false;
    if lost > 0 {
        eprintln!("GATE: {lost} acknowledged jobs lost after restarts");
        failed = true;
    }
    if mismatches > 0 {
        eprintln!("GATE: {mismatches} reports diverged from the direct flow");
        failed = true;
    }
    if recovery_p99_ms.is_nan() || recovery_p99_ms > opts.recovery_bound_ms {
        eprintln!(
            "GATE: recovery p99 {recovery_p99_ms:.0} ms exceeds {:.0} ms",
            opts.recovery_bound_ms
        );
        failed = true;
    }
    if shed.shed == 0 || shed_rate > opts.shed_rate_bound {
        eprintln!(
            "GATE: shed rate {shed_rate:.2} outside (0, {:.2}] under 2x overload",
            opts.shed_rate_bound
        );
        failed = true;
    }
    if shed.min_hint_ms < 1 {
        eprintln!("GATE: an overloaded shed carried no usable retry_after_ms hint");
        failed = true;
    }
    if !shed.drained_ok {
        eprintln!("GATE: drain shutdown did not exit 0");
        failed = true;
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
