//! Static-analysis CLI: run the `triphase-lint` rule registry over the
//! registered benchmark generators or over a structural Verilog file.
//!
//! ```text
//! lint                      # lint every registered benchmark (summary)
//! lint s5378                # lint one benchmark by name
//! lint --three-phase s5378  # convert first, lint at the convert stage
//! lint --verilog f.v        # lint a structural Verilog file
//! lint --json [...]         # print machine-readable JSON reports
//! ```
//!
//! Exit codes (stable): `0` all reports clean, `1` at least one
//! diagnostic reported, `2` usage error (bad flag, unknown benchmark,
//! unreadable or unparsable file).

use std::process::ExitCode;
use triphase_bench::benchmarks;
use triphase_core::{assign_phases, extract_ff_graph, gated_clock_style, to_three_phase};
use triphase_ilp::PhaseConfig;
use triphase_lint::{LintStage, Linter, Report};
use triphase_netlist::{verilog, Netlist};

struct Options {
    json: bool,
    three_phase: bool,
    verilog: Option<String>,
    names: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        three_phase: false,
        verilog: None,
        names: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--three-phase" => opts.three_phase = true,
            "--verilog" => {
                let path = args.next().ok_or("--verilog requires a file path")?;
                opts.verilog = Some(path);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: lint [--json] [--three-phase] [--verilog FILE | NAME...]".to_owned(),
                )
            }
            name => opts.names.push(name.to_owned()),
        }
    }
    Ok(opts)
}

/// Convert a benchmark to 3-phase so the phase-legality rules apply.
fn convert(nl: &Netlist) -> Result<Netlist, String> {
    let mut pre = nl.clone();
    gated_clock_style(&mut pre, 32).map_err(|e| e.to_string())?;
    let pre = pre.compact();
    let idx = pre.index();
    let graph = extract_ff_graph(&pre, &idx).map_err(|e| e.to_string())?;
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (tp, _) = to_three_phase(&pre, &assignment).map_err(|e| e.to_string())?;
    Ok(tp)
}

/// Lint one netlist, returning the report and the text it would print —
/// buffered so benchmark lints can run concurrently and still print in
/// registry order.
fn lint_one(nl: &Netlist, stage: LintStage, json: bool) -> (Report, String) {
    let report = Linter::new().run(nl, stage);
    let text = if json {
        format!("{}\n", report.to_json())
    } else {
        format!("{report}")
    };
    (report, text)
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    let linted: Vec<Report> = if let Some(path) = &opts.verilog {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let nl = verilog::from_verilog(&text).map_err(|e| format!("{path}: {e}"))?;
        let nl = if opts.three_phase { convert(&nl)? } else { nl };
        let stage = if opts.three_phase {
            LintStage::Convert
        } else {
            LintStage::Input
        };
        let (report, text) = lint_one(&nl, stage, opts.json);
        print!("{text}");
        vec![report]
    } else {
        let all = benchmarks();
        let selected: Vec<_> = if opts.names.is_empty() {
            all.iter().collect()
        } else {
            opts.names
                .iter()
                .map(|n| {
                    all.iter().find(|b| b.name == n).ok_or_else(|| {
                        let known: Vec<_> = all.iter().map(|b| b.name).collect();
                        format!("unknown benchmark {n:?}; known: {known:?}")
                    })
                })
                .collect::<Result<_, String>>()?
        };
        // Fan the per-benchmark lints out over the work-stealing pool and
        // print the buffered reports in registry order afterwards.
        let results = triphase_par::par_map(&selected, |b| {
            let nl = b.build();
            let (nl, stage) = if opts.three_phase {
                (convert(&nl)?, LintStage::Convert)
            } else {
                (nl, LintStage::Input)
            };
            Ok(lint_one(&nl, stage, opts.json))
        });
        results
            .into_iter()
            .map(|r: Result<(Report, String), String>| {
                let (report, text) = r?;
                print!("{text}");
                Ok(report)
            })
            .collect::<Result<_, String>>()?
    };
    Ok(linted.iter().all(Report::is_clean))
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
