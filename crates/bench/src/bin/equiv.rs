//! Formal equivalence CLI: certify registered benchmark generators with
//! the SAT-based checker from `triphase-equiv`.
//!
//! For every selected benchmark the tool proves two stages:
//!
//! - `conversion` — the preprocessed FF design against its pristine
//!   3-phase conversion (phase-collapsing chain induction);
//! - `retime` — the converted design against its retimed version
//!   (simulation-seeded signal correspondence), skipped with
//!   `--no-retime`.
//!
//! ```text
//! equiv                     # certify every registered benchmark
//! equiv s1423 DES3          # certify selected benchmarks by name
//! equiv --quick             # the reduced quick suite
//! equiv --no-retime [...]   # conversion proofs only
//! equiv --json [...]        # machine-readable JSON reports
//! ```
//!
//! Exit codes (stable): `0` every check proven, `1` at least one check
//! not proven (counterexample or bound exhausted), `2` usage error.

use std::process::ExitCode;
use triphase_bench::{benchmarks, quick_benchmarks, Benchmark};
use triphase_cells::Library;
use triphase_core::{
    assign_phases, extract_ff_graph, gated_clock_style, retime_three_phase, to_three_phase,
};
use triphase_equiv::{check_conversion, check_sequential, report, Method, Options, Verdict};
use triphase_ilp::PhaseConfig;
use triphase_netlist::Netlist;

struct CliOptions {
    json: bool,
    quick: bool,
    retime: bool,
    names: Vec<String>,
}

fn parse_args() -> Result<CliOptions, String> {
    let mut opts = CliOptions {
        json: false,
        quick: false,
        retime: true,
        names: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--quick" => opts.quick = true,
            "--no-retime" => opts.retime = false,
            "--help" | "-h" => {
                return Err("usage: equiv [--json] [--quick] [--no-retime] [NAME...]".to_owned())
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            name => opts.names.push(name.to_owned()),
        }
    }
    Ok(opts)
}

/// The flow's preprocessing + conversion, kept in lockstep with
/// `run_flow_with` (gated-clock style, compact, ILP phases, convert).
fn prepare(nl: &Netlist) -> Result<(Netlist, Netlist), String> {
    let mut pre = nl.clone();
    gated_clock_style(&mut pre, 32).map_err(|e| e.to_string())?;
    let pre = pre.compact();
    let idx = pre.index();
    let graph = extract_ff_graph(&pre, &idx).map_err(|e| e.to_string())?;
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (tp, _) = to_three_phase(&pre, &assignment).map_err(|e| e.to_string())?;
    Ok((pre, tp))
}

fn describe(outcome: &triphase_equiv::EquivOutcome) -> String {
    match &outcome.verdict {
        Verdict::Equivalent {
            method,
            structural,
            from_cycle,
        } => format!(
            "equivalent ({}, {} SAT calls, from cycle {from_cycle})",
            match method {
                Method::ChainInduction =>
                    if *structural {
                        "chain induction, structural"
                    } else {
                        "chain induction"
                    },
                Method::SignalCorrespondence => "signal correspondence",
            },
            outcome.stats.sat_calls
        ),
        Verdict::NotEquivalent { mismatch, .. } => format!(
            "NOT EQUIVALENT (cycle {} port {} expected {:?} got {:?})",
            mismatch.cycle, mismatch.port, mismatch.expected, mismatch.actual
        ),
        Verdict::Unknown { reason, depth } => format!("UNKNOWN ({reason}; depth {depth})"),
    }
}

fn run_check(
    out: &mut Vec<String>,
    name: &str,
    check: &str,
    outcome: triphase_equiv::EquivOutcome,
    json: bool,
) -> bool {
    if json {
        out.push(report::to_json(name, check, &outcome));
    } else {
        out.push(format!("[{check:>10}] {name:>8}: {}", describe(&outcome)));
    }
    outcome.verdict.is_equivalent()
}

/// Certify one benchmark, buffering its report lines so certifications
/// can run concurrently and still print in registry order.
fn certify(b: &Benchmark, lib: &Library, opts: &CliOptions) -> Result<(Vec<String>, bool), String> {
    let mut out = Vec::new();
    let nl = b.build();
    let (pre, tp) = prepare(&nl)?;
    let eq_opts = Options::default();
    let conv = check_conversion(&pre, &tp, &eq_opts).map_err(|e| e.to_string())?;
    let mut ok = run_check(&mut out, b.name, "conversion", conv, opts.json);
    if opts.retime {
        let (rt, _) = retime_three_phase(&tp, lib, 0.5).map_err(|e| e.to_string())?;
        let seq = check_sequential(&tp, &rt, &eq_opts).map_err(|e| e.to_string())?;
        ok &= run_check(&mut out, b.name, "retime", seq, opts.json);
    }
    Ok((out, ok))
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    let all = if opts.quick {
        quick_benchmarks()
    } else {
        benchmarks()
    };
    let selected: Vec<&Benchmark> = if opts.names.is_empty() {
        all.iter().collect()
    } else {
        opts.names
            .iter()
            .map(|n| {
                all.iter().find(|b| b.name == n).ok_or_else(|| {
                    let known: Vec<_> = all.iter().map(|b| b.name).collect();
                    format!("unknown benchmark {n:?}; known: {known:?}")
                })
            })
            .collect::<Result<_, String>>()?
    };
    let lib = Library::synthetic_28nm();
    // Fan the certifications out over the work-stealing pool; each one
    // buffers its report lines, which are then printed in registry order
    // so the output is identical to a sequential run.
    let results = triphase_par::par_map(&selected, |b| certify(b, &lib, &opts));
    let mut all_ok = true;
    for result in results {
        let (lines, ok) = result?;
        for line in lines {
            println!("{line}");
        }
        all_ok &= ok;
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
