//! Regenerates the paper's **Fig. 4**: power decomposition (Clock / Seq /
//! Comb, plus the total) of the RISC-V-class and ARM-M0-class CPUs running
//! the Dhrystone-like and Coremark-like instruction mixes, for the three
//! design styles. The same netlist runs both workloads (the `mode` input
//! selects the ROM segment).

use triphase_bench::{drive_benchmark, Scale};
use triphase_cells::Library;
use triphase_circuits::cpu::{build_cpu, m0_like, rocket_lite, CpuConfig, Workload};
use triphase_core::{run_flow_with, FlowConfig, VariantResult};
use triphase_pnr::PnrOptions;
use triphase_power::percent_saving;

fn main() {
    let scale = Scale::from_env();
    let lib = Library::synthetic_28nm();
    let (sim, equiv, moves) = match scale {
        Scale::Quick => (48, 64, 2),
        Scale::Full => (200, 200, 12),
    };
    let cpus: Vec<CpuConfig> = match scale {
        Scale::Quick => vec![m0_like()],
        Scale::Full => vec![rocket_lite(), m0_like()],
    };
    println!("Fig. 4: CPU power (mW) under Dhrystone-like / Coremark-like workloads");
    println!(
        "{:<8} {:<12} {:<6} | {:>8} {:>8} {:>8} {:>8}",
        "CPU", "workload", "style", "Clock", "Seq", "Comb", "Total"
    );
    for cfg in cpus {
        let (nl, _) = build_cpu(&cfg, 11);
        for workload in [Workload::DhrystoneLike, Workload::CoremarkLike] {
            let flow_cfg = FlowConfig {
                seed: 11,
                sim_cycles: sim,
                equiv_cycles: equiv,
                pnr: PnrOptions {
                    seed: 11,
                    moves_per_cell: moves,
                    ..PnrOptions::default()
                },
                ..FlowConfig::default()
            };
            let report = run_flow_with(&nl, &lib, &flow_cfg, &move |n, cycles| {
                drive_benchmark(n, cycles, 11, Some(workload))
            })
            .unwrap_or_else(|e| {
                eprintln!("flow failed for {}: {e}", cfg.name);
                std::process::exit(1);
            });
            let wname = match workload {
                Workload::DhrystoneLike => "dhrystone",
                Workload::CoremarkLike => "coremark",
            };
            let bar = |style: &str, v: &VariantResult| {
                println!(
                    "{:<8} {:<12} {:<6} | {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
                    cfg.name,
                    wname,
                    style,
                    v.power.clock.total(),
                    v.power.seq.total(),
                    v.power.comb.total(),
                    v.power.total_mw()
                );
            };
            bar("FF", &report.ff);
            bar("M-S", &report.ms);
            bar("3-P", &report.three_phase);
            println!(
                "{:<8} {:<12} 3-P saves {:+.1}% vs FF, {:+.1}% vs M-S",
                cfg.name,
                wname,
                percent_saving(
                    report.ff.power.total_mw(),
                    report.three_phase.power.total_mw()
                ),
                percent_saving(
                    report.ms.power.total_mw(),
                    report.three_phase.power.total_mw()
                ),
            );
        }
    }
    println!();
    println!(
        "Paper Fig. 4: 3-phase saves 15.6%/21.2% (RISC-V) and 8.3%/20.1% (Arm-M0) \
         vs FF and M-S across Dhrystone and Coremark."
    );
}
