//! Load generator for the conversion service: an open-loop arrival
//! schedule over a seeded [`Recipe`] netlist mix, run twice — a cold
//! phase of unique jobs, then a warm phase resubmitting the identical
//! jobs against the now-populated memo store.
//!
//! ```text
//! loadgen --quick             # reduced mix, CI smoke configuration
//! loadgen --jobs 64 --rate 20 # 64 unique jobs at 20 arrivals/sec
//! loadgen --addr HOST:PORT    # drive an external daemon (default:
//!                             # spawn an in-process server)
//! loadgen --json              # print the report section to stdout
//! ```
//!
//! Measures sustained conversions/sec and open-loop p50/p99 latency per
//! phase (latency is charged from the *scheduled* arrival instant, so a
//! lagging submitter counts against the server, as in a real open-loop
//! harness), plus the warm-phase report-cache hit rate and per-job cache
//! provenance. Persists a `serve` section into `results/BENCH_serve.json`
//! via the shared read-merge-write [`ReportFile`] path.
//!
//! Exit codes (stable): `0` all gates met, `1` a gate failed (warm hit
//! rate `< 0.9`, warm/cold median speedup `< 5`, or warm p99 over
//! `--p99-bound-ms`), `2` usage error.

use std::collections::HashMap;
use std::io::{BufWriter, Write as _};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use triphase_bench::json::Json;
use triphase_bench::report::{section, ReportFile};
use triphase_core::FlowConfig;
use triphase_netlist::gen::Recipe;
use triphase_netlist::{snapshot, Netlist};
use triphase_serve::{
    read_frame, write_frame, Backoff, Client, Server, ServerOptions, MAX_FRAME_DEFAULT,
};

struct Options {
    quick: bool,
    jobs: usize,
    rate: f64,
    workers: usize,
    addr: Option<String>,
    json: bool,
    p99_bound_ms: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        quick: std::env::var("TRIPHASE_SCALE").as_deref() == Ok("quick"),
        jobs: 0,
        rate: 0.0,
        workers: 0,
        addr: None,
        json: false,
        p99_bound_ms: 1000.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--json" => opts.json = true,
            "--jobs" => {
                opts.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs requires an integer".to_owned())?;
            }
            "--rate" => {
                opts.rate = value("--rate")?
                    .parse()
                    .map_err(|_| "--rate requires a number".to_owned())?;
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers requires an integer".to_owned())?;
            }
            "--p99-bound-ms" => {
                opts.p99_bound_ms = value("--p99-bound-ms")?
                    .parse()
                    .map_err(|_| "--p99-bound-ms requires a number".to_owned())?;
            }
            "--addr" => opts.addr = Some(value("--addr")?),
            "--help" | "-h" => {
                return Err("usage: loadgen [--quick] [--jobs N] [--rate PER_SEC] \
                            [--workers N] [--addr HOST:PORT] [--p99-bound-ms MS] [--json]"
                    .to_owned())
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if opts.jobs == 0 {
        opts.jobs = if opts.quick { 24 } else { 64 };
    }
    if opts.rate <= 0.0 {
        opts.rate = if opts.quick { 30.0 } else { 20.0 };
    }
    Ok(opts)
}

/// The seeded job mix: recipe-generated netlists with at least one FF
/// (so conversion has work to do), each paired with a per-job flow
/// config seeded from the recipe.
fn job_mix(opts: &Options) -> Vec<(Netlist, FlowConfig)> {
    // Heavy enough that a cold flow is compute-bound (a few ms even in
    // release) — otherwise the warm-phase speedup would only measure
    // wire overhead.
    let (max_ops, max_width) = if opts.quick { (16, 6) } else { (20, 8) };
    let mut jobs = Vec::with_capacity(opts.jobs);
    let mut tag = 0x10adu64;
    while jobs.len() < opts.jobs {
        for recipe in Recipe::stream(tag, opts.jobs * 2, max_ops, max_width) {
            let nl = recipe.build();
            if nl.validate().is_err() || nl.stats().ffs == 0 {
                continue;
            }
            let mut cfg = FlowConfig {
                seed: recipe.seed + 1,
                sim_cycles: if opts.quick { 64 } else { 128 },
                equiv_cycles: if opts.quick { 128 } else { 256 },
                ..FlowConfig::default()
            };
            cfg.pnr.moves_per_cell = 2;
            jobs.push((nl, cfg));
            if jobs.len() == opts.jobs {
                break;
            }
        }
        tag = tag.wrapping_add(1);
    }
    jobs
}

fn config_wire(cfg: &FlowConfig) -> Json {
    triphase_serve::proto::config_json(cfg)
}

/// Per-job outcome collected by the drain thread.
#[derive(Default, Clone)]
struct DoneRec {
    ok: bool,
    cached_report: bool,
    stage_hits: u64,
    stage_misses: u64,
    done_at_ms: f64,
    code: String,
}

/// Per-job records keyed by name plus each job's scheduled arrival
/// (ms from phase start).
type PhaseOutcome = (HashMap<String, DoneRec>, Vec<(String, f64)>);

/// One phase: submit every job on the open-loop schedule over a fresh
/// connection, drain until all done events arrive.
fn run_phase(
    addr: &std::net::SocketAddr,
    phase: &str,
    jobs: &[(Netlist, FlowConfig)],
    rate: f64,
) -> Result<PhaseOutcome, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_nodelay(true).ok();
    let read_half = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let n = jobs.len();
    let t0 = Instant::now();

    // Drain thread: count stage provenance and stamp done instants.
    let drain = std::thread::spawn(move || -> Result<HashMap<String, DoneRec>, String> {
        let mut read_half = read_half;
        let mut recs: HashMap<String, DoneRec> = HashMap::new();
        let mut per_job: HashMap<u64, (u64, u64)> = HashMap::new();
        let mut done = 0usize;
        while done < n {
            let text =
                read_frame(&mut read_half, MAX_FRAME_DEFAULT).map_err(|e| format!("recv: {e}"))?;
            let ev = Json::parse(&text).map_err(|e| format!("bad frame: {e}"))?;
            let id = ev.get("job").and_then(Json::as_f64).unwrap_or(-1.0) as u64;
            match ev.get("event").and_then(Json::as_str) {
                Some("stage") => {
                    let slot = per_job.entry(id).or_default();
                    if ev.get("cache").and_then(Json::as_str) == Some("hit") {
                        slot.0 += 1;
                    } else {
                        slot.1 += 1;
                    }
                }
                Some("done") => {
                    done += 1;
                    let name = ev
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_owned();
                    let (stage_hits, stage_misses) = per_job.remove(&id).unwrap_or_default();
                    recs.insert(
                        name,
                        DoneRec {
                            ok: ev.get("ok") == Some(&Json::Bool(true)),
                            cached_report: ev.get("cached_report") == Some(&Json::Bool(true)),
                            stage_hits,
                            stage_misses,
                            done_at_ms: t0.elapsed().as_secs_f64() * 1e3,
                            code: ev
                                .get("code")
                                .and_then(Json::as_str)
                                .unwrap_or("")
                                .to_owned(),
                        },
                    );
                }
                Some("error") => return Err(format!("protocol error: {text}")),
                _ => {}
            }
        }
        Ok(recs)
    });

    // Open-loop submitter: one single-job submit frame per scheduled
    // arrival; a job's latency clock starts at its *scheduled* instant.
    let mut writer = BufWriter::new(stream);
    let mut schedule = Vec::with_capacity(n);
    for (i, (nl, cfg)) in jobs.iter().enumerate() {
        let name = format!("{phase}-{i}");
        let sched = Duration::from_secs_f64(i as f64 / rate);
        if let Some(wait) = sched.checked_sub(t0.elapsed()) {
            std::thread::sleep(wait);
        }
        let mut job = Json::obj();
        job.set("name", Json::Str(name.clone()));
        job.set("netlist", Json::Str(snapshot::to_text(nl)));
        job.set("config", config_wire(cfg));
        let mut req = Json::obj();
        req.set("kind", "submit".into());
        req.set("jobs", Json::Arr(vec![job]));
        write_frame(&mut writer, &req.to_pretty()).map_err(|e| format!("send: {e}"))?;
        schedule.push((name, sched.as_secs_f64() * 1e3));
    }
    writer.flush().ok();

    let mut recs = drain
        .join()
        .map_err(|_| "drain thread panicked".to_owned())??;

    // Retry pass: jobs shed by admission control come back as typed
    // `overloaded` dones; resubmit each under seeded-jittered backoff
    // (honoring the server's `retry_after_ms` hint) on a fresh
    // connection. The open-loop clock keeps running, so a shed job's
    // latency includes its whole retry wait — overload shows up in the
    // percentiles instead of silently vanishing from them.
    let shed: Vec<String> = recs
        .iter()
        .filter(|(_, r)| r.code == "overloaded")
        .map(|(name, _)| name.clone())
        .collect();
    if !shed.is_empty() {
        let mut client = Client::connect(addr).map_err(|e| format!("retry connect: {e}"))?;
        let mut backoff = Backoff::new(0x10ad);
        for name in shed {
            let idx: usize = name
                .strip_prefix(phase)
                .and_then(|s| s.strip_prefix('-'))
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("unparseable shed job name {name}"))?;
            let (nl, cfg) = &jobs[idx];
            let (stages, done) = client
                .convert_resilient(&name, nl, cfg, &mut backoff, 16)
                .map_err(|e| format!("retry of {name}: {e}"))?;
            let hits = stages
                .iter()
                .filter(|s| s.get("cache").and_then(Json::as_str) == Some("hit"))
                .count() as u64;
            recs.insert(
                name,
                DoneRec {
                    ok: done.get("ok") == Some(&Json::Bool(true)),
                    cached_report: done.get("cached_report") == Some(&Json::Bool(true)),
                    stage_hits: hits,
                    stage_misses: stages.len() as u64 - hits,
                    done_at_ms: t0.elapsed().as_secs_f64() * 1e3,
                    code: done
                        .get("code")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_owned(),
                },
            );
        }
    }
    Ok((recs, schedule))
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    // Nearest-rank.
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

struct PhaseStats {
    latencies_ms: Vec<f64>,
    p50_ms: f64,
    p99_ms: f64,
    conversions_per_s: f64,
    hit_rate: f64,
}

/// Latency per job (done − scheduled arrival), restricted to `keep`.
fn phase_stats(
    recs: &HashMap<String, DoneRec>,
    schedule: &[(String, f64)],
    keep: &dyn Fn(&str) -> bool,
) -> PhaseStats {
    let mut latencies_ms = Vec::new();
    let mut last_done = 0.0f64;
    let mut hits = 0usize;
    let mut kept = 0usize;
    for (name, sched_ms) in schedule {
        if !keep(name) {
            continue;
        }
        let Some(rec) = recs.get(name) else { continue };
        kept += 1;
        latencies_ms.push((rec.done_at_ms - sched_ms).max(0.0));
        last_done = last_done.max(rec.done_at_ms);
        hits += usize::from(rec.cached_report);
    }
    let mut sorted = latencies_ms.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    PhaseStats {
        p50_ms: percentile(&sorted, 50.0),
        p99_ms: percentile(&sorted, 99.0),
        conversions_per_s: if last_done > 0.0 {
            latencies_ms.len() as f64 / (last_done / 1e3)
        } else {
            0.0
        },
        hit_rate: if kept > 0 {
            hits as f64 / kept as f64
        } else {
            0.0
        },
        latencies_ms,
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let jobs = job_mix(&opts);

    // In-process daemon unless an external one was named.
    let (addr, local) = match &opts.addr {
        Some(addr) => match addr.parse() {
            Ok(addr) => (addr, None),
            Err(e) => {
                eprintln!("bad --addr: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let server = match Server::start(ServerOptions {
                workers: opts.workers,
                ..ServerOptions::default()
            }) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("bind failed: {e}");
                    return ExitCode::from(1);
                }
            };
            (server.addr(), Some(server))
        }
    };

    // Cold phase: every job is unique, the cache is empty.
    let (cold_recs, cold_sched) = match run_phase(&addr, "cold", &jobs, opts.rate) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cold phase failed: {e}");
            return ExitCode::from(1);
        }
    };
    // Warm phase: identical resubmission of the same jobs.
    let (warm_recs, warm_sched) = match run_phase(&addr, "warm", &jobs, opts.rate) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("warm phase failed: {e}");
            return ExitCode::from(1);
        }
    };
    if let Some(server) = local {
        server.stop();
        server.wait();
    }

    // A deterministic flow failure repeats identically in both phases
    // and is never cached; gate the latency stats on cold successes so
    // the cache comparison is like-for-like.
    let cold_ok: std::collections::HashSet<usize> = cold_recs
        .iter()
        .filter(|(_, r)| r.ok)
        .filter_map(|(name, _)| name.strip_prefix("cold-")?.parse().ok())
        .collect();
    let failures = jobs.len() - cold_ok.len();
    let keep_cold = |name: &str| -> bool {
        name.strip_prefix("cold-")
            .and_then(|i| i.parse().ok())
            .is_some_and(|i: usize| cold_ok.contains(&i))
    };
    let keep_warm = |name: &str| -> bool {
        name.strip_prefix("warm-")
            .and_then(|i| i.parse().ok())
            .is_some_and(|i: usize| cold_ok.contains(&i))
    };
    let cold = phase_stats(&cold_recs, &cold_sched, &keep_cold);
    let warm = phase_stats(&warm_recs, &warm_sched, &keep_warm);
    let speedup = if warm.p50_ms > 0.0 {
        cold.p50_ms / warm.p50_ms
    } else {
        f64::INFINITY
    };

    // Per-job cache provenance rows (the acceptance criterion's
    // "provenance recorded per job").
    let per_job = Json::Arr(
        warm_sched
            .iter()
            .filter_map(|(name, _)| {
                let rec = warm_recs.get(name)?;
                let mut row = Json::obj();
                row.set("job", Json::Str(name.clone()));
                row.set("ok", rec.ok.into());
                row.set("cached_report", rec.cached_report.into());
                row.set("stage_hits", rec.stage_hits.into());
                row.set("stage_misses", rec.stage_misses.into());
                if !rec.code.is_empty() {
                    row.set("code", Json::Str(rec.code.clone()));
                }
                Some(row)
            })
            .collect(),
    );

    let phase_json = |s: &PhaseStats| {
        let mut o = Json::obj();
        o.set("jobs", s.latencies_ms.len().into());
        o.set("p50_ms", s.p50_ms.into());
        o.set("p99_ms", s.p99_ms.into());
        o.set("conversions_per_s", s.conversions_per_s.into());
        o.set("report_cache_hit_rate", s.hit_rate.into());
        o
    };
    let mut out = section();
    out.set("quick", opts.quick.into());
    out.set("jobs", jobs.len().into());
    out.set("arrival_rate_per_s", opts.rate.into());
    out.set("flow_failures", failures.into());
    out.set("cold", phase_json(&cold));
    out.set("warm", phase_json(&warm));
    out.set("warm_over_cold_median_speedup", speedup.into());
    out.set("per_job_warm_provenance", per_job);

    let file = ReportFile::new("BENCH_serve.json");
    file.merge_or_exit("serve", out.clone());
    if opts.json {
        println!("{}", out.to_pretty());
    }
    eprintln!(
        "cold: p50 {:.1} ms, p99 {:.1} ms, {:.1} conv/s | warm: p50 {:.2} ms, p99 {:.2} ms, \
         {:.1} conv/s, hit rate {:.2} | median speedup {:.1}x | {} flow failures | {}",
        cold.p50_ms,
        cold.p99_ms,
        cold.conversions_per_s,
        warm.p50_ms,
        warm.p99_ms,
        warm.conversions_per_s,
        warm.hit_rate,
        speedup,
        failures,
        file.path().display()
    );

    // Gates: the service contract the CI smoke run asserts.
    let mut failed = false;
    if warm.hit_rate < 0.9 {
        eprintln!(
            "GATE: warm report-cache hit rate {:.2} < 0.90",
            warm.hit_rate
        );
        failed = true;
    }
    if speedup < 5.0 {
        eprintln!("GATE: warm/cold median speedup {speedup:.1}x < 5x");
        failed = true;
    }
    if warm.p99_ms > opts.p99_bound_ms {
        eprintln!(
            "GATE: warm p99 {:.1} ms exceeds the {:.1} ms bound",
            warm.p99_ms, opts.p99_bound_ms
        );
        failed = true;
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
