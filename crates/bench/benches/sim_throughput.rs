//! Gate-level simulation throughput (cycles/second) on an ISCAS-class
//! circuit, FF-based vs converted 3-phase (three clock events per cycle),
//! scalar interpreter vs the 64-lane packed kernel.
//!
//! Besides the human summary lines, the measurements are merged into the
//! `sim_throughput` section of `results/BENCH_sim.json`.

use triphase_bench::json::Json;
use triphase_bench::microbench::{samples, time_throughput};
use triphase_bench::perf::{measurement_json, merge_section};
use triphase_circuits::iscas::{generate_iscas, iscas_profiles};
use triphase_core::{assign_phases, extract_ff_graph, gated_clock_style, to_three_phase};
use triphase_ilp::PhaseConfig;
use triphase_sim::{run_random, run_random_packed, LANES};

fn main() {
    let profile = iscas_profiles()
        .into_iter()
        .find(|p| p.name == "s5378")
        .unwrap();
    let mut ff_design = generate_iscas(&profile, 42);
    gated_clock_style(&mut ff_design, 32).unwrap();
    let idx = ff_design.index();
    let graph = extract_ff_graph(&ff_design, &idx).unwrap();
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (latch_design, _) = to_three_phase(&ff_design, &assignment).unwrap();

    const CYCLES: u64 = 64;
    let n_samples = samples(10);
    let mut measured = Vec::new();
    for (label, nl) in [
        ("sim_s5378/ff_design", &ff_design),
        ("sim_s5378/three_phase", &latch_design),
    ] {
        let scalar = time_throughput(label, n_samples, CYCLES, || {
            run_random(nl, 1, CYCLES).unwrap().cycles()
        });
        let packed = time_throughput(
            &format!("{label} packed x{LANES}"),
            n_samples,
            CYCLES * LANES as u64,
            || {
                run_random_packed(nl, 1, CYCLES, LANES)
                    .unwrap()
                    .activity()
                    .cycles
            },
        );
        measured.push((scalar, packed));
    }

    let mut rows = Vec::new();
    for (scalar, packed) in &measured {
        let speedup = if packed.ns_per_element() > 0.0 {
            scalar.ns_per_element() / packed.ns_per_element()
        } else {
            0.0
        };
        let mut rec = Json::obj();
        rec.set("name", scalar.name.as_str().into());
        rec.set("scalar", measurement_json(scalar));
        rec.set("packed", measurement_json(packed));
        rec.set("speedup", speedup.into());
        rows.push(rec);
    }
    let mut section = Json::obj();
    section.set("generated_by", "sim_throughput".into());
    section.set("lanes", LANES.into());
    section.set("rows", Json::Arr(rows));
    match merge_section("sim_throughput", section) {
        Ok(path) => println!("wrote section \"sim_throughput\" -> {}", path.display()),
        Err(e) => eprintln!("sim_throughput section not written: {e}"),
    }
}
