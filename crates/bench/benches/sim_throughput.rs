//! Gate-level simulation throughput (cycles/second) on an ISCAS-class
//! circuit, FF-based vs converted 3-phase (three clock events per cycle).

use triphase_bench::microbench::{samples, time_throughput};
use triphase_circuits::iscas::{generate_iscas, iscas_profiles};
use triphase_core::{assign_phases, extract_ff_graph, gated_clock_style, to_three_phase};
use triphase_ilp::PhaseConfig;
use triphase_sim::run_random;

fn main() {
    let profile = iscas_profiles()
        .into_iter()
        .find(|p| p.name == "s5378")
        .unwrap();
    let mut ff_design = generate_iscas(&profile, 42);
    gated_clock_style(&mut ff_design, 32).unwrap();
    let idx = ff_design.index();
    let graph = extract_ff_graph(&ff_design, &idx).unwrap();
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (latch_design, _) = to_three_phase(&ff_design, &assignment).unwrap();

    const CYCLES: u64 = 64;
    let n_samples = samples(10);
    time_throughput("sim_s5378/ff_design", n_samples, CYCLES, || {
        run_random(&ff_design, 1, CYCLES).unwrap().cycles()
    });
    time_throughput("sim_s5378/three_phase", n_samples, CYCLES, || {
        run_random(&latch_design, 1, CYCLES).unwrap().cycles()
    });
}
