//! Gate-level simulation throughput (cycles/second) on an ISCAS-class
//! circuit, FF-based vs converted 3-phase (three clock events per cycle).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use triphase_circuits::iscas::{generate_iscas, iscas_profiles};
use triphase_core::{assign_phases, extract_ff_graph, gated_clock_style, to_three_phase};
use triphase_ilp::PhaseConfig;
use triphase_sim::run_random;

fn bench(c: &mut Criterion) {
    let profile = iscas_profiles()
        .into_iter()
        .find(|p| p.name == "s5378")
        .unwrap();
    let mut ff_design = generate_iscas(&profile, 42);
    gated_clock_style(&mut ff_design, 32).unwrap();
    let idx = ff_design.index();
    let graph = extract_ff_graph(&ff_design, &idx).unwrap();
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (latch_design, _) = to_three_phase(&ff_design, &assignment).unwrap();

    const CYCLES: u64 = 64;
    let mut g = c.benchmark_group("sim_s5378");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("ff_design", |b| {
        b.iter(|| run_random(&ff_design, 1, CYCLES).unwrap().cycles())
    });
    g.bench_function("three_phase", |b| {
        b.iter(|| run_random(&latch_design, 1, CYCLES).unwrap().cycles())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
