//! Static timing analysis throughput: classic FF STA vs the SMO
//! multi-phase latch analysis on the same design pre/post conversion.

use triphase_bench::microbench::{samples, time};
use triphase_cells::Library;
use triphase_circuits::iscas::{generate_iscas, iscas_profiles};
use triphase_core::{assign_phases, extract_ff_graph, gated_clock_style, to_three_phase};
use triphase_ilp::PhaseConfig;
use triphase_timing::{analyze_ff, analyze_smo};

fn main() {
    let lib = Library::synthetic_28nm();
    let profile = iscas_profiles()
        .into_iter()
        .find(|p| p.name == "s5378")
        .unwrap();
    let mut ff_design = generate_iscas(&profile, 42);
    gated_clock_style(&mut ff_design, 32).unwrap();
    let idx = ff_design.index();
    let graph = extract_ff_graph(&ff_design, &idx).unwrap();
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (latch_design, _) = to_three_phase(&ff_design, &assignment).unwrap();
    let latch_idx = latch_design.index();

    let n_samples = samples(20);
    time("sta_s5378/ff_sta", n_samples, || {
        analyze_ff(&ff_design, &lib, &idx, None)
            .unwrap()
            .min_period_ps
    });
    time("sta_s5378/smo_3phase", n_samples, || {
        analyze_smo(&latch_design, &lib, &latch_idx, None)
            .unwrap()
            .worst_setup_slack_ps
    });
}
