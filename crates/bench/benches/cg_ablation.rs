//! Ablation of the clock-gating stages (DESIGN.md design-choice study):
//! measures stage runtimes, and prints a one-shot power ablation table
//! (no CG / +common-enable / +M2 / +DDCG) to stderr during setup.

use triphase_bench::microbench::{samples, time};
use triphase_bench::{drive_stimulus, Stimulus};
use triphase_cells::Library;
use triphase_circuits::iscas::{generate_iscas, iscas_profiles};
use triphase_core::{run_flow_with, FlowConfig};
use triphase_pnr::PnrOptions;

fn ablation_table() {
    let lib = Library::synthetic_28nm();
    let profile = iscas_profiles()
        .into_iter()
        .find(|p| p.name == "s5378")
        .unwrap();
    let nl = generate_iscas(&profile, 42);
    eprintln!("CG ablation on s5378-like (3-phase clock power, mW):");
    for (tag, ce, m2, ddcg) in [
        ("no p2 gating        ", false, false, false),
        ("+common-enable (M1) ", true, false, false),
        ("+M2 latch removal   ", true, true, false),
        ("+multi-bit DDCG     ", true, true, true),
    ] {
        let cfg = FlowConfig {
            sim_cycles: 96,
            equiv_cycles: 0,
            common_enable_cg: ce,
            m2,
            ddcg,
            pnr: PnrOptions {
                moves_per_cell: 2,
                ..Default::default()
            },
            ..FlowConfig::default()
        };
        let report = run_flow_with(&nl, &lib, &cfg, &|n, c| {
            drive_stimulus(n, c, 42, Stimulus::Random)
        })
        .expect("flow");
        eprintln!(
            "  {tag}: clock {:.4}  total {:.4}  (gated: {} common-en, {} DDCG, {} M2)",
            report.three_phase.power.clock.total(),
            report.three_phase.power.total_mw(),
            report.cg.common_enable_gated,
            report.cg.ddcg_gated,
            report.cg.m2_replaced,
        );
    }
}

fn main() {
    ablation_table();
    let lib = Library::synthetic_28nm();
    let profile = iscas_profiles()
        .into_iter()
        .find(|p| p.name == "s1196")
        .unwrap();
    let nl = generate_iscas(&profile, 42);
    let cfg = FlowConfig {
        sim_cycles: 32,
        equiv_cycles: 0,
        pnr: PnrOptions {
            moves_per_cell: 1,
            ..Default::default()
        },
        ..FlowConfig::default()
    };
    time("cg_stages/full_flow_with_cg", samples(10), || {
        run_flow_with(&nl, &lib, &cfg, &|n, c| {
            drive_stimulus(n, c, 42, Stimulus::Random)
        })
        .unwrap()
        .three_phase
        .registers()
    });
}
