//! Scaling of the phase-assignment solver (the paper's Gurobi stand-in):
//! layered pipeline FF graphs of growing size. The paper reports the ILP
//! is at most 27 s and <1% of flow runtime.

use triphase_bench::microbench::{samples, time};
use triphase_circuits::pipeline::linear_pipeline;
use triphase_core::extract_ff_graph;
use triphase_ilp::{PhaseConfig, PhaseProblem};

fn problems(n_ffs: usize) -> PhaseProblem {
    let width = 16;
    let stages = n_ffs / width;
    let nl = linear_pipeline(stages.max(2), width, 1, 1000.0);
    let idx = nl.index();
    extract_ff_graph(&nl, &idx).unwrap().to_phase_problem()
}

fn main() {
    let n_samples = samples(10);
    for n in [64usize, 256, 1024] {
        let p = problems(n);
        time(&format!("phase_assignment/{n}"), n_samples, || {
            let sol = p.solve(&PhaseConfig::default());
            assert!(sol.cost > 0);
            sol.cost
        });
    }

    // The generic simplex+B&B path (the literal ILP) on a small instance.
    let p = problems(32);
    time("generic_ilp/literal_ilp_32ff", n_samples, || {
        p.solve_via_ilp(&triphase_ilp::IlpConfig::default())
            .expect("solvable")
            .cost
    });
}
