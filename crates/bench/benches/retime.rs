//! Constrained retiming runtime on converted 3-phase designs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triphase_cells::Library;
use triphase_circuits::pipeline::linear_pipeline;
use triphase_core::{assign_phases, extract_ff_graph, retime_three_phase, to_three_phase};
use triphase_ilp::PhaseConfig;

fn bench(c: &mut Criterion) {
    let lib = Library::synthetic_28nm();
    let mut g = c.benchmark_group("retime_3phase");
    g.sample_size(10);
    for stages in [4usize, 8, 16] {
        let nl = linear_pipeline(stages, 8, 3, 900.0);
        let idx = nl.index();
        let graph = extract_ff_graph(&nl, &idx).unwrap();
        let assignment = assign_phases(&graph, &PhaseConfig::default());
        let (tp, _) = to_three_phase(&nl, &assignment).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(stages), &tp, |b, tp| {
            b.iter(|| {
                let (_, report) = retime_three_phase(tp, &lib, 0.5).unwrap();
                report.achieved_ps
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
