//! Constrained retiming runtime on converted 3-phase designs.

use triphase_bench::microbench::{samples, time};
use triphase_cells::Library;
use triphase_circuits::pipeline::linear_pipeline;
use triphase_core::{assign_phases, extract_ff_graph, retime_three_phase, to_three_phase};
use triphase_ilp::PhaseConfig;

fn main() {
    let lib = Library::synthetic_28nm();
    let n_samples = samples(10);
    for stages in [4usize, 8, 16] {
        let nl = linear_pipeline(stages, 8, 3, 900.0);
        let idx = nl.index();
        let graph = extract_ff_graph(&nl, &idx).unwrap();
        let assignment = assign_phases(&graph, &PhaseConfig::default());
        let (tp, _) = to_three_phase(&nl, &assignment).unwrap();
        time(&format!("retime_3phase/{stages}"), n_samples, || {
            let (_, report) = retime_three_phase(&tp, &lib, 0.5).unwrap();
            report.achieved_ps
        });
    }
}
