//! End-to-end conversion runtime (FF graph extraction + ILP + rewrite),
//! the core of the paper's flow, per benchmark size.

use triphase_bench::microbench::{samples, time};
use triphase_circuits::iscas::{generate_iscas, iscas_profiles};
use triphase_core::{assign_phases, extract_ff_graph, gated_clock_style, to_three_phase};
use triphase_ilp::PhaseConfig;

fn main() {
    let n_samples = samples(10);
    for name in ["s1196", "s5378", "s13207"] {
        let profile = iscas_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap();
        let mut nl = generate_iscas(&profile, 42);
        gated_clock_style(&mut nl, 32).unwrap();
        time(&format!("convert/{name}"), n_samples, || {
            let idx = nl.index();
            let graph = extract_ff_graph(&nl, &idx).unwrap();
            let assignment = assign_phases(&graph, &PhaseConfig::default());
            let (tp, _) = to_three_phase(&nl, &assignment).unwrap();
            tp.stats().latches
        });
    }
}
