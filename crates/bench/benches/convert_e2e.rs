//! End-to-end conversion runtime (FF graph extraction + ILP + rewrite),
//! the core of the paper's flow, per benchmark size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triphase_circuits::iscas::{generate_iscas, iscas_profiles};
use triphase_core::{assign_phases, extract_ff_graph, gated_clock_style, to_three_phase};
use triphase_ilp::PhaseConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("convert");
    g.sample_size(10);
    for name in ["s1196", "s5378", "s13207"] {
        let profile = iscas_profiles().into_iter().find(|p| p.name == name).unwrap();
        let mut nl = generate_iscas(&profile, 42);
        gated_clock_style(&mut nl, 32).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            b.iter(|| {
                let idx = nl.index();
                let graph = extract_ff_graph(nl, &idx).unwrap();
                let assignment = assign_phases(&graph, &PhaseConfig::default());
                let (tp, _) = to_three_phase(nl, &assignment).unwrap();
                tp.stats().latches
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
