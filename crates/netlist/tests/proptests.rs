//! Property-style tests: Verilog round-trips and structural invariants on
//! randomly built netlists, driven by a deterministic recipe stream.

use triphase_netlist::gen::Recipe;
use triphase_netlist::{verilog, Builder, ClockSpec, Netlist, SplitMix64 as Rng};

/// Build a random netlist from a recipe of word operations (the shared
/// generator also drives the `triphase-bench` fuzz campaign).
fn build(ops: &[u8], width: usize, seed: u64) -> Netlist {
    Recipe {
        ops: ops.to_vec(),
        width,
        seed,
    }
    .build()
}

/// Draw `(ops, width, seed)` recipes from a named stream.
fn recipes(tag: u64, cases: usize, max_ops: usize, max_width: usize) -> Vec<(Vec<u8>, usize, u64)> {
    Recipe::stream(tag, cases, max_ops, max_width)
        .into_iter()
        .map(|r| (r.ops, r.width, r.seed))
        .collect()
}

#[test]
fn random_netlists_validate() {
    for (ops, width, seed) in recipes(11, 24, 12, 8) {
        let nl = build(&ops, width, seed);
        assert!(nl.validate().is_ok(), "ops {ops:?} width {width}");
        let idx = nl.index();
        assert!(triphase_netlist::graph::comb_topo_order(&nl, &idx).is_ok());
    }
}

#[test]
fn verilog_roundtrip_preserves_stats() {
    for (ops, width, seed) in recipes(22, 24, 10, 6) {
        let nl = build(&ops, width, seed);
        let text = verilog::to_verilog(&nl);
        let back = verilog::from_verilog(&text).unwrap();
        assert_eq!(back.stats(), nl.stats(), "ops {ops:?} width {width}");
        // Idempotent: a second round-trip produces identical stats.
        let text2 = verilog::to_verilog(&back);
        let back2 = verilog::from_verilog(&text2).unwrap();
        assert_eq!(back2.stats(), back.stats());
    }
}

#[test]
fn compact_preserves_structure() {
    for (ops, width, seed) in recipes(33, 24, 10, 6) {
        let nl = build(&ops, width, seed);
        let c = nl.compact();
        assert_eq!(c.stats(), nl.stats(), "ops {ops:?} width {width}");
        assert!(c.validate().is_ok());
        assert_eq!(c.ports().len(), nl.ports().len());
    }
}

#[test]
fn word_rotations_compose() {
    let mut rng = Rng(44);
    for _ in 0..32 {
        let width = rng.range(1, 16);
        let a = rng.range(0, 32);
        let b = rng.range(0, 32);
        let mut nl = Netlist::new("rot");
        let mut bld = Builder::new(&mut nl, "u");
        let w = bld.word_input("w", width);
        let both = w.rotl(a).rotl(b);
        let once = w.rotl((a + b) % width.max(1));
        assert_eq!(both, once, "width {width} a {a} b {b}");
        let inv = w.rotl(a).rotr(a);
        assert_eq!(inv, w);
    }
}

/// `opt::optimize` never changes behaviour (simulation equivalence on
/// random netlists seeded with constants, buffers, and dead logic).
#[test]
fn optimize_preserves_behaviour() {
    use triphase_sim::equiv_stream;
    for (ops, width, seed) in recipes(55, 16, 10, 6) {
        let golden = build(&ops, width, seed);
        let mut opt = golden.clone();
        // Sprinkle removable structure: a buffer chain and dead gate.
        {
            let mut b = Builder::new(&mut opt, "x");
            let src = golden.ports()[1].net; // some data input net
            let b1 = b.buf(src);
            let _dead = b.not(b1);
        }
        triphase_netlist::opt::optimize(&mut opt);
        assert!(opt.validate().is_ok(), "ops {ops:?} width {width}");
        let r = equiv_stream(&golden, &opt, seed, 100).unwrap();
        assert!(r.equivalent(), "ops {ops:?}: mismatch {:?}", r.mismatch);
    }
}

#[test]
fn sop_matches_truth_table_in_simulation() {
    use triphase_sim::{Logic, Simulator};
    // A random-ish 4-in/3-out truth table lowered to gates must agree
    // with direct table lookup for every input combination.
    let table: Vec<u64> = (0..16u64).map(|i| ((i * 0x9E37) >> 3) & 0b111).collect();
    let mut nl = Netlist::new("sop");
    let mut b = Builder::new(&mut nl, "u");
    let (ckp, _ck) = b.netlist().add_input("ck");
    let sel = b.word_input("s", 4);
    let out = b.sop(&sel, 3, &table);
    b.word_output("y", &out);
    nl.clock = Some(ClockSpec::single(ckp, 1000.0));
    let mut sim = Simulator::new(&nl).unwrap();
    sim.reset_zero();
    for (value, &want) in table.iter().enumerate() {
        for bit in 0..4 {
            let p = nl.find_port(&format!("s_{bit}")).unwrap();
            sim.set_input(p, Logic::from_bool((value >> bit) & 1 == 1));
        }
        sim.step_cycle();
        let got: u64 = (0..3)
            .map(|bit| {
                let p = nl.find_port(&format!("y_{bit}")).unwrap();
                u64::from(sim.output(p) == Logic::One) << bit
            })
            .sum();
        assert_eq!(got, want, "input {value:04b}");
    }
}

#[test]
fn adder_matches_integer_addition() {
    use triphase_sim::{Logic, Simulator};
    let mut nl = Netlist::new("add");
    let mut b = Builder::new(&mut nl, "u");
    let (ckp, _ck) = b.netlist().add_input("ck");
    let a = b.word_input("a", 6);
    let c = b.word_input("b", 6);
    let (sum, carry) = b.add(&a, &c, None);
    b.word_output("s", &sum);
    b.netlist().add_output("co", carry);
    nl.clock = Some(ClockSpec::single(ckp, 1000.0));
    let mut sim = Simulator::new(&nl).unwrap();
    sim.reset_zero();
    for (x, y) in [(0u64, 0u64), (1, 1), (63, 1), (21, 42), (63, 63), (32, 31)] {
        for bit in 0..6 {
            let pa = nl.find_port(&format!("a_{bit}")).unwrap();
            let pb = nl.find_port(&format!("b_{bit}")).unwrap();
            sim.set_input(pa, Logic::from_bool((x >> bit) & 1 == 1));
            sim.set_input(pb, Logic::from_bool((y >> bit) & 1 == 1));
        }
        sim.step_cycle();
        let mut got: u64 = (0..6)
            .map(|bit| {
                let p = nl.find_port(&format!("s_{bit}")).unwrap();
                u64::from(sim.output(p) == Logic::One) << bit
            })
            .sum();
        if sim.output(nl.find_port("co").unwrap()) == Logic::One {
            got |= 1 << 6;
        }
        assert_eq!(got, x + y, "{x} + {y}");
    }
}
