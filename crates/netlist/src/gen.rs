//! Deterministic recipe-driven random netlist generator.
//!
//! A [`Recipe`] — a byte string of word operations plus a word width and
//! a stimulus seed — expands to a small clocked netlist through the
//! word-level [`Builder`]. Recipes are drawn from named [`SplitMix64`]
//! streams, so a given `(tag, cases)` pair always yields the same
//! netlists on every machine and thread count.
//!
//! The module is shared by the netlist property tests and the
//! `triphase-bench` fuzz campaign: a failing fuzz case is reported as its
//! recipe, which replays verbatim as a property-test input.
//!
//! # Examples
//!
//! ```
//! use triphase_netlist::gen::Recipe;
//!
//! let recipe = Recipe {
//!     ops: vec![0, 5, 3],
//!     width: 4,
//!     seed: 7,
//! };
//! let nl = recipe.build();
//! assert!(nl.validate().is_ok());
//! assert!(nl.stats().ffs > 0); // op 5 is a register stage
//! ```

use crate::rng::SplitMix64;
use crate::{Builder, ClockSpec, Netlist, Word};

/// One generation recipe: each byte selects a word operation (`op % 7`),
/// applied in order to a `width`-bit input word; `seed` names the
/// stimulus stream used when the netlist is simulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recipe {
    /// Word operations, one per byte (`op % 7` selects the operator).
    pub ops: Vec<u8>,
    /// Input/output word width in bits.
    pub width: usize,
    /// Stimulus seed the netlist is driven with downstream.
    pub seed: u64,
}

impl Recipe {
    /// Draw `cases` recipes from the stream named `tag`, with `1..max_ops`
    /// operations over words of `1..max_width` bits.
    pub fn stream(tag: u64, cases: usize, max_ops: usize, max_width: usize) -> Vec<Recipe> {
        let mut rng = SplitMix64(tag);
        (0..cases)
            .map(|_| {
                let ops: Vec<u8> = (0..rng.range(1, max_ops))
                    .map(|_| rng.next_u64() as u8)
                    .collect();
                Recipe {
                    ops,
                    width: rng.range(1, max_width),
                    seed: rng.next_u64() % 100,
                }
            })
            .collect()
    }

    /// Expand the recipe into a netlist (single clock `ck`, input word
    /// `in`, output word `out`).
    pub fn build(&self) -> Netlist {
        let mut nl = Netlist::new(format!("rand{}", self.seed));
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let mut w: Word = b.word_input("in", self.width.max(1));
        for (i, &op) in self.ops.iter().enumerate() {
            w = match op % 7 {
                0 => {
                    let r = w.rotl(1 + i % 3);
                    b.xor_word(&w, &r)
                }
                1 => {
                    let r = w.rotr(1);
                    b.and_word(&w, &r)
                }
                2 => {
                    let r = w.rotl(2);
                    b.or_word(&w, &r)
                }
                3 => b.not_word(&w),
                4 => b.add_const(&w, (op as u64).wrapping_mul(0x9E37) & 0xff),
                5 => b.dff_word(&w, ck),
                _ => {
                    let s = w.bit(0);
                    let r = w.rotl(1);
                    b.mux_word(&w, &r, s)
                }
            };
        }
        b.word_output("out", &w);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_tag_sensitive() {
        let a = Recipe::stream(11, 8, 12, 8);
        let b = Recipe::stream(11, 8, 12, 8);
        assert_eq!(a, b);
        let c = Recipe::stream(12, 8, 12, 8);
        assert_ne!(a, c);
        for r in &a {
            assert!(!r.ops.is_empty() && r.ops.len() < 12);
            assert!((1..8).contains(&r.width));
        }
    }

    #[test]
    fn every_streamed_recipe_builds_valid() {
        for r in Recipe::stream(3, 16, 10, 6) {
            let nl = r.build();
            assert!(nl.validate().is_ok(), "recipe {:?}", r.ops);
        }
    }
}
