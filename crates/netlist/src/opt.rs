//! Post-conversion netlist cleanup: constant folding, dead-logic
//! sweeping, and buffer removal.
//!
//! The paper triggers a re-optimization of the design after retiming
//! (§IV-C); these passes are the technology-independent part of that
//! step, applied to every design variant equally so comparisons stay
//! fair.

use crate::id::{CellId, NetId};
use crate::netlist::Netlist;
use triphase_cells::CellKind;

/// Statistics of an optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Cells replaced by constants or simplified by constant inputs.
    pub folded: usize,
    /// Dead cells removed (no observable fan-out).
    pub swept: usize,
    /// Buffers removed by rewiring their loads.
    pub buffers_removed: usize,
}

impl OptReport {
    /// Total cells eliminated.
    pub fn removed(&self) -> usize {
        self.swept + self.buffers_removed
    }
}

/// Run constant folding, buffer sweeping, and dead-logic removal to a
/// fixpoint. Sequential cells, clock gates, and anything observable from
/// a primary output are preserved; behaviour is unchanged (covered by
/// equivalence tests).
pub fn optimize(nl: &mut Netlist) -> OptReport {
    let mut report = OptReport::default();
    loop {
        let folded = fold_constants(nl);
        let buffers = sweep_buffers(nl);
        let swept = sweep_dead(nl);
        report.folded += folded;
        report.buffers_removed += buffers;
        report.swept += swept;
        if folded + buffers + swept == 0 {
            return report;
        }
    }
}

/// Replace combinational cells whose output is decided by constant inputs
/// (all-constant inputs, or an absorbing constant like `AND(x, 0)`).
/// Returns the number of cells folded.
pub fn fold_constants(nl: &mut Netlist) -> usize {
    let idx = nl.index();
    // Constant value per net, if driven by a constant cell.
    let mut const_of = vec![None::<bool>; nl.net_capacity()];
    for (_, cell) in nl.cells() {
        match cell.kind {
            CellKind::Const0 => const_of[cell.output().index()] = Some(false),
            CellKind::Const1 => const_of[cell.output().index()] = Some(true),
            _ => {}
        }
    }
    let mut folds: Vec<(CellId, bool)> = Vec::new();
    for (id, cell) in nl.cells() {
        if !cell.kind.is_comb()
            || matches!(
                cell.kind,
                CellKind::Const0 | CellKind::Const1 | CellKind::ClkBuf
            )
        {
            continue;
        }
        let ins: Vec<Option<bool>> = cell.inputs().iter().map(|n| const_of[n.index()]).collect();
        let value = if ins.iter().all(|v| v.is_some()) {
            let bits: Vec<bool> = ins.iter().map(|v| v.unwrap()).collect();
            Some(cell.kind.eval_comb(&bits))
        } else {
            // Absorbing constants.
            match cell.kind {
                CellKind::And(_) if ins.contains(&Some(false)) => Some(false),
                CellKind::Nand(_) if ins.contains(&Some(false)) => Some(true),
                CellKind::Or(_) if ins.contains(&Some(true)) => Some(true),
                CellKind::Nor(_) if ins.contains(&Some(true)) => Some(false),
                _ => None,
            }
        };
        if let Some(v) = value {
            folds.push((id, v));
        }
    }
    let _ = idx;
    let n = folds.len();
    for (id, v) in folds {
        let out = nl.cell(id).output();
        let kind = if v {
            CellKind::Const1
        } else {
            CellKind::Const0
        };
        nl.replace_cell(id, kind, vec![out]);
    }
    n
}

/// Remove plain data buffers by rewiring their loads to the buffer input.
/// Buffers whose output is observed by a port are kept (ports cannot be
/// rebound). Returns the number removed.
pub fn sweep_buffers(nl: &mut Netlist) -> usize {
    let idx = nl.index();
    // out-net -> input-net for every removable buffer; chains are
    // resolved transitively so loads always land on a surviving driver.
    let mut alias: std::collections::HashMap<NetId, NetId> = std::collections::HashMap::new();
    let mut removals: Vec<(CellId, NetId)> = Vec::new();
    for (id, cell) in nl.cells() {
        if cell.kind != CellKind::Buf {
            continue;
        }
        let out = cell.output();
        if !idx.observers(out).is_empty() {
            continue;
        }
        alias.insert(out, cell.pin(0));
        removals.push((id, out));
    }
    let resolve = |mut net: NetId| -> NetId {
        let mut hops = 0;
        while let Some(&next) = alias.get(&net) {
            net = next;
            hops += 1;
            if hops > alias.len() {
                break; // defensive: a buffer loop would be a comb cycle anyway
            }
        }
        net
    };
    let n = removals.len();
    for (id, out) in &removals {
        let target = resolve(*out);
        for load in idx.loads(*out) {
            if nl.try_cell(load.cell).is_some() {
                nl.set_pin(load.cell, load.pin, target);
            }
        }
        nl.remove_cell(*id);
    }
    n
}

/// Remove combinational cells whose output drives nothing. Returns the
/// number removed.
pub fn sweep_dead(nl: &mut Netlist) -> usize {
    let mut total = 0usize;
    loop {
        let idx = nl.index();
        let dead: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| c.kind.is_comb() && c.kind != CellKind::ClkBuf)
            .filter(|(_, c)| {
                let out = c.output();
                idx.loads(out).is_empty() && idx.observers(out).is_empty()
            })
            .map(|(id, _)| id)
            .collect();
        if dead.is_empty() {
            return total;
        }
        total += dead.len();
        for id in dead {
            nl.remove_cell(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Builder;
    use crate::netlist::ClockSpec;

    #[test]
    fn folds_constant_cones() {
        let mut nl = Netlist::new("c");
        let mut b = Builder::new(&mut nl, "u");
        let (_, a) = b.netlist().add_input("a");
        let zero = b.const0();
        let dead_and = b.gate(CellKind::And(2), &[a, zero]); // = 0
        let y = b.gate(CellKind::Or(2), &[dead_and, a]); // = a
        b.netlist().add_output("y", y);
        let report = optimize(&mut nl);
        assert!(report.folded >= 1, "{report:?}");
        nl.validate().unwrap();
        // The AND is now a constant; the OR survives (not all-const).
        assert!(nl.cells().all(|(_, c)| c.kind != CellKind::And(2)));
    }

    #[test]
    fn sweeps_unobservable_logic() {
        let mut nl = Netlist::new("d");
        let mut b = Builder::new(&mut nl, "u");
        let (_, a) = b.netlist().add_input("a");
        let (_, c) = b.netlist().add_input("b");
        let _unused = b.gate(CellKind::Xor(2), &[a, c]); // drives nothing
        let kept = b.gate(CellKind::And(2), &[a, c]);
        b.netlist().add_output("y", kept);
        let report = optimize(&mut nl);
        assert_eq!(report.swept, 1);
        assert_eq!(nl.cell_count(), 1);
        nl.validate().unwrap();
    }

    #[test]
    fn buffer_chains_collapse() {
        let mut nl = Netlist::new("b");
        let mut b = Builder::new(&mut nl, "u");
        let (_, a) = b.netlist().add_input("a");
        let b1 = b.buf(a);
        let b2 = b.buf(b1);
        let y = b.gate(CellKind::Inv, &[b2]);
        b.netlist().add_output("y", y);
        let report = optimize(&mut nl);
        assert_eq!(report.buffers_removed, 2);
        nl.validate().unwrap();
        // The inverter now reads the input net directly.
        let (_, inv) = nl.cells().find(|(_, c)| c.kind == CellKind::Inv).unwrap();
        assert_eq!(inv.pin(0), a);
    }

    #[test]
    fn port_observed_buffers_kept() {
        let mut nl = Netlist::new("pb");
        let mut b = Builder::new(&mut nl, "u");
        let (_, a) = b.netlist().add_input("a");
        let y = b.buf(a);
        b.netlist().add_output("y", y);
        let report = optimize(&mut nl);
        assert_eq!(report.buffers_removed, 0);
        assert_eq!(nl.cell_count(), 1);
        nl.validate().unwrap();
    }

    #[test]
    fn sequential_fabric_untouched() {
        // A realistic mix: constants, buffers, dead logic around FFs.
        // (Behavioural equivalence of `optimize` is covered by the
        // simulation-based integration test in `tests/proptests.rs`.)
        let mut nl = Netlist::new("seq");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let d = b.word_input("d", 4);
        let zero = b.const0();
        let masked: Vec<_> = d
            .bits()
            .iter()
            .map(|&x| b.gate(CellKind::Or(2), &[x, zero]))
            .collect();
        let q = b.dff_word(&crate::build::Word(masked), ck);
        let buffered: Vec<_> = q.bits().iter().map(|&x| b.buf(x)).collect();
        let _dead = b.gate(CellKind::Xor(2), &[q.bit(0), q.bit(1)]);
        b.word_output("q", &crate::build::Word(buffered));
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));

        let report = optimize(&mut nl);
        assert!(report.swept >= 1);
        assert_eq!(nl.stats().ffs, 4, "FFs untouched");
        nl.validate().unwrap();
    }
}
