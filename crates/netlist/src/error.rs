//! Error type of the netlist crate.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building, validating, or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A structural invariant is violated (message explains which).
    Invalid(String),
    /// Combinational cycle found; the payload names a cell on the cycle.
    CombLoop(String),
    /// Parse error: `(line, message)`.
    Parse(usize, String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Invalid(msg) => write!(f, "invalid netlist: {msg}"),
            Error::CombLoop(cell) => {
                write!(f, "combinational cycle through cell {cell}")
            }
            Error::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(Error::Invalid("x".into()).to_string(), "invalid netlist: x");
        assert!(Error::CombLoop("u1".into()).to_string().contains("u1"));
        assert!(Error::Parse(3, "bad token".into())
            .to_string()
            .contains("line 3"));
    }
}
