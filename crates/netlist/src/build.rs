//! Word-level construction helpers.
//!
//! [`Builder`] wraps a mutable [`Netlist`] and provides gate- and word-level
//! primitives with automatic unique naming. [`Word`] is a little-endian
//! (LSB-first) bundle of nets. The benchmark generators in
//! `triphase-circuits` are written entirely against this API.
//!
//! # Examples
//!
//! ```
//! use triphase_netlist::{Builder, Netlist};
//!
//! let mut nl = Netlist::new("adder8");
//! let mut b = Builder::new(&mut nl, "u");
//! let a = b.word_input("a", 8);
//! let c = b.word_input("b", 8);
//! let (sum, _carry) = b.add(&a, &c, None);
//! b.word_output("sum", &sum);
//! nl.validate().unwrap();
//! ```

use crate::id::NetId;
use crate::netlist::Netlist;
use triphase_cells::CellKind;

/// Maximum gate arity emitted by tree reductions.
const TREE_ARITY: usize = 4;

/// An LSB-first bundle of nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word(pub Vec<NetId>);

impl Word {
    /// Number of bits.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// Net of bit `i` (LSB = 0).
    pub fn bit(&self, i: usize) -> NetId {
        self.0[i]
    }

    /// Bits of the word.
    pub fn bits(&self) -> &[NetId] {
        &self.0
    }

    /// Sub-word `[lo, lo+len)`.
    pub fn slice(&self, lo: usize, len: usize) -> Word {
        Word(self.0[lo..lo + len].to_vec())
    }

    /// Concatenate `self` (low bits) with `hi` (high bits).
    pub fn concat(&self, hi: &Word) -> Word {
        let mut bits = self.0.clone();
        bits.extend_from_slice(&hi.0);
        Word(bits)
    }

    /// Rotate left by `k` (constant rotation, pure rewiring):
    /// result bit `i` = source bit `(i - k) mod w`.
    pub fn rotl(&self, k: usize) -> Word {
        let w = self.width();
        let k = k % w;
        Word((0..w).map(|i| self.0[(i + w - k) % w]).collect())
    }

    /// Rotate right by `k`.
    pub fn rotr(&self, k: usize) -> Word {
        let w = self.width();
        self.rotl(w - (k % w))
    }
}

impl FromIterator<NetId> for Word {
    fn from_iter<T: IntoIterator<Item = NetId>>(iter: T) -> Self {
        Word(iter.into_iter().collect())
    }
}

/// Gate- and word-level netlist construction with automatic naming.
#[derive(Debug)]
pub struct Builder<'a> {
    nl: &'a mut Netlist,
    prefix: String,
    counter: usize,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

impl<'a> Builder<'a> {
    /// Wrap `nl`; generated names start with `prefix`.
    pub fn new(nl: &'a mut Netlist, prefix: impl Into<String>) -> Builder<'a> {
        Builder {
            nl,
            prefix: prefix.into(),
            counter: 0,
            const0: None,
            const1: None,
        }
    }

    /// The wrapped netlist.
    pub fn netlist(&mut self) -> &mut Netlist {
        self.nl
    }

    fn fresh(&mut self, hint: &str) -> String {
        let name = format!("{}_{}{}", self.prefix, hint, self.counter);
        self.counter += 1;
        name
    }

    /// A new unnamed internal net.
    pub fn net(&mut self, hint: &str) -> NetId {
        let name = self.fresh(hint);
        self.nl.add_net(name)
    }

    // ---- gate level --------------------------------------------------------

    /// Instantiate `kind` with the given inputs; returns the output net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the kind's input count.
    pub fn gate(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        let out = self.net("w");
        let name = self.fresh("g");
        let mut pins = inputs.to_vec();
        pins.push(out);
        self.nl.add_cell(name, kind, pins);
        out
    }

    /// Constant-0 net (one `TIELO` cell shared per builder).
    pub fn const0(&mut self) -> NetId {
        if let Some(n) = self.const0 {
            return n;
        }
        let n = self.gate(CellKind::Const0, &[]);
        self.const0 = Some(n);
        n
    }

    /// Constant-1 net.
    pub fn const1(&mut self) -> NetId {
        if let Some(n) = self.const1 {
            return n;
        }
        let n = self.gate(CellKind::Const1, &[]);
        self.const1 = Some(n);
        n
    }

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(CellKind::Inv, &[a])
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.gate(CellKind::Buf, &[a])
    }

    fn tree(&mut self, mk: fn(u8) -> CellKind, inputs: &[NetId]) -> NetId {
        assert!(!inputs.is_empty(), "empty reduction");
        if inputs.len() == 1 {
            return inputs[0];
        }
        let mut level: Vec<NetId> = inputs.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(TREE_ARITY));
            for chunk in level.chunks(TREE_ARITY) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    next.push(self.gate(mk(chunk.len() as u8), chunk));
                }
            }
            level = next;
        }
        level[0]
    }

    /// AND reduction (tree of ≤4-input gates).
    pub fn and(&mut self, inputs: &[NetId]) -> NetId {
        self.tree(CellKind::And, inputs)
    }

    /// OR reduction.
    pub fn or(&mut self, inputs: &[NetId]) -> NetId {
        self.tree(CellKind::Or, inputs)
    }

    /// XOR reduction (parity).
    pub fn xor(&mut self, inputs: &[NetId]) -> NetId {
        self.tree(CellKind::Xor, inputs)
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Nand(2), &[a, b])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Nor(2), &[a, b])
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Xnor(2), &[a, b])
    }

    /// 2:1 mux: `s ? d1 : d0`.
    pub fn mux(&mut self, d0: NetId, d1: NetId, s: NetId) -> NetId {
        self.gate(CellKind::Mux2, &[d0, d1, s])
    }

    // ---- ports -------------------------------------------------------------

    /// Declare a `width`-bit input bus `name[0..width)`.
    pub fn word_input(&mut self, name: &str, width: usize) -> Word {
        (0..width)
            .map(|i| self.nl.add_input(&format!("{name}_{i}")).1)
            .collect()
    }

    /// Declare output ports `name[0..width)` observing `w`.
    pub fn word_output(&mut self, name: &str, w: &Word) {
        for (i, &bit) in w.bits().iter().enumerate() {
            self.nl.add_output(&format!("{name}_{i}"), bit);
        }
    }

    // ---- word level ----------------------------------------------------------

    /// Constant word of `width` bits with value `value`.
    pub fn const_word(&mut self, value: u64, width: usize) -> Word {
        (0..width)
            .map(|i| {
                if (value >> i) & 1 == 1 {
                    self.const1()
                } else {
                    self.const0()
                }
            })
            .collect()
    }

    /// Bitwise map of two words.
    fn zip2(
        &mut self,
        a: &Word,
        b: &Word,
        mut f: impl FnMut(&mut Self, NetId, NetId) -> NetId,
    ) -> Word {
        assert_eq!(a.width(), b.width(), "width mismatch");
        (0..a.width())
            .map(|i| f(self, a.bit(i), b.bit(i)))
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    /// Bitwise XOR of two equal-width words.
    pub fn xor_word(&mut self, a: &Word, b: &Word) -> Word {
        self.zip2(a, b, |s, x, y| s.gate(CellKind::Xor(2), &[x, y]))
    }

    /// Bitwise AND.
    pub fn and_word(&mut self, a: &Word, b: &Word) -> Word {
        self.zip2(a, b, |s, x, y| s.gate(CellKind::And(2), &[x, y]))
    }

    /// Bitwise OR.
    pub fn or_word(&mut self, a: &Word, b: &Word) -> Word {
        self.zip2(a, b, |s, x, y| s.gate(CellKind::Or(2), &[x, y]))
    }

    /// Bitwise NOT.
    pub fn not_word(&mut self, a: &Word) -> Word {
        a.bits().to_vec().iter().map(|&b| self.not(b)).collect()
    }

    /// Word-wide 2:1 mux.
    pub fn mux_word(&mut self, d0: &Word, d1: &Word, s: NetId) -> Word {
        self.zip2(d0, d1, |b, x, y| b.mux(x, y, s))
    }

    /// Ripple-carry addition; returns `(sum, carry_out)`.
    pub fn add(&mut self, a: &Word, b: &Word, cin: Option<NetId>) -> (Word, NetId) {
        assert_eq!(a.width(), b.width(), "width mismatch");
        let mut carry = match cin {
            Some(c) => c,
            None => self.const0(),
        };
        let mut sum = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            let (x, y) = (a.bit(i), b.bit(i));
            let axy = self.gate(CellKind::Xor(2), &[x, y]);
            let s = self.gate(CellKind::Xor(2), &[axy, carry]);
            let t1 = self.gate(CellKind::And(2), &[x, y]);
            let t2 = self.gate(CellKind::And(2), &[axy, carry]);
            carry = self.gate(CellKind::Or(2), &[t1, t2]);
            sum.push(s);
        }
        (Word(sum), carry)
    }

    /// Two's-complement subtraction `a - b`; returns `(difference, borrow-free flag)`.
    pub fn sub(&mut self, a: &Word, b: &Word) -> (Word, NetId) {
        let nb = self.not_word(b);
        let one = self.const1();
        self.add(a, &nb, Some(one))
    }

    /// Increment by a constant (cheaply via [`Builder::add`] with a constant word).
    pub fn add_const(&mut self, a: &Word, k: u64) -> Word {
        let kw = self.const_word(k, a.width());
        self.add(a, &kw, None).0
    }

    /// Equality comparator against a constant: 1 iff `a == k`.
    pub fn eq_const(&mut self, a: &Word, k: u64) -> NetId {
        let lits: Vec<NetId> = (0..a.width())
            .map(|i| {
                if (k >> i) & 1 == 1 {
                    a.bit(i)
                } else {
                    self.not(a.bit(i))
                }
            })
            .collect();
        self.and(&lits)
    }

    /// Full binary decoder: returns the `2^sel.width()` minterm nets.
    ///
    /// Built as a shared two-level structure (recursive halving), so wide
    /// decoders reuse sub-decoders.
    ///
    /// # Panics
    ///
    /// Panics if `sel.width() > 16`.
    pub fn decoder(&mut self, sel: &Word) -> Vec<NetId> {
        let w = sel.width();
        assert!(w <= 16, "decoder too wide");
        if w == 0 {
            return vec![self.const1()];
        }
        if w <= 4 {
            let mut lits_pos = Vec::with_capacity(w);
            let mut lits_neg = Vec::with_capacity(w);
            for i in 0..w {
                lits_pos.push(sel.bit(i));
                lits_neg.push(self.not(sel.bit(i)));
            }
            return (0..1usize << w)
                .map(|m| {
                    let terms: Vec<NetId> = (0..w)
                        .map(|i| {
                            if (m >> i) & 1 == 1 {
                                lits_pos[i]
                            } else {
                                lits_neg[i]
                            }
                        })
                        .collect();
                    self.and(&terms)
                })
                .collect();
        }
        let half = w / 2;
        let lo = self.decoder(&sel.slice(0, half));
        let hi = self.decoder(&sel.slice(half, w - half));
        let mut out = Vec::with_capacity(1 << w);
        for h in &hi {
            for l in &lo {
                out.push(self.gate(CellKind::And(2), &[*l, *h]));
            }
        }
        out
    }

    /// Multi-output sum-of-products lookup: `table[input]` gives the output
    /// word value for each input combination (`table.len() == 2^inputs.width()`).
    ///
    /// # Panics
    ///
    /// Panics on table-size mismatch or output width > 64.
    pub fn sop(&mut self, inputs: &Word, out_width: usize, table: &[u64]) -> Word {
        assert_eq!(table.len(), 1 << inputs.width(), "table size mismatch");
        assert!(out_width <= 64);
        let minterms = self.decoder(inputs);
        let mut out = Vec::with_capacity(out_width);
        for bit in 0..out_width {
            let ones: Vec<NetId> = minterms
                .iter()
                .enumerate()
                .filter(|(m, _)| (table[*m] >> bit) & 1 == 1)
                .map(|(_, &n)| n)
                .collect();
            out.push(if ones.is_empty() {
                self.const0()
            } else if ones.len() == minterms.len() {
                self.const1()
            } else {
                self.or(&ones)
            });
        }
        Word(out)
    }

    // ---- sequential ----------------------------------------------------------

    /// One plain DFF; returns its Q net.
    pub fn dff(&mut self, d: NetId, ck: NetId) -> NetId {
        let q = self.net("q");
        let name = self.fresh("ff");
        self.nl.add_cell(name, CellKind::Dff, vec![d, ck, q]);
        q
    }

    /// One enabled DFF (`Q <= EN ? D : Q`); returns its Q net.
    pub fn dffen(&mut self, d: NetId, en: NetId, ck: NetId) -> NetId {
        let q = self.net("q");
        let name = self.fresh("ffe");
        self.nl.add_cell(name, CellKind::DffEn, vec![d, en, ck, q]);
        q
    }

    /// Register a word with plain DFFs.
    pub fn dff_word(&mut self, d: &Word, ck: NetId) -> Word {
        d.bits().to_vec().iter().map(|&b| self.dff(b, ck)).collect()
    }

    /// Register a word with enabled DFFs sharing `en`.
    pub fn dffen_word(&mut self, d: &Word, en: NetId, ck: NetId) -> Word {
        d.bits()
            .to_vec()
            .iter()
            .map(|&b| self.dffen(b, en, ck))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Netlist {
        Netlist::new("t")
    }

    #[test]
    fn tree_reduction_shape() {
        let mut nl = fresh();
        let mut b = Builder::new(&mut nl, "u");
        let ins: Vec<NetId> = (0..9).map(|i| nl_input(b.netlist(), i)).collect();
        let _y = b.or(&ins);
        // 9 inputs -> level 1: OR4 + OR4 (+1 passthrough) -> level 2: OR3.
        assert_eq!(nl.cell_count(), 3);
        nl_validate_with_out(nl);
    }

    fn nl_input(nl: &mut Netlist, i: usize) -> NetId {
        nl.add_input(&format!("in{i}")).1
    }

    fn nl_validate_with_out(mut nl: Netlist) {
        // Tie any undriven-observed situation: give every net a reader via output ports
        // only for the final gate; simply validate drivers here.
        let last = nl
            .cells()
            .map(|(_, c)| c.output())
            .last()
            .expect("has cells");
        nl.add_output("y", last);
        nl.validate().unwrap();
    }

    #[test]
    fn word_ops_widths() {
        let mut nl = fresh();
        let mut b = Builder::new(&mut nl, "u");
        let a = b.word_input("a", 8);
        let c = b.word_input("b", 8);
        let x = b.xor_word(&a, &c);
        let (s, _) = b.add(&a, &c, None);
        let m = b.mux_word(&x, &s, a.bit(0));
        assert_eq!(m.width(), 8);
        b.word_output("m", &m);
        nl.validate().unwrap();
    }

    #[test]
    fn rotation_is_rewiring() {
        let mut nl = fresh();
        let mut b = Builder::new(&mut nl, "u");
        let a = b.word_input("a", 8);
        let before = nl.cell_count();
        let r = a.rotl(3);
        assert_eq!(nl.cell_count(), before, "no gates for rotation");
        // rotl(3): result bit 3 is source bit 0.
        assert_eq!(r.bit(3), a.bit(0));
        assert_eq!(r.bit(0), a.bit(5));
        assert_eq!(a.rotr(3).bit(0), a.bit(3));
        assert_eq!(a.rotl(8), a, "full rotation is identity");
    }

    #[test]
    fn slice_concat() {
        let mut nl = fresh();
        let mut b = Builder::new(&mut nl, "u");
        let a = b.word_input("a", 8);
        let lo = a.slice(0, 4);
        let hi = a.slice(4, 4);
        assert_eq!(lo.concat(&hi), a);
    }

    #[test]
    fn decoder_counts() {
        let mut nl = fresh();
        let mut b = Builder::new(&mut nl, "u");
        let sel = b.word_input("s", 6);
        let outs = b.decoder(&sel);
        assert_eq!(outs.len(), 64);
        // Uses shared halves: 8 + 8 sub-minterms + 64 AND2 + inverters.
        assert!(nl.cell_count() < 64 * 6, "decoder must share logic");
    }

    #[test]
    fn sop_const_rows() {
        let mut nl = fresh();
        let mut b = Builder::new(&mut nl, "u");
        let sel = b.word_input("s", 2);
        // out bit0 = always 1; out bit1 = (input == 2).
        let w = b.sop(&sel, 2, &[0b01, 0b01, 0b11, 0b01]);
        assert_eq!(w.width(), 2);
        b.word_output("y", &w);
        nl.validate().unwrap();
    }

    #[test]
    fn eq_const_literals() {
        let mut nl = fresh();
        let mut b = Builder::new(&mut nl, "u");
        let a = b.word_input("a", 4);
        let y = b.eq_const(&a, 0b1010);
        nl.add_output("y", y);
        nl.validate().unwrap();
    }

    #[test]
    fn seq_helpers() {
        let mut nl = fresh();
        let mut b = Builder::new(&mut nl, "u");
        let (_, ck) = b.netlist().add_input("ck");
        let (_, en) = b.netlist().add_input("en");
        let d = b.word_input("d", 4);
        let q = b.dffen_word(&d, en, ck);
        let q2 = b.dff_word(&q, ck);
        b.word_output("q", &q2);
        nl.validate().unwrap();
        let stats = nl.stats();
        assert_eq!(stats.ffs, 8);
    }

    #[test]
    fn constants_shared() {
        let mut nl = fresh();
        let mut b = Builder::new(&mut nl, "u");
        let c0 = b.const0();
        let c0b = b.const0();
        assert_eq!(c0, c0b);
        let w = b.const_word(0b101, 3);
        assert_eq!(w.bit(0), b.const1());
        assert_eq!(w.bit(1), c0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut nl = fresh();
        let mut b = Builder::new(&mut nl, "u");
        let a = b.word_input("a", 4);
        let c = b.word_input("b", 5);
        let _ = b.xor_word(&a, &c);
    }
}
