//! ISCAS89 `.bench` format parser.
//!
//! The `.bench` format describes a sequential circuit as:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = NAND(G0, G1)
//! G7  = DFF(G14)
//! ```
//!
//! DFFs have an implicit global clock; the parser adds a `CK` input port
//! and a single-phase [`crate::ClockSpec`] (period supplied by the caller).

use crate::error::{Error, Result};
use crate::id::NetId;
use crate::netlist::{ClockSpec, Netlist, PortDir};
use std::collections::HashMap;
use triphase_cells::CellKind;

/// Parse `.bench` text into a netlist with clock period `period_ps`.
///
/// # Errors
///
/// [`Error::Parse`] on malformed lines or unknown gate types;
/// [`Error::Invalid`] if the resulting netlist fails validation.
pub fn from_bench(text: &str, name: &str, period_ps: f64) -> Result<Netlist> {
    let mut nl = Netlist::new(name);
    let mut nets: HashMap<String, NetId> = HashMap::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let (ck_port, ck_net) = nl.add_input("CK");

    let mut get_net = |nl: &mut Netlist, name: &str| -> NetId {
        if let Some(&n) = nets.get(name) {
            n
        } else {
            let id = nl.add_net(name);
            nets.insert(name.to_owned(), id);
            id
        }
    };

    let mut ncell = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lno = lineno + 1;
        if let Some(rest) = line.strip_prefix("INPUT") {
            let n = paren_arg(rest, lno)?;
            let net = get_net(&mut nl, n);
            nl.add_port(n, PortDir::Input, net);
        } else if let Some(rest) = line.strip_prefix("OUTPUT") {
            outputs.push((lno, paren_arg(rest, lno)?.to_owned()));
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let target = lhs.trim();
            let rhs = rhs.trim();
            let (func, args) = rhs
                .split_once('(')
                .ok_or_else(|| Error::Parse(lno, format!("expected GATE(...), got `{rhs}`")))?;
            let args = args
                .strip_suffix(')')
                .ok_or_else(|| Error::Parse(lno, "missing `)`".into()))?;
            let ins: Vec<NetId> = args
                .split(',')
                .map(|a| get_net(&mut nl, a.trim()))
                .collect();
            let out = get_net(&mut nl, target);
            let func_up = func.trim().to_ascii_uppercase();
            let n = ins.len() as u8;
            let kind = match func_up.as_str() {
                "AND" => CellKind::And(n),
                "OR" => CellKind::Or(n),
                "NAND" => CellKind::Nand(n),
                "NOR" => CellKind::Nor(n),
                "XOR" => CellKind::Xor(n),
                "XNOR" => CellKind::Xnor(n),
                "NOT" => CellKind::Inv,
                "BUF" | "BUFF" => CellKind::Buf,
                "DFF" => CellKind::Dff,
                other => {
                    return Err(Error::Parse(lno, format!("unknown gate `{other}`")));
                }
            };
            if kind == CellKind::Dff {
                if ins.len() != 1 {
                    return Err(Error::Parse(lno, "DFF takes one input".into()));
                }
                nl.add_cell(
                    format!("ff_{target}"),
                    CellKind::Dff,
                    vec![ins[0], ck_net, out],
                );
            } else if kind.is_comb() && !kind.validate() {
                return Err(Error::Parse(lno, format!("bad arity {n} for {func_up}")));
            } else {
                let mut pins = ins;
                pins.push(out);
                nl.add_cell(format!("g{ncell}_{target}"), kind, pins);
            }
            ncell += 1;
        } else {
            return Err(Error::Parse(lno, format!("unrecognized line `{line}`")));
        }
    }
    for (lno, name) in outputs {
        let net = *nets
            .get(&name)
            .ok_or_else(|| Error::Parse(lno, format!("OUTPUT({name}) never defined")))?;
        nl.add_port(&name, PortDir::Output, net);
    }
    nl.clock = Some(ClockSpec::single(ck_port, period_ps));
    nl.validate()?;
    Ok(nl)
}

fn paren_arg(rest: &str, lno: usize) -> Result<&str> {
    rest.trim()
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .map(str::trim)
        .ok_or_else(|| Error::Parse(lno, "expected (NAME)".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27_LIKE: &str = "\
# tiny sample in bench format
INPUT(G0)
INPUT(G1)
OUTPUT(G17)
G5 = DFF(G10)
G10 = NAND(G0, G1)
G11 = NOT(G5)
G17 = AND(G11, G1)
";

    #[test]
    fn parses_structure() {
        let nl = from_bench(S27_LIKE, "s27like", 1000.0).unwrap();
        let s = nl.stats();
        assert_eq!(s.ffs, 1);
        assert_eq!(s.comb, 3);
        assert_eq!(s.inputs, 3, "two PIs plus implicit CK");
        assert_eq!(s.outputs, 1);
        let clock = nl.clock.as_ref().unwrap();
        assert_eq!(clock.period_ps, 1000.0);
        assert_eq!(nl.port(clock.phases[0].port).name, "CK");
    }

    #[test]
    fn forward_references_allowed() {
        // G5 = DFF(G10) references G10 before its definition — must work.
        let nl = from_bench(S27_LIKE, "t", 500.0).unwrap();
        nl.validate().unwrap();
    }

    #[test]
    fn unknown_gate_rejected() {
        let err = from_bench("INPUT(a)\nb = FROB(a)\nOUTPUT(b)\n", "t", 1.0).unwrap_err();
        assert!(matches!(err, Error::Parse(2, _)), "{err}");
    }

    #[test]
    fn undefined_output_rejected() {
        let err = from_bench("INPUT(a)\nOUTPUT(nowhere)\n", "t", 1.0).unwrap_err();
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn multi_input_gates() {
        let nl = from_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = OR(a, b, c)\n",
            "t",
            1.0,
        )
        .unwrap();
        let (_, cell) = nl.cells().next().unwrap();
        assert_eq!(cell.kind, CellKind::Or(3));
    }
}
