//! Structural Verilog writer and parser (subset).
//!
//! The supported subset is exactly what the writer emits: one flat module,
//! scalar `input`/`output`/`wire` declarations, cell instances of the
//! `triphase` library with named pin connections, and `assign a = b;`
//! aliases (parsed back as buffers).

use crate::error::{Error, Result};
use crate::id::NetId;
use crate::netlist::{Netlist, PortDir};
use std::collections::HashMap;
use std::fmt::Write as _;
use triphase_cells::CellKind;

/// Render `nl` as structural Verilog.
///
/// Net and instance names are sanitized to Verilog identifiers; collisions
/// after sanitization get numeric suffixes. Ports keep their (sanitized)
/// names and their nets are named after them.
pub fn to_verilog(nl: &Netlist) -> String {
    let mut out = String::new();
    let mut names = NameTable::default();

    // Port nets take the port's name.
    let mut net_names: Vec<Option<String>> = vec![None; nl.net_capacity()];
    let mut port_decls = Vec::new();
    for port in nl.ports() {
        let name = names.unique(&port.name);
        let dir = match port.dir {
            PortDir::Input => "input",
            PortDir::Output => "output",
        };
        port_decls.push((dir, name.clone(), port.net));
        if net_names[port.net.index()].is_none() && port.dir == PortDir::Input {
            net_names[port.net.index()] = Some(name);
        }
    }
    for (id, net) in nl.nets() {
        if net_names[id.index()].is_none() {
            net_names[id.index()] = Some(names.unique(&net.name));
        }
    }
    let net_name = |id: NetId| net_names[id.index()].as_deref().expect("net named");

    let module = sanitize(&nl.name);
    let port_list: Vec<&str> = port_decls.iter().map(|(_, n, _)| n.as_str()).collect();
    let _ = writeln!(out, "module {module} ({});", port_list.join(", "));
    for (dir, name, _) in &port_decls {
        let _ = writeln!(out, "  {dir} {name};");
    }
    for (id, _) in nl.nets() {
        let _ = writeln!(out, "  wire {};", net_name(id));
    }
    // Output ports alias their nets.
    for (dir, name, net) in &port_decls {
        if *dir == "output" {
            let _ = writeln!(out, "  assign {name} = {};", net_name(*net));
        }
    }
    let mut inst_names = NameTable::default();
    for (_, cell) in nl.cells() {
        let inst = inst_names.unique(&cell.name);
        let conns: Vec<String> = (0..cell.kind.pin_count())
            .map(|i| format!(".{}({})", cell.kind.pin_name(i), net_name(cell.pin(i))))
            .collect();
        let _ = writeln!(
            out,
            "  {} {inst} ({});",
            cell.kind.lib_name(),
            conns.join(", ")
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[derive(Default)]
struct NameTable {
    used: HashMap<String, usize>,
}

impl NameTable {
    fn unique(&mut self, raw: &str) -> String {
        let base = sanitize(raw);
        match self.used.get_mut(&base) {
            None => {
                self.used.insert(base.clone(), 0);
                base
            }
            Some(n) => {
                *n += 1;
                let name = format!("{base}__{n}");
                self.used.insert(name.clone(), 0);
                name
            }
        }
    }
}

fn sanitize(raw: &str) -> String {
    let mut s: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'n');
    }
    s
}

/// Parse structural Verilog (the subset produced by [`to_verilog`]).
///
/// # Errors
///
/// Returns [`Error::Parse`] with a line number on any syntax problem or
/// unknown cell name, and [`Error::Invalid`] if the result fails
/// validation.
pub fn from_verilog(text: &str) -> Result<Netlist> {
    let mut p = Parser::new(text);
    let nl = p.parse()?;
    nl.validate()?;
    Ok(nl)
}

struct Parser<'a> {
    tokens: Vec<(usize, String)>,
    pos: usize,
    _text: &'a str,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        let mut tokens = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split("//").next().unwrap_or("");
            let mut cur = String::new();
            for ch in line.chars() {
                if ch.is_ascii_alphanumeric() || ch == '_' || ch == '$' {
                    cur.push(ch);
                } else {
                    if !cur.is_empty() {
                        tokens.push((lineno + 1, std::mem::take(&mut cur)));
                    }
                    if !ch.is_whitespace() {
                        tokens.push((lineno + 1, ch.to_string()));
                    }
                }
            }
            if !cur.is_empty() {
                tokens.push((lineno + 1, cur));
            }
        }
        Parser {
            tokens,
            pos: 0,
            _text: text,
        }
    }

    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(|(_, t)| t.as_str())
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |(l, _)| *l)
    }

    fn next(&mut self) -> Result<String> {
        let tok = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| Error::Parse(self.line(), "unexpected end of input".into()))?;
        self.pos += 1;
        Ok(tok.1.clone())
    }

    fn expect(&mut self, tok: &str) -> Result<()> {
        let line = self.line();
        let got = self.next()?;
        if got == tok {
            Ok(())
        } else {
            Err(Error::Parse(line, format!("expected `{tok}`, got `{got}`")))
        }
    }

    fn parse(&mut self) -> Result<Netlist> {
        self.expect("module")?;
        let name = self.next()?;
        let mut nl = Netlist::new(name);
        self.expect("(")?;
        // Skip the port list: directions come from the declarations.
        while self.peek() != Some(")") {
            self.next()?;
        }
        self.expect(")")?;
        self.expect(";")?;

        let mut nets: HashMap<String, NetId> = HashMap::new();
        let mut outputs: Vec<String> = Vec::new();
        let mut assigns: Vec<(usize, String, String)> = Vec::new();
        let mut ncell = 0usize;

        loop {
            let line = self.line();
            let tok = self.next()?;
            match tok.as_str() {
                "endmodule" => break,
                "input" => {
                    for name in self.name_list()? {
                        let net = *nets
                            .entry(name.clone())
                            .or_insert_with(|| nl.add_net(name.clone()));
                        nl.add_port(name, PortDir::Input, net);
                    }
                }
                "output" => {
                    // Output ports are bound after assigns are known.
                    outputs.extend(self.name_list()?);
                }
                "wire" => {
                    for name in self.name_list()? {
                        nets.entry(name.clone()).or_insert_with(|| nl.add_net(name));
                    }
                }
                "assign" => {
                    let lhs = self.next()?;
                    self.expect("=")?;
                    let rhs = self.next()?;
                    self.expect(";")?;
                    assigns.push((line, lhs, rhs));
                }
                cellname => {
                    let kind = CellKind::from_lib_name(cellname)
                        .ok_or_else(|| Error::Parse(line, format!("unknown cell `{cellname}`")))?;
                    let inst = self.next()?;
                    self.expect("(")?;
                    let mut pins: Vec<Option<NetId>> = vec![None; kind.pin_count()];
                    loop {
                        self.expect(".")?;
                        let pin_name = self.next()?;
                        self.expect("(")?;
                        let net_name = self.next()?;
                        self.expect(")")?;
                        let pin_idx = (0..kind.pin_count())
                            .find(|&i| kind.pin_name(i) == pin_name)
                            .ok_or_else(|| {
                                Error::Parse(
                                    line,
                                    format!("cell {cellname} has no pin `{pin_name}`"),
                                )
                            })?;
                        let net = *nets
                            .entry(net_name.clone())
                            .or_insert_with(|| nl.add_net(net_name));
                        pins[pin_idx] = Some(net);
                        match self.next()?.as_str() {
                            "," => continue,
                            ")" => break,
                            other => {
                                return Err(Error::Parse(
                                    line,
                                    format!("expected `,` or `)`, got `{other}`"),
                                ))
                            }
                        }
                    }
                    self.expect(";")?;
                    let pins: Vec<NetId> = pins
                        .into_iter()
                        .enumerate()
                        .map(|(i, p)| {
                            p.ok_or_else(|| {
                                Error::Parse(line, format!("pin {i} of {inst} unconnected"))
                            })
                        })
                        .collect::<Result<_>>()?;
                    nl.add_cell(inst, kind, pins);
                    ncell += 1;
                }
            }
        }

        // Resolve assigns: if the LHS is an output-port alias of an existing
        // net, bind the port straight to the RHS net; otherwise emit a buffer.
        let mut alias: HashMap<String, String> = HashMap::new();
        for (line, lhs, rhs) in assigns {
            if outputs.contains(&lhs) && !nets.contains_key(&lhs) {
                alias.insert(lhs, rhs);
            } else {
                let l = *nets
                    .entry(lhs.clone())
                    .or_insert_with(|| nl.add_net(lhs.clone()));
                let r = nets.get(&rhs).copied().ok_or_else(|| {
                    Error::Parse(line, format!("assign from undeclared net `{rhs}`"))
                })?;
                nl.add_cell(format!("assign_buf{ncell}"), CellKind::Buf, vec![r, l]);
                ncell += 1;
            }
        }
        for name in outputs {
            let target = alias.get(&name).unwrap_or(&name);
            let net = nets.get(target).copied().ok_or_else(|| {
                Error::Parse(0, format!("output `{name}` references undeclared net"))
            })?;
            nl.add_port(name, PortDir::Output, net);
        }
        Ok(nl)
    }

    fn name_list(&mut self) -> Result<Vec<String>> {
        let mut names = vec![self.next()?];
        loop {
            match self.next()?.as_str() {
                "," => names.push(self.next()?),
                ";" => return Ok(names),
                other => {
                    return Err(Error::Parse(
                        self.line(),
                        format!("expected `,` or `;`, got `{other}`"),
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Builder;

    fn sample() -> Netlist {
        let mut nl = Netlist::new("samp!le"); // name needs sanitizing
        let mut b = Builder::new(&mut nl, "u");
        let (_, ck) = b.netlist().add_input("ck");
        let a = b.word_input("a", 2);
        let x = b.xor_word(&a, &a.rotl(1));
        let q = b.dff_word(&x, ck);
        b.word_output("q", &q);
        nl
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let nl = sample();
        nl.validate().unwrap();
        let text = to_verilog(&nl);
        let back = from_verilog(&text).unwrap();
        assert_eq!(back.cell_count(), nl.cell_count());
        assert_eq!(back.stats(), nl.stats());
        assert_eq!(back.ports().len(), nl.ports().len());
        // Second roundtrip is a fixpoint (same text).
        let text2 = to_verilog(&back.compact());
        let back2 = from_verilog(&text2).unwrap();
        assert_eq!(back2.stats(), back.stats());
    }

    #[test]
    fn writer_sanitizes_names() {
        let mut nl = Netlist::new("1bad name");
        let (_, a) = nl.add_input("a");
        let y = nl.add_net("net with space");
        nl.add_cell("inst.dot", CellKind::Inv, vec![a, y]);
        nl.add_output("y", y);
        let text = to_verilog(&nl);
        assert!(text.contains("module n1bad_name"));
        assert!(text.contains("net_with_space"));
        assert!(text.contains("inst_dot"));
        from_verilog(&text).unwrap();
    }

    #[test]
    fn writer_handles_name_collisions() {
        let mut nl = Netlist::new("m");
        let (_, a) = nl.add_input("a");
        let x = nl.add_net("n x"); // sanitizes to n_x
        let y = nl.add_net("n_x"); // collides
        nl.add_cell("u1", CellKind::Inv, vec![a, x]);
        nl.add_cell("u2", CellKind::Inv, vec![x, y]);
        nl.add_output("o", y);
        let text = to_verilog(&nl);
        let back = from_verilog(&text).unwrap();
        assert_eq!(back.cell_count(), 2);
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "module m (a);\n  input a;\n  FROB_X1 u (.A(a));\nendmodule\n";
        let err = from_verilog(text).unwrap_err();
        assert!(
            matches!(&err, Error::Parse(3, msg) if msg.contains("FROB")),
            "unexpected {err:?}"
        );
    }

    /// The parser must reject malformed input with [`Error`], never by
    /// aborting the process: every corpus entry is run under
    /// `catch_unwind` so a panic in any parse path fails the test with
    /// the offending source.
    #[test]
    fn malformed_corpus_errors_without_panicking() {
        let corpus: &[&str] = &[
            "",
            "garbage",
            "module",
            "module m",
            "module m (",
            "module m (a, b",
            "module m ();",
            "module m ();\n  input ;",
            "module m ();\n  input a\n  input b;",
            "module m (a);\n  input a;",
            "module m (a);\n  input a;\n  wire w,;",
            "module m (a);\n  input a;\n  AND2_X1",
            "module m (a);\n  input a;\n  AND2_X1 u",
            "module m (a);\n  input a;\n  AND2_X1 u (",
            "module m (a);\n  input a;\n  AND2_X1 u (.A0(a)",
            "module m (a);\n  input a;\n  AND2_X1 u (.A0(a);\nendmodule",
            "module m (a);\n  input a;\n  AND2_X1 u (.BOGUS(a));\nendmodule",
            "module m (a);\n  input a;\n  AND99_X1 u (.A0(a));\nendmodule",
            "module m (a);\n  input a;\n  AND2_X1 u (.A0(a) .A1(a));\nendmodule",
            "module m (y);\n  output y;\nendmodule",
            "module m (y);\n  output y;\n  assign y = nowhere;\nendmodule",
            "module m (y);\n  output y;\n  wire w;\n  assign w;\nendmodule",
            "module m (a);\n  input a;\n  DFF u (.D(a), .CK(a), .Q(a));\nendmodule",
            "module m (a);\n  input a;\n  INV u (.A(a), .Y(a));\nendmodule",
            "endmodule",
            "module ; ( ) ;",
            "module m (a);\n  input a;\n  . , ( ) ;\nendmodule",
        ];
        for src in corpus {
            let got = std::panic::catch_unwind(|| from_verilog(src));
            match got {
                Ok(res) => assert!(res.is_err(), "accepted malformed input: {src:?}"),
                Err(_) => panic!("parser panicked on {src:?}"),
            }
        }
    }

    #[test]
    fn parse_rejects_unconnected_pin() {
        let text = "module m (a, y);\n input a;\n output y;\n wire w;\n \
                    AND2_X1 u (.A0(a), .Y(w));\n assign y = w;\nendmodule\n";
        assert!(from_verilog(text).is_err());
    }

    #[test]
    fn icg_cells_roundtrip() {
        let mut nl = Netlist::new("cg");
        let (_, ck) = nl.add_input("ck");
        let (_, p3) = nl.add_input("p3");
        let (_, en) = nl.add_input("en");
        let (_, d) = nl.add_input("d");
        let gck = nl.add_net("gck");
        let q = nl.add_net("q");
        nl.add_cell("cg1", CellKind::IcgM1, vec![en, p3, ck, gck]);
        nl.add_cell("l1", CellKind::LatchH, vec![d, gck, q]);
        nl.add_output("q", q);
        let back = from_verilog(&to_verilog(&nl)).unwrap();
        assert_eq!(back.stats().clock_gates, 1);
        assert_eq!(back.stats().latches, 1);
    }
}
