//! Structural graph queries over a netlist: topological order of the
//! combinational fabric, storage-to-storage reachability (the paper's
//! `FO(u)` sets), fan-in cone tracing, and clock-network tracing.

use crate::error::{Error, Result};
use crate::id::{CellId, NetId, PortId};
use crate::netlist::{ConnIndex, Netlist, PortDir};
use std::collections::VecDeque;
use triphase_cells::{CellKind, PinClass};

/// Topological order of the combinational cells.
///
/// Sequential cells, clock gates, and clock buffers are treated as graph
/// sources/sinks and excluded from the returned order.
///
/// # Errors
///
/// [`Error::CombLoop`] if the combinational fabric contains a cycle.
pub fn comb_topo_order(nl: &Netlist, idx: &ConnIndex) -> Result<Vec<CellId>> {
    let cap = nl.cell_capacity();
    let mut indegree: Vec<u32> = vec![0; cap];
    let mut is_comb: Vec<bool> = vec![false; cap];
    let mut total = 0usize;
    for (id, cell) in nl.cells() {
        if !comb_for_topo(cell.kind) {
            continue;
        }
        is_comb[id.index()] = true;
        total += 1;
        let mut deg = 0;
        for &input in cell.inputs() {
            if let Some(drv) = idx.driver(input) {
                if comb_for_topo(nl.cell(drv.cell).kind) {
                    deg += 1;
                }
            }
        }
        indegree[id.index()] = deg;
    }
    let mut queue: VecDeque<CellId> = nl
        .cells()
        .filter(|(id, _)| is_comb[id.index()] && indegree[id.index()] == 0)
        .map(|(id, _)| id)
        .collect();
    let mut order = Vec::with_capacity(total);
    while let Some(id) = queue.pop_front() {
        order.push(id);
        let out = nl.cell(id).output();
        for load in idx.loads(out) {
            if is_comb[load.cell.index()] {
                let d = &mut indegree[load.cell.index()];
                *d -= 1;
                if *d == 0 {
                    queue.push_back(load.cell);
                }
            }
        }
    }
    if order.len() != total {
        let stuck = nl
            .cells()
            .find(|(id, _)| is_comb[id.index()] && indegree[id.index()] > 0)
            .map(|(_, c)| c.name.clone())
            .unwrap_or_default();
        return Err(Error::CombLoop(stuck));
    }
    Ok(order)
}

/// Treat clock buffers as part of the clock network, not the comb fabric.
fn comb_for_topo(kind: CellKind) -> bool {
    kind.is_comb() && kind != CellKind::ClkBuf
}

/// Storage cells whose data/enable inputs are reachable from `net` through
/// combinational logic only (BFS forwards). Clock-gate `EN` pins do **not**
/// terminate the walk into storage — they are reported separately.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReachResult {
    /// Storage cells reached (deduplicated, in discovery order).
    pub storage: Vec<CellId>,
    /// Clock-gating cells whose `EN` pin was reached.
    pub clock_gate_enables: Vec<CellId>,
    /// Output ports reached.
    pub ports: Vec<PortId>,
}

/// Forward reachability from `net` through combinational cells.
pub fn reach_storage(nl: &Netlist, idx: &ConnIndex, net: NetId) -> ReachResult {
    let mut res = ReachResult::default();
    let mut seen_net = vec![false; nl.net_capacity()];
    let mut seen_cell = vec![false; nl.cell_capacity()];
    let mut queue = VecDeque::new();
    queue.push_back(net);
    seen_net[net.index()] = true;
    while let Some(n) = queue.pop_front() {
        for &port in idx.observers(n) {
            if !res.ports.contains(&port) {
                res.ports.push(port);
            }
        }
        for load in idx.loads(n) {
            let cell = nl.cell(load.cell);
            let class = cell.kind.pin_def(load.pin).class;
            if cell.kind.is_storage() {
                // Reached a register's D pin (or an enabled FF's EN pin —
                // that is still a synchronous data dependency).
                if !seen_cell[load.cell.index()] {
                    seen_cell[load.cell.index()] = true;
                    res.storage.push(load.cell);
                }
            } else if cell.kind.is_clock_gate() {
                if class == PinClass::Enable && !res.clock_gate_enables.contains(&load.cell) {
                    res.clock_gate_enables.push(load.cell);
                }
            } else if comb_for_topo(cell.kind) {
                let out = cell.output();
                if !seen_net[out.index()] {
                    seen_net[out.index()] = true;
                    queue.push_back(out);
                }
            }
        }
    }
    res
}

/// A start point of a fan-in cone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConeStart {
    /// The cone starts at a storage cell's output.
    Storage(CellId),
    /// The cone starts at a primary input port.
    Port(PortId),
    /// The cone starts at a constant cell.
    Constant(CellId),
    /// The cone starts at a clock-gate output (unusual for data logic).
    ClockGate(CellId),
}

/// Trace the fan-in cone of `net` backwards through combinational cells,
/// returning the deduplicated start points.
pub fn fanin_cone_starts(nl: &Netlist, idx: &ConnIndex, net: NetId) -> Vec<ConeStart> {
    let mut starts = Vec::new();
    let mut seen = vec![false; nl.net_capacity()];
    let mut stack = vec![net];
    seen[net.index()] = true;
    while let Some(n) = stack.pop() {
        if let Some(port) = idx.driving_port(n) {
            if nl.port(port).dir == PortDir::Input {
                push_unique(&mut starts, ConeStart::Port(port));
            }
            continue;
        }
        let Some(drv) = idx.driver(n) else { continue };
        let cell = nl.cell(drv.cell);
        if cell.kind.is_storage() {
            push_unique(&mut starts, ConeStart::Storage(drv.cell));
        } else if cell.kind.is_clock_gate() {
            push_unique(&mut starts, ConeStart::ClockGate(drv.cell));
        } else if matches!(cell.kind, CellKind::Const0 | CellKind::Const1) {
            push_unique(&mut starts, ConeStart::Constant(drv.cell));
        } else {
            for &input in cell.inputs() {
                if !seen[input.index()] {
                    seen[input.index()] = true;
                    stack.push(input);
                }
            }
        }
    }
    starts
}

fn push_unique<T: PartialEq>(v: &mut Vec<T>, x: T) {
    if !v.contains(&x) {
        v.push(x);
    }
}

/// Result of tracing a clock pin back to its root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockTrace {
    /// The input port at the root of the clock path.
    pub root: PortId,
    /// Clock-gating cells on the path, nearest-to-sink first.
    pub gates: Vec<CellId>,
    /// Clock buffers on the path, nearest-to-sink first.
    pub buffers: Vec<CellId>,
}

/// Follow the driver chain of a clock net backwards through clock buffers
/// and clock-gating cells (via their `CK` pins) to the clock input port.
///
/// # Errors
///
/// [`Error::Invalid`] if the chain ends anywhere other than an input port
/// (e.g. a data gate drives the clock).
pub fn trace_clock_root(nl: &Netlist, idx: &ConnIndex, net: NetId) -> Result<ClockTrace> {
    let mut gates = Vec::new();
    let mut buffers = Vec::new();
    let mut n = net;
    for _ in 0..nl.cell_capacity() + 1 {
        if let Some(port) = idx.driving_port(n) {
            return Ok(ClockTrace {
                root: port,
                gates,
                buffers,
            });
        }
        let Some(drv) = idx.driver(n) else {
            return Err(Error::Invalid(format!("clock net {n} has no driver")));
        };
        let cell = nl.cell(drv.cell);
        if cell.kind.is_clock_gate() {
            gates.push(drv.cell);
            let ck = cell.kind.clock_pin().expect("icg has clock pin");
            n = cell.pin(ck);
        } else if matches!(cell.kind, CellKind::ClkBuf | CellKind::Buf) {
            buffers.push(drv.cell);
            n = cell.pin(0);
        } else {
            return Err(Error::Invalid(format!(
                "clock path blocked by non-clock cell {}",
                cell.name
            )));
        }
    }
    Err(Error::Invalid("clock path loops".to_owned()))
}

/// Nets belonging to the clock network, as a by-[`NetId`] membership mask.
///
/// Seeds are the nets of the ports named in the netlist's [`crate::ClockSpec`];
/// the cone expands through clock buffers and through clock-gating cells
/// entered via their `CK` pin (an ICG reached only on `EN` does not extend
/// the cone). Returns an all-`false` mask when no clock spec is attached.
pub fn clock_cone(nl: &Netlist, idx: &ConnIndex) -> Vec<bool> {
    let mut in_cone = vec![false; nl.net_capacity()];
    let Some(clock) = &nl.clock else {
        return in_cone;
    };
    let mut queue: VecDeque<NetId> = VecDeque::new();
    for phase in &clock.phases {
        let net = nl.port(phase.port).net;
        if !in_cone[net.index()] {
            in_cone[net.index()] = true;
            queue.push_back(net);
        }
    }
    while let Some(n) = queue.pop_front() {
        for load in idx.loads(n) {
            let cell = nl.cell(load.cell);
            let out = match cell.kind {
                CellKind::ClkBuf => cell.output(),
                k if k.is_clock_gate() && Some(load.pin) == k.clock_pin() => cell.output(),
                _ => continue,
            };
            if !in_cone[out.index()] {
                in_cone[out.index()] = true;
                queue.push_back(out);
            }
        }
    }
    in_cone
}

/// Maximum logic depth (in cells) of the combinational fabric; a coarse
/// structural complexity measure used by generators and reports.
pub fn comb_depth(nl: &Netlist, idx: &ConnIndex) -> Result<usize> {
    let order = comb_topo_order(nl, idx)?;
    let mut depth = vec![0usize; nl.cell_capacity()];
    let mut max = 0;
    for id in order {
        let cell = nl.cell(id);
        let mut d = 0;
        for &input in cell.inputs() {
            if let Some(drv) = idx.driver(input) {
                if comb_for_topo(nl.cell(drv.cell).kind) {
                    d = d.max(depth[drv.cell.index()] + 1);
                }
            }
        }
        depth[id.index()] = d;
        max = max.max(d);
    }
    Ok(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    /// a --AND-- x --INV-- y --> FF(d=y) --q--> AND(a, q)
    fn sample() -> (Netlist, CellId, CellId) {
        let mut nl = Netlist::new("sample");
        let (_, a) = nl.add_input("a");
        let (_, b) = nl.add_input("b");
        let (_, ck) = nl.add_input("ck");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        let z = nl.add_net("z");
        nl.add_cell("u_and", CellKind::And(2), vec![a, b, x]);
        nl.add_cell("u_inv", CellKind::Inv, vec![x, y]);
        let ff = nl.add_cell("ff0", CellKind::Dff, vec![y, ck, q]);
        let g2 = nl.add_cell("u_and2", CellKind::And(2), vec![a, q, z]);
        nl.add_output("z", z);
        nl.validate().unwrap();
        (nl, ff, g2)
    }

    #[test]
    fn topo_order_is_causal() {
        let (nl, _, _) = sample();
        let idx = nl.index();
        let order = comb_topo_order(&nl, &idx).unwrap();
        assert_eq!(order.len(), 3);
        let pos = |name: &str| {
            order
                .iter()
                .position(|&id| nl.cell(id).name == name)
                .unwrap()
        };
        assert!(pos("u_and") < pos("u_inv"));
    }

    #[test]
    fn comb_loop_detected() {
        let mut nl = Netlist::new("loop");
        let (_, a) = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_cell("u1", CellKind::And(2), vec![a, y, x]);
        nl.add_cell("u2", CellKind::Inv, vec![x, y]);
        nl.add_output("y", y);
        let idx = nl.index();
        assert!(matches!(
            comb_topo_order(&nl, &idx),
            Err(Error::CombLoop(_))
        ));
    }

    #[test]
    fn reachability_finds_ff_and_port() {
        let (nl, ff, _) = sample();
        let idx = nl.index();
        let a = nl.port(nl.find_port("a").unwrap()).net;
        let r = reach_storage(&nl, &idx, a);
        assert_eq!(r.storage, vec![ff]);
        assert_eq!(r.ports.len(), 1); // z through u_and2
                                      // From the FF's Q: reaches the output port but no storage.
        let q = nl.cell(ff).output();
        let r2 = reach_storage(&nl, &idx, q);
        assert!(r2.storage.is_empty());
        assert_eq!(r2.ports.len(), 1);
    }

    #[test]
    fn reachability_selfloop() {
        let mut nl = Netlist::new("self");
        let (_, ck) = nl.add_input("ck");
        let q = nl.add_net("q");
        let d = nl.add_net("d");
        nl.add_cell("u_inv", CellKind::Inv, vec![q, d]);
        let ff = nl.add_cell("ff", CellKind::Dff, vec![d, ck, q]);
        nl.add_output("q", q);
        let idx = nl.index();
        let r = reach_storage(&nl, &idx, q);
        assert_eq!(
            r.storage,
            vec![ff],
            "FF reaches itself through the inverter"
        );
    }

    #[test]
    fn cone_starts() {
        let (nl, ff, g2) = sample();
        let idx = nl.index();
        let z = nl.cell(g2).output();
        let starts = fanin_cone_starts(&nl, &idx, z);
        assert!(starts.contains(&ConeStart::Storage(ff)));
        let a_port = nl.find_port("a").unwrap();
        assert!(starts.contains(&ConeStart::Port(a_port)));
        assert_eq!(starts.len(), 2);
    }

    #[test]
    fn clock_trace_through_icg_and_buffer() {
        let mut nl = Netlist::new("clk");
        let (ckp, ck) = nl.add_input("ck");
        let (_, en) = nl.add_input("en");
        let (_, d) = nl.add_input("d");
        let bufd = nl.add_net("ckb");
        let gck = nl.add_net("gck");
        let q = nl.add_net("q");
        let b = nl.add_cell("cb", CellKind::ClkBuf, vec![ck, bufd]);
        let icg = nl.add_cell("icg", CellKind::Icg, vec![en, bufd, gck]);
        nl.add_cell("ff", CellKind::Dff, vec![d, gck, q]);
        nl.add_output("q", q);
        let idx = nl.index();
        let trace = trace_clock_root(&nl, &idx, gck).unwrap();
        assert_eq!(trace.root, ckp);
        assert_eq!(trace.gates, vec![icg]);
        assert_eq!(trace.buffers, vec![b]);
    }

    #[test]
    fn clock_trace_rejects_data_gate() {
        let mut nl = Netlist::new("bad");
        let (_, a) = nl.add_input("a");
        let (_, b) = nl.add_input("b");
        let (_, d) = nl.add_input("d");
        let x = nl.add_net("x");
        let q = nl.add_net("q");
        nl.add_cell("u1", CellKind::And(2), vec![a, b, x]);
        nl.add_cell("ff", CellKind::Dff, vec![d, x, q]);
        nl.add_output("q", q);
        let idx = nl.index();
        assert!(trace_clock_root(&nl, &idx, x).is_err());
    }

    #[test]
    fn clock_cone_marks_buffered_and_gated_nets() {
        use crate::netlist::ClockSpec;
        let mut nl = Netlist::new("cone");
        let (ckp, ck) = nl.add_input("ck");
        let (_, en) = nl.add_input("en");
        let (_, d) = nl.add_input("d");
        let bufd = nl.add_net("ckb");
        let gck = nl.add_net("gck");
        let q = nl.add_net("q");
        let nd = nl.add_net("nd");
        nl.add_cell("cb", CellKind::ClkBuf, vec![ck, bufd]);
        nl.add_cell("icg", CellKind::Icg, vec![en, bufd, gck]);
        nl.add_cell("ff", CellKind::Dff, vec![d, gck, q]);
        nl.add_cell("u1", CellKind::Inv, vec![d, nd]);
        nl.add_output("q", q);
        nl.add_output("nd", nd);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let idx = nl.index();
        let cone = clock_cone(&nl, &idx);
        assert!(cone[ck.index()]);
        assert!(cone[bufd.index()]);
        assert!(cone[gck.index()]);
        assert!(!cone[d.index()]);
        assert!(!cone[nd.index()]);
        // Without a clock spec the cone is empty.
        nl.clock = None;
        assert!(!clock_cone(&nl, &idx).iter().any(|&b| b));
    }

    #[test]
    fn depth_measured() {
        let (nl, _, _) = sample();
        let idx = nl.index();
        assert_eq!(comb_depth(&nl, &idx).unwrap(), 1); // and -> inv
    }

    #[test]
    fn clock_cone_with_no_clock_loads_is_just_the_root() {
        use crate::netlist::ClockSpec;
        let mut nl = Netlist::new("lonely");
        let (ckp, ck) = nl.add_input("ck");
        let (_, a) = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_cell("u", CellKind::Inv, vec![a, y]);
        nl.add_output("y", y);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let idx = nl.index();
        let cone = clock_cone(&nl, &idx);
        assert_eq!(cone.iter().filter(|&&b| b).count(), 1);
        assert!(cone[ck.index()]);
    }

    #[test]
    fn clock_cone_stops_at_data_loads_of_the_clock_net() {
        use crate::netlist::ClockSpec;
        // `ck` feeds an FF clock pin, an ICG *enable* pin, and an
        // inverter: only clock-network cells clocked *by* the net extend
        // the cone, so none of those loads' outputs join it.
        let mut nl = Netlist::new("mixed");
        let (ckp, ck) = nl.add_input("ck");
        let (_, ck2) = nl.add_input("ck2");
        let (_, d) = nl.add_input("d");
        let q = nl.add_net("q");
        let gck = nl.add_net("gck");
        let nck = nl.add_net("nck");
        nl.add_cell("ff", CellKind::Dff, vec![d, ck, q]);
        nl.add_cell("icg", CellKind::Icg, vec![ck, ck2, gck]); // ck as enable
        nl.add_cell("inv", CellKind::Inv, vec![ck, nck]);
        nl.add_output("q", q);
        nl.add_output("nck", nck);
        nl.add_output("gck", gck);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let idx = nl.index();
        let cone = clock_cone(&nl, &idx);
        assert!(cone[ck.index()]);
        assert!(!cone[q.index()]);
        assert!(!cone[gck.index()], "enable load must not extend the cone");
        assert!(!cone[nck.index()]);
    }
}
