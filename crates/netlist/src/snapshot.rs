//! Exact textual snapshots of a netlist, for checkpoint/resume.
//!
//! Unlike the Verilog writer, a snapshot preserves the arena layout
//! byte-for-byte: tombstone slots, allocation order, and the clock spec
//! with `f64` fields stored as raw bit patterns. Restoring a snapshot
//! therefore yields a netlist on which every deterministic downstream
//! stage (retiming, clock gating, P&R, power) reproduces bit-identical
//! results — the property the flow checkpoint store relies on.

use crate::error::{Error, Result};
use crate::id::{NetId, PortId};
use crate::netlist::{Cell, ClockSpec, Net, Netlist, PhaseDef, Port, PortDir};
use std::fmt::Write as _;
use triphase_cells::CellKind;

/// Escape a name for single-line storage (`\` → `\\`, space → `\s`,
/// tab → `\t`, newline → `\n`).
fn esc(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str, line: usize) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            other => {
                return Err(Error::Parse(
                    line,
                    format!(
                        "bad escape \\{}",
                        other.map(String::from).unwrap_or_default()
                    ),
                ))
            }
        }
    }
    Ok(out)
}

/// Serialize `nl` to the snapshot text format.
pub fn to_text(nl: &Netlist) -> String {
    let mut s = String::new();
    s.push_str("netlist v1\n");
    let _ = writeln!(s, "name {}", esc(&nl.name));
    let _ = writeln!(s, "nets {}", nl.nets.len());
    for slot in &nl.nets {
        match slot {
            Some(net) => {
                let _ = writeln!(s, "n {}", esc(&net.name));
            }
            None => s.push_str("x\n"),
        }
    }
    let _ = writeln!(s, "cells {}", nl.cells.len());
    for slot in &nl.cells {
        match slot {
            Some(cell) => {
                let _ = write!(s, "c {} {}", esc(&cell.name), cell.kind.lib_name());
                for pin in &cell.pins {
                    let _ = write!(s, " {}", pin.index());
                }
                s.push('\n');
            }
            None => s.push_str("x\n"),
        }
    }
    let _ = writeln!(s, "ports {}", nl.ports.len());
    for port in &nl.ports {
        let dir = match port.dir {
            PortDir::Input => 'i',
            PortDir::Output => 'o',
        };
        let _ = writeln!(s, "p {dir} {} {}", esc(&port.name), port.net.index());
    }
    match &nl.clock {
        Some(clock) => {
            let _ = writeln!(
                s,
                "clock {} {:016x}",
                clock.phases.len(),
                clock.period_ps.to_bits()
            );
            for ph in &clock.phases {
                let _ = writeln!(
                    s,
                    "phase {} {:016x} {:016x}",
                    ph.port.index(),
                    ph.rise_ps.to_bits(),
                    ph.fall_ps.to_bits()
                );
            }
        }
        None => s.push_str("clock none\n"),
    }
    s.push_str("end\n");
    s
}

struct Reader<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Reader<'a> {
    fn next(&mut self) -> Result<&'a str> {
        self.line_no += 1;
        self.lines
            .next()
            .ok_or_else(|| Error::Parse(self.line_no, "unexpected end of snapshot".into()))
    }

    fn expect_prefix(&mut self, prefix: &str) -> Result<&'a str> {
        let line = self.next()?;
        line.strip_prefix(prefix).ok_or_else(|| {
            Error::Parse(self.line_no, format!("expected `{prefix}…`, got `{line}`"))
        })
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse(self.line_no, msg.into())
    }
}

fn parse_usize(r: &Reader<'_>, tok: &str) -> Result<usize> {
    tok.parse::<usize>()
        .map_err(|_| r.err(format!("bad integer `{tok}`")))
}

fn parse_f64_bits(r: &Reader<'_>, tok: &str) -> Result<f64> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| r.err(format!("bad f64 bit pattern `{tok}`")))
}

/// Restore a netlist from snapshot text produced by [`to_text`].
///
/// # Errors
///
/// Returns [`Error::Parse`] on any malformed or truncated input; no
/// partial netlist escapes.
pub fn from_text(text: &str) -> Result<Netlist> {
    let mut r = Reader {
        lines: text.lines(),
        line_no: 0,
    };
    let header = r.next()?;
    if header != "netlist v1" {
        return Err(r.err(format!("bad snapshot header `{header}`")));
    }
    let name = unesc(r.expect_prefix("name ")?, r.line_no)?;

    let tok = r.expect_prefix("nets ")?;
    let n_nets = parse_usize(&r, tok)?;
    let mut nets: Vec<Option<Net>> = Vec::with_capacity(n_nets);
    for _ in 0..n_nets {
        let line = r.next()?;
        if line == "x" {
            nets.push(None);
        } else if let Some(rest) = line.strip_prefix("n ") {
            nets.push(Some(Net {
                name: unesc(rest, r.line_no)?,
            }));
        } else {
            return Err(r.err(format!("expected net slot, got `{line}`")));
        }
    }

    let tok = r.expect_prefix("cells ")?;
    let n_cells = parse_usize(&r, tok)?;
    let mut cells: Vec<Option<Cell>> = Vec::with_capacity(n_cells);
    let mut live_cells = 0usize;
    for _ in 0..n_cells {
        let line = r.next()?;
        if line == "x" {
            cells.push(None);
            continue;
        }
        let rest = line
            .strip_prefix("c ")
            .ok_or_else(|| r.err(format!("expected cell slot, got `{line}`")))?;
        let mut toks = rest.split(' ');
        let cname = unesc(
            toks.next().ok_or_else(|| r.err("missing cell name"))?,
            r.line_no,
        )?;
        let kind_tok = toks.next().ok_or_else(|| r.err("missing cell kind"))?;
        let kind = CellKind::from_lib_name(kind_tok)
            .ok_or_else(|| r.err(format!("unknown cell kind `{kind_tok}`")))?;
        let mut pins = Vec::new();
        for tok in toks {
            let idx = parse_usize(&r, tok)?;
            if idx >= n_nets {
                return Err(r.err(format!("pin net index {idx} out of range")));
            }
            pins.push(NetId::from_index(idx));
        }
        if pins.len() != kind.pin_count() {
            return Err(r.err(format!(
                "cell `{cname}`: {} pins, kind {kind_tok} expects {}",
                pins.len(),
                kind.pin_count()
            )));
        }
        live_cells += 1;
        cells.push(Some(Cell {
            name: cname,
            kind,
            pins,
        }));
    }

    let tok = r.expect_prefix("ports ")?;
    let n_ports = parse_usize(&r, tok)?;
    let mut ports: Vec<Port> = Vec::with_capacity(n_ports);
    for _ in 0..n_ports {
        let rest = r.expect_prefix("p ")?;
        let mut toks = rest.split(' ');
        let dir = match toks.next() {
            Some("i") => PortDir::Input,
            Some("o") => PortDir::Output,
            other => return Err(r.err(format!("bad port direction {other:?}"))),
        };
        let pname = unesc(
            toks.next().ok_or_else(|| r.err("missing port name"))?,
            r.line_no,
        )?;
        let idx = parse_usize(&r, toks.next().ok_or_else(|| r.err("missing port net"))?)?;
        if idx >= n_nets {
            return Err(r.err(format!("port net index {idx} out of range")));
        }
        ports.push(Port {
            name: pname,
            dir,
            net: NetId::from_index(idx),
        });
    }

    let clock_line = r.next()?;
    let clock = if clock_line == "clock none" {
        None
    } else if let Some(rest) = clock_line.strip_prefix("clock ") {
        let mut toks = rest.split(' ');
        let n_phases = parse_usize(&r, toks.next().ok_or_else(|| r.err("missing phase count"))?)?;
        let period_ps = parse_f64_bits(
            &r,
            toks.next().ok_or_else(|| r.err("missing clock period"))?,
        )?;
        let mut phases = Vec::with_capacity(n_phases);
        for _ in 0..n_phases {
            let rest = r.expect_prefix("phase ")?;
            let mut toks = rest.split(' ');
            let pidx = parse_usize(&r, toks.next().ok_or_else(|| r.err("missing phase port"))?)?;
            if pidx >= n_ports {
                return Err(r.err(format!("phase port index {pidx} out of range")));
            }
            let rise_ps =
                parse_f64_bits(&r, toks.next().ok_or_else(|| r.err("missing rise time"))?)?;
            let fall_ps =
                parse_f64_bits(&r, toks.next().ok_or_else(|| r.err("missing fall time"))?)?;
            phases.push(PhaseDef {
                port: PortId::from_index(pidx),
                rise_ps,
                fall_ps,
            });
        }
        Some(ClockSpec { period_ps, phases })
    } else {
        return Err(r.err(format!("expected clock record, got `{clock_line}`")));
    };

    let end = r.next()?;
    if end != "end" {
        return Err(r.err(format!("expected `end`, got `{end}`")));
    }

    Ok(Netlist {
        name,
        cells,
        nets,
        ports,
        clock,
        live_cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::ClockSpec;

    fn sample() -> Netlist {
        let mut nl = Netlist::new("snap test"); // space exercises escaping
        let (ck_port, ck) = nl.add_input("ck");
        let (_, a) = nl.add_input("a");
        let y = nl.add_net("y\tweird");
        nl.add_cell("u1", CellKind::Inv, vec![a, y]);
        let q = nl.add_net("q");
        nl.add_cell("ff0", CellKind::Dff, vec![y, ck, q]);
        nl.add_output("q", q);
        // Tombstones: a removed net and a removed cell.
        let dead_net = nl.add_net("dead");
        nl.remove_net(dead_net);
        let z = nl.add_net("z");
        let dead_cell = nl.add_cell("tmp", CellKind::Buf, vec![q, z]);
        nl.remove_cell(dead_cell);
        nl.clock = Some(ClockSpec::single(ck_port, 1234.5));
        nl
    }

    #[test]
    fn round_trip_is_exact() {
        let nl = sample();
        let text = to_text(&nl);
        let back = from_text(&text).unwrap();
        // Arena layout (incl. tombstones), ports, clock, counters.
        assert_eq!(to_text(&back), text);
        assert_eq!(back.name, nl.name);
        assert_eq!(back.cell_count(), nl.cell_count());
        assert_eq!(back.cell_capacity(), nl.cell_capacity());
        assert_eq!(back.net_capacity(), nl.net_capacity());
        assert_eq!(back.ports(), nl.ports());
        assert_eq!(back.clock, nl.clock);
        assert_eq!(
            back.clock.as_ref().unwrap().period_ps.to_bits(),
            nl.clock.as_ref().unwrap().period_ps.to_bits()
        );
    }

    #[test]
    fn round_trip_no_clock_and_empty() {
        let nl = Netlist::new("empty");
        let back = from_text(&to_text(&nl)).unwrap();
        assert_eq!(back.name, "empty");
        assert!(back.clock.is_none());
        assert_eq!(back.cell_capacity(), 0);
    }

    #[test]
    fn truncated_and_malformed_inputs_are_typed_errors() {
        let nl = sample();
        let text = to_text(&nl);
        // Any prefix that cuts into or before the final `end` line must
        // produce a typed error, never a panic or a partial netlist.
        for cut in 0..text.len() - 4 {
            assert!(from_text(&text[..cut]).is_err(), "cut at {cut}");
        }
        assert!(from_text("garbage").is_err());
        assert!(from_text("netlist v1\nname x\nnets zzz\n").is_err());
        // Wrong pin count for INV_X1 (expects 2 pins).
        let bad =
            "netlist v1\nname t\nnets 1\nn w\ncells 1\nc u1 INV_X1 0\nports 0\nclock none\nend\n";
        assert!(from_text(bad).is_err());
        // Unknown kind.
        let bad2 =
            "netlist v1\nname t\nnets 1\nn w\ncells 1\nc u1 BOGUS 0 0\nports 0\nclock none\nend\n";
        assert!(from_text(bad2).is_err());
    }

    #[test]
    fn special_characters_round_trip() {
        assert_eq!(unesc(&esc("a b\\c\td\ne"), 1).unwrap(), "a b\\c\td\ne");
    }
}
