//! Gate-level netlist intermediate representation for the `triphase`
//! toolkit.
//!
//! A [`Netlist`] is a flat single-module design: an arena of [`Cell`]
//! instances (kinds from [`triphase_cells`]), an arena of single-driver
//! [`Net`]s, top-level [`Port`]s, and an optional multi-phase [`ClockSpec`].
//!
//! Submodules provide:
//! - [`Builder`]/[`Word`]: word-level construction (adders, muxes,
//!   decoders, SOP lookup tables) used by the benchmark generators;
//! - [`graph`]: combinational topological order, storage-to-storage
//!   reachability (the paper's `FO(u)`), fan-in cone and clock tracing;
//! - [`verilog`]: structural Verilog writer/parser;
//! - [`bench_fmt`]: ISCAS89 `.bench` parser;
//! - [`gen`]: deterministic recipe-driven random netlist generator
//!   (property tests and the fuzz campaign).
//!
//! # Examples
//!
//! ```
//! use triphase_netlist::{Netlist, Builder};
//!
//! let mut nl = Netlist::new("counter");
//! let mut b = Builder::new(&mut nl, "u");
//! let (_, ck) = b.netlist().add_input("ck");
//! let d = b.word_input("d", 4);
//! let q = b.dff_word(&d, ck);
//! let (next, _) = b.add(&q, &d, None);
//! b.word_output("q", &next);
//! nl.validate()?;
//! assert_eq!(nl.stats().ffs, 4);
//! # Ok::<(), triphase_netlist::Error>(())
//! ```

mod build;
mod error;
pub mod gen;
pub mod graph;
mod id;
mod netlist;
pub mod opt;
pub mod rng;
pub mod snapshot;

pub mod bench_fmt;
pub mod verilog;

pub use build::{Builder, Word};
pub use error::{Error, Result};
pub use id::{CellId, NetId, PortId};
pub use netlist::{
    Cell, ClockSpec, ConnIndex, Net, Netlist, NetlistStats, PhaseDef, Pin, Port, PortDir,
};
pub use rng::SplitMix64;
pub use triphase_cells::CellKind;
