//! Shared deterministic pseudo-random stream (splitmix64).
//!
//! One implementation serves every seeded consumer in the workspace —
//! equivalence streaming (`triphase-sim`'s `Stream`), the benchmark
//! circuit generators, and property-test recipe streams — so a seed
//! always means the same sequence everywhere and results are stable
//! forever without an external RNG crate.

/// Splitmix64 generator state.
///
/// The tuple field is public so generators can be seeded positionally
/// (`SplitMix64(seed)`); [`SplitMix64::new`] is the readable spelling.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// New stream from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next pseudo-random bit.
    pub fn next_bit(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform-ish draw in `[0, n)` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform-ish draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert!((0..64).any(|_| a.next_u64() != c.next_u64()));
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(r.below(7) < 7);
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.below(0), 0);
    }
}
