//! The gate-level netlist data model.

use crate::error::{Error, Result};
use crate::id::{CellId, NetId, PortId};
use std::collections::HashMap;
use triphase_cells::{CellKind, Library, PinDir};

/// Direction of a top-level port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Primary input (drives its net).
    Input,
    /// Primary output (observes its net).
    Output,
}

/// A cell instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Instance name, unique within the netlist.
    pub name: String,
    /// The cell's kind (logic function + pin interface).
    pub kind: CellKind,
    pub(crate) pins: Vec<NetId>,
}

impl Cell {
    /// Net connected to pin `i`.
    pub fn pin(&self, i: usize) -> NetId {
        self.pins[i]
    }

    /// All pin connections in pin order.
    pub fn pins(&self) -> &[NetId] {
        &self.pins
    }

    /// Net driven by this cell's output pin.
    pub fn output(&self) -> NetId {
        self.pins[self.kind.output_pin()]
    }

    /// Nets read by this cell's input pins, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.pins[..self.kind.output_pin()]
    }
}

/// A net (single-driver wire).
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Net name, unique within the netlist.
    pub name: String,
}

/// A top-level port bound to a net.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Port direction.
    pub dir: PortDir,
    /// The net the port connects to.
    pub net: NetId,
}

/// Multi-phase clock description attached to a netlist.
///
/// Phase `i` is high during `[rise_ps, fall_ps)` within each cycle
/// (`fall_ps` may be ≤ `rise_ps` for phases wrapping the cycle boundary —
/// not used by the 3-phase scheme but supported).
#[derive(Debug, Clone, PartialEq)]
pub struct ClockSpec {
    /// Common cycle time, picoseconds.
    pub period_ps: f64,
    /// The phases, in `p1..pk` order.
    pub phases: Vec<PhaseDef>,
}

/// One clock phase of a [`ClockSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDef {
    /// The top-level input port carrying this phase.
    pub port: PortId,
    /// Rising edge time within the cycle (ps).
    pub rise_ps: f64,
    /// Falling edge time within the cycle (ps); this is the SMO closing
    /// time `e_i` of the phase.
    pub fall_ps: f64,
}

impl ClockSpec {
    /// Single-phase clock with 50% duty cycle on `port`.
    pub fn single(port: PortId, period_ps: f64) -> ClockSpec {
        ClockSpec {
            period_ps,
            phases: vec![PhaseDef {
                port,
                rise_ps: 0.0,
                fall_ps: period_ps / 2.0,
            }],
        }
    }

    /// `k` equal non-overlapping phases: phase `i` high in
    /// `[i·T/k, (i+1)·T/k)`.
    pub fn equal_phases(ports: &[PortId], period_ps: f64) -> ClockSpec {
        let k = ports.len() as f64;
        ClockSpec {
            period_ps,
            phases: ports
                .iter()
                .enumerate()
                .map(|(i, &port)| PhaseDef {
                    port,
                    rise_ps: period_ps * i as f64 / k,
                    fall_ps: period_ps * (i + 1) as f64 / k,
                })
                .collect(),
        }
    }

    /// Index of the phase carried by `port`, if any.
    pub fn phase_of_port(&self, port: PortId) -> Option<usize> {
        self.phases.iter().position(|p| p.port == port)
    }
}

/// A flat, single-module gate-level netlist.
///
/// Cells and nets live in append-only arenas; removal leaves a tombstone
/// that [`Netlist::compact`] erases (invalidating outstanding ids).
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    pub(crate) cells: Vec<Option<Cell>>,
    pub(crate) nets: Vec<Option<Net>>,
    pub(crate) ports: Vec<Port>,
    /// Clock description, if the design is sequential.
    pub clock: Option<ClockSpec>,
    pub(crate) live_cells: usize,
}

impl Netlist {
    /// Empty netlist named `name`.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    // ---- construction ----------------------------------------------------

    /// Create a net.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Some(Net { name: name.into() }));
        id
    }

    /// Create a cell connected to `pins` (in pin order, output last).
    ///
    /// # Panics
    ///
    /// Panics if `pins.len()` does not match the kind's pin count or the
    /// kind is invalid.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        pins: Vec<NetId>,
    ) -> CellId {
        assert!(kind.validate(), "invalid kind {kind:?}");
        assert_eq!(
            pins.len(),
            kind.pin_count(),
            "pin count mismatch for {kind:?}"
        );
        let id = CellId(self.cells.len() as u32);
        self.cells.push(Some(Cell {
            name: name.into(),
            kind,
            pins,
        }));
        self.live_cells += 1;
        id
    }

    /// Declare a top-level port on an existing net.
    pub fn add_port(&mut self, name: impl Into<String>, dir: PortDir, net: NetId) -> PortId {
        let id = PortId(self.ports.len() as u32);
        self.ports.push(Port {
            name: name.into(),
            dir,
            net,
        });
        id
    }

    /// Convenience: create a net and an input port driving it.
    pub fn add_input(&mut self, name: &str) -> (PortId, NetId) {
        let net = self.add_net(name);
        (self.add_port(name, PortDir::Input, net), net)
    }

    /// Convenience: declare `net` as observed by a new output port.
    pub fn add_output(&mut self, name: &str, net: NetId) -> PortId {
        self.add_port(name, PortDir::Output, net)
    }

    // ---- mutation ---------------------------------------------------------

    /// Remove a cell, leaving a tombstone.
    ///
    /// # Panics
    ///
    /// Panics if the cell was already removed.
    pub fn remove_cell(&mut self, id: CellId) {
        let slot = &mut self.cells[id.index()];
        assert!(slot.is_some(), "cell {id} already removed");
        *slot = None;
        self.live_cells -= 1;
    }

    /// Remove a net, leaving a tombstone. Pins or ports still referencing
    /// it become dangling (callers are expected to reconnect them; the
    /// `triphase-lint` `S004` rule reports any that remain).
    ///
    /// # Panics
    ///
    /// Panics if the net was already removed.
    pub fn remove_net(&mut self, id: NetId) {
        let slot = &mut self.nets[id.index()];
        assert!(slot.is_some(), "net {id} already removed");
        *slot = None;
    }

    /// Reconnect pin `pin` of cell `id` to `net`.
    pub fn set_pin(&mut self, id: CellId, pin: usize, net: NetId) {
        let cell = self.cells[id.index()].as_mut().expect("dead cell");
        cell.pins[pin] = net;
    }

    /// Replace a cell in place (same id) with a new kind and pin list.
    ///
    /// # Panics
    ///
    /// Panics on pin-count mismatch or dead cell.
    pub fn replace_cell(&mut self, id: CellId, kind: CellKind, pins: Vec<NetId>) {
        assert_eq!(pins.len(), kind.pin_count(), "pin count mismatch");
        let cell = self.cells[id.index()].as_mut().expect("dead cell");
        cell.kind = kind;
        cell.pins = pins;
    }

    /// Rename a cell.
    pub fn rename_cell(&mut self, id: CellId, name: impl Into<String>) {
        self.cells[id.index()].as_mut().expect("dead cell").name = name.into();
    }

    // ---- access -----------------------------------------------------------

    /// The cell `id`.
    ///
    /// # Panics
    ///
    /// Panics if removed or out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        self.cells[id.index()].as_ref().expect("dead cell")
    }

    /// The cell `id` if it is alive.
    pub fn try_cell(&self, id: CellId) -> Option<&Cell> {
        self.cells.get(id.index()).and_then(|c| c.as_ref())
    }

    /// The net `id`.
    pub fn net(&self, id: NetId) -> &Net {
        self.nets[id.index()].as_ref().expect("dead net")
    }

    /// The net `id` if it is alive.
    pub fn try_net(&self, id: NetId) -> Option<&Net> {
        self.nets.get(id.index()).and_then(|n| n.as_ref())
    }

    /// The port `id`.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// All ports.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Ids of input ports.
    pub fn input_ports(&self) -> Vec<PortId> {
        self.ports_with_dir(PortDir::Input)
    }

    /// Ids of output ports.
    pub fn output_ports(&self) -> Vec<PortId> {
        self.ports_with_dir(PortDir::Output)
    }

    fn ports_with_dir(&self, dir: PortDir) -> Vec<PortId> {
        self.ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dir == dir)
            .map(|(i, _)| PortId(i as u32))
            .collect()
    }

    /// Find a port by name.
    pub fn find_port(&self, name: &str) -> Option<PortId> {
        self.ports
            .iter()
            .position(|p| p.name == name)
            .map(|i| PortId(i as u32))
    }

    /// Iterate live cells.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (CellId(i as u32), c)))
    }

    /// Iterate all nets.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (NetId(i as u32), n)))
    }

    /// Number of live cells.
    pub fn cell_count(&self) -> usize {
        self.live_cells
    }

    /// Number of nets (including any orphaned by cell removal).
    pub fn net_count(&self) -> usize {
        self.nets.iter().filter(|n| n.is_some()).count()
    }

    /// Upper bound of cell ids ever allocated (for index-by-id vectors).
    pub fn cell_capacity(&self) -> usize {
        self.cells.len()
    }

    /// Upper bound of net ids ever allocated.
    pub fn net_capacity(&self) -> usize {
        self.nets.len()
    }

    // ---- derived ----------------------------------------------------------

    /// Build the connectivity index (drivers and loads per net).
    pub fn index(&self) -> ConnIndex {
        ConnIndex::build(self)
    }

    /// Category counts.
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats::default();
        for (_, c) in self.cells() {
            if c.kind.is_ff() {
                s.ffs += 1;
            } else if c.kind.is_latch() {
                s.latches += 1;
            } else if c.kind.is_clock_gate() {
                s.clock_gates += 1;
            } else if c.kind == CellKind::ClkBuf {
                s.clock_buffers += 1;
            } else {
                s.comb += 1;
            }
        }
        s.cells = self.live_cells;
        s.inputs = self.input_ports().len();
        s.outputs = self.output_ports().len();
        s
    }

    /// Total cell area under `lib` (µm²), excluding wires.
    pub fn cell_area(&self, lib: &Library) -> f64 {
        self.cells().map(|(_, c)| lib.cell(c.kind).area).sum()
    }

    /// Check structural invariants:
    /// every net has exactly one driver (cell output or input port),
    /// every pin references a live net, instance names are unique.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        let mut drivers: Vec<u32> = vec![0; self.nets.len()];
        let mut used: Vec<bool> = vec![false; self.nets.len()];
        for port in &self.ports {
            if self
                .nets
                .get(port.net.index())
                .and_then(|n| n.as_ref())
                .is_none()
            {
                return Err(Error::Invalid(format!(
                    "port {} references dead net {}",
                    port.name, port.net
                )));
            }
            used[port.net.index()] = true;
            if port.dir == PortDir::Input {
                drivers[port.net.index()] += 1;
            }
        }
        let mut names: HashMap<&str, CellId> = HashMap::new();
        for (id, cell) in self.cells() {
            if let Some(prev) = names.insert(cell.name.as_str(), id) {
                return Err(Error::Invalid(format!(
                    "duplicate instance name {} ({prev} and {id})",
                    cell.name
                )));
            }
            for (pin, &net) in cell.pins.iter().enumerate() {
                if self
                    .nets
                    .get(net.index())
                    .and_then(|n| n.as_ref())
                    .is_none()
                {
                    return Err(Error::Invalid(format!(
                        "cell {} pin {pin} references dead net {net}",
                        cell.name
                    )));
                }
                used[net.index()] = true;
                if cell.kind.pin_def(pin).dir == PinDir::Output {
                    drivers[net.index()] += 1;
                }
            }
        }
        for (i, net) in self.nets.iter().enumerate() {
            let Some(net) = net else { continue };
            if !used[i] {
                continue; // dangling nets are tolerated (removed by compact)
            }
            if drivers[i] == 0 {
                return Err(Error::Invalid(format!("net {} has no driver", net.name)));
            }
            if drivers[i] > 1 {
                return Err(Error::Invalid(format!(
                    "net {} has {} drivers",
                    net.name, drivers[i]
                )));
            }
        }
        Ok(())
    }

    /// Drop ports not selected by `keep`, preserving the relative order
    /// of the remaining ports. **Invalidates all outstanding [`PortId`]s**
    /// (including those inside `self.clock` — callers must rebuild the
    /// clock spec afterwards).
    pub fn retain_ports(&mut self, mut keep: impl FnMut(PortId, &Port) -> bool) {
        let mut i = 0u32;
        self.ports.retain(|p| {
            let id = PortId(i);
            i += 1;
            keep(id, p)
        });
    }

    /// Rebuild the netlist without tombstones or unused nets.
    ///
    /// All previously held [`CellId`]/[`NetId`] values are invalidated;
    /// ports keep their order (so [`PortId`]s remain valid) and the clock
    /// spec is carried over.
    pub fn compact(&self) -> Netlist {
        let mut used_net = vec![false; self.nets.len()];
        for p in &self.ports {
            used_net[p.net.index()] = true;
        }
        for (_, c) in self.cells() {
            for &n in c.pins() {
                used_net[n.index()] = true;
            }
        }
        let mut out = Netlist::new(self.name.clone());
        let mut net_map: Vec<Option<NetId>> = vec![None; self.nets.len()];
        for (i, net) in self.nets.iter().enumerate() {
            if let Some(net) = net {
                if used_net[i] {
                    net_map[i] = Some(out.add_net(net.name.clone()));
                }
            }
        }
        for (_, cell) in self.cells() {
            let pins = cell
                .pins()
                .iter()
                .map(|n| net_map[n.index()].expect("used net mapped"))
                .collect();
            out.add_cell(cell.name.clone(), cell.kind, pins);
        }
        for port in &self.ports {
            out.add_port(
                port.name.clone(),
                port.dir,
                net_map[port.net.index()].expect("port net mapped"),
            );
        }
        out.clock = self.clock.clone();
        out
    }
}

/// Connectivity index: per-net driver and loads, computed from a snapshot
/// of the netlist. Invalidated by any mutation.
#[derive(Debug, Clone)]
pub struct ConnIndex {
    driver: Vec<Option<Pin>>,
    input_port: Vec<Option<PortId>>,
    loads: Vec<Vec<Pin>>,
    output_ports: Vec<Vec<PortId>>,
}

/// A (cell, pin-index) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pin {
    /// The cell.
    pub cell: CellId,
    /// Pin index within the cell.
    pub pin: usize,
}

impl ConnIndex {
    fn build(nl: &Netlist) -> ConnIndex {
        let n = nl.nets.len();
        let mut idx = ConnIndex {
            driver: vec![None; n],
            input_port: vec![None; n],
            loads: vec![Vec::new(); n],
            output_ports: vec![Vec::new(); n],
        };
        for (i, port) in nl.ports.iter().enumerate() {
            match port.dir {
                PortDir::Input => idx.input_port[port.net.index()] = Some(PortId(i as u32)),
                PortDir::Output => idx.output_ports[port.net.index()].push(PortId(i as u32)),
            }
        }
        for (id, cell) in nl.cells() {
            for (pin, &net) in cell.pins().iter().enumerate() {
                let p = Pin { cell: id, pin };
                if cell.kind.pin_def(pin).dir == PinDir::Output {
                    idx.driver[net.index()] = Some(p);
                } else {
                    idx.loads[net.index()].push(p);
                }
            }
        }
        idx
    }

    /// The cell pin driving `net`, if a cell (rather than a port) drives it.
    pub fn driver(&self, net: NetId) -> Option<Pin> {
        self.driver[net.index()]
    }

    /// The input port driving `net`, if any.
    pub fn driving_port(&self, net: NetId) -> Option<PortId> {
        self.input_port[net.index()]
    }

    /// Cell pins reading `net`.
    pub fn loads(&self, net: NetId) -> &[Pin] {
        &self.loads[net.index()]
    }

    /// Output ports observing `net`.
    pub fn observers(&self, net: NetId) -> &[PortId] {
        &self.output_ports[net.index()]
    }

    /// Number of cell loads plus observing ports on `net`.
    pub fn fanout_count(&self, net: NetId) -> usize {
        self.loads[net.index()].len() + self.output_ports[net.index()].len()
    }
}

/// Cell-category counts of a netlist.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total live cells.
    pub cells: usize,
    /// Flip-flops (`DFF`, `DFFEN`).
    pub ffs: usize,
    /// Level-sensitive latches.
    pub latches: usize,
    /// Clock-gating cells.
    pub clock_gates: usize,
    /// Clock-tree buffers.
    pub clock_buffers: usize,
    /// Combinational cells.
    pub comb: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
}

impl NetlistStats {
    /// Registers = FFs + latches (the paper's "# of Regs" column).
    pub fn registers(&self) -> usize {
        self.ffs + self.latches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Netlist, CellId, NetId) {
        let mut nl = Netlist::new("tiny");
        let (_, a) = nl.add_input("a");
        let (_, b) = nl.add_input("b");
        let y = nl.add_net("y");
        let g = nl.add_cell("u1", CellKind::And(2), vec![a, b, y]);
        nl.add_output("y", y);
        (nl, g, y)
    }

    #[test]
    fn build_and_query() {
        let (nl, g, y) = tiny();
        assert_eq!(nl.cell_count(), 1);
        assert_eq!(nl.cell(g).kind, CellKind::And(2));
        assert_eq!(nl.cell(g).output(), y);
        assert_eq!(nl.cell(g).inputs().len(), 2);
        nl.validate().unwrap();
        let idx = nl.index();
        assert_eq!(idx.driver(y), Some(Pin { cell: g, pin: 2 }));
        assert_eq!(idx.loads(y).len(), 0);
        assert_eq!(idx.observers(y).len(), 1);
        assert_eq!(idx.fanout_count(y), 1);
        let a = nl.port(nl.find_port("a").unwrap()).net;
        assert_eq!(idx.loads(a), &[Pin { cell: g, pin: 0 }]);
        assert!(idx.driving_port(a).is_some());
    }

    #[test]
    fn validate_catches_multiple_drivers() {
        let (mut nl, _, y) = tiny();
        let x = nl.add_net("x");
        nl.add_cell("u2", CellKind::Inv, vec![x, y]); // y now double-driven
                                                      // x has no driver but is used.
        let err = nl.validate().unwrap_err().to_string();
        assert!(
            err.contains("no driver") || err.contains("2 drivers"),
            "{err}"
        );
    }

    #[test]
    fn validate_catches_duplicate_names() {
        let (mut nl, _, y) = tiny();
        let z = nl.add_net("z");
        nl.add_cell("u1", CellKind::Inv, vec![y, z]);
        nl.add_output("z", z);
        let err = nl.validate().unwrap_err().to_string();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn remove_and_compact() {
        let (mut nl, g, y) = tiny();
        let z = nl.add_net("z");
        let inv = nl.add_cell("u2", CellKind::Inv, vec![y, z]);
        nl.add_output("z", z);
        nl.remove_cell(inv);
        assert_eq!(nl.cell_count(), 1);
        assert!(nl.try_cell(inv).is_none());
        assert!(nl.try_cell(g).is_some());
        // z is still observed by a port but now undriven -> invalid.
        assert!(nl.validate().is_err());
        // Reconnect the port's net by re-adding a driver, then compact.
        nl.add_cell("u3", CellKind::Buf, vec![y, z]);
        nl.validate().unwrap();
        let compacted = nl.compact();
        assert_eq!(compacted.cell_count(), 2);
        compacted.validate().unwrap();
        // Port order preserved.
        assert_eq!(
            nl.ports().iter().map(|p| &p.name).collect::<Vec<_>>(),
            compacted
                .ports()
                .iter()
                .map(|p| &p.name)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn try_net_distinguishes_live_dead_and_out_of_range() {
        let (mut nl, _, y) = tiny();
        assert_eq!(nl.try_net(y).map(|n| n.name.as_str()), Some("y"));
        let orphan = nl.add_net("orphan");
        nl.remove_net(orphan);
        assert!(nl.try_net(orphan).is_none(), "tombstone must read as dead");
        let beyond = NetId::from_index(nl.net_capacity() + 7);
        assert!(nl.try_net(beyond).is_none(), "out of range must not panic");
        // The panicking accessor still works for live nets.
        assert_eq!(nl.net(y).name, "y");
    }

    #[test]
    fn remove_net_leaves_dangling_pins_for_validate() {
        // Removing a *driven and used* net is legal mutation; the pins and
        // port that referenced it are dangling until reconnected, which
        // validation must report rather than panic on.
        let (mut nl, g, y) = tiny();
        nl.remove_net(y);
        assert!(nl.try_net(y).is_none());
        assert!(nl.try_cell(g).is_some(), "the cell itself stays alive");
        let err = nl.validate().unwrap_err().to_string();
        assert!(
            err.contains("dead net") || err.contains("dangling"),
            "{err}"
        );
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn remove_net_twice_panics() {
        let (mut nl, _, y) = tiny();
        nl.remove_net(y);
        nl.remove_net(y);
    }

    #[test]
    fn compact_drops_orphan_nets() {
        let (mut nl, _, _) = tiny();
        nl.add_net("orphan");
        let c = nl.compact();
        assert!(c.nets().all(|(_, n)| n.name != "orphan"));
    }

    #[test]
    fn stats_counts_categories() {
        let (mut nl, _, y) = tiny();
        let ck = nl.add_input("ck").1;
        let q = nl.add_net("q");
        nl.add_cell("ff", CellKind::Dff, vec![y, ck, q]);
        nl.add_output("q", q);
        let s = nl.stats();
        assert_eq!(s.ffs, 1);
        assert_eq!(s.comb, 1);
        assert_eq!(s.registers(), 1);
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 2);
    }

    #[test]
    fn clock_spec_phases() {
        let mut nl = Netlist::new("clk");
        let (p1, _) = nl.add_input("p1");
        let (p2, _) = nl.add_input("p2");
        let (p3, _) = nl.add_input("p3");
        let spec = ClockSpec::equal_phases(&[p1, p2, p3], 900.0);
        assert_eq!(spec.phases.len(), 3);
        assert_eq!(spec.phases[0].rise_ps, 0.0);
        assert_eq!(spec.phases[0].fall_ps, 300.0);
        assert_eq!(spec.phases[2].fall_ps, 900.0);
        assert_eq!(spec.phase_of_port(p2), Some(1));
        let single = ClockSpec::single(p1, 1000.0);
        assert_eq!(single.phases[0].fall_ps, 500.0);
    }

    #[test]
    fn replace_and_set_pin() {
        let (mut nl, g, y) = tiny();
        let a = nl.port(nl.find_port("a").unwrap()).net;
        nl.replace_cell(g, CellKind::Or(2), vec![a, a, y]);
        assert_eq!(nl.cell(g).kind, CellKind::Or(2));
        let b = nl.port(nl.find_port("b").unwrap()).net;
        nl.set_pin(g, 1, b);
        assert_eq!(nl.cell(g).pin(1), b);
        nl.validate().unwrap();
    }

    #[test]
    fn cell_area_accumulates() {
        let (nl, _, _) = tiny();
        let lib = Library::synthetic_28nm();
        assert!(nl.cell_area(&lib) > 0.0);
    }
}
