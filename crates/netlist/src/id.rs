//! Typed indices into a [`crate::Netlist`]'s arenas.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Construct from a raw index. Intended for tests and for code
            /// that round-trips indices it previously obtained from a
            /// netlist; out-of-range ids are caught on first use.
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id overflow"))
            }

            /// The raw arena index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a cell instance.
    CellId,
    "c"
);
define_id!(
    /// Identifier of a net.
    NetId,
    "n"
);
define_id!(
    /// Identifier of a top-level port.
    PortId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_format() {
        let c = CellId::from_index(7);
        assert_eq!(c.index(), 7);
        assert_eq!(format!("{c}"), "c7");
        assert_eq!(format!("{c:?}"), "c7");
        let n = NetId::from_index(0);
        assert_eq!(format!("{n}"), "n0");
        let p = PortId::from_index(3);
        assert_eq!(format!("{p:?}"), "p3");
    }

    #[test]
    fn ordering() {
        assert!(CellId::from_index(1) < CellId::from_index(2));
    }
}
