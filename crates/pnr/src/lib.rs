//! Placement, clock-tree synthesis, and wire estimation.
//!
//! The paper reports *post place-and-route* power; its savings are
//! dominated by clock-network capacitance (sink pins × tree wire ×
//! buffers), which this crate models:
//!
//! - **Placement**: constructive clustered seeding followed by simulated
//!   annealing on half-perimeter wirelength (HPWL), deterministic under a
//!   seed;
//! - **Routing estimate**: per-net wire capacitance from HPWL with a
//!   fanout correction;
//! - **CTS**: a *virtual* clock-tree synthesis per clock net (root phases
//!   and gated subtrees separately): recursive geometric bisection down to
//!   a max fanout, buffer insertion, and tree wire/cap accounting. The
//!   netlist itself is not modified; the tree capacitance is attributed to
//!   the clock nets for timing and power.
//!
//! # Examples
//!
//! ```
//! use triphase_netlist::{Netlist, Builder, ClockSpec};
//! use triphase_cells::Library;
//! use triphase_pnr::{place_and_route, PnrOptions};
//!
//! let mut nl = Netlist::new("d");
//! let mut b = Builder::new(&mut nl, "u");
//! let (ckp, ck) = b.netlist().add_input("ck");
//! let d = b.word_input("d", 8);
//! let q = b.dff_word(&d, ck);
//! b.word_output("q", &q);
//! nl.clock = Some(ClockSpec::single(ckp, 1000.0));
//! let lib = Library::synthetic_28nm();
//! let layout = place_and_route(&nl, &lib, &PnrOptions::default())?;
//! assert!(layout.total_wirelength_um > 0.0);
//! assert_eq!(layout.clock_trees.len(), 1);
//! # Ok::<(), triphase_pnr::Error>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;
use triphase_cells::{CellKind, Library, PinClass, PinDir};
use triphase_netlist::{CellId, ConnIndex, NetId, Netlist};

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by place-and-route.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The design has no cells to place.
    Empty,
    /// Underlying netlist problem.
    Netlist(triphase_netlist::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Empty => write!(f, "netlist has no cells to place"),
            Error::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

/// P&R knobs.
#[derive(Debug, Clone, Copy)]
pub struct PnrOptions {
    /// PRNG seed (placement is deterministic given the seed).
    pub seed: u64,
    /// Annealing moves per cell (total capped internally on huge designs).
    pub moves_per_cell: usize,
    /// Placement-row utilization target.
    pub utilization: f64,
    /// Max clock buffer fanout during CTS.
    pub cts_max_fanout: usize,
    /// Routed wire capacitance per µm (fF), signal nets.
    pub wire_cap_per_um: f64,
    /// Routed wire capacitance per µm (fF) for clock-tree wiring: clock
    /// nets use wide-spaced, shielded upper-metal routing with lower
    /// per-µm capacitance than minimum-pitch signal wiring.
    pub clock_wire_cap_per_um: f64,
}

impl Default for PnrOptions {
    fn default() -> Self {
        PnrOptions {
            seed: 1,
            moves_per_cell: 24,
            utilization: 0.65,
            cts_max_fanout: 32,
            wire_cap_per_um: 0.20,
            clock_wire_cap_per_um: 0.10,
        }
    }
}

/// Report for one synthesized clock (sub)tree.
#[derive(Debug, Clone)]
pub struct ClockTreeReport {
    /// Name of the net at the root of this subtree.
    pub root_net: String,
    /// The net id at the subtree root.
    pub net: NetId,
    /// Clock sinks (clock pins of storage and ICG cells).
    pub sinks: usize,
    /// Buffers inserted (virtual).
    pub buffers: usize,
    /// Total tree wirelength (µm).
    pub wirelength_um: f64,
    /// Total capacitance switched by this subtree each clock edge (fF):
    /// wire + buffer input pins + sink clock pins.
    pub total_cap_ff: f64,
    /// Buffer area added (µm², virtual).
    pub buffer_area: f64,
}

/// Result of place-and-route.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Position per cell id (µm), `None` for dead ids.
    pub positions: Vec<Option<(f64, f64)>>,
    /// Die dimensions (µm).
    pub die: (f64, f64),
    /// Estimated routed wire capacitance per net (fF), indexed by net id.
    /// Clock nets carry their CTS tree wiring here.
    pub net_wire_cap: Vec<f64>,
    /// Total signal wirelength (µm).
    pub total_wirelength_um: f64,
    /// Final HPWL cost of the placement (µm).
    pub hpwl_um: f64,
    /// One report per clock net with clock sinks.
    pub clock_trees: Vec<ClockTreeReport>,
    /// Placement runtime (seconds).
    pub place_seconds: f64,
    /// CTS + routing-estimate runtime (seconds).
    pub route_seconds: f64,
}

impl Layout {
    /// Total capacitance of all clock trees (fF).
    pub fn clock_tree_cap_ff(&self) -> f64 {
        self.clock_trees.iter().map(|t| t.total_cap_ff).sum()
    }

    /// Total virtual clock-buffer area (µm²).
    pub fn clock_buffer_area(&self) -> f64 {
        self.clock_trees.iter().map(|t| t.buffer_area).sum()
    }

    /// Total virtual clock-buffer count.
    pub fn clock_buffers(&self) -> usize {
        self.clock_trees.iter().map(|t| t.buffers).sum()
    }
}

/// Deterministic PRNG (xorshift64*), independent of external crates.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Place the design and estimate routing and clock trees.
///
/// # Errors
///
/// [`Error::Empty`] if there is nothing to place.
pub fn place_and_route(nl: &Netlist, lib: &Library, opts: &PnrOptions) -> Result<Layout> {
    let idx = nl.index();
    let cells: Vec<CellId> = nl.cells().map(|(id, _)| id).collect();
    if cells.is_empty() {
        return Err(Error::Empty);
    }
    let t0 = Instant::now();

    // Die sizing from total area at the utilization target.
    let total_area: f64 = nl.cell_area(lib);
    let side = (total_area / opts.utilization).sqrt().max(1.0);
    let n = cells.len();
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let pitch_x = side / cols as f64;
    let pitch_y = side / rows as f64;
    let pos_of_slot = move |s: usize| -> (f64, f64) {
        let r = s / cols;
        let c = s % cols;
        ((c as f64 + 0.5) * pitch_x, (r as f64 + 0.5) * pitch_y)
    };

    // Constructive seeding: registers sharing a clock (gated) net are
    // placed contiguously (register banks cluster, keeping each clock
    // subtree compact, as row placers do), then BFS over connectivity
    // pulls the combinational fabric next to its consumers.
    let order = seed_order(nl, &idx, &cells);

    // Port positions around the perimeter.
    let nports = nl.ports().len().max(1);
    let port_pos: Vec<(f64, f64)> = (0..nports)
        .map(|i| {
            let t = i as f64 / nports as f64 * 4.0;
            match t as usize {
                0 => (side * t.fract(), 0.0),
                1 => (side, side * t.fract()),
                2 => (side * (1.0 - t.fract()), side),
                _ => (0.0, side * (1.0 - t.fract())),
            }
        })
        .collect();

    // Net membership for incremental HPWL.
    let mut net_cells: Vec<Vec<CellId>> = vec![Vec::new(); nl.net_capacity()];
    let mut net_ports: Vec<Vec<usize>> = vec![Vec::new(); nl.net_capacity()];
    let mut cell_nets: HashMap<CellId, Vec<NetId>> = HashMap::new();
    for &c in &cells {
        let cell = nl.cell(c);
        let mut mine = Vec::with_capacity(cell.pins().len());
        for &net in cell.pins() {
            if !mine.contains(&net) {
                mine.push(net);
                net_cells[net.index()].push(c);
            }
        }
        cell_nets.insert(c, mine);
    }
    for (i, port) in nl.ports().iter().enumerate() {
        net_ports[port.net.index()].push(i);
    }

    let hpwl_net = |net: NetId, pos: &[Option<(f64, f64)>]| -> f64 {
        let mut lo = (f64::INFINITY, f64::INFINITY);
        let mut hi = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut any = false;
        for &c in &net_cells[net.index()] {
            if let Some((x, y)) = pos[c.index()] {
                lo = (lo.0.min(x), lo.1.min(y));
                hi = (hi.0.max(x), hi.1.max(y));
                any = true;
            }
        }
        for &p in &net_ports[net.index()] {
            let (x, y) = port_pos[p];
            lo = (lo.0.min(x), lo.1.min(y));
            hi = (hi.0.max(x), hi.1.max(y));
            any = true;
        }
        if !any {
            0.0
        } else {
            (hi.0 - lo.0) + (hi.1 - lo.1)
        }
    };

    // Simulated annealing with pairwise slot swaps.
    let mut pos: Vec<Option<(f64, f64)>> = vec![None; nl.cell_capacity()];
    let mut cell_at: Vec<Option<CellId>> = vec![None; cols * rows];
    for (s, &c) in order.iter().enumerate() {
        pos[c.index()] = Some(pos_of_slot(s));
        cell_at[s] = Some(c);
    }
    let mut rng = Rng::new(opts.seed);
    let budget = (opts.moves_per_cell * n).min(3_000_000);
    let mut temp = (pitch_x + pitch_y) * 4.0;
    let cooling = if budget > 0 {
        (0.005f64).powf(1.0 / budget as f64)
    } else {
        1.0
    };
    let cost_of = |a: CellId, b: Option<CellId>, pos: &[Option<(f64, f64)>]| -> f64 {
        let mut cost = 0.0;
        let nets_a = &cell_nets[&a];
        for &net in nets_a {
            cost += hpwl_net(net, pos);
        }
        if let Some(b) = b {
            for &net in &cell_nets[&b] {
                if !nets_a.contains(&net) {
                    cost += hpwl_net(net, pos);
                }
            }
        }
        cost
    };
    for _ in 0..budget {
        let a_slot = rng.below(cols * rows);
        let b_slot = rng.below(cols * rows);
        if a_slot == b_slot {
            continue;
        }
        let (Some(a), b) = (cell_at[a_slot], cell_at[b_slot]) else {
            continue;
        };
        let before = cost_of(a, b, &pos);
        pos[a.index()] = Some(pos_of_slot(b_slot));
        if let Some(b) = b {
            pos[b.index()] = Some(pos_of_slot(a_slot));
        }
        let after = cost_of(a, b, &pos);
        let delta = after - before;
        if delta <= 0.0 || rng.unit() < (-delta / temp.max(1e-9)).exp() {
            cell_at.swap(a_slot, b_slot);
        } else {
            pos[a.index()] = Some(pos_of_slot(a_slot));
            if let Some(b) = b {
                pos[b.index()] = Some(pos_of_slot(b_slot));
            }
        }
        temp *= cooling;
    }
    let place_seconds = t0.elapsed().as_secs_f64();

    // Routing estimate + CTS.
    let t1 = Instant::now();
    let mut net_wire_cap = vec![0.0f64; nl.net_capacity()];
    let mut total_wl = 0.0;
    let mut hpwl_total = 0.0;
    for (net, _) in nl.nets() {
        let h = hpwl_net(net, &pos);
        hpwl_total += h;
        let fanout = idx.fanout_count(net).max(1);
        // Net topology correction: star-like nets route longer than their
        // bounding box.
        let wl = h * (0.9 + 0.15 * (fanout as f64).ln_1p());
        total_wl += wl;
        net_wire_cap[net.index()] = wl * opts.wire_cap_per_um;
    }

    let clock_trees = synthesize_clock_trees(nl, lib, &pos, opts);
    for t in &clock_trees {
        // Clock nets carry the synthesized tree's wiring instead of the
        // HPWL estimate (sink pin caps are counted by the power model).
        net_wire_cap[t.net.index()] = t.wirelength_um * opts.clock_wire_cap_per_um;
    }
    let route_seconds = t1.elapsed().as_secs_f64();

    Ok(Layout {
        positions: pos,
        die: (side, side),
        net_wire_cap,
        total_wirelength_um: total_wl,
        hpwl_um: hpwl_total,
        clock_trees,
        place_seconds,
        route_seconds,
    })
}

fn seed_order(nl: &Netlist, idx: &ConnIndex, cells: &[CellId]) -> Vec<CellId> {
    let mut order = Vec::with_capacity(cells.len());
    let mut seen = vec![false; nl.cell_capacity()];
    let mut queue = std::collections::VecDeque::new();
    let bfs_from = |start: CellId,
                    order: &mut Vec<CellId>,
                    seen: &mut Vec<bool>,
                    queue: &mut std::collections::VecDeque<CellId>| {
        if seen[start.index()] {
            return;
        }
        queue.push_back(start);
        seen[start.index()] = true;
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for &net in nl.cell(c).pins() {
                if let Some(drv) = idx.driver(net) {
                    if !seen[drv.cell.index()] {
                        seen[drv.cell.index()] = true;
                        queue.push_back(drv.cell);
                    }
                }
                for load in idx.loads(net) {
                    if !seen[load.cell.index()] {
                        seen[load.cell.index()] = true;
                        queue.push_back(load.cell);
                    }
                }
            }
        }
    };

    // Register banks first: group storage cells by clock net, largest
    // groups first; each bank seeds a contiguous slot run and the BFS
    // immediately pulls its local fabric alongside.
    let mut banks: HashMap<NetId, Vec<CellId>> = HashMap::new();
    for &c in cells {
        let cell = nl.cell(c);
        if let Some(ck) = cell.kind.clock_pin() {
            if cell.kind.is_storage() {
                banks.entry(cell.pin(ck)).or_default().push(c);
            }
        }
    }
    let mut bank_list: Vec<(NetId, Vec<CellId>)> = banks.into_iter().collect();
    bank_list.sort_by_key(|(net, members)| (std::cmp::Reverse(members.len()), *net));
    for (_, members) in bank_list {
        for c in members {
            bfs_from(c, &mut order, &mut seen, &mut queue);
        }
    }
    for &c in cells {
        bfs_from(c, &mut order, &mut seen, &mut queue);
    }
    order
}

/// Virtual CTS: one tree per net with clock-class sinks.
fn synthesize_clock_trees(
    nl: &Netlist,
    lib: &Library,
    pos: &[Option<(f64, f64)>],
    opts: &PnrOptions,
) -> Vec<ClockTreeReport> {
    // Gather sinks per net: clock-class input pins (storage and ICGs).
    let mut sinks_of: HashMap<NetId, Vec<(f64, f64, f64)>> = HashMap::new();
    for (id, cell) in nl.cells() {
        for (pin, &net) in cell.pins().iter().enumerate() {
            let def = cell.kind.pin_def(pin);
            if def.dir == PinDir::Input && def.class == PinClass::Clock {
                if let Some((x, y)) = pos[id.index()] {
                    let cap = lib.cell(cell.kind).pin_cap(pin);
                    sinks_of.entry(net).or_default().push((x, y, cap));
                }
            }
        }
    }
    let buf = lib.cell(CellKind::ClkBuf);
    let mut reports: Vec<ClockTreeReport> = sinks_of
        .into_iter()
        .map(|(net, sinks)| {
            let mut buffers = 0usize;
            let mut wire = 0.0f64;
            cluster(&sinks, opts.cts_max_fanout, &mut buffers, &mut wire);
            let sink_cap: f64 = sinks.iter().map(|s| s.2).sum();
            let total_cap =
                wire * opts.clock_wire_cap_per_um + buffers as f64 * buf.input_cap_ff + sink_cap;
            ClockTreeReport {
                root_net: nl.net(net).name.clone(),
                net,
                sinks: sinks.len(),
                buffers,
                wirelength_um: wire,
                total_cap_ff: total_cap,
                buffer_area: buffers as f64 * buf.area,
            }
        })
        .collect();
    reports.sort_by(|a, b| a.root_net.cmp(&b.root_net));
    reports
}

/// Recursive geometric bisection; accumulates buffers and wirelength.
fn cluster(sinks: &[(f64, f64, f64)], max_fanout: usize, buffers: &mut usize, wire: &mut f64) {
    if sinks.is_empty() {
        return;
    }
    if sinks.len() <= max_fanout {
        *buffers += 1;
        // Leaf-level routing: a shared trunk over the cluster's bounding
        // box with short taps (a star from the centroid would double-count
        // wire that real CTS shares between nearby sinks).
        let (mut lo_x, mut hi_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lo_y, mut hi_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in sinks {
            lo_x = lo_x.min(s.0);
            hi_x = hi_x.max(s.0);
            lo_y = lo_y.min(s.1);
            hi_y = hi_y.max(s.1);
        }
        let hpwl = (hi_x - lo_x) + (hi_y - lo_y);
        *wire += hpwl * (1.0 + 0.3 * (sinks.len() as f64).log2().max(0.0));
        return;
    }
    // Split along the wider dimension at the median.
    let mut v = sinks.to_vec();
    let (min_x, max_x) = v
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), s| {
            (lo.min(s.0), hi.max(s.0))
        });
    let (min_y, max_y) = v
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), s| {
            (lo.min(s.1), hi.max(s.1))
        });
    if max_x - min_x >= max_y - min_y {
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    } else {
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    }
    let mid = v.len() / 2;
    // Trunk wiring between the two halves' extents.
    *wire += ((max_x - min_x) + (max_y - min_y)) * 0.5;
    *buffers += 1;
    cluster(&v[..mid], max_fanout, buffers, wire);
    cluster(&v[mid..], max_fanout, buffers, wire);
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::{Builder, ClockSpec};

    fn sample(n_ff: usize) -> Netlist {
        let mut nl = Netlist::new("s");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let d = b.word_input("d", n_ff);
        let q = b.dff_word(&d, ck);
        let inv: Vec<_> = q.bits().iter().map(|&x| b.not(x)).collect();
        let q2 = b.dff_word(&triphase_netlist::Word(inv), ck);
        b.word_output("q", &q2);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl
    }

    #[test]
    fn places_all_cells() {
        let nl = sample(8);
        let lib = Library::synthetic_28nm();
        let layout = place_and_route(&nl, &lib, &PnrOptions::default()).unwrap();
        for (id, _) in nl.cells() {
            assert!(layout.positions[id.index()].is_some());
        }
        assert!(layout.die.0 > 0.0);
        assert!(layout.hpwl_um > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let nl = sample(6);
        let lib = Library::synthetic_28nm();
        let a = place_and_route(&nl, &lib, &PnrOptions::default()).unwrap();
        let b = place_and_route(&nl, &lib, &PnrOptions::default()).unwrap();
        assert_eq!(a.hpwl_um, b.hpwl_um);
        assert_eq!(a.total_wirelength_um, b.total_wirelength_um);
    }

    #[test]
    fn annealing_not_worse_than_seed() {
        let nl = sample(16);
        let lib = Library::synthetic_28nm();
        let no_anneal = place_and_route(
            &nl,
            &lib,
            &PnrOptions {
                moves_per_cell: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let annealed = place_and_route(&nl, &lib, &PnrOptions::default()).unwrap();
        assert!(annealed.hpwl_um <= no_anneal.hpwl_um * 1.05);
    }

    #[test]
    fn cts_counts_sinks_and_buffers() {
        let nl = sample(40); // 80 FFs on one clock
        let lib = Library::synthetic_28nm();
        let layout = place_and_route(&nl, &lib, &PnrOptions::default()).unwrap();
        assert_eq!(layout.clock_trees.len(), 1);
        let t = &layout.clock_trees[0];
        assert_eq!(t.sinks, 80);
        assert!(t.buffers >= 3, "80 sinks at fanout 32 need >= 3 buffers");
        assert!(t.total_cap_ff > 80.0, "at least the sink pin caps");
        assert!(layout.clock_tree_cap_ff() >= t.total_cap_ff);
        assert!(layout.clock_buffers() >= 3);
        assert!(layout.clock_buffer_area() > 0.0);
    }

    #[test]
    fn more_sinks_more_clock_cap() {
        let lib = Library::synthetic_28nm();
        let small = place_and_route(&sample(8), &lib, &PnrOptions::default()).unwrap();
        let big = place_and_route(&sample(64), &lib, &PnrOptions::default()).unwrap();
        assert!(big.clock_tree_cap_ff() > small.clock_tree_cap_ff() * 2.0);
    }

    #[test]
    fn gated_subtrees_reported_separately() {
        let mut nl = Netlist::new("g");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, en) = b.netlist().add_input("en");
        let gck = b.net("gck");
        b.netlist()
            .add_cell("icg", CellKind::Icg, vec![en, ck, gck]);
        let d = b.word_input("d", 4);
        let q = b.dff_word(&d, gck);
        let q2 = b.dff_word(&q, ck);
        b.word_output("q", &q2);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let lib = Library::synthetic_28nm();
        let layout = place_and_route(&nl, &lib, &PnrOptions::default()).unwrap();
        assert_eq!(layout.clock_trees.len(), 2, "root tree + gated subtree");
    }

    #[test]
    fn empty_design_rejected() {
        let nl = Netlist::new("empty");
        let lib = Library::synthetic_28nm();
        assert!(matches!(
            place_and_route(&nl, &lib, &PnrOptions::default()),
            Err(Error::Empty)
        ));
    }
}
