//! Activity-based power estimation with the paper's Clock/Seq/Comb
//! grouping (Table II).
//!
//! Power is computed per net and per cell from simulation toggle counts
//! ([`triphase_sim::Activity`]), library capacitances/energies, and
//! (optionally) post-P&R wire capacitance and clock trees from
//! [`triphase_pnr::Layout`]:
//!
//! - **switching**: `½ · C · V² · α · f` per net, where `C` is wire plus
//!   sink pin capacitance;
//! - **internal**: per-toggle cell energy (plus per-clock-edge energy for
//!   sequential and clock-gating cells);
//! - **leakage**: static per-cell power.
//!
//! Group attribution follows sign-off convention: clock nets (everything
//! driven by a clock phase port, clock buffer, or ICG) and the virtual CTS
//! buffers belong to **Clock**; storage cells' internal/output power to
//! **Seq**; the rest to **Comb**.
//!
//! # Examples
//!
//! ```
//! use triphase_netlist::{Netlist, Builder, ClockSpec};
//! use triphase_cells::Library;
//! use triphase_sim::run_random;
//! use triphase_power::estimate_power;
//!
//! let mut nl = Netlist::new("d");
//! let mut b = Builder::new(&mut nl, "u");
//! let (ckp, ck) = b.netlist().add_input("ck");
//! let (_, d) = b.netlist().add_input("d");
//! let q = b.dff(d, ck);
//! b.netlist().add_output("q", q);
//! nl.clock = Some(ClockSpec::single(ckp, 1000.0));
//! let lib = Library::synthetic_28nm();
//! let sim = run_random(&nl, 7, 64).unwrap();
//! let report = estimate_power(&nl, &lib, sim.activity(), None)?;
//! assert!(report.total_mw() > 0.0);
//! # Ok::<(), triphase_power::Error>(())
//! ```

use std::fmt;
use triphase_cells::{CellKind, Library, VDD};
use triphase_netlist::{NetId, Netlist};
use triphase_pnr::Layout;
use triphase_sim::Activity;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by power estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The netlist has no clock specification (no frequency).
    NoClock,
    /// The activity profile covers no cycles.
    NoActivity,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoClock => write!(f, "netlist has no clock specification"),
            Error::NoActivity => write!(f, "activity profile has zero cycles"),
        }
    }
}

impl std::error::Error for Error {}

/// Power of one group (mW).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GroupPower {
    /// Net switching power.
    pub switching_mw: f64,
    /// Cell-internal power.
    pub internal_mw: f64,
    /// Leakage power.
    pub leakage_mw: f64,
}

impl GroupPower {
    /// Group total (mW).
    pub fn total(&self) -> f64 {
        self.switching_mw + self.internal_mw + self.leakage_mw
    }

    fn add(&mut self, other: GroupPower) {
        self.switching_mw += other.switching_mw;
        self.internal_mw += other.internal_mw;
        self.leakage_mw += other.leakage_mw;
    }
}

/// Grouped power report (mW), matching the paper's Table II columns.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerReport {
    /// Clock network: clock nets, tree buffers, clock-gating cells.
    pub clock: GroupPower,
    /// Sequential cells (FFs/latches): internal + output switching.
    pub seq: GroupPower,
    /// Combinational logic and data nets.
    pub comb: GroupPower,
}

impl PowerReport {
    /// Total power (mW).
    pub fn total_mw(&self) -> f64 {
        self.clock.total() + self.seq.total() + self.comb.total()
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "clock {:.3} mW, seq {:.3} mW, comb {:.3} mW, total {:.3} mW",
            self.clock.total(),
            self.seq.total(),
            self.comb.total(),
            self.total_mw()
        )
    }
}

/// Percentage saving of `new` vs `base` (positive = `new` is lower), the
/// paper's "Save (%)" convention.
pub fn percent_saving(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (base - new) / base * 100.0
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Group {
    Clock,
    Seq,
    Comb,
}

/// Per-net toggle-rate source for the dynamic power term.
///
/// [`ActivitySource::Measured`] is the classic simulation-backed path.
/// [`ActivitySource::Static`] is the zero-simulation fast path: a per-net
/// transition-density vector (toggles/cycle, indexed by `NetId`), e.g.
/// `ActivityModel::densities()` from `triphase-activity`. Leakage and
/// capacitance terms are identical either way; only where `α` comes from
/// differs.
#[derive(Debug, Clone, Copy)]
pub enum ActivitySource<'a> {
    /// Toggle counts from a (packed) simulation.
    Measured(&'a Activity),
    /// Static per-net transition densities (toggles/cycle).
    Static(&'a [f64]),
}

/// Power-model options.
#[derive(Debug, Clone, Copy)]
pub struct PowerOptions {
    /// Estimate glitch power from input-arrival *depth spread* per
    /// combinational cell: a cycle-accurate simulator only sees final
    /// transitions, but real gates with unequal input arrival depths
    /// produce spurious transitions first. Extra transitions per output
    /// toggle are `glitch_beta × (max input depth − min input depth)` —
    /// the mechanism behind the paper's observation that latch-based
    /// designs (whose retimed half-stages are shallower) "often have less
    /// glitching" than FF designs.
    pub glitch_beta: f64,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions { glitch_beta: 0.25 }
    }
}

/// Estimate grouped power with default options (glitch model on).
///
/// `layout` supplies post-P&R wire capacitance and virtual clock-tree
/// buffers; without it, wire capacitance is zero (pre-layout estimate).
///
/// # Errors
///
/// [`Error::NoClock`] without a clock spec; [`Error::NoActivity`] if the
/// activity covers zero cycles.
pub fn estimate_power(
    nl: &Netlist,
    lib: &Library,
    activity: &Activity,
    layout: Option<&Layout>,
) -> Result<PowerReport> {
    estimate_power_with(nl, lib, activity, layout, &PowerOptions::default())
}

/// [`estimate_power`] with explicit [`PowerOptions`].
///
/// # Errors
///
/// Same as [`estimate_power`].
pub fn estimate_power_with(
    nl: &Netlist,
    lib: &Library,
    activity: &Activity,
    layout: Option<&Layout>,
    opts: &PowerOptions,
) -> Result<PowerReport> {
    estimate_power_from(nl, lib, ActivitySource::Measured(activity), layout, opts)
}

/// [`estimate_power_with`] over an explicit [`ActivitySource`]: the
/// entry point that selects between measured toggle counts and the
/// static zero-simulation density vector.
///
/// # Errors
///
/// [`Error::NoClock`] without a clock spec; [`Error::NoActivity`] for a
/// zero-cycle measured profile or an empty static density vector.
pub fn estimate_power_from(
    nl: &Netlist,
    lib: &Library,
    source: ActivitySource<'_>,
    layout: Option<&Layout>,
    opts: &PowerOptions,
) -> Result<PowerReport> {
    let clock = nl.clock.as_ref().ok_or(Error::NoClock)?;
    match source {
        ActivitySource::Measured(a) if a.cycles == 0 => return Err(Error::NoActivity),
        ActivitySource::Static([]) => return Err(Error::NoActivity),
        _ => {}
    }
    let period_ps = clock.period_ps;
    let idx = nl.index();

    // Classify each net by its driver.
    let clock_ports: Vec<NetId> = clock.phases.iter().map(|p| nl.port(p.port).net).collect();
    let group_of_net = |net: NetId| -> Group {
        if clock_ports.contains(&net) {
            return Group::Clock;
        }
        match idx.driver(net) {
            Some(drv) => {
                let kind = nl.cell(drv.cell).kind;
                if kind.is_clock_gate() || kind == CellKind::ClkBuf {
                    Group::Clock
                } else if kind.is_storage() {
                    Group::Seq
                } else {
                    Group::Comb
                }
            }
            None => Group::Comb, // PI-driven data nets
        }
    };

    let toggles = |net: NetId| -> f64 {
        match source {
            ActivitySource::Measured(a) => {
                a.net_toggles.get(net.index()).copied().unwrap_or(0) as f64 / a.cycles as f64
            }
            ActivitySource::Static(d) => d.get(net.index()).copied().unwrap_or(0.0),
        }
    };

    let mut report = PowerReport::default();
    let add = |report: &mut PowerReport, group: Group, p: GroupPower| match group {
        Group::Clock => report.clock.add(p),
        Group::Seq => report.seq.add(p),
        Group::Comb => report.comb.add(p),
    };

    // Glitch factor per net: extra transitions caused by unequal input
    // arrival depths at the driving cell (zero for sequential/clock
    // drivers and when the model is disabled).
    let glitch = glitch_factors(nl, &idx, opts.glitch_beta);

    // Net switching.
    for (net, _) in nl.nets() {
        let alpha = toggles(net) * (1.0 + glitch[net.index()]);
        if alpha == 0.0 {
            continue;
        }
        let mut cap = layout
            .map(|l| l.net_wire_cap.get(net.index()).copied().unwrap_or(0.0))
            .unwrap_or(0.0);
        for pin in idx.loads(net) {
            cap += lib.cell(nl.cell(pin.cell).kind).pin_cap(pin.pin);
        }
        let energy_fj = 0.5 * cap * VDD * VDD * alpha;
        add(
            &mut report,
            group_of_net(net),
            GroupPower {
                switching_mw: energy_fj / period_ps,
                ..GroupPower::default()
            },
        );
    }

    // Virtual CTS buffers: input caps + internal energy on each clock edge.
    if let Some(layout) = layout {
        let buf = lib.cell(CellKind::ClkBuf);
        for tree in &layout.clock_trees {
            let alpha = toggles(tree.net);
            let nbuf = tree.buffers as f64;
            let cap_fj = 0.5 * nbuf * buf.input_cap_ff * VDD * VDD * alpha;
            let int_fj = nbuf * buf.internal_energy_fj * alpha;
            add(
                &mut report,
                Group::Clock,
                GroupPower {
                    switching_mw: cap_fj / period_ps,
                    internal_mw: int_fj / period_ps,
                    leakage_mw: nbuf * buf.leakage_nw * 1e-6,
                },
            );
        }
    }

    // Cell internal + leakage.
    for (_, cell) in nl.cells() {
        let lc = lib.cell(cell.kind);
        let group = if cell.kind.is_storage() {
            Group::Seq
        } else if cell.kind.is_clock_gate() || cell.kind == CellKind::ClkBuf {
            Group::Clock
        } else {
            Group::Comb
        };
        let out_alpha = toggles(cell.output()) * (1.0 + glitch[cell.output().index()]);
        let mut internal_fj = lc.internal_energy_fj * out_alpha;
        if let Some(ckpin) = cell.kind.clock_pin() {
            let ck_alpha = toggles(cell.pin(ckpin));
            internal_fj += lc.clock_energy_fj * ck_alpha;
        }
        add(
            &mut report,
            group,
            GroupPower {
                switching_mw: 0.0,
                internal_mw: internal_fj / period_ps,
                leakage_mw: lc.leakage_nw * 1e-6,
            },
        );
    }

    Ok(report)
}

/// Per-net glitch factor: `beta × (max input depth − min input depth)`
/// of the driving combinational cell, in topological order.
fn glitch_factors(nl: &Netlist, idx: &triphase_netlist::ConnIndex, beta: f64) -> Vec<f64> {
    let mut factor = vec![0.0f64; nl.net_capacity()];
    if beta <= 0.0 {
        return factor;
    }
    let Ok(order) = triphase_netlist::graph::comb_topo_order(nl, idx) else {
        return factor;
    };
    let mut depth = vec![0.0f64; nl.net_capacity()];
    for id in order {
        let cell = nl.cell(id);
        let mut dmax = 0.0f64;
        let mut dmin = f64::INFINITY;
        for &input in cell.inputs() {
            let d = depth[input.index()];
            dmax = dmax.max(d);
            dmin = dmin.min(d);
        }
        if !dmin.is_finite() {
            dmin = 0.0;
        }
        let out = cell.output();
        depth[out.index()] = dmax + 1.0;
        factor[out.index()] = beta * (dmax - dmin);
    }
    factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::{Builder, ClockSpec, Netlist};
    use triphase_pnr::{place_and_route, PnrOptions};
    use triphase_sim::run_random;

    fn ff_bank(n: usize, gated: bool) -> Netlist {
        let mut nl = Netlist::new("bank");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let ck_eff = if gated {
            let (_, en) = b.netlist().add_input("en");
            let gck = b.net("gck");
            b.netlist()
                .add_cell("icg", CellKind::Icg, vec![en, ck, gck]);
            gck
        } else {
            ck
        };
        let d = b.word_input("d", n);
        let q = b.dff_word(&d, ck_eff);
        b.word_output("q", &q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl
    }

    #[test]
    fn zero_cycle_activity_is_rejected() {
        // Regression: estimating power over an activity with no simulated
        // cycles must be a typed error, not a divide-by-zero NaN report.
        let nl = ff_bank(4, false);
        let lib = Library::synthetic_28nm();
        let empty = triphase_sim::Activity {
            cycles: 0,
            net_toggles: vec![0; nl.net_capacity()],
        };
        assert!(matches!(
            estimate_power(&nl, &lib, &empty, None),
            Err(Error::NoActivity)
        ));
    }

    #[test]
    fn groups_are_populated() {
        let nl = ff_bank(8, false);
        let lib = Library::synthetic_28nm();
        let sim = run_random(&nl, 3, 64).unwrap();
        let r = estimate_power(&nl, &lib, sim.activity(), None).unwrap();
        assert!(r.clock.total() > 0.0, "clock pins toggle");
        assert!(r.seq.total() > 0.0);
        assert!(r.comb.total() > 0.0, "input nets switch");
        assert!(r.total_mw() > 0.0);
        assert!(r.to_string().contains("total"));
    }

    #[test]
    fn layout_increases_power() {
        let nl = ff_bank(16, false);
        let lib = Library::synthetic_28nm();
        let sim = run_random(&nl, 3, 64).unwrap();
        let bare = estimate_power(&nl, &lib, sim.activity(), None).unwrap();
        let layout = place_and_route(&nl, &lib, &PnrOptions::default()).unwrap();
        let routed = estimate_power(&nl, &lib, sim.activity(), Some(&layout)).unwrap();
        assert!(
            routed.total_mw() > bare.total_mw(),
            "wire caps and CTS buffers add power"
        );
        assert!(routed.clock.total() > bare.clock.total());
    }

    #[test]
    fn gating_reduces_clock_power() {
        // Same FF bank; with EN=0 the gated design's clock subtree is
        // silent, so clock power must drop.
        let lib = Library::synthetic_28nm();
        let free = ff_bank(16, false);
        let sim_free = run_random(&free, 3, 64).unwrap();
        let p_free = estimate_power(&free, &lib, sim_free.activity(), None).unwrap();

        let gated = ff_bank(16, true);
        let mut sim = triphase_sim::Simulator::new(&gated).unwrap();
        sim.reset_zero();
        let en = gated.find_port("en").unwrap();
        for _ in 0..64 {
            sim.set_input(en, triphase_sim::Logic::Zero);
            sim.step_cycle();
        }
        let p_gated = estimate_power(&gated, &lib, sim.activity(), None).unwrap();
        assert!(
            p_gated.clock.total() < p_free.clock.total() * 0.7,
            "gated {} vs free {}",
            p_gated.clock.total(),
            p_free.clock.total()
        );
    }

    #[test]
    fn higher_frequency_higher_power() {
        let lib = Library::synthetic_28nm();
        let mut slow = ff_bank(8, false);
        let fast = ff_bank(8, false);
        slow.clock.as_mut().unwrap().period_ps = 4000.0;
        let sim_slow = run_random(&slow, 3, 64).unwrap();
        let sim_fast = run_random(&fast, 3, 64).unwrap();
        let p_slow = estimate_power(&slow, &lib, sim_slow.activity(), None).unwrap();
        let p_fast = estimate_power(&fast, &lib, sim_fast.activity(), None).unwrap();
        assert!(p_fast.total_mw() > p_slow.total_mw() * 2.0);
    }

    #[test]
    fn latch_bank_cheaper_clock_than_ff_bank() {
        // The library premise: latch clock pins cost about half an FF's.
        let lib = Library::synthetic_28nm();
        let nl_ff = ff_bank(16, false);
        let sim_ff = run_random(&nl_ff, 3, 64).unwrap();
        let p_ff = estimate_power(&nl_ff, &lib, sim_ff.activity(), None).unwrap();

        let mut nl_lat = Netlist::new("latbank");
        let mut b = Builder::new(&mut nl_lat, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let d = b.word_input("d", 16);
        let q: Vec<_> = d
            .bits()
            .iter()
            .enumerate()
            .map(|(i, &bit)| {
                let qn = b.net(&format!("q{i}"));
                let name = format!("lat{i}");
                b.netlist()
                    .add_cell(name, CellKind::LatchH, vec![bit, ck, qn]);
                qn
            })
            .collect();
        b.word_output("q", &triphase_netlist::Word(q));
        nl_lat.clock = Some(ClockSpec::single(ckp, 1000.0));
        let sim_lat = run_random(&nl_lat, 3, 64).unwrap();
        let p_lat = estimate_power(&nl_lat, &lib, sim_lat.activity(), None).unwrap();
        assert!(
            p_lat.clock.total() < p_ff.clock.total() * 0.75,
            "latch clock {} vs FF clock {}",
            p_lat.clock.total(),
            p_ff.clock.total()
        );
    }

    #[test]
    fn static_source_matches_measured_on_identical_rates() {
        // The static fast path must reproduce the measured estimate
        // exactly when fed the same per-net rates — only the source of
        // alpha differs, never the model.
        let nl = ff_bank(8, false);
        let lib = Library::synthetic_28nm();
        let sim = run_random(&nl, 5, 64).unwrap();
        let a = sim.activity();
        let rates: Vec<f64> = a
            .net_toggles
            .iter()
            .map(|&t| t as f64 / a.cycles as f64)
            .collect();
        let measured = estimate_power(&nl, &lib, a, None).unwrap();
        let opts = PowerOptions::default();
        let statics =
            estimate_power_from(&nl, &lib, ActivitySource::Static(&rates), None, &opts).unwrap();
        assert!((measured.total_mw() - statics.total_mw()).abs() < 1e-12);
        assert!((measured.clock.total() - statics.clock.total()).abs() < 1e-12);
        assert!(matches!(
            estimate_power_from(&nl, &lib, ActivitySource::Static(&[]), None, &opts),
            Err(Error::NoActivity)
        ));
    }

    #[test]
    fn percent_saving_convention() {
        assert_eq!(percent_saving(2.0, 1.0), 50.0);
        assert_eq!(percent_saving(1.0, 2.0), -100.0);
        assert_eq!(percent_saving(0.0, 1.0), 0.0);
    }

    #[test]
    fn errors() {
        let nl = ff_bank(2, false);
        let lib = Library::synthetic_28nm();
        let empty = Activity::default();
        assert!(matches!(
            estimate_power(&nl, &lib, &empty, None),
            Err(Error::NoActivity)
        ));
        let mut noclk = ff_bank(2, false);
        noclk.clock = None;
        let sim = run_random(&nl, 3, 8).unwrap();
        assert!(matches!(
            estimate_power(&noclk, &lib, sim.activity(), None),
            Err(Error::NoClock)
        ));
    }
}
