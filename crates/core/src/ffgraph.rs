//! FF fan-out graph extraction — the input of the paper's ILP.
//!
//! Each flip-flop is a node `u`; `FO(u)` is the set of FFs reachable from
//! `u`'s output through combinational logic only (paper §IV-A). Primary
//! inputs are tracked as pseudo-nodes "as if clocked by `p1`".

use crate::error::{Error, Result};
use std::collections::HashMap;
use triphase_activity::ActivityModel;
use triphase_ilp::{PhaseConfig, PhaseProblem, SolveRung, Status};
use triphase_netlist::{graph, CellId, ConnIndex, Netlist, PortId};

/// The FF fan-out graph of a design.
#[derive(Debug, Clone)]
pub struct FfGraph {
    /// The FF cells, in node order.
    pub ffs: Vec<CellId>,
    /// `FO(u)` as node indices (self-loops included).
    pub fo: Vec<Vec<usize>>,
    /// Data primary inputs and the FF nodes in their fan-out.
    pub pi_fanout: Vec<(PortId, Vec<usize>)>,
}

impl FfGraph {
    /// Node index of an FF cell.
    pub fn node_of(&self, c: CellId) -> Option<usize> {
        self.ffs.iter().position(|&f| f == c)
    }

    /// Number of FFs with combinational feedback (`u ∈ FO(u)`).
    pub fn self_loop_count(&self) -> usize {
        self.fo
            .iter()
            .enumerate()
            .filter(|(u, fo)| fo.contains(u))
            .count()
    }

    /// Lower the graph to the paper's ILP / phase-assignment problem.
    pub fn to_phase_problem(&self) -> PhaseProblem {
        let mut p = PhaseProblem::new(self.ffs.len());
        for (u, fo) in self.fo.iter().enumerate() {
            for &v in fo {
                p.add_fanout(u, v);
            }
        }
        for (_, fo) in &self.pi_fanout {
            if !fo.is_empty() {
                p.add_pi(fo.clone());
            }
        }
        p
    }

    /// [`FfGraph::to_phase_problem`] with an activity-weighted objective:
    /// inserting a `p2` latch behind FF `u` costs
    /// `1 + min(density(Q_u), 2)/2 ∈ [1, 2]` instead of 1 (likewise per
    /// PI from its port net's density), biasing insertion toward quiet
    /// nets — an inserted latch on a busy net burns data-pin and internal
    /// energy every toggle. The `[1, 2]` range bounds the latch-*count*
    /// distortion of the weighted optimum to at most 2x.
    pub fn to_phase_problem_weighted(&self, nl: &Netlist, model: &ActivityModel) -> PhaseProblem {
        let weight = |d: f64| 1.0 + (d / 2.0).clamp(0.0, 1.0);
        let mut p = self.to_phase_problem();
        p.set_node_weights(
            self.ffs
                .iter()
                .map(|&c| weight(model.density(nl.cell(c).output())))
                .collect(),
        );
        p.set_pi_weights(
            self.pi_fanout
                .iter()
                .filter(|(_, fo)| !fo.is_empty())
                .map(|(port, _)| weight(model.density(nl.port(*port).net)))
                .collect(),
        );
        p
    }
}

/// Extract the FF graph.
///
/// # Errors
///
/// [`Error::BadInput`] if the design still contains latches (conversion
/// expects a pure FF design) or enabled FFs (run gated-clock
/// preprocessing first).
pub fn extract_ff_graph(nl: &Netlist, idx: &ConnIndex) -> Result<FfGraph> {
    let stats = nl.stats();
    if stats.latches > 0 {
        return Err(Error::BadInput("design already contains latches".into()));
    }
    let ffs: Vec<CellId> = nl
        .cells()
        .filter(|(_, c)| c.kind.is_ff())
        .map(|(id, _)| id)
        .collect();
    let node_of: HashMap<CellId, usize> = ffs.iter().enumerate().map(|(i, &c)| (c, i)).collect();

    let fo: Vec<Vec<usize>> = ffs
        .iter()
        .map(|&c| {
            let reach = graph::reach_storage(nl, idx, nl.cell(c).output());
            reach
                .storage
                .iter()
                .filter_map(|s| node_of.get(s).copied())
                .collect()
        })
        .collect();

    let clock_ports: Vec<PortId> = nl
        .clock
        .iter()
        .flat_map(|c| c.phases.iter().map(|p| p.port))
        .collect();
    let pi_fanout: Vec<(PortId, Vec<usize>)> = nl
        .input_ports()
        .into_iter()
        .filter(|p| !clock_ports.contains(p))
        .map(|p| {
            let reach = graph::reach_storage(nl, idx, nl.port(p).net);
            let nodes = reach
                .storage
                .iter()
                .filter_map(|s| node_of.get(s).copied())
                .collect();
            (p, nodes)
        })
        .collect();

    Ok(FfGraph { ffs, fo, pi_fanout })
}

/// Phase assignment decoded back to netlist entities.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// `K(u)`: `true` = phase `p1`, `false` = `p3`.
    pub k: HashMap<CellId, bool>,
    /// `G(u)`: `true` = back-to-back (insert a `p2` latch at the output).
    pub g: HashMap<CellId, bool>,
    /// Primary inputs needing a `p2` latch on their fan-out boundary.
    pub pi_g: HashMap<PortId, bool>,
    /// ILP objective value (number of `p2` insertions).
    pub cost: usize,
    /// Weighted objective value (equals `cost as f64` when unweighted).
    pub weighted_cost: f64,
    /// Whether an activity-weighted objective drove the solve.
    pub weighted: bool,
    /// Whether the solver proved optimality.
    pub optimal: bool,
    /// Seconds spent in the solver.
    pub solve_seconds: f64,
    /// Which rung of the fallback chain produced the answer.
    pub rung: SolveRung,
    /// Solver termination status (budget hits are distinguishable).
    pub status: Status,
    /// Number of rungs that failed before `rung` answered.
    pub fallbacks: usize,
}

impl Assignment {
    /// Number of FFs converted to single latches.
    pub fn singles(&self) -> usize {
        self.g.values().filter(|&&g| !g).count()
    }
}

/// Solve the phase-assignment ILP for a design.
///
/// Runs the full fallback chain ([`PhaseProblem::solve_chain`]): ILP
/// (when enabled and small enough) → exact combinatorial → greedy. The
/// answering rung, solver status, and fallback count are recorded on the
/// returned [`Assignment`] so the flow report can surface degraded
/// solves.
pub fn assign_phases(graph: &FfGraph, cfg: &PhaseConfig) -> Assignment {
    solve_assignment(graph, graph.to_phase_problem(), cfg)
}

/// [`assign_phases`] with the static-activity-weighted objective
/// ([`FfGraph::to_phase_problem_weighted`]): `p2` insertions are biased
/// away from high-transition-density nets. Count-based fields
/// ([`Assignment::cost`]) remain plain counts; the weighted objective
/// value lands in [`Assignment::weighted_cost`].
pub fn assign_phases_weighted(
    graph: &FfGraph,
    cfg: &PhaseConfig,
    nl: &Netlist,
    model: &ActivityModel,
) -> Assignment {
    solve_assignment(graph, graph.to_phase_problem_weighted(nl, model), cfg)
}

fn solve_assignment(graph: &FfGraph, problem: PhaseProblem, cfg: &PhaseConfig) -> Assignment {
    let t0 = std::time::Instant::now();
    let outcome = problem.solve_chain(cfg);
    let solve_seconds = t0.elapsed().as_secs_f64();
    let sol = outcome.solution;
    let k = graph
        .ffs
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, sol.k[i]))
        .collect();
    let g = graph
        .ffs
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, sol.g[i]))
        .collect();
    // pi_g is indexed by the order PIs were added to the problem (only
    // non-empty fan-outs were added).
    let mut pi_g = HashMap::new();
    let mut pi_idx = 0;
    for (port, fo) in &graph.pi_fanout {
        if fo.is_empty() {
            pi_g.insert(*port, false);
        } else {
            pi_g.insert(*port, sol.pi_g[pi_idx]);
            pi_idx += 1;
        }
    }
    Assignment {
        k,
        g,
        pi_g,
        cost: sol.cost,
        weighted_cost: sol.weighted_cost,
        weighted: problem.is_weighted(),
        optimal: sol.optimal,
        solve_seconds,
        rung: outcome.rung,
        status: outcome.status,
        fallbacks: outcome.fallbacks.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_circuits::pipeline::linear_pipeline;
    use triphase_netlist::{Builder, CellKind, ClockSpec};

    #[test]
    fn pipeline_graph_is_layered() {
        let nl = linear_pipeline(4, 4, 1, 1000.0);
        let idx = nl.index();
        let g = extract_ff_graph(&nl, &idx).unwrap();
        assert_eq!(g.ffs.len(), 16);
        assert_eq!(g.self_loop_count(), 0);
        // Every stage-i FF fans out only to stage-i+1 FFs (4 of them via
        // the XOR mixing) — the last stage has none.
        let total_edges: usize = g.fo.iter().map(|f| f.len()).sum();
        assert!(total_edges > 0);
        // PIs reach only the first stage.
        for (_, fo) in &g.pi_fanout {
            assert!(fo.len() <= 8);
        }
    }

    #[test]
    fn self_loop_detected() {
        let mut nl = Netlist::new("loop");
        let (ckp, ck) = nl.add_input("ck");
        let mut b = Builder::new(&mut nl, "u");
        let q = b.net("q");
        let d = b.not(q);
        b.netlist().add_cell("ff", CellKind::Dff, vec![d, ck, q]);
        b.netlist().add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let idx = nl.index();
        let g = extract_ff_graph(&nl, &idx).unwrap();
        assert_eq!(g.self_loop_count(), 1);
        let a = assign_phases(&g, &PhaseConfig::default());
        assert!(a.g[&g.ffs[0]], "self-loop FF must be back-to-back");
        assert!(a.optimal);
    }

    #[test]
    fn rejects_latch_designs() {
        let mut nl = Netlist::new("lat");
        let (ckp, ck) = nl.add_input("ck");
        let (_, d) = nl.add_input("d");
        let q = nl.add_net("q");
        nl.add_cell("l", CellKind::LatchH, vec![d, ck, q]);
        nl.add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let idx = nl.index();
        assert!(matches!(
            extract_ff_graph(&nl, &idx),
            Err(Error::BadInput(_))
        ));
    }

    #[test]
    fn linear_pipeline_alternation_matches_fig1() {
        // Paper Fig. 1: for an n-stage linear pipeline (width 1, no
        // mixing), singles and back-to-back groups alternate; the number
        // of p2 insertions is about half the stages.
        let nl = linear_pipeline(6, 1, 0, 1000.0);
        let idx = nl.index();
        let g = extract_ff_graph(&nl, &idx).unwrap();
        let a = assign_phases(&g, &PhaseConfig::default());
        assert!(a.optimal);
        // 6 stages: at most 3 singles (independent set of a path with the
        // PI penalty), so at least 3 back-to-back groups.
        assert!(a.singles() >= 3, "singles = {}", a.singles());
        assert!(a.cost <= 4, "cost = {}", a.cost);
    }

    #[test]
    fn weighted_assignment_is_consistent_and_flagged() {
        let nl = linear_pipeline(5, 3, 1, 1000.0);
        let idx = nl.index();
        let g = extract_ff_graph(&nl, &idx).unwrap();
        let model = triphase_activity::analyze(&nl, &triphase_activity::AnalysisOptions::default())
            .unwrap();
        let a = assign_phases_weighted(&g, &PhaseConfig::default(), &nl, &model);
        assert!(a.weighted);
        assert!(a.optimal);
        // Weighted cost is bounded by the weight range [1, 2] times the
        // insertion count, and every FF still satisfies G + K >= 1.
        assert!(a.weighted_cost >= a.cost as f64);
        assert!(a.weighted_cost <= 2.0 * a.cost as f64 + 1e-9);
        for &ff in &g.ffs {
            assert!(a.g[&ff] || a.k[&ff]);
        }
        // The unweighted path stays unweighted.
        let u = assign_phases(&g, &PhaseConfig::default());
        assert!(!u.weighted);
        assert_eq!(u.weighted_cost, u.cost as f64);
    }

    #[test]
    fn default_config_answers_from_exact_rung() {
        let nl = linear_pipeline(4, 2, 1, 1000.0);
        let idx = nl.index();
        let g = extract_ff_graph(&nl, &idx).unwrap();
        let a = assign_phases(&g, &PhaseConfig::default());
        assert_eq!(a.rung, SolveRung::Exact);
        assert_eq!(a.status, Status::Optimal);
        assert_eq!(a.fallbacks, 0);
    }

    #[test]
    fn assignment_covers_all_ffs() {
        let nl = linear_pipeline(3, 4, 1, 1000.0);
        let idx = nl.index();
        let g = extract_ff_graph(&nl, &idx).unwrap();
        let a = assign_phases(&g, &PhaseConfig::default());
        assert_eq!(a.k.len(), g.ffs.len());
        assert_eq!(a.g.len(), g.ffs.len());
        for &ff in &g.ffs {
            // Paper constraint 1: G + K >= 1.
            assert!(a.g[&ff] || a.k[&ff]);
        }
    }
}
