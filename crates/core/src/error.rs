//! Error type of the conversion flow.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the conversion flow.
#[derive(Debug)]
pub enum Error {
    /// Underlying netlist problem.
    Netlist(triphase_netlist::Error),
    /// Timing analysis failed.
    Timing(triphase_timing::Error),
    /// Simulation failed.
    Sim(triphase_sim::Error),
    /// Retiming failed.
    Retime(triphase_retime::Error),
    /// Place-and-route failed.
    Pnr(triphase_pnr::Error),
    /// Power estimation failed.
    Power(triphase_power::Error),
    /// The design is not in the expected pre-conversion form (message
    /// explains what is wrong).
    BadInput(String),
    /// Post-conversion validation failed (equivalence or constraint C2).
    ValidationFailed(String),
    /// A lint checkpoint found error-severity violations while the flow
    /// ran with [`crate::LintPolicy::Deny`]. The full report is attached.
    Lint(Box<triphase_lint::Report>),
    /// A formal equivalence checkpoint failed to prove a stage while the
    /// flow ran with [`crate::EquivPolicy::Deny`] (message carries the
    /// stage and verdict details).
    Equiv(String),
    /// A dataflow-analysis checkpoint found error-severity violations
    /// while the flow ran with [`crate::DfaPolicy::Deny`]. The full
    /// report is attached.
    Dfa(Box<triphase_dfa::DfaReport>),
    /// A task panicked and the panic was contained at a crate boundary
    /// (variant evaluation, benchmark run). The message carries the task
    /// name and, when downcastable, the panic payload.
    Panic(String),
    /// A stage checkpoint could not be written, read, or matched against
    /// the current flow configuration.
    Checkpoint(String),
}

impl Error {
    /// Build an [`Error::Panic`] from a `catch_unwind` payload, keeping
    /// the panic message when the payload is a string.
    pub fn from_panic(task: &str, payload: Box<dyn std::any::Any + Send>) -> Error {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        Error::Panic(format!("{task}: {msg}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Netlist(e) => write!(f, "netlist error: {e}"),
            Error::Timing(e) => write!(f, "timing error: {e}"),
            Error::Sim(e) => write!(f, "simulation error: {e}"),
            Error::Retime(e) => write!(f, "retiming error: {e}"),
            Error::Pnr(e) => write!(f, "place-and-route error: {e}"),
            Error::Power(e) => write!(f, "power estimation error: {e}"),
            Error::BadInput(m) => write!(f, "bad input design: {m}"),
            Error::ValidationFailed(m) => write!(f, "validation failed: {m}"),
            Error::Lint(report) => {
                let stage = report.stage.map_or("-", |s| s.as_str());
                write!(
                    f,
                    "lint failed at stage {stage}: {} error(s)",
                    report.errors().len()
                )?;
                if let Some(first) = report.errors().first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            Error::Equiv(m) => write!(f, "formal equivalence failed: {m}"),
            Error::Dfa(report) => {
                let stage = report.stage.as_deref().unwrap_or("-");
                write!(
                    f,
                    "dataflow analysis `{}` failed at stage {stage}: {} error(s)",
                    report.analysis,
                    report.errors().len()
                )?;
                if let Some(first) = report.errors().first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            Error::Panic(m) => write!(f, "task panicked: {m}"),
            Error::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Netlist(e) => Some(e),
            Error::Timing(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Retime(e) => Some(e),
            Error::Pnr(e) => Some(e),
            Error::Power(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for Error {
            fn from(e: $ty) -> Self {
                Error::$variant(e)
            }
        }
    };
}

from_err!(Netlist, triphase_netlist::Error);
from_err!(Timing, triphase_timing::Error);
from_err!(Sim, triphase_sim::Error);
from_err!(Retime, triphase_retime::Error);
from_err!(Pnr, triphase_pnr::Error);
from_err!(Power, triphase_power::Error);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = Error::BadInput("latches present".into());
        assert!(e.to_string().contains("latches"));
        let e: Error = triphase_netlist::Error::Invalid("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: Error = triphase_sim::Error::NoClock.into();
        assert!(e.to_string().contains("clock"));
    }

    #[test]
    fn panic_payloads_become_typed_errors() {
        let p = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        let e = Error::from_panic("variant ff", p);
        assert_eq!(e.to_string(), "task panicked: variant ff: boom 7");
        let p = std::panic::catch_unwind(|| panic!("literal")).unwrap_err();
        assert!(Error::from_panic("t", p).to_string().contains("literal"));
        let e = Error::Checkpoint("bad header".into());
        assert!(e.to_string().contains("checkpoint"), "{e}");
    }

    #[test]
    fn lint_error_displays_stage_and_first_finding() {
        use triphase_lint::{Diagnostic, LintStage, Location, Report, Severity};
        let e = Error::Lint(Box::new(Report {
            design: "d".into(),
            stage: Some(LintStage::Convert),
            diagnostics: vec![Diagnostic {
                code: "P004",
                rule: "residual-ff",
                severity: Severity::Error,
                location: Location::Design,
                message: "ff left".into(),
            }],
        }));
        let text = e.to_string();
        assert!(text.contains("stage convert"), "{text}");
        assert!(text.contains("1 error(s)"), "{text}");
        assert!(text.contains("P004"), "{text}");
    }
}
