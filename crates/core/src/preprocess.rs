//! Gated-clock preprocessing (paper §IV-B, Fig. 2).
//!
//! The flow prefers the *gated clock* style (Fig. 2(b)) over the *enabled
//! clock* style (Fig. 2(a)): enabled FFs (`DFFEN`, whose synthesized form
//! is a recirculation mux) would appear as FFs with combinational
//! self-loops and "unduly constrain the optimization problem". This pass
//! replaces groups of enabled FFs sharing an enable with an ICG cell and
//! plain DFFs.

use crate::error::Result;
use std::collections::HashMap;
use triphase_netlist::{CellId, CellKind, NetId, Netlist};

/// Result of the preprocessing pass.
#[derive(Debug, Clone, Default)]
pub struct PreprocessReport {
    /// Enabled FFs converted to plain FFs.
    pub converted_ffs: usize,
    /// ICG cells inserted.
    pub icgs_inserted: usize,
}

/// Convert every `DFFEN` to a gated-clock `DFF`, sharing one ICG per
/// `(enable net, clock net)` group, split at `max_fanout` sinks.
///
/// # Errors
///
/// Currently infallible; returns `Result` for interface stability.
pub fn gated_clock_style(nl: &mut Netlist, max_fanout: usize) -> Result<PreprocessReport> {
    let mut groups: HashMap<(NetId, NetId), Vec<CellId>> = HashMap::new();
    for (id, cell) in nl.cells() {
        if cell.kind == CellKind::DffEn {
            let en = cell.pin(cell.kind.enable_pin().expect("dffen"));
            let ck = cell.pin(cell.kind.clock_pin().expect("dffen"));
            groups.entry((en, ck)).or_default().push(id);
        }
    }
    let mut report = PreprocessReport::default();
    let mut keys: Vec<(NetId, NetId)> = groups.keys().copied().collect();
    keys.sort(); // deterministic order
    for key in keys {
        let members = &groups[&key];
        let (en, ck) = key;
        for chunk in members.chunks(max_fanout.max(1)) {
            let gck = nl.add_net(format!("gck_{}_{}", en, report.icgs_inserted));
            nl.add_cell(
                format!("icg_pp{}", report.icgs_inserted),
                CellKind::Icg,
                vec![en, ck, gck],
            );
            report.icgs_inserted += 1;
            for &ff in chunk {
                let (d, q) = {
                    let cell = nl.cell(ff);
                    (cell.pin(0), cell.output())
                };
                nl.replace_cell(ff, CellKind::Dff, vec![d, gck, q]);
                report.converted_ffs += 1;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::{Builder, ClockSpec};
    use triphase_sim::equiv_stream;

    fn enabled_design(n: usize, groups: usize) -> Netlist {
        let mut nl = Netlist::new("en");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let ens: Vec<NetId> = (0..groups)
            .map(|i| b.netlist().add_input(&format!("en{i}")).1)
            .collect();
        let d = b.word_input("d", n);
        let q: Vec<NetId> = (0..n)
            .map(|i| b.dffen(d.bit(i), ens[i % groups], ck))
            .collect();
        b.word_output("q", &triphase_netlist::Word(q));
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl
    }

    #[test]
    fn groups_share_icg() {
        let mut nl = enabled_design(8, 2);
        let report = gated_clock_style(&mut nl, 32).unwrap();
        assert_eq!(report.converted_ffs, 8);
        assert_eq!(report.icgs_inserted, 2, "one ICG per enable");
        let s = nl.stats();
        assert_eq!(s.ffs, 8);
        assert_eq!(s.clock_gates, 2);
        assert!(
            nl.cells().all(|(_, c)| c.kind != CellKind::DffEn),
            "no enabled FFs remain"
        );
        nl.validate().unwrap();
    }

    #[test]
    fn max_fanout_splits_groups() {
        let mut nl = enabled_design(40, 1);
        let report = gated_clock_style(&mut nl, 16).unwrap();
        assert_eq!(report.icgs_inserted, 3, "40 sinks at fanout 16");
    }

    #[test]
    fn behaviour_is_preserved() {
        let golden = enabled_design(6, 2);
        let mut dut = enabled_design(6, 2);
        gated_clock_style(&mut dut, 32).unwrap();
        let r = equiv_stream(&golden, &dut, 1234, 300).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn noop_on_plain_ffs() {
        let mut nl = Netlist::new("plain");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, d) = b.netlist().add_input("d");
        let q = b.dff(d, ck);
        b.netlist().add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let report = gated_clock_style(&mut nl, 32).unwrap();
        assert_eq!(report.converted_ffs, 0);
        assert_eq!(report.icgs_inserted, 0);
    }
}
