//! The paper's contribution: automatic conversion of FF-based designs to
//! power-efficient 3-phase latch-based designs (DATE 2020).
//!
//! The flow, stage by stage (paper section in parentheses):
//!
//! 1. [`gated_clock_style`] (§IV-B, Fig. 2) — enabled FFs become ICG-gated
//!    plain FFs so recirculation muxes don't read as combinational
//!    feedback and "unduly constrain the optimization problem";
//! 2. [`extract_ff_graph`] + [`assign_phases`] (§IV-A) — the FF fan-out
//!    graph `FO(u)` is extracted and the paper's ILP assigns every FF a
//!    phase bit `K` and group bit `G`, minimizing `p2` insertions — by
//!    default weighted by the static switching-activity model
//!    ([`assign_phases_weighted`], [`ActivityCfg`]) so insertions land
//!    on quiet nets;
//! 3. [`to_three_phase`] (§IV-B) — FFs become `p1`/`p3` transparent
//!    latches, back-to-back FFs get a `p2` latch at their output, flagged
//!    primary inputs get boundary latches, and clock gates are re-rooted
//!    (duplicated when they serve both phases); [`to_master_slave`] builds
//!    the conventional baseline;
//! 4. [`retime_three_phase`] (§IV-C) — the modified retiming: latches map
//!    to a `clk`/`clkbar` FF proxy, only the `clkbar` (`p2`) proxies move
//!    toward balanced `T_c/2` half-stages, and the result converts back;
//! 5. [`gate_p2_common_enable`], [`apply_m2`], [`apply_ddcg`] (§IV-D) —
//!    the three `p2` clock-gating mechanisms (shared-enable gating with
//!    the inverter-free M1 cell, latch-free M2 rewriting, and multi-bit
//!    data-driven clock gating);
//! 6. [`run_flow`] — the end-to-end driver evaluating all three design
//!    styles (FF, master-slave, 3-phase) through place-and-route,
//!    simulation, grouped power estimation, and the paper's validation
//!    (constraint C2 plus cycle-exact output-stream equivalence).
//!
//! # Examples
//!
//! ```
//! use triphase_circuits::pipeline::linear_pipeline;
//! use triphase_cells::Library;
//! use triphase_core::{run_flow, FlowConfig};
//!
//! let design = linear_pipeline(4, 6, 1, 900.0);
//! let lib = Library::synthetic_28nm();
//! let cfg = FlowConfig { sim_cycles: 32, equiv_cycles: 64, ..FlowConfig::default() };
//! let report = run_flow(&design, &lib, &cfg)?;
//! assert_eq!(report.equiv_3p, Some(true));
//! assert!(report.three_phase.registers() < report.ms.registers());
//! # Ok::<(), triphase_core::Error>(())
//! ```

mod checkpoint;
mod clockgate;
mod convert;
mod error;
mod ffgraph;
mod flow;
mod preprocess;
mod retiming;

pub use checkpoint::{
    fingerprint as flow_fingerprint, stage_data_from_text, stage_data_to_text, stage_key,
    CheckpointCfg, IlpOutcome, Stage,
};
pub use clockgate::{
    apply_ddcg, apply_ddcg_placed, apply_ddcg_static, apply_m2, gate_p2_common_enable, CgReport,
};
pub use convert::{latch_phases, phase_census, to_master_slave, to_three_phase, ConvertReport};
pub use error::{Error, Result};
pub use ffgraph::{assign_phases, assign_phases_weighted, extract_ff_graph, Assignment, FfGraph};
pub use flow::{
    run_flow, run_flow_memo, run_flow_with, ActivityCfg, DfaPolicy, Drive, EquivPolicy, FlowConfig,
    FlowReport, LintPolicy, SimBackend, StageData, StageMemo, StageObservation, VariantResult,
};
pub use preprocess::{gated_clock_style, PreprocessReport};
pub use retiming::{retime_three_phase, RetimeReport};
