//! Modified retiming of the converted 3-phase design (paper §IV-C).
//!
//! The paper emulates latch retiming with FF retiming: keep the cycle
//! time, map `p1`/`p3` latches to FFs on `clk` and `p2` latches to FFs on
//! `clkbar`, retime moving **only** the `clkbar` FFs so every half-stage
//! can run at twice the frequency (`T_c/2`), then convert back.
//!
//! Two classes of `p2` latches are pinned in place (kept as immovable
//! proxies):
//!
//! - latches inside clock-gate **enable cones** (moving them would shift
//!   the gating decision by a phase);
//! - latches on **sequential cycles** (moving a register inside a loop
//!   requires initial-state recomputation — the classic retiming
//!   equivalence problem; pinning them keeps the flow's conversion
//!   cycle-exact from reset, which is how we validate designs).

use crate::error::{Error, Result};
use std::collections::{HashMap, HashSet};
use triphase_cells::Library;
use triphase_netlist::{graph, CellId, CellKind, Netlist};
use triphase_retime::{retime_movable, RetimeOptions};
use triphase_timing::storage_phases;

/// Outcome statistics of the retiming stage.
#[derive(Debug, Clone)]
pub struct RetimeReport {
    /// Whether retiming ran (false if no movable `p2` latches existed).
    pub ran: bool,
    /// True when the retimed result was discarded by the safety
    /// post-check (a residual same-phase adjacency) and the un-retimed
    /// design returned instead.
    pub fell_back: bool,
    /// Worst proxy stage delay before retiming (ps).
    pub original_ps: f64,
    /// Worst proxy stage delay after retiming (ps).
    pub achieved_ps: f64,
    /// Whether the `T_c/2` target was met.
    pub met_target: bool,
    /// Movable `p2` latches given to the retimer.
    pub movable: usize,
    /// `p2` latches pinned (enable cones + sequential cycles).
    pub pinned: usize,
    /// `p2` latches after retiming.
    pub p2_after: usize,
}

/// Retime the `p2` latches of a converted 3-phase design toward balanced
/// half-stages (`target_ratio` × period, the paper uses 0.5).
///
/// # Errors
///
/// [`Error::BadInput`] if the design does not carry a 3-phase clock;
/// retiming and netlist errors are propagated.
pub fn retime_three_phase(
    nl: &Netlist,
    lib: &Library,
    target_ratio: f64,
) -> Result<(Netlist, RetimeReport)> {
    let clock = nl
        .clock
        .as_ref()
        .ok_or_else(|| Error::BadInput("no clock spec".into()))?;
    if clock.phases.len() != 3 {
        return Err(Error::BadInput("expected a 3-phase clock".into()));
    }
    let period = clock.period_ps;
    let p2_net = nl.port(clock.phases[1].port).net;
    let idx = nl.index();
    let phases = storage_phases(nl, &idx)?;

    let latches: Vec<CellId> = nl
        .cells()
        .filter(|(_, c)| c.kind.is_latch())
        .map(|(id, _)| id)
        .collect();

    // Latch-level graph for cycle detection.
    let mut node_of: HashMap<CellId, usize> = HashMap::new();
    for (i, &c) in latches.iter().enumerate() {
        node_of.insert(c, i);
    }
    let adj: Vec<Vec<usize>> = latches
        .iter()
        .map(|&c| {
            graph::reach_storage(nl, &idx, nl.cell(c).output())
                .storage
                .iter()
                .filter_map(|s| node_of.get(s).copied())
                .collect()
        })
        .collect();
    let on_cycle = cyclic_nodes(&adj);

    // Enable-cone exclusions.
    let mut in_en_cone: HashSet<CellId> = HashSet::new();
    for (_, cell) in nl.cells() {
        if !cell.kind.is_clock_gate() {
            continue;
        }
        let en = cell.pin(cell.kind.enable_pin().expect("icg"));
        for start in graph::fanin_cone_starts(nl, &idx, en) {
            if let graph::ConeStart::Storage(c) = start {
                in_en_cone.insert(c);
            }
        }
    }

    // Partition p2 latches.
    let mut movable_latches = Vec::new();
    let mut pinned_latches: HashSet<CellId> = HashSet::new();
    for &c in &latches {
        if phases.get(&c) != Some(&1) {
            continue;
        }
        if nl.cell(c).pin(1) != p2_net || in_en_cone.contains(&c) || on_cycle[node_of[&c]] {
            // Clock-gated, enable-cone, or loop latch: pinned in place.
            pinned_latches.insert(c);
        } else {
            movable_latches.push(c);
        }
    }
    let pinned = pinned_latches.len();

    if movable_latches.is_empty() {
        let p2_after = latches.iter().filter(|c| phases.get(c) == Some(&1)).count();
        return Ok((
            nl.clone(),
            RetimeReport {
                ran: false,
                fell_back: false,
                original_ps: 0.0,
                achieved_ps: 0.0,
                met_target: true,
                movable: 0,
                pinned,
                p2_after,
            },
        ));
    }

    // Comb regions around pinned p2 latches: no movable register may be
    // placed combinationally adjacent to them (same-phase adjacency).
    let mut cap0_after: HashSet<CellId> = HashSet::new();
    let mut cap0_before: HashSet<CellId> = HashSet::new();
    for &p in &pinned_latches {
        comb_fanout_region(nl, &idx, nl.cell(p).output(), &mut cap0_after);
        comb_fanin_region(nl, &idx, nl.cell(p).pin(0), &mut cap0_before);
    }

    // Build the proxy: every latch becomes a DFF on its current clock
    // net; names are preserved so positions can be restored.
    let mut proxy = nl.clone();
    let mut restore: HashMap<String, String> = HashMap::new(); // cell -> G net name
    for &c in &latches {
        let cell = nl.cell(c);
        let (d, g, q) = (cell.pin(0), cell.pin(1), cell.output());
        restore.insert(cell.name.clone(), nl.net(g).name.clone());
        proxy.replace_cell(c, CellKind::Dff, vec![d, g, q]);
    }
    let movable_set: HashSet<CellId> = movable_latches.iter().copied().collect();

    let outcome = retime_movable(
        &proxy,
        lib,
        &movable_set,
        &RetimeOptions {
            target_period_ps: Some(period * target_ratio),
            tol_ps: 1.0,
            max_feas_iters: 64,
            // Two p2 latches in series would be co-transparent (C2)...
            max_movable_per_edge: Some(1),
            // ...and so would a movable p2 next to a pinned one, even
            // through the combinational regions around it.
            no_adjacent: pinned_latches.clone(),
            cap0_after,
            cap0_before,
        },
    )?;

    // Convert back: named survivors to their original latch+clock; new
    // rt_ff* registers become plain p2 latches.
    let mut out = outcome.netlist;
    let net_by_name: HashMap<String, triphase_netlist::NetId> =
        out.nets().map(|(id, n)| (n.name.clone(), id)).collect();
    let p2_net_name = nl.net(p2_net).name.clone();
    let p2_new = *net_by_name
        .get(&p2_net_name)
        .ok_or_else(|| Error::BadInput("p2 net lost during retiming".into()))?;
    let cells: Vec<(CellId, String, CellKind)> = out
        .cells()
        .map(|(id, c)| (id, c.name.clone(), c.kind))
        .collect();
    let mut p2_after = 0usize;
    for (id, name, kind) in cells {
        if kind != CellKind::Dff {
            continue;
        }
        let (d, q) = {
            let c = out.cell(id);
            (c.pin(0), c.output())
        };
        if let Some(gname) = restore.get(&name) {
            let g = *net_by_name
                .get(gname)
                .ok_or_else(|| Error::BadInput(format!("clock net {gname} lost")))?;
            out.replace_cell(id, CellKind::LatchH, vec![d, g, q]);
            if g == p2_new || gname == &p2_net_name {
                p2_after += 1;
            }
        } else if name.starts_with("rt_ff") {
            out.replace_cell(id, CellKind::LatchH, vec![d, p2_new, q]);
            p2_after += 1;
        } else {
            return Err(Error::BadInput(format!(
                "unexpected FF {name} after retiming"
            )));
        }
    }
    // Gated p2 latches kept their (non-p2) G nets; count them too.
    let out_idx = out.index();
    let out_phases = storage_phases(&out, &out_idx)?;
    let p2_total = out
        .cells()
        .filter(|(id, c)| c.kind.is_latch() && out_phases.get(id) == Some(&1))
        .count();
    let _ = p2_after;
    out.validate()?;

    // Safety post-check: retiming must not have produced any same-phase
    // latch adjacency (constraint C2). The barriers above prevent this by
    // construction; if anything slipped through, discard the retimed
    // result rather than ship an illegal design.
    if !triphase_timing::check_c2(&out, lib, &out_idx)?.is_empty() {
        return Ok((
            nl.clone(),
            RetimeReport {
                ran: false,
                fell_back: true,
                original_ps: outcome.original_period_ps,
                achieved_ps: outcome.original_period_ps,
                met_target: false,
                movable: movable_set.len(),
                pinned,
                p2_after: latches.iter().filter(|c| phases.get(c) == Some(&1)).count(),
            },
        ));
    }

    Ok((
        out,
        RetimeReport {
            ran: true,
            fell_back: false,
            original_ps: outcome.original_period_ps,
            achieved_ps: outcome.achieved_period_ps,
            met_target: outcome.met_target,
            movable: movable_set.len(),
            pinned,
            p2_after: p2_total,
        },
    ))
}

/// Collect the combinational cells reachable forward from `net` without
/// crossing storage or clock gates.
fn comb_fanout_region(
    nl: &Netlist,
    idx: &triphase_netlist::ConnIndex,
    net: triphase_netlist::NetId,
    out: &mut HashSet<CellId>,
) {
    let mut stack = vec![net];
    let mut seen: HashSet<triphase_netlist::NetId> = HashSet::new();
    seen.insert(net);
    while let Some(n) = stack.pop() {
        for pin in idx.loads(n) {
            let cell = nl.cell(pin.cell);
            if cell.kind.is_comb() && cell.kind != CellKind::ClkBuf && out.insert(pin.cell) {
                let o = cell.output();
                if seen.insert(o) {
                    stack.push(o);
                }
            }
        }
    }
}

/// Collect the combinational cells in the fan-in cone of `net` without
/// crossing storage or clock gates.
fn comb_fanin_region(
    nl: &Netlist,
    idx: &triphase_netlist::ConnIndex,
    net: triphase_netlist::NetId,
    out: &mut HashSet<CellId>,
) {
    let mut stack = vec![net];
    let mut seen: HashSet<triphase_netlist::NetId> = HashSet::new();
    seen.insert(net);
    while let Some(n) = stack.pop() {
        let Some(drv) = idx.driver(n) else { continue };
        let cell = nl.cell(drv.cell);
        if cell.kind.is_comb() && cell.kind != CellKind::ClkBuf && out.insert(drv.cell) {
            for &input in cell.inputs() {
                if seen.insert(input) {
                    stack.push(input);
                }
            }
        }
    }
}

/// Nodes that lie on a directed cycle (including self-loops), via
/// iterative Tarjan SCC.
fn cyclic_nodes(adj: &[Vec<usize>]) -> Vec<bool> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut result = vec![false; n];
    let mut counter = 0usize;

    // Iterative Tarjan with an explicit call stack.
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        child: usize,
    }
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame { v: start, child: 0 }];
        index[start] = counter;
        low[start] = counter;
        counter += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(frame) = call.last_mut() {
            let v = frame.v;
            if frame.child < adj[v].len() {
                let w = adj[v][frame.child];
                frame.child += 1;
                if index[w] == usize::MAX {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push(Frame { v: w, child: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    // Root of an SCC.
                    let mut members = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = members.len() > 1 || members.iter().any(|&m| adj[m].contains(&m));
                    if cyclic {
                        for &m in &members {
                            result[m] = true;
                        }
                    }
                }
                let finished = *frame;
                call.pop();
                if let Some(parent) = call.last() {
                    let pv = parent.v;
                    low[pv] = low[pv].min(low[finished.v]);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::to_three_phase;
    use crate::ffgraph::{assign_phases, extract_ff_graph};
    use triphase_ilp::PhaseConfig;
    use triphase_netlist::Builder;
    use triphase_sim::equiv_stream;

    /// An unbalanced FF pipeline: deep logic in stage 1, shallow in 2.
    fn unbalanced_pipeline(depth1: usize, depth2: usize) -> Netlist {
        let mut nl = Netlist::new("unb");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let d = b.word_input("d", 4);
        let s0 = b.dff_word(&d, ck);
        let mut x = s0;
        for _ in 0..depth1 {
            let r = x.rotl(1);
            x = b.xor_word(&x, &r);
        }
        let s1 = b.dff_word(&x, ck);
        let mut y = s1;
        for _ in 0..depth2 {
            let r = y.rotl(1);
            y = b.xor_word(&y, &r);
        }
        let s2 = b.dff_word(&y, ck);
        b.word_output("q", &s2);
        nl.clock = Some(triphase_netlist::ClockSpec::single(ckp, 900.0));
        nl
    }

    fn convert(nl: &Netlist) -> Netlist {
        let idx = nl.index();
        let g = extract_ff_graph(nl, &idx).unwrap();
        let a = assign_phases(&g, &PhaseConfig::default());
        to_three_phase(nl, &a).unwrap().0
    }

    #[test]
    fn retiming_improves_half_stage_delay() {
        let lib = Library::synthetic_28nm();
        let nl = unbalanced_pipeline(8, 0);
        let tp = convert(&nl);
        let (rt, report) = retime_three_phase(&tp, &lib, 0.5).unwrap();
        assert!(report.ran);
        assert!(report.movable > 0);
        assert!(
            report.achieved_ps <= report.original_ps,
            "{} -> {}",
            report.original_ps,
            report.achieved_ps
        );
        rt.validate().unwrap();
        // Latch kinds and phases intact.
        assert_eq!(rt.stats().ffs, 0);
        assert!(rt.stats().latches > 0);
        assert!(report.p2_after >= 1);
    }

    #[test]
    fn retimed_design_equivalent_after_warmup() {
        let lib = Library::synthetic_28nm();
        let nl = unbalanced_pipeline(6, 0);
        let tp = convert(&nl);
        let (rt, _) = retime_three_phase(&tp, &lib, 0.5).unwrap();
        // Movable p2 latches are only on feed-forward paths, so zero-init
        // transients flush; with all-zero reset and XOR logic the designs
        // actually agree from cycle 0.
        let r = equiv_stream(&nl, &rt, 21, 300).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn feedback_latches_are_pinned() {
        // A self-loop FF: its p2 latch sits on a sequential cycle and
        // must not move.
        let lib = Library::synthetic_28nm();
        let mut nl = Netlist::new("fsm");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("d");
        let q = b.net("q");
        let x = b.gate(CellKind::Xor(2), &[q, din]);
        b.netlist().add_cell("ff", CellKind::Dff, vec![x, ck, q]);
        b.netlist().add_output("q", q);
        nl.clock = Some(triphase_netlist::ClockSpec::single(ckp, 900.0));
        let tp = convert(&nl);
        let (rt, report) = retime_three_phase(&tp, &lib, 0.5).unwrap();
        assert!(!report.ran || report.movable == 0 || report.pinned > 0);
        let r = equiv_stream(&nl, &rt, 5, 200).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn cyclic_nodes_detector() {
        // 0 -> 1 -> 2 -> 0 cycle; 3 -> 4 path; 5 self-loop.
        let adj = vec![vec![1], vec![2], vec![0], vec![4], vec![], vec![5]];
        let c = cyclic_nodes(&adj);
        assert_eq!(c, vec![true, true, true, false, false, true]);
    }

    #[test]
    fn non_three_phase_rejected() {
        let lib = Library::synthetic_28nm();
        let nl = unbalanced_pipeline(2, 2);
        assert!(matches!(
            retime_three_phase(&nl, &lib, 0.5),
            Err(Error::BadInput(_))
        ));
    }
}
