//! FF-to-latch conversion: the 3-phase scheme (paper §IV) and the
//! master-slave baseline.
//!
//! The 3-phase conversion (from a phase [`Assignment`]):
//!
//! - every FF becomes a transparent-high latch on `p1` (`K=1`) or `p3`
//!   (`K=0`) — constraint C1: original positions stay latched;
//! - back-to-back FFs (`G=1`) get an extra `p2` latch at their output;
//!   the `p2` latch drives the FF's *original* output net, so every
//!   consumer (including primary outputs and clock-gate enables) sees the
//!   `p2`-timed value — this is what makes the conversion cycle-exact and
//!   guarantees "no direct path from a `p3` latch to a CG cell";
//! - primary inputs with `G(p)=1` get a `p2` latch on their fan-out;
//! - clock-gating cells are re-rooted from the old clock to `p1`/`p3`;
//!   an ICG serving latches of both phases is duplicated (§IV-B);
//! - the old clock port is removed and a 3-phase [`ClockSpec`] attached.

use crate::error::{Error, Result};
use crate::ffgraph::Assignment;
use std::collections::HashMap;
use triphase_netlist::{graph, CellId, CellKind, ClockSpec, Netlist, PortDir};

/// Statistics of a 3-phase conversion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvertReport {
    /// FFs converted to single latches (`G=0`).
    pub singles: usize,
    /// FFs converted to back-to-back latch pairs (`G=1`).
    pub back_to_back: usize,
    /// `p2` latches inserted on primary-input boundaries.
    pub pi_latches: usize,
    /// Clock-gating cells duplicated because they served both phases.
    pub icgs_duplicated: usize,
}

impl ConvertReport {
    /// Total latches in the converted design contributed by conversion.
    pub fn total_latches(&self) -> usize {
        self.singles + 2 * self.back_to_back + self.pi_latches
    }
}

/// Convert a (preprocessed, FF-only) design to 3-phase latches.
///
/// # Errors
///
/// [`Error::BadInput`] if the design has no single-phase clock, contains
/// latches/enabled FFs, or has clock-gate nesting deeper than one level.
pub fn to_three_phase(nl: &Netlist, assignment: &Assignment) -> Result<(Netlist, ConvertReport)> {
    let clock = nl
        .clock
        .as_ref()
        .ok_or_else(|| Error::BadInput("no clock spec".into()))?;
    if clock.phases.len() != 1 {
        return Err(Error::BadInput("expected a single-phase clock".into()));
    }
    let period = clock.period_ps;
    let old_ck_port = clock.phases[0].port;
    let old_ck_name = nl.port(old_ck_port).name.clone();
    let idx = nl.index();

    let mut out = nl.clone();
    let (_, p1n) = out.add_input("p1");
    let (_, p2n) = out.add_input("p2");
    let (_, p3n) = out.add_input("p3");

    let mut report = ConvertReport::default();
    // ICG -> (list of gated FFs by phase).
    let mut icg_groups: HashMap<CellId, (Vec<CellId>, Vec<CellId>)> = HashMap::new();

    // 1. Replace FFs with latches.
    let ffs: Vec<CellId> = nl
        .cells()
        .filter(|(_, c)| c.kind.is_ff())
        .map(|(id, _)| id)
        .collect();
    if assignment.k.len() != ffs.len() || assignment.g.len() != ffs.len() {
        return Err(Error::BadInput(format!(
            "assignment covers {} (K) / {} (G) FFs but the design has {}",
            assignment.k.len(),
            assignment.g.len(),
            ffs.len()
        )));
    }
    for &ff in &ffs {
        let cell = nl.cell(ff);
        if cell.kind != CellKind::Dff {
            return Err(Error::BadInput(format!(
                "FF {} is enabled; run gated-clock preprocessing first",
                cell.name
            )));
        }
        let k = *assignment
            .k
            .get(&ff)
            .ok_or_else(|| Error::BadInput(format!("FF {} missing from assignment", cell.name)))?;
        let d = cell.pin(0);
        let ck = cell.pin(1);
        let q = cell.output();
        let trace = graph::trace_clock_root(nl, &idx, ck)?;
        let g_net = if trace.gates.is_empty() {
            if k {
                p1n
            } else {
                p3n
            }
        } else {
            if trace.gates.len() > 1 {
                return Err(Error::BadInput(format!(
                    "nested clock gating on FF {}",
                    cell.name
                )));
            }
            let entry = icg_groups.entry(trace.gates[0]).or_default();
            if k {
                entry.0.push(ff);
            } else {
                entry.1.push(ff);
            }
            ck // stays on the (re-rooted or duplicated) gated net for now
        };
        out.replace_cell(ff, CellKind::LatchH, vec![d, g_net, q]);
    }

    // 2. Re-root / duplicate ICGs.
    let mut dup_counter = 0usize;
    for (icg, (p1_ffs, p3_ffs)) in &icg_groups {
        let cell = nl.cell(*icg);
        debug_assert_eq!(cell.kind, CellKind::Icg);
        let en = cell.pin(0);
        let ck_pin = 1;
        match (p1_ffs.is_empty(), p3_ffs.is_empty()) {
            (false, true) => out.set_pin(*icg, ck_pin, p1n),
            (true, false) => out.set_pin(*icg, ck_pin, p3n),
            (false, false) => {
                // Original serves p1; duplicate for p3.
                out.set_pin(*icg, ck_pin, p1n);
                let gck3 = out.add_net(format!("gck3_dup{dup_counter}"));
                out.add_cell(
                    format!("{}_dup{dup_counter}", cell.name),
                    CellKind::Icg,
                    vec![en, p3n, gck3],
                );
                dup_counter += 1;
                report.icgs_duplicated += 1;
                for &ff in p3_ffs {
                    out.set_pin(ff, 1, gck3);
                }
            }
            (true, true) => unreachable!("group created with at least one FF"),
        }
    }

    // 3. Insert p2 latches at back-to-back outputs. The p2 latch takes
    // over the original output net; the leading latch drives a fresh
    // intermediate net.
    let mut p2_counter = 0usize;
    for &ff in &ffs {
        let g = assignment.g[&ff];
        if !g {
            report.singles += 1;
            continue;
        }
        report.back_to_back += 1;
        let q = out.cell(ff).output();
        let qpre = out.add_net(format!("q_pre{p2_counter}"));
        let out_pin = CellKind::LatchH.output_pin();
        out.set_pin(ff, out_pin, qpre);
        out.add_cell(
            format!("lat_p2_{p2_counter}"),
            CellKind::LatchH,
            vec![qpre, p2n, q],
        );
        p2_counter += 1;
    }

    // 4. Insert p2 latches on flagged primary inputs, moving their
    // combinational loads to the latched copy.
    for (&port, &needs) in &assignment.pi_g {
        if !needs {
            continue;
        }
        let n = nl.port(port).net;
        let n2 = out.add_net(format!("pi_lat{}", report.pi_latches));
        out.add_cell(
            format!("lat_pi{}", report.pi_latches),
            CellKind::LatchH,
            vec![n, p2n, n2],
        );
        report.pi_latches += 1;
        for load in idx.loads(n) {
            out.set_pin(load.cell, load.pin, n2);
        }
    }

    // 5. Drop the old clock port and attach the 3-phase spec.
    out.clock = None;
    out.retain_ports(|_, p| !(p.dir == PortDir::Input && p.name == old_ck_name));
    let p1 = out.find_port("p1").expect("p1 port");
    let p2 = out.find_port("p2").expect("p2 port");
    let p3 = out.find_port("p3").expect("p3 port");
    out.clock = Some(ClockSpec::equal_phases(&[p1, p2, p3], period));
    let out = out.compact();
    out.validate()?;
    Ok((out, report))
}

/// Convert a (preprocessed, FF-only) design to the conventional
/// master-slave latch baseline: each FF becomes an active-low master latch
/// plus an active-high slave latch on the same (possibly gated) clock.
///
/// # Errors
///
/// [`Error::BadInput`] on latch/enabled-FF designs.
pub fn to_master_slave(nl: &Netlist) -> Result<Netlist> {
    let mut out = nl.clone();
    let ffs: Vec<CellId> = nl
        .cells()
        .filter(|(_, c)| c.kind.is_ff())
        .map(|(id, _)| id)
        .collect();
    for (counter, &ff) in ffs.iter().enumerate() {
        let cell = nl.cell(ff);
        if cell.kind != CellKind::Dff {
            return Err(Error::BadInput(format!(
                "FF {} is enabled; run gated-clock preprocessing first",
                cell.name
            )));
        }
        let d = cell.pin(0);
        let ck = cell.pin(1);
        let q = cell.output();
        let qm = out.add_net(format!("ms_m{counter}"));
        out.add_cell(
            format!("{}_m", cell.name),
            CellKind::LatchL,
            vec![d, ck, qm],
        );
        out.replace_cell(ff, CellKind::LatchH, vec![qm, ck, q]);
    }
    let out = out.compact();
    out.validate()?;
    Ok(out)
}

/// Classify latches of a converted design by phase index (0 = `p1`,
/// 1 = `p2`, 2 = `p3`), tracing through clock gates.
///
/// # Errors
///
/// Propagates clock-tracing failures.
pub fn latch_phases(nl: &Netlist) -> Result<HashMap<CellId, usize>> {
    let idx = nl.index();
    let phases = triphase_timing::storage_phases(nl, &idx)?;
    Ok(phases)
}

/// Count latches per phase — `[p1, p2, p3]`.
pub fn phase_census(nl: &Netlist) -> Result<[usize; 3]> {
    let phases = latch_phases(nl)?;
    let mut census = [0usize; 3];
    for (c, p) in phases {
        if nl.cell(c).kind.is_latch() && p < 3 {
            census[p] += 1;
        }
    }
    Ok(census)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffgraph::{assign_phases, extract_ff_graph};
    use crate::preprocess::gated_clock_style;
    use triphase_circuits::iscas::{generate_iscas, iscas_profiles, s27};
    use triphase_circuits::pipeline::linear_pipeline;
    use triphase_ilp::PhaseConfig;
    use triphase_netlist::{Builder, NetId};
    use triphase_sim::equiv_stream;
    use triphase_timing::check_c2;

    fn convert(nl: &Netlist) -> (Netlist, ConvertReport) {
        let idx = nl.index();
        let g = extract_ff_graph(nl, &idx).unwrap();
        let a = assign_phases(&g, &PhaseConfig::default());
        to_three_phase(nl, &a).unwrap()
    }

    #[test]
    fn assignment_length_mismatch_is_bad_input() {
        let nl = linear_pipeline(3, 2, 1, 900.0);
        let idx = nl.index();
        let g = extract_ff_graph(&nl, &idx).unwrap();
        let mut a = assign_phases(&g, &PhaseConfig::default());
        // Drop one FF's K entry: the assignment no longer covers the design.
        let victim = *a.k.keys().next().unwrap();
        a.k.remove(&victim);
        let err = to_three_phase(&nl, &a).unwrap_err();
        assert!(
            matches!(&err, Error::BadInput(m) if m.contains("assignment covers")),
            "{err}"
        );
    }

    #[test]
    fn pipeline_converts_and_is_equivalent() {
        let nl = linear_pipeline(5, 4, 1, 900.0);
        let (tp, report) = convert(&nl);
        let s = tp.stats();
        assert_eq!(s.ffs, 0, "no FFs remain");
        assert_eq!(
            s.latches,
            report.total_latches(),
            "latch census matches the report"
        );
        assert!(report.singles > 0 && report.back_to_back > 0);
        // The headline saving: fewer latches than master-slave (2 per FF).
        assert!(s.latches < 2 * nl.stats().ffs + 5);
        let r = equiv_stream(&nl, &tp, 77, 300).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn c2_holds_on_converted_designs() {
        let lib = triphase_cells::Library::synthetic_28nm();
        let nl = linear_pipeline(4, 3, 1, 900.0);
        let (tp, _) = convert(&nl);
        let idx = tp.index();
        let v = check_c2(&tp, &lib, &idx).unwrap();
        assert!(v.is_empty(), "C2 violations: {v:?}");
    }

    #[test]
    fn phase_census_consistent() {
        let nl = linear_pipeline(6, 2, 1, 900.0);
        let (tp, report) = convert(&nl);
        let census = phase_census(&tp).unwrap();
        assert_eq!(census[0] + census[2], report.singles + report.back_to_back);
        assert_eq!(census[1], report.back_to_back + report.pi_latches);
    }

    #[test]
    fn s27_converts_and_is_equivalent() {
        let nl = s27(1000.0);
        let (tp, _) = convert(&nl);
        let r = equiv_stream(&nl, &tp, 99, 500).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn iscas_synthetic_converts_and_is_equivalent() {
        let p = &iscas_profiles()[0]; // s1196-like, has enabled FFs
        let nl = generate_iscas(p, 42);
        let mut pre = nl.clone();
        gated_clock_style(&mut pre, 32).unwrap();
        let (tp, _) = convert(&pre);
        let r = equiv_stream(&nl, &tp, 5, 120).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    /// Two enabled FF banks sharing one enable, chained: the ILP will
    /// split them across p1/p3, forcing ICG duplication.
    fn gated_chain() -> Netlist {
        let mut nl = Netlist::new("gch");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, en) = b.netlist().add_input("en");
        let (_, din) = b.netlist().add_input("d");
        let q0 = b.dffen(din, en, ck);
        let x = b.not(q0);
        let q1 = b.dffen(x, en, ck);
        b.netlist().add_output("q", q1);
        nl.clock = Some(triphase_netlist::ClockSpec::single(ckp, 900.0));
        nl
    }

    #[test]
    fn gated_design_converts_with_duplication_and_stays_equivalent() {
        let mut pre = gated_chain();
        gated_clock_style(&mut pre, 32).unwrap();
        let (tp, report) = convert(&pre);
        // q0 -> q1 chain behind one ICG: phases must differ, so the ICG
        // is duplicated.
        assert_eq!(report.icgs_duplicated, 1);
        assert_eq!(tp.stats().clock_gates, 2);
        let golden = gated_chain();
        let r = equiv_stream(&golden, &tp, 31, 400).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn master_slave_equivalent_and_doubles_latches() {
        let nl = linear_pipeline(4, 4, 1, 900.0);
        let ms = to_master_slave(&nl).unwrap();
        assert_eq!(ms.stats().latches, 2 * nl.stats().ffs);
        assert_eq!(ms.stats().ffs, 0);
        let r = equiv_stream(&nl, &ms, 123, 300).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn master_slave_with_gating_equivalent() {
        let mut pre = gated_chain();
        gated_clock_style(&mut pre, 32).unwrap();
        let ms = to_master_slave(&pre).unwrap();
        let golden = gated_chain();
        let r = equiv_stream(&golden, &ms, 7, 400).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn pi_latch_insertion_moves_loads() {
        // One PI feeding a FF that the ILP makes p1-single by adding more
        // structure: PI -> ff0 -> ff1 (ff0 single p1 requires pi latch).
        let mut nl = Netlist::new("pig");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("d");
        let q0: NetId = b.dff(din, ck);
        let q1 = b.dff(q0, ck);
        b.netlist().add_output("q", q1);
        nl.clock = Some(triphase_netlist::ClockSpec::single(ckp, 900.0));
        let (tp, _report) = convert(&nl);
        // Whatever the optimum chose, behaviour must match.
        let r = equiv_stream(&nl, &tp, 17, 300).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn old_clock_port_removed() {
        let nl = linear_pipeline(3, 2, 0, 900.0);
        let (tp, _) = convert(&nl);
        assert!(tp.find_port("ck").is_none(), "old clock port dropped");
        assert!(tp.find_port("p1").is_some());
        assert_eq!(tp.clock.as_ref().unwrap().phases.len(), 3);
    }
}
