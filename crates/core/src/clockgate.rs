//! Clock gating of the inserted `p2` latches (paper §IV-D, Fig. 3).
//!
//! Three mechanisms, applied in the paper's order:
//!
//! 1. **Common-enable gating**: a `p2` latch whose fan-in latches are all
//!    clock-gated by one shared enable `EN` is gated by the same `EN`,
//!    using the modified `ICGM1` cell (Fig. 3(c1), modification M1: the
//!    internal enable latch is clocked by `p3` instead of an inverted
//!    `p2`, saving the inverter).
//! 2. **M2 latch removal** (Fig. 3(c2)): a conventional ICG driving `p1`
//!    or `p3` latches whose enable cone has *no start point of the same
//!    phase* (primary inputs count as `p1`) can drop its internal latch —
//!    the enable is naturally hazard-free during the gated phase.
//! 3. **Multi-bit DDCG**: remaining ungated `p2` latches with low data
//!    toggle rates are grouped (max fan-out per CG) behind a data-driven
//!    enable `OR(XOR(D_i, Q_i))`, again with an `ICGM1` cell.

use crate::error::{Error, Result};
use std::collections::HashMap;
use triphase_netlist::{graph, CellId, CellKind, NetId, Netlist};
use triphase_sim::Activity;
use triphase_timing::storage_phases;

/// Statistics of the clock-gating stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CgReport {
    /// `p2` latches gated by a shared upstream enable.
    pub common_enable_gated: usize,
    /// `ICGM1` cells inserted (common-enable + DDCG).
    pub m1_cells: usize,
    /// Conventional ICGs rewritten to latch-free `ICGM2`.
    pub m2_replaced: usize,
    /// DDCG groups formed.
    pub ddcg_groups: usize,
    /// `p2` latches gated by DDCG.
    pub ddcg_gated: usize,
}

/// The `p2` phase index in converted designs.
const P2: usize = 1;

fn p2_port_net(nl: &Netlist) -> Result<NetId> {
    let clock = nl
        .clock
        .as_ref()
        .ok_or_else(|| Error::BadInput("no clock spec".into()))?;
    if clock.phases.len() != 3 {
        return Err(Error::BadInput("expected a 3-phase clock".into()));
    }
    Ok(nl.port(clock.phases[P2].port).net)
}

fn p3_port_net(nl: &Netlist) -> NetId {
    let clock = nl.clock.as_ref().expect("checked");
    nl.port(clock.phases[2].port).net
}

/// Gate `p2` latches whose fan-in latches share a common enable
/// (mechanism 1). Returns the updated report.
///
/// # Errors
///
/// [`Error::BadInput`] on non-3-phase designs.
pub fn gate_p2_common_enable(nl: &mut Netlist, max_fanout: usize) -> Result<CgReport> {
    let p2n = p2_port_net(nl)?;
    let p3n = p3_port_net(nl);
    let idx = nl.index();
    let phases = storage_phases(nl, &idx)?;

    // Enable net of a gated latch (via its single ICG), if any.
    let enable_of = |c: CellId| -> Option<NetId> {
        let cell = nl.cell(c);
        let trace = graph::trace_clock_root(nl, &idx, cell.pin(1)).ok()?;
        match trace.gates.as_slice() {
            [icg] => {
                let g = nl.cell(*icg);
                Some(g.pin(g.kind.enable_pin().expect("icg")))
            }
            _ => None,
        }
    };

    // Candidate p2 latches: ungated, with all storage cone-starts gated
    // by one shared EN and no PI/const starts.
    let mut groups: HashMap<NetId, Vec<CellId>> = HashMap::new();
    for (id, cell) in nl.cells() {
        if !cell.kind.is_latch() || phases.get(&id) != Some(&P2) || cell.pin(1) != p2n {
            continue;
        }
        let starts = graph::fanin_cone_starts(nl, &idx, cell.pin(0));
        let mut common: Option<NetId> = None;
        let mut ok = !starts.is_empty();
        for start in starts {
            match start {
                graph::ConeStart::Storage(s) => match (enable_of(s), common) {
                    (Some(en), None) => common = Some(en),
                    (Some(en), Some(prev)) if en == prev => {}
                    _ => {
                        ok = false;
                        break;
                    }
                },
                graph::ConeStart::Constant(_) => {}
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            if let Some(en) = common {
                groups.entry(en).or_default().push(id);
            }
        }
    }

    let mut report = CgReport::default();
    let mut ens: Vec<NetId> = groups.keys().copied().collect();
    ens.sort();
    for en in ens {
        for chunk in groups[&en].chunks(max_fanout.max(1)) {
            let gck = nl.add_net(format!("p2gck_{}", report.m1_cells));
            nl.add_cell(
                format!("p2cg_{}", report.m1_cells),
                CellKind::IcgM1,
                vec![en, p3n, p2n, gck],
            );
            report.m1_cells += 1;
            for &latch in chunk {
                nl.set_pin(latch, 1, gck);
                report.common_enable_gated += 1;
            }
        }
    }
    Ok(report)
}

/// Replace conventional ICGs with latch-free `ICGM2` cells where legal
/// (mechanism 2). Returns the number replaced.
///
/// # Errors
///
/// [`Error::BadInput`] on non-3-phase designs.
pub fn apply_m2(nl: &mut Netlist) -> Result<usize> {
    let _ = p2_port_net(nl)?; // shape check
    let idx = nl.index();
    let phases = storage_phases(nl, &idx)?;
    let clock = nl.clock.as_ref().expect("checked").clone();
    let phase_of_net: HashMap<NetId, usize> = clock
        .phases
        .iter()
        .enumerate()
        .map(|(i, p)| (nl.port(p.port).net, i))
        .collect();

    let icgs: Vec<CellId> = nl
        .cells()
        .filter(|(_, c)| c.kind == CellKind::Icg)
        .map(|(id, _)| id)
        .collect();
    let mut replaced = 0usize;
    for icg in icgs {
        let cell = nl.cell(icg);
        let en = cell.pin(0);
        let ck = cell.pin(1);
        let gck = cell.output();
        // Only ICGs rooted directly at p1 or p3.
        let Some(&target_phase) = phase_of_net.get(&ck) else {
            continue;
        };
        if target_phase == P2 {
            continue;
        }
        // Enable cone start phases; PIs count as p1 (phase 0).
        let mut removable = true;
        for start in graph::fanin_cone_starts(nl, &idx, en) {
            let start_phase = match start {
                graph::ConeStart::Storage(s) => phases.get(&s).copied(),
                graph::ConeStart::Port(_) => Some(0),
                graph::ConeStart::Constant(_) => None,
                graph::ConeStart::ClockGate(_) => Some(target_phase), // conservative
            };
            if start_phase == Some(target_phase) {
                removable = false;
                break;
            }
        }
        if removable {
            nl.replace_cell(icg, CellKind::IcgM2, vec![en, ck, gck]);
            replaced += 1;
        }
    }
    Ok(replaced)
}

/// Data-driven clock gating for the remaining ungated `p2` latches
/// (mechanism 3).
///
/// Latches whose D-net toggle rate is below `threshold` toggles/cycle are
/// sorted by rate and grouped (≤ `max_fanout`); each group gets
/// `EN = OR(XOR(D_i, Q_i))` into a **conventional** ICG. The M1 cell is
/// *not* legal here: its enable latch is only transparent while `p3` is
/// high, but the `D != Q` comparison of a latch fed from `p1` only
/// settles during `p1`'s window — the conventional cell (transparent
/// whenever `p2` is low) samples it right up to the `p2` rising edge.
///
/// # Errors
///
/// [`Error::BadInput`] on non-3-phase designs.
pub fn apply_ddcg(
    nl: &mut Netlist,
    activity: &Activity,
    threshold: f64,
    max_fanout: usize,
) -> Result<CgReport> {
    apply_ddcg_placed(nl, activity, threshold, max_fanout, None)
}

/// [`apply_ddcg`] with placement-aware grouping: when `positions` (per
/// cell id, µm) from a trial placement are given, groups are formed
/// within spatial tiles so each gated-clock subtree stays physically
/// compact — physically-aware clock gating, the practice behind the
/// paper's remark that grouped latches should be correlated.
///
/// # Errors
///
/// [`Error::BadInput`] on non-3-phase designs.
pub fn apply_ddcg_placed(
    nl: &mut Netlist,
    activity: &Activity,
    threshold: f64,
    max_fanout: usize,
    positions: Option<&[Option<(f64, f64)>]>,
) -> Result<CgReport> {
    let p2n = p2_port_net(nl)?;
    let p3n = p3_port_net(nl);
    let idx = nl.index();
    let phases = storage_phases(nl, &idx)?;

    let mut candidates: Vec<(CellId, f64)> = Vec::new();
    for (id, c) in nl.cells() {
        if c.kind.is_latch() && phases.get(&id) == Some(&P2) && c.pin(1) == p2n {
            let rate = activity.toggle_rate(c.pin(0))?;
            if rate < threshold {
                candidates.push((id, rate));
            }
        }
    }
    // Group by coarse toggle-rate bucket, then by spatial tile (when a
    // trial placement is available) or instance name: each gated subtree
    // must stay physically compact or its clock wiring erases the gating
    // benefit — the paper's observation that grouped latches should be
    // "low and highly correlated".
    let tile = spatial_tile(positions);
    candidates.sort_by(|a, b| {
        let bucket = |r: f64| (r / 0.01) as u64;
        bucket(a.1)
            .cmp(&bucket(b.1))
            .then_with(|| tile(a.0).cmp(&tile(b.0)))
            .then_with(|| nl.cell(a.0).name.cmp(&nl.cell(b.0).name))
    });

    let ordered: Vec<CellId> = candidates.into_iter().map(|(c, _)| c).collect();
    let report = build_ddcg_groups(nl, &ordered, p2n, max_fanout);
    let _ = p3n;
    Ok(report)
}

/// [`apply_ddcg_placed`] driven by the static activity model instead of
/// a measured profile — the zero-simulation DDCG path. Candidates are
/// ungated `p2` latches whose D-net static transition density is below
/// `threshold`; they are ranked by the gating-efficacy score
/// ([`triphase_activity::gating_scores`]: expected gated clock toggles ×
/// idle probability, replacing the raw toggle-rate heuristic) so the
/// highest-saving groups form first, then tiled spatially like the
/// measured path.
///
/// # Errors
///
/// [`Error::BadInput`] on non-3-phase designs.
pub fn apply_ddcg_static(
    nl: &mut Netlist,
    model: &triphase_activity::ActivityModel,
    threshold: f64,
    max_fanout: usize,
    positions: Option<&[Option<(f64, f64)>]>,
) -> Result<CgReport> {
    let p2n = p2_port_net(nl)?;
    let idx = nl.index();
    let phases = storage_phases(nl, &idx)?;

    let cells: Vec<CellId> = nl
        .cells()
        .filter(|(id, c)| {
            c.kind.is_latch()
                && phases.get(id) == Some(&P2)
                && c.pin(1) == p2n
                // Gate only when the model is *confident* the data is
                // quiet: a correlation-flagged D-net's density is
                // untrusted, and gating an actually-active register
                // costs XOR-tree power without saving clock toggles.
                && model.density(c.pin(0)) < threshold
                && !model.correlated(c.pin(0))
        })
        .map(|(id, _)| id)
        .collect();
    // Rank by expected saving, then keep each group spatially compact:
    // bucket the score so the tile ordering still groups neighbours.
    let scores = triphase_activity::gating_scores(nl, model, &cells);
    let tile = spatial_tile(positions);
    let mut ranked: Vec<(CellId, f64)> =
        scores.iter().map(|s| (s.cell, s.saved_per_cycle)).collect();
    ranked.sort_by(|a, b| {
        let bucket = |s: f64| (s / 0.01) as i64;
        bucket(b.1)
            .cmp(&bucket(a.1))
            .then_with(|| tile(a.0).cmp(&tile(b.0)))
            .then_with(|| nl.cell(a.0).name.cmp(&nl.cell(b.0).name))
    });
    let ordered: Vec<CellId> = ranked.into_iter().map(|(c, _)| c).collect();
    Ok(build_ddcg_groups(nl, &ordered, p2n, max_fanout))
}

/// Morton-ish 16 µm tile key over an optional trial placement.
fn spatial_tile<'a>(positions: Option<&'a [Option<(f64, f64)>]>) -> impl Fn(CellId) -> u64 + 'a {
    move |c: CellId| -> u64 {
        match positions.and_then(|p| p.get(c.index()).copied().flatten()) {
            Some((x, y)) => {
                let (tx, ty) = ((x / 16.0) as u64 & 0xffff, (y / 16.0) as u64 & 0xffff);
                let mut z = 0u64;
                for i in 0..16 {
                    z |= ((tx >> i) & 1) << (2 * i) | ((ty >> i) & 1) << (2 * i + 1);
                }
                z
            }
            None => 0,
        }
    }
}

/// Shared DDCG group construction: chunk the ordered candidates, build
/// `EN = OR(XOR(D_i, Q_i))` per chunk into a conventional ICG, and
/// repoint the latches' clock pins.
fn build_ddcg_groups(
    nl: &mut Netlist,
    ordered: &[CellId],
    p2n: NetId,
    max_fanout: usize,
) -> CgReport {
    let mut report = CgReport::default();
    let mut counter = 0usize;
    for chunk in ordered.chunks(max_fanout.max(1)) {
        if chunk.is_empty() {
            continue;
        }
        // EN = OR of per-latch D!=Q comparators.
        let mut xor_nets = Vec::with_capacity(chunk.len());
        for &latch in chunk {
            let (d, q) = {
                let c = nl.cell(latch);
                (c.pin(0), c.output())
            };
            let x = nl.add_net(format!("ddcg_x{counter}"));
            nl.add_cell(
                format!("ddcg_xor{counter}"),
                CellKind::Xor(2),
                vec![d, q, x],
            );
            counter += 1;
            xor_nets.push(x);
        }
        let en = or_tree(nl, &xor_nets, &mut counter);
        let gck = nl.add_net(format!("ddcg_gck{counter}"));
        nl.add_cell(
            format!("ddcg_cg{counter}"),
            CellKind::Icg,
            vec![en, p2n, gck],
        );
        counter += 1;
        for &latch in chunk {
            nl.set_pin(latch, 1, gck);
        }
        report.ddcg_groups += 1;
        report.ddcg_gated += chunk.len();
    }
    report
}

fn or_tree(nl: &mut Netlist, nets: &[NetId], counter: &mut usize) -> NetId {
    let mut level: Vec<NetId> = nets.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(4));
        for chunk in level.chunks(4) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                let out = nl.add_net(format!("ddcg_or{counter}"));
                let mut pins = chunk.to_vec();
                pins.push(out);
                nl.add_cell(
                    format!("ddcg_org{counter}"),
                    CellKind::Or(chunk.len() as u8),
                    pins,
                );
                *counter += 1;
                next.push(out);
            }
        }
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::to_three_phase;
    use crate::ffgraph::{assign_phases, extract_ff_graph};
    use crate::preprocess::gated_clock_style;
    use triphase_ilp::PhaseConfig;
    use triphase_netlist::Builder;
    use triphase_sim::{equiv_stream, run_random};

    /// Enabled FF pipeline: two banks behind one enable, chained.
    fn gated_pipeline(width: usize) -> Netlist {
        let mut nl = Netlist::new("gp");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, en) = b.netlist().add_input("en");
        let d = b.word_input("d", width);
        let q0 = b.dffen_word(&d, en, ck);
        let x: Vec<_> = q0.bits().iter().map(|&n| b.not(n)).collect();
        let q1 = b.dffen_word(&triphase_netlist::Word(x), en, ck);
        b.word_output("q", &q1);
        nl.clock = Some(triphase_netlist::ClockSpec::single(ckp, 900.0));
        nl
    }

    fn convert(nl: &Netlist) -> Netlist {
        let idx = nl.index();
        let g = extract_ff_graph(nl, &idx).unwrap();
        let a = assign_phases(&g, &PhaseConfig::default());
        to_three_phase(nl, &a).unwrap().0
    }

    #[test]
    fn common_enable_gates_p2_latches() {
        let golden = gated_pipeline(8);
        let mut pre = golden.clone();
        gated_clock_style(&mut pre, 32).unwrap();
        let mut tp = convert(&pre);
        let before_cg = tp.stats().clock_gates;
        let report = gate_p2_common_enable(&mut tp, 32).unwrap();
        assert!(report.common_enable_gated > 0, "{report:?}");
        assert!(report.m1_cells > 0);
        assert_eq!(tp.stats().clock_gates, before_cg + report.m1_cells);
        tp.validate().unwrap();
        // Functionally identical to the original enabled design.
        let r = equiv_stream(&golden, &tp, 11, 400).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn m2_replaces_safe_icgs() {
        let golden = gated_pipeline(6);
        let mut pre = golden.clone();
        gated_clock_style(&mut pre, 32).unwrap();
        let mut tp = convert(&pre);
        let replaced = apply_m2(&mut tp).unwrap();
        // The enable comes from a PI (phase p1 by convention), so the
        // p1-rooted ICG must keep its latch while a p3-rooted ICG (if the
        // assignment made one) may drop it.
        let m2_count = tp
            .cells()
            .filter(|(_, c)| c.kind == CellKind::IcgM2)
            .count();
        assert_eq!(replaced, m2_count);
        tp.validate().unwrap();
        let r = equiv_stream(&golden, &tp, 13, 400).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn ddcg_gates_quiet_latches_and_preserves_function() {
        // Ungated pipeline with a mostly-constant data path: DDCG should
        // gate the p2 latches.
        let mut nl = Netlist::new("quiet");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let d = b.word_input("d", 6);
        let s0 = b.dff_word(&d, ck);
        let s1 = b.dff_word(&s0, ck);
        b.word_output("q", &s1);
        nl.clock = Some(triphase_netlist::ClockSpec::single(ckp, 900.0));

        let mut tp = convert(&nl);
        // Profile with an all-zero (quiet) input stream.
        let activity = {
            let mut s = triphase_sim::Simulator::new(&tp).unwrap();
            s.reset_zero();
            for _ in 0..64 {
                s.step_cycle();
            }
            s.activity().clone()
        };
        let report = apply_ddcg(&mut tp, &activity, 0.02, 4).unwrap();
        assert!(report.ddcg_gated > 0, "{report:?}");
        assert!(report.ddcg_groups >= report.ddcg_gated / 4);
        tp.validate().unwrap();
        // Equivalence under *active* inputs (gating must be data-driven,
        // not just "off").
        let r = equiv_stream(&nl, &tp, 17, 400).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn static_ddcg_gates_without_simulation_and_preserves_function() {
        // Same quiet pipeline as the measured DDCG test, but candidates
        // come from the static activity model — no simulation at all.
        let mut nl = Netlist::new("squiet");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let d = b.word_input("d", 6);
        let s0 = b.dff_word(&d, ck);
        let s1 = b.dff_word(&s0, ck);
        b.word_output("q", &s1);
        nl.clock = Some(triphase_netlist::ClockSpec::single(ckp, 900.0));

        let mut tp = convert(&nl);
        // Quiet inputs: override the data PIs to near-zero density so
        // the static model sees gating-worthy latches.
        let clock_ports: Vec<_> = tp
            .clock
            .as_ref()
            .unwrap()
            .phases
            .iter()
            .map(|p| p.port)
            .collect();
        let opts = triphase_activity::AnalysisOptions {
            overrides: tp
                .input_ports()
                .into_iter()
                .filter(|p| !clock_ports.contains(p))
                .map(|p| (tp.port(p).net, 0.5, 0.001))
                .collect(),
            ..triphase_activity::AnalysisOptions::default()
        };
        let model = triphase_activity::analyze(&tp, &opts).unwrap();
        let report = apply_ddcg_static(&mut tp, &model, 0.02, 4, None).unwrap();
        assert!(report.ddcg_gated > 0, "{report:?}");
        tp.validate().unwrap();
        // Equivalence under *active* inputs: the gate must be
        // data-driven, not merely off.
        let r = equiv_stream(&nl, &tp, 29, 400).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }

    #[test]
    fn ddcg_respects_threshold() {
        let nl = gated_pipeline(4);
        let mut pre = nl.clone();
        gated_clock_style(&mut pre, 32).unwrap();
        let mut tp = convert(&pre);
        let activity = run_random(&tp, 3, 64).unwrap().activity().clone();
        // Threshold 0: nothing qualifies.
        let report = apply_ddcg(&mut tp, &activity, 0.0, 8).unwrap();
        assert_eq!(report.ddcg_gated, 0);
    }

    #[test]
    fn full_cg_stack_is_equivalent() {
        let golden = gated_pipeline(8);
        let mut pre = golden.clone();
        gated_clock_style(&mut pre, 32).unwrap();
        let mut tp = convert(&pre);
        gate_p2_common_enable(&mut tp, 32).unwrap();
        apply_m2(&mut tp).unwrap();
        let activity = run_random(&tp, 9, 64).unwrap().activity().clone();
        apply_ddcg(&mut tp, &activity, 0.02, 32).unwrap();
        tp.validate().unwrap();
        let r = equiv_stream(&golden, &tp, 23, 500).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
    }
}
