//! The end-to-end design flow (paper §IV-B): preprocessing, ILP phase
//! assignment, conversion, modified retiming, clock gating, P&R,
//! simulation-based validation, and grouped power estimation — for all
//! three design styles (FF, master-slave, 3-phase).

use crate::checkpoint::{self, CheckpointCfg, FlowState, IlpOutcome, Stage};
use crate::clockgate::{apply_ddcg_static, apply_m2, gate_p2_common_enable, CgReport};
use crate::convert::{to_master_slave, to_three_phase, ConvertReport};
use crate::error::{Error, Result};
use crate::ffgraph::{assign_phases, assign_phases_weighted, extract_ff_graph};
use crate::preprocess::{gated_clock_style, PreprocessReport};
use crate::retiming::{retime_three_phase, RetimeReport};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use triphase_cells::Library;
use triphase_fault::{fault_at, injected_panic, Fault, SharedInjector};
use triphase_ilp::{PhaseConfig, SolveRung, Status};
use triphase_lint::{LintStage, Linter};
use triphase_netlist::{Netlist, NetlistStats};
use triphase_pnr::{place_and_route, Layout, PnrOptions};
use triphase_power::{estimate_power, PowerReport};
use triphase_sim::{collect_activity_packed, equiv_stream_warmup, Activity};
use triphase_timing::analyze_smo;

/// Stimulus provider: produces a switching-activity profile for a design
/// variant. The default drives seeded pseudo-random inputs through the
/// bit-parallel packed kernel; CPU benchmarks substitute a closure that
/// pins the workload-select input. `Sync` because the flow evaluates its
/// design variants on the [`triphase_par`] pool concurrently.
pub type Drive<'a> = dyn Fn(&Netlist, u64) -> triphase_sim::Result<Activity> + Sync + 'a;

/// How the per-stage static-analysis checkpoints behave during the flow.
///
/// With [`LintPolicy::Warn`] (the default) or [`LintPolicy::Deny`], the
/// full [`Linter`] registry runs after preprocessing, conversion,
/// retiming, and clock gating; the reports are collected in
/// [`FlowReport::lint`]. `Deny` additionally aborts the flow with
/// [`Error::Lint`] as soon as a checkpoint reports an error-severity
/// finding (warnings never fail a flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintPolicy {
    /// Skip the checkpoints entirely.
    Off,
    /// Run the checkpoints and collect reports; never fail.
    #[default]
    Warn,
    /// Run the checkpoints and fail on any error-severity finding.
    Deny,
}

/// How the formal equivalence checkpoints behave during the flow.
///
/// With [`EquivPolicy::Warn`] or [`EquivPolicy::Deny`], the SAT-based
/// checker ([`triphase_equiv`]) runs after conversion (FF design vs the
/// pristine 3-phase netlist, via the phase-collapsing chain induction)
/// and after retiming (pre- vs post-retiming netlist, via signal
/// correspondence); the outcomes are collected in
/// [`FlowReport::equiv_formal`]. `Deny` additionally aborts the flow
/// with [`Error::Equiv`] when a checkpoint does not end in a proof —
/// including `Unknown` verdicts, so a denied flow certifies every stage.
/// The default is `Off`: the streaming comparison remains the flow's
/// baseline validation and the formal pass is opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EquivPolicy {
    /// Skip the formal checkpoints entirely.
    #[default]
    Off,
    /// Run the checkpoints and collect outcomes; never fail.
    Warn,
    /// Run the checkpoints and fail unless every stage is proven.
    Deny,
}

/// How the semantic dataflow-analysis checkpoints behave during the flow.
///
/// With [`DfaPolicy::Warn`] (the default) or [`DfaPolicy::Deny`], the
/// [`triphase_dfa`] analyses run next to the lint checkpoints: constant /
/// stuck-at propagation on the preprocessed FF design and on the final
/// gated 3-phase netlist, reset-reachability preservation (FF vs 3-phase),
/// and the static min-delay race check on the final netlist. Reports are
/// collected in [`FlowReport::dfa`]; `Deny` additionally aborts the flow
/// with [`Error::Dfa`] on any error-severity finding (warnings never fail
/// a flow, matching [`LintPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DfaPolicy {
    /// Skip the checkpoints entirely.
    Off,
    /// Run the checkpoints and collect reports; never fail.
    #[default]
    Warn,
    /// Run the checkpoints and fail on any error-severity finding.
    Deny,
}

/// Static switching-activity configuration: whether (and how) the flow
/// derives the ILP objective weights and the DDCG candidate ranking from
/// the zero-simulation static model ([`triphase_activity::analyze`])
/// instead of measured toggle counts.
///
/// The policy is Warn-style: when the analysis fails, does not converge,
/// or flags more than [`ActivityCfg::max_correlation_rate`] of the
/// combinational nets as correlation-afflicted, the flow silently falls
/// back to the measured path and records `"measured"` in
/// [`FlowReport::activity_source`] — it never aborts.
#[derive(Debug, Clone)]
pub struct ActivityCfg {
    /// Use the static model when it is healthy (default `true`).
    pub enabled: bool,
    /// Reconvergence supergate cut budget forwarded to the analyzer.
    pub cut_budget: usize,
    /// Fall back to measured activity when the correlation-flagged
    /// fraction of combinational nets exceeds this rate.
    pub max_correlation_rate: f64,
}

impl Default for ActivityCfg {
    fn default() -> Self {
        ActivityCfg {
            enabled: true,
            cut_budget: triphase_activity::AnalysisOptions::default().cut_budget,
            max_correlation_rate: 0.95,
        }
    }
}

/// Which simulation kernel gathers switching activity in [`run_flow`].
///
/// All three are certified bit-exact against each other (values and
/// toggle counts), so the choice only affects throughput: the compiled
/// bytecode VM simulates up to 512 stimulus streams per pass, packed 64,
/// scalar 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimBackend {
    /// Reference scalar simulator (one stream).
    Scalar,
    /// 64-lane bit-parallel kernel.
    Packed,
    /// Fused bytecode VM, up to 512 lanes (default).
    #[default]
    Compiled,
}

impl SimBackend {
    /// Stable label recorded in [`FlowReport::sim_backend`].
    pub fn label(self) -> &'static str {
        match self {
            SimBackend::Scalar => "scalar",
            SimBackend::Packed => "packed",
            SimBackend::Compiled => "compiled",
        }
    }

    /// Collect `cycles` total cycles of pseudo-random activity with this
    /// backend (multi-lane kernels split them across stimulus streams).
    ///
    /// # Errors
    ///
    /// Simulator construction/driving errors.
    pub fn collect(self, nl: &Netlist, seed: u64, cycles: u64) -> triphase_sim::Result<Activity> {
        match self {
            SimBackend::Scalar => {
                triphase_sim::run_random(nl, seed, cycles).map(|s| s.activity().clone())
            }
            SimBackend::Packed => collect_activity_packed(nl, seed, cycles),
            SimBackend::Compiled => triphase_sim::collect_activity_compiled(nl, seed, cycles),
        }
    }
}

/// Flow configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Master seed (stimulus, P&R).
    pub seed: u64,
    /// Simulation kernel for activity collection (default: compiled).
    pub sim_backend: SimBackend,
    /// Cycles of stimulus for activity/power.
    pub sim_cycles: u64,
    /// Cycles of equivalence streaming (0 = skip validation).
    pub equiv_cycles: u64,
    /// Run the §IV-C modified retiming.
    pub retime: bool,
    /// Retiming target as a fraction of the period (paper: 0.5).
    pub retime_target_ratio: f64,
    /// Apply common-enable `p2` clock gating (M1 cells).
    pub common_enable_cg: bool,
    /// Apply the M2 latch-free ICG rewrite.
    pub m2: bool,
    /// Apply multi-bit DDCG to remaining `p2` latches.
    pub ddcg: bool,
    /// DDCG toggle-rate threshold (toggles/cycle; paper: activity below
    /// 1% of the clock frequency, i.e. 0.02 transitions per cycle).
    pub ddcg_threshold: f64,
    /// Max clock-gate fan-out (paper: 32).
    pub cg_max_fanout: usize,
    /// Place-and-route options.
    pub pnr: PnrOptions,
    /// ILP search budget.
    pub phase_cfg: PhaseConfig,
    /// Static-analysis checkpoint policy.
    pub lint: LintPolicy,
    /// Formal equivalence checkpoint policy.
    pub equiv: EquivPolicy,
    /// Semantic dataflow-analysis checkpoint policy.
    pub dfa: DfaPolicy,
    /// Static switching-activity source policy.
    pub activity: ActivityCfg,
    /// Fault-injection hook for the flow's own sites (`"flow.drive"`,
    /// `"flow.stage.<stage>"`, `"flow.variant.<name>"`). Note the ILP
    /// sites live on [`PhaseConfig::hook`]; `None` in production.
    pub fault: Option<SharedInjector>,
    /// Stage checkpoint/resume configuration (`None` = no persistence).
    pub checkpoint: Option<CheckpointCfg>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            seed: 1,
            sim_backend: SimBackend::default(),
            sim_cycles: 200,
            equiv_cycles: 200,
            retime: true,
            retime_target_ratio: 0.5,
            common_enable_cg: true,
            m2: true,
            ddcg: true,
            ddcg_threshold: 0.02,
            cg_max_fanout: 32,
            pnr: PnrOptions::default(),
            phase_cfg: PhaseConfig::default(),
            lint: LintPolicy::default(),
            equiv: EquivPolicy::default(),
            dfa: DfaPolicy::default(),
            activity: ActivityCfg::default(),
            fault: None,
            checkpoint: None,
        }
    }
}

/// Run one lint checkpoint under `policy`, appending the report to
/// `reports` and failing on error findings under [`LintPolicy::Deny`].
fn lint_checkpoint(
    linter: Option<&Linter>,
    policy: LintPolicy,
    nl: &Netlist,
    stage: LintStage,
    reports: &mut Vec<triphase_lint::Report>,
) -> Result<()> {
    let Some(linter) = linter else {
        return Ok(());
    };
    let report = linter.run(nl, stage);
    let deny = policy == LintPolicy::Deny && !report.is_clean();
    if deny {
        return Err(Error::Lint(Box::new(report)));
    }
    reports.push(report);
    Ok(())
}

/// Run one dataflow-analysis checkpoint under `policy`, appending the
/// report to `reports` and failing on error findings under
/// [`DfaPolicy::Deny`].
fn dfa_checkpoint(
    policy: DfaPolicy,
    run: impl FnOnce() -> triphase_dfa::Result<triphase_dfa::DfaReport>,
    reports: &mut Vec<triphase_dfa::DfaReport>,
) -> Result<()> {
    if policy == DfaPolicy::Off {
        return Ok(());
    }
    let report = run().map_err(|e| Error::BadInput(format!("dataflow analysis: {e}")))?;
    if policy == DfaPolicy::Deny && !report.is_clean() {
        return Err(Error::Dfa(Box::new(report)));
    }
    reports.push(report);
    Ok(())
}

/// Run one formal equivalence checkpoint under `policy`, appending the
/// outcome to `outcomes` and failing under [`EquivPolicy::Deny`] unless
/// the stage is proven.
fn equiv_checkpoint(
    policy: EquivPolicy,
    stage: &str,
    check: impl FnOnce() -> triphase_equiv::Result<triphase_equiv::EquivOutcome>,
    outcomes: &mut Vec<(String, triphase_equiv::EquivOutcome)>,
) -> Result<()> {
    if policy == EquivPolicy::Off {
        return Ok(());
    }
    let outcome = check().map_err(|e| Error::Equiv(format!("{stage}: {e}")))?;
    if policy == EquivPolicy::Deny && !outcome.verdict.is_equivalent() {
        return Err(Error::Equiv(format!("{stage}: {:?}", outcome.verdict)));
    }
    outcomes.push((stage.to_owned(), outcome));
    Ok(())
}

/// Evaluation of one design variant after P&R.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// The final netlist.
    pub netlist: Netlist,
    /// Cell-category counts.
    pub stats: NetlistStats,
    /// Total area (cells + virtual clock buffers), µm².
    pub area_um2: f64,
    /// Grouped power (mW).
    pub power: PowerReport,
    /// Clock-tree sinks across all subtrees.
    pub clock_sinks: usize,
    /// Clock-tree buffers (virtual).
    pub clock_buffers: usize,
    /// Signal wirelength (µm).
    pub wirelength_um: f64,
    /// Worst setup slack from SMO analysis (ps).
    pub worst_setup_slack_ps: f64,
    /// Worst hold slack (ps).
    pub worst_hold_slack_ps: f64,
    /// Place/route runtime (s).
    pub pnr_seconds: f64,
    /// Stimulus simulation runtime (s).
    pub sim_seconds: f64,
}

impl VariantResult {
    /// The paper's "# of Regs" metric.
    pub fn registers(&self) -> usize {
        self.stats.registers()
    }
}

/// Full flow output: the three variants plus stage reports. `Clone` so a
/// caching service can hand out shared copies of a memoized report.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Design name.
    pub name: String,
    /// Original FF-based design (after gated-clock preprocessing).
    pub ff: VariantResult,
    /// Master-slave latch baseline.
    pub ms: VariantResult,
    /// Proposed 3-phase design.
    pub three_phase: VariantResult,
    /// Gated-clock preprocessing statistics.
    pub preprocess: PreprocessReport,
    /// ILP objective value (p2 insertions).
    pub ilp_cost: usize,
    /// Whether the ILP was solved to proven optimality.
    pub ilp_optimal: bool,
    /// ILP runtime (s) — the paper reports this is a tiny flow fraction.
    pub ilp_seconds: f64,
    /// Which rung of the solver fallback chain answered (ILP → exact →
    /// greedy).
    pub ilp_rung: SolveRung,
    /// Solver termination status; budget exhaustion is distinguishable
    /// ([`Status::NodeLimit`] / [`Status::TimeLimit`]).
    pub ilp_status: Status,
    /// Rungs that failed before `ilp_rung` produced the answer.
    pub ilp_fallbacks: usize,
    /// Simulation kernel that gathered measured activity:
    /// [`SimBackend::label`] for [`run_flow`], `"custom"` when a caller
    /// supplied its own drive via [`run_flow_with`].
    pub sim_backend: &'static str,
    /// Activity source that drove the ILP objective weights and the DDCG
    /// candidate ranking: `"static"` (zero-simulation model) or
    /// `"measured"` (simulation toggle counts, including every fallback
    /// case and [`ActivityCfg::enabled`] `= false`).
    pub activity_source: &'static str,
    /// Correlation-flagged fraction of combinational nets reported by
    /// the static model on the preprocessed design (`None` when the
    /// analysis was disabled or failed).
    pub activity_correlation_rate: Option<f64>,
    /// Conversion statistics.
    pub convert: ConvertReport,
    /// Retiming statistics (if run).
    pub retime: Option<RetimeReport>,
    /// Clock-gating statistics (common-enable + DDCG merged).
    pub cg: CgReport,
    /// Conversion + retime + CG runtime (s).
    pub convert_seconds: f64,
    /// FF vs M-S equivalence (None when validation skipped).
    pub equiv_ms: Option<bool>,
    /// FF vs 3-phase equivalence.
    pub equiv_3p: Option<bool>,
    /// Per-stage lint reports (empty when [`FlowConfig::lint`] is
    /// [`LintPolicy::Off`]), in checkpoint order: preprocess, convert,
    /// retime (if run), clockgate.
    pub lint: Vec<triphase_lint::Report>,
    /// Formal equivalence outcomes per stage (empty when
    /// [`FlowConfig::equiv`] is [`EquivPolicy::Off`]), in checkpoint
    /// order: `"conversion"` (FF vs pristine 3-phase), `"retime"`
    /// (pre- vs post-retiming, if retiming ran).
    pub equiv_formal: Vec<(String, triphase_equiv::EquivOutcome)>,
    /// Dataflow-analysis reports (empty when [`FlowConfig::dfa`] is
    /// [`DfaPolicy::Off`]), in checkpoint order: `const@preprocess`,
    /// `const@clockgate`, `reset@clockgate` (FF vs final 3-phase
    /// reset-initialization preservation), `race@clockgate`.
    pub dfa: Vec<triphase_dfa::DfaReport>,
}

impl FlowReport {
    /// Register saving of 3-phase vs 2×FF, percent (Table I convention).
    pub fn reg_saving_vs_2ff(&self) -> f64 {
        let base = 2.0 * self.ff.stats.ffs as f64;
        triphase_power::percent_saving(base, self.three_phase.registers() as f64)
    }

    /// Register saving of 3-phase vs master-slave, percent.
    pub fn reg_saving_vs_ms(&self) -> f64 {
        triphase_power::percent_saving(
            self.ms.registers() as f64,
            self.three_phase.registers() as f64,
        )
    }

    /// Total-power saving of 3-phase vs FF, percent (Table II).
    pub fn power_saving_vs_ff(&self) -> f64 {
        triphase_power::percent_saving(self.ff.power.total_mw(), self.three_phase.power.total_mw())
    }

    /// Total-power saving of 3-phase vs M-S, percent.
    pub fn power_saving_vs_ms(&self) -> f64 {
        triphase_power::percent_saving(self.ms.power.total_mw(), self.three_phase.power.total_mw())
    }
}

/// Run the full three-variant flow with pseudo-random stimulus.
///
/// Activity is gathered with the kernel selected by
/// [`FlowConfig::sim_backend`] (default: the compiled bytecode VM,
/// `sim_cycles` total cycles split across up to 512 independent stimulus
/// lanes, of which lane 0 replays the historical single-stream sequence
/// for `seed`). All backends are toggle-exact twins, so the report's
/// power numbers are independent of the choice.
///
/// # Errors
///
/// Propagates stage failures; [`Error::ValidationFailed`] if constraint
/// C2 is violated or equivalence streaming finds a mismatch.
pub fn run_flow(nl: &Netlist, lib: &Library, cfg: &FlowConfig) -> Result<FlowReport> {
    let seed = cfg.seed;
    let backend = cfg.sim_backend;
    run_flow_inner(
        nl,
        lib,
        cfg,
        &move |n: &Netlist, cycles: u64| backend.collect(n, seed, cycles),
        backend.label(),
        None,
        None,
    )
}

/// [`run_flow`] with custom stimulus (e.g. CPU workload selection).
/// [`FlowReport::sim_backend`] records `"custom"`.
///
/// # Errors
///
/// See [`run_flow`].
pub fn run_flow_with(
    nl: &Netlist,
    lib: &Library,
    cfg: &FlowConfig,
    drive: &Drive<'_>,
) -> Result<FlowReport> {
    // Custom stimulus is opaque to the memoization keys, so this entry
    // point never consults a stage cache.
    run_flow_inner(nl, lib, cfg, drive, "custom", None, None)
}

/// The artifacts one flow stage produces, as stored in (and replayed
/// from) a [`StageMemo`]. Each variant carries exactly what the flow
/// would have computed fresh: the stage's output netlist plus its report
/// scalars, so a memo hit is indistinguishable from a checkpoint resume.
#[derive(Debug, Clone)]
pub enum StageData {
    /// Gated-clock preprocessing: the `pre` netlist and its report.
    Preprocess(Netlist, PreprocessReport),
    /// Phase assignment + conversion.
    Convert {
        /// Solver summary (cost, rung, status, solve seconds).
        ilp: IlpOutcome,
        /// The pristine 3-phase netlist.
        netlist: Netlist,
        /// Conversion statistics.
        report: ConvertReport,
    },
    /// Modified retiming: the retimed netlist and its report.
    Retime(Netlist, RetimeReport),
    /// Clock gating: the final netlist, the merged gating report, and
    /// the conversion-seconds figure the original run measured.
    ClockGate(Netlist, CgReport, f64),
}

impl StageData {
    /// Which stage this data belongs to.
    pub fn stage(&self) -> Stage {
        match self {
            StageData::Preprocess(..) => Stage::Preprocess,
            StageData::Convert { .. } => Stage::Convert,
            StageData::Retime(..) => Stage::Retime,
            StageData::ClockGate(..) => Stage::ClockGate,
        }
    }
}

/// A stage-result cache consulted by [`run_flow_memo`].
///
/// Keys come from [`crate::stage_key`]: the stage's input netlist
/// snapshot plus the configuration fields that stage reads. The flow
/// looks a stage up before computing it and records every freshly
/// computed stage; a hit whose [`StageData`] variant does not match the
/// requested stage is treated as a miss. `Sync` because a server shares
/// one store across its worker threads.
pub trait StageMemo: Sync {
    /// Return the cached artifacts for `(stage, key)`, if any.
    fn lookup(&self, stage: Stage, key: u64) -> Option<StageData>;
    /// Store freshly computed artifacts under `(stage, key)`.
    fn record(&self, stage: Stage, key: u64, data: &StageData);
}

/// One per-stage cache-provenance event streamed by [`run_flow_memo`],
/// in stage execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageObservation {
    /// The stage that just resolved.
    pub stage: Stage,
    /// Its memoization key ([`crate::stage_key`]).
    pub key: u64,
    /// `true` when the stage was replayed from the memo (or a matching
    /// checkpoint) instead of computed fresh.
    pub hit: bool,
}

/// [`run_flow`] with a stage-result cache and a per-stage provenance
/// observer — the service entry point for memoized incremental
/// conversion.
///
/// Before computing each of the four checkpointed stages the flow asks
/// `memo` for the stage's key; on a hit the cached netlist + report are
/// adopted verbatim and the stage is skipped, on a miss the stage runs
/// and its artifacts are recorded. Because the lookup is threaded
/// through the *same* `run_flow` body (lint/equiv/dfa checkpoints,
/// validation, and variant evaluation all still run), a replayed flow
/// returns a [`FlowReport`] bit-identical to an uninterrupted run in
/// everything but wall-clock timings — the same argument the
/// checkpoint/resume layer makes. `observe` receives one
/// [`StageObservation`] per executed stage, in order.
///
/// # Errors
///
/// See [`run_flow`].
pub fn run_flow_memo(
    nl: &Netlist,
    lib: &Library,
    cfg: &FlowConfig,
    memo: &dyn StageMemo,
    observe: &mut dyn FnMut(StageObservation),
) -> Result<FlowReport> {
    let seed = cfg.seed;
    let backend = cfg.sim_backend;
    run_flow_inner(
        nl,
        lib,
        cfg,
        &move |n: &Netlist, cycles: u64| backend.collect(n, seed, cycles),
        backend.label(),
        Some(memo),
        Some(observe),
    )
}

fn run_flow_inner(
    nl: &Netlist,
    lib: &Library,
    cfg: &FlowConfig,
    drive: &Drive<'_>,
    sim_backend: &'static str,
    memo: Option<&dyn StageMemo>,
    mut observe: Option<&mut dyn FnMut(StageObservation)>,
) -> Result<FlowReport> {
    // Input hardening: malformed or adversarial netlists become typed
    // errors before any stage touches them.
    nl.validate()?;
    if nl.clock.is_none() {
        return Err(Error::BadInput("design has no clock specification".into()));
    }

    // Fault site "flow.drive": EmptyActivity forces a zero-cycle
    // simulation, which downstream toggle-rate consumers must surface as
    // a typed error rather than silently-zero power numbers.
    let inner_drive = drive;
    let wrapped_drive = move |n: &Netlist, cycles: u64| match fault_at(&cfg.fault, "flow.drive") {
        Some(Fault::Panic) => injected_panic("flow.drive"),
        Some(Fault::EmptyActivity) => inner_drive(n, 0),
        _ => inner_drive(n, cycles),
    };
    let drive: &Drive<'_> = &wrapped_drive;

    // Checkpoint/resume: adopt the latest stage whose fingerprint matches
    // this exact input netlist + configuration.
    let ck = cfg.checkpoint.as_ref();
    let fp = ck.map_or(0, |_| checkpoint::fingerprint(nl, cfg));
    let restored: Option<FlowState> = ck
        .filter(|c| c.resume)
        .and_then(|c| checkpoint::load_latest(&c.dir, &nl.name, fp));
    let have = |s: Stage| restored.as_ref().is_some_and(|st| st.stage >= s);
    // Stage memoization keys serialize the stage's input netlist, so
    // they are only computed when someone consumes them (a memo store or
    // a provenance observer).
    let keyed = memo.is_some() || observe.is_some();
    let memo_get = |stage: Stage, key: Option<u64>| -> Option<StageData> {
        let data = memo?.lookup(stage, key?)?;
        // A store returning the wrong variant is treated as a miss.
        (data.stage() == stage).then_some(data)
    };
    // Persist the cumulative state after a freshly computed stage and
    // record its artifacts in the memo store, then honor the stage's
    // injected-crash site (the worst place to die for an unprotected
    // flow: artifacts just became durable). Replayed stages — from a
    // checkpoint or the memo — skip all three, which is what lets a
    // resubmitted job sail past a fault that killed its first run.
    let stage_mark =
        |stage: Stage, state: Option<&FlowState>, entry: Option<(u64, StageData)>| -> Result<()> {
            if let (Some(c), Some(st)) = (ck, state) {
                checkpoint::save(&c.dir, &nl.name, st)?;
            }
            if let (Some(m), Some((key, data))) = (memo, entry) {
                m.record(stage, key, &data);
            }
            let site = format!("flow.stage.{}", stage.name());
            if matches!(fault_at(&cfg.fault, &site), Some(Fault::Panic)) {
                injected_panic(&site);
            }
            Ok(())
        };

    // Lint and formal-equivalence checkpoints always re-run, even over
    // restored stages: they are cheap, deterministic functions of the
    // restored netlists, so a resumed report carries the same evidence.
    let linter = (cfg.lint != LintPolicy::Off).then(Linter::new);
    let mut lint_reports = Vec::new();

    // Stage 1 — shared preprocessing: the FF baseline also uses gated
    // clocks (the paper lets the tool pick the best CG style for every
    // variant).
    let k_pre = keyed.then(|| checkpoint::stage_key(Stage::Preprocess, nl, cfg, 0));
    let mut memo_pre = false;
    let (pre, preprocess) = match &restored {
        Some(st) => (st.pre.clone(), st.preprocess.clone()),
        None => match memo_get(Stage::Preprocess, k_pre) {
            Some(StageData::Preprocess(p, rep)) => {
                memo_pre = true;
                (p, rep)
            }
            _ => {
                let mut p = nl.clone();
                let rep = gated_clock_style(&mut p, cfg.cg_max_fanout)?;
                (p.compact(), rep)
            }
        },
    };
    let pre_fresh = !have(Stage::Preprocess) && !memo_pre;
    if let (Some(o), Some(key)) = (observe.as_mut(), k_pre) {
        o(StageObservation {
            stage: Stage::Preprocess,
            key,
            hit: !pre_fresh,
        });
    }
    let mut state = ck.map(|_| FlowState {
        fingerprint: fp,
        stage: Stage::Preprocess,
        pre: pre.clone(),
        preprocess: preprocess.clone(),
        ilp: None,
        convert: None,
        retime: None,
        clockgate: None,
    });
    if pre_fresh {
        let entry = memo
            .and(k_pre)
            .map(|k| (k, StageData::Preprocess(pre.clone(), preprocess.clone())));
        stage_mark(Stage::Preprocess, state.as_ref(), entry)?;
    }
    lint_checkpoint(
        linter.as_ref(),
        cfg.lint,
        &pre,
        LintStage::Preprocess,
        &mut lint_reports,
    )?;
    // Semantic checkpoint: constness on the source design (stuck state
    // and dead clock gates are input defects, caught before conversion).
    let mut dfa_reports = Vec::new();
    dfa_checkpoint(
        cfg.dfa,
        || triphase_dfa::const_report(&pre, &pre.index(), Some("preprocess")),
        &mut dfa_reports,
    )?;

    // Master-slave baseline (cheap; recomputed even on resume).
    let ms_nl = to_master_slave(&pre)?;

    // Static switching-activity model on the preprocessed design. Like
    // the lint checkpoints, it is a cheap deterministic function of the
    // stage netlist and re-runs even over restored stages so the report
    // carries the same provenance either way.
    let activity_opts = triphase_activity::AnalysisOptions {
        cut_budget: cfg.activity.cut_budget,
        ..triphase_activity::AnalysisOptions::default()
    };
    let static_pre = (cfg.activity.enabled)
        .then(|| triphase_activity::analyze(&pre, &activity_opts).ok())
        .flatten()
        .filter(|m| m.converged);
    let activity_correlation_rate = static_pre.as_ref().map(|m| m.correlation_rate());
    let static_ok = static_pre
        .as_ref()
        .is_some_and(|m| m.correlation_rate() <= cfg.activity.max_correlation_rate);
    let activity_source = if static_ok { "static" } else { "measured" };

    // Stage 2 — ILP phase assignment + conversion.
    let t0 = Instant::now();
    let k_conv = keyed.then(|| checkpoint::stage_key(Stage::Convert, &pre, cfg, 0));
    let restored_convert = restored
        .as_ref()
        .filter(|st| st.stage >= Stage::Convert)
        .and_then(|st| Some((st.ilp.clone()?, st.convert.clone()?)));
    let mut memo_conv = false;
    let restored_conv = restored_convert.is_some();
    let (ilp, mut tp, convert_report) = match restored_convert {
        Some((ilp, (tp, cr))) => (ilp, tp, cr),
        None => match memo_get(Stage::Convert, k_conv) {
            Some(StageData::Convert {
                ilp,
                netlist,
                report,
            }) => {
                memo_conv = true;
                (ilp, netlist, report)
            }
            _ => {
                let idx = pre.index();
                let graph = extract_ff_graph(&pre, &idx)?;
                let a = match static_pre.as_ref().filter(|_| static_ok) {
                    Some(model) => assign_phases_weighted(&graph, &cfg.phase_cfg, &pre, model),
                    None => assign_phases(&graph, &cfg.phase_cfg),
                };
                let ilp = IlpOutcome {
                    cost: a.cost,
                    optimal: a.optimal,
                    seconds: a.solve_seconds,
                    rung: a.rung,
                    status: a.status,
                    fallbacks: a.fallbacks,
                };
                let (tp, cr) = to_three_phase(&pre, &a)?;
                (ilp, tp, cr)
            }
        },
    };
    let ilp_fresh = !restored_conv && !memo_conv;
    if let (Some(o), Some(key)) = (observe.as_mut(), k_conv) {
        o(StageObservation {
            stage: Stage::Convert,
            key,
            hit: !ilp_fresh,
        });
    }
    if let Some(st) = &mut state {
        st.stage = Stage::Convert;
        st.ilp = Some(ilp.clone());
        st.convert = Some((tp.clone(), convert_report));
    }
    if ilp_fresh {
        let entry = memo.and(k_conv).map(|k| {
            (
                k,
                StageData::Convert {
                    ilp: ilp.clone(),
                    netlist: tp.clone(),
                    report: convert_report,
                },
            )
        });
        stage_mark(Stage::Convert, state.as_ref(), entry)?;
    }
    lint_checkpoint(
        linter.as_ref(),
        cfg.lint,
        &tp,
        LintStage::Convert,
        &mut lint_reports,
    )?;
    // Formal conversion proof runs on the pristine 3-phase netlist,
    // before retiming and clock gating rewrite it.
    let mut equiv_formal = Vec::new();
    let equiv_opts = triphase_equiv::Options::default();
    equiv_checkpoint(
        cfg.equiv,
        "conversion",
        || triphase_equiv::check_conversion(&pre, &tp, &equiv_opts),
        &mut equiv_formal,
    )?;

    // Stage 3 — modified retiming.
    let mut retime_report = None;
    if cfg.retime {
        let before = (cfg.equiv != EquivPolicy::Off).then(|| tp.clone());
        let k_rt = keyed.then(|| checkpoint::stage_key(Stage::Retime, &tp, cfg, 0));
        let restored_rt = restored
            .as_ref()
            .filter(|st| st.stage >= Stage::Retime)
            .and_then(|st| st.retime.clone());
        let mut rt_fresh = restored_rt.is_none();
        match restored_rt {
            Some((rt, rr)) => {
                tp = rt;
                retime_report = Some(rr);
            }
            None => match memo_get(Stage::Retime, k_rt) {
                Some(StageData::Retime(rt, rr)) => {
                    rt_fresh = false;
                    tp = rt;
                    retime_report = Some(rr);
                }
                _ => {
                    let (rt, rr) = retime_three_phase(&tp, lib, cfg.retime_target_ratio)?;
                    tp = rt;
                    retime_report = Some(rr);
                }
            },
        }
        if let (Some(o), Some(key)) = (observe.as_mut(), k_rt) {
            o(StageObservation {
                stage: Stage::Retime,
                key,
                hit: !rt_fresh,
            });
        }
        if let Some(st) = &mut state {
            st.stage = Stage::Retime;
            st.retime = retime_report.clone().map(|r| (tp.clone(), r));
        }
        if rt_fresh {
            let entry = match (memo.and(k_rt), &retime_report) {
                (Some(k), Some(r)) => Some((k, StageData::Retime(tp.clone(), r.clone()))),
                _ => None,
            };
            stage_mark(Stage::Retime, state.as_ref(), entry)?;
        }
        lint_checkpoint(
            linter.as_ref(),
            cfg.lint,
            &tp,
            LintStage::Retime,
            &mut lint_reports,
        )?;
        if let Some(before) = before {
            equiv_checkpoint(
                cfg.equiv,
                "retime",
                || triphase_equiv::check_sequential(&before, &tp, &equiv_opts),
                &mut equiv_formal,
            )?;
        }
    }

    // Stage 4 — p2 clock gating. The key folds in the flow's `static_ok`
    // decision bit: it is computed on the *preprocessed* netlist, so two
    // submissions whose gating inputs match but whose activity decisions
    // differ must not share cache entries.
    let k_cg =
        keyed.then(|| checkpoint::stage_key(Stage::ClockGate, &tp, cfg, u64::from(static_ok)));
    let restored_cg = restored
        .as_ref()
        .filter(|st| st.stage >= Stage::ClockGate)
        .and_then(|st| st.clockgate.clone());
    let mut cg_fresh = restored_cg.is_none();
    let (tp, cg, convert_seconds) = match restored_cg {
        Some(section) => section,
        None => match memo_get(Stage::ClockGate, k_cg) {
            Some(StageData::ClockGate(gated, cg, secs)) => {
                cg_fresh = false;
                (gated, cg, secs)
            }
            _ => {
                let mut cg = CgReport::default();
                if cfg.common_enable_cg {
                    let r = gate_p2_common_enable(&mut tp, cfg.cg_max_fanout)?;
                    cg.common_enable_gated = r.common_enable_gated;
                    cg.m1_cells = r.m1_cells;
                }
                if cfg.m2 {
                    cg.m2_replaced = apply_m2(&mut tp)?;
                }
                if cfg.ddcg {
                    // Trial placement so DDCG groups can be formed spatially
                    // (each gated subtree must stay compact).
                    let trial = place_and_route(&tp, lib, &cfg.pnr)?;
                    // Zero-simulation candidate ranking from the static
                    // model, re-analyzed on the converted netlist; same
                    // Warn-style fallback to a measured profile.
                    let static_tp = (static_ok)
                        .then(|| triphase_activity::analyze(&tp, &activity_opts).ok())
                        .flatten()
                        .filter(|m| {
                            m.converged && m.correlation_rate() <= cfg.activity.max_correlation_rate
                        });
                    let r = match &static_tp {
                        Some(model) => apply_ddcg_static(
                            &mut tp,
                            model,
                            cfg.ddcg_threshold,
                            cfg.cg_max_fanout,
                            Some(&trial.positions),
                        )?,
                        None => {
                            let activity = drive(&tp, cfg.sim_cycles)?;
                            crate::clockgate::apply_ddcg_placed(
                                &mut tp,
                                &activity,
                                cfg.ddcg_threshold,
                                cfg.cg_max_fanout,
                                Some(&trial.positions),
                            )?
                        }
                    };
                    cg.ddcg_groups = r.ddcg_groups;
                    cg.ddcg_gated = r.ddcg_gated;
                }
                // Resumed stages did their solving in a previous process;
                // only freshly spent ILP time is subtracted from this run's
                // elapsed conversion time.
                let ilp_in_elapsed = if ilp_fresh { ilp.seconds } else { 0.0 };
                let secs = (t0.elapsed().as_secs_f64() - ilp_in_elapsed).max(0.0);
                (tp.compact(), cg, secs)
            }
        },
    };
    if let (Some(o), Some(key)) = (observe.as_mut(), k_cg) {
        o(StageObservation {
            stage: Stage::ClockGate,
            key,
            hit: !cg_fresh,
        });
    }
    if let Some(st) = &mut state {
        st.stage = Stage::ClockGate;
        st.clockgate = Some((tp.clone(), cg, convert_seconds));
    }
    if cg_fresh {
        let entry = memo
            .and(k_cg)
            .map(|k| (k, StageData::ClockGate(tp.clone(), cg, convert_seconds)));
        stage_mark(Stage::ClockGate, state.as_ref(), entry)?;
    }
    lint_checkpoint(
        linter.as_ref(),
        cfg.lint,
        &tp,
        LintStage::ClockGate,
        &mut lint_reports,
    )?;
    let ilp_seconds = ilp.seconds;

    // Constraint C2 must hold structurally.
    let tp_idx = tp.index();
    let c2 = triphase_timing::check_c2(&tp, lib, &tp_idx)?;
    if !c2.is_empty() {
        return Err(Error::ValidationFailed(format!(
            "{} C2 violations (co-transparent adjacent latches)",
            c2.len()
        )));
    }

    // Semantic checkpoints on the final gated 3-phase netlist: constness
    // (clock gating just introduced the enables worth checking),
    // reset-initialization preservation against the FF source, and the
    // static min-delay race check across the latch windows.
    dfa_checkpoint(
        cfg.dfa,
        || triphase_dfa::const_report(&tp, &tp_idx, Some("clockgate")),
        &mut dfa_reports,
    )?;
    dfa_checkpoint(
        cfg.dfa,
        || {
            triphase_dfa::reset_report(
                &pre,
                &tp,
                triphase_dfa::DEFAULT_RESET_CYCLES,
                Some("clockgate"),
            )
        },
        &mut dfa_reports,
    )?;
    dfa_checkpoint(
        cfg.dfa,
        || triphase_dfa::race_report(&tp, lib, &tp_idx, Some("clockgate")),
        &mut dfa_reports,
    )?;

    // Equivalence validation (the paper's output-stream comparison).
    let (mut equiv_ms, mut equiv_3p) = (None, None);
    if cfg.equiv_cycles > 0 {
        let warmup = if cfg.retime { 16 } else { 0 };
        let r = equiv_stream_warmup(&pre, &ms_nl, cfg.seed, cfg.equiv_cycles, 0)?;
        equiv_ms = Some(r.equivalent());
        let r3 = equiv_stream_warmup(&pre, &tp, cfg.seed, cfg.equiv_cycles, warmup)?;
        equiv_3p = Some(r3.equivalent());
        if equiv_ms == Some(false) {
            return Err(Error::ValidationFailed("M-S variant diverged".into()));
        }
        if equiv_3p == Some(false) {
            return Err(Error::ValidationFailed(format!(
                "3-phase variant diverged: {:?}",
                r3.mismatch
            )));
        }
    }

    // The three variant evaluations (P&R + simulation + power) are
    // independent — fan them out on the work-stealing pool. Results land
    // in fixed slots, so the report is identical at any thread count. A
    // panicking evaluation (a bug, or an injected fault) is contained
    // here: it becomes a typed `Error::Panic` for its own variant and
    // never unwinds through — or poisons — the shared pool.
    const VARIANT_NAMES: [&str; 3] = ["ff", "ms", "3p"];
    let mut variants = [Some(pre), Some(ms_nl), Some(tp)];
    let mut evaluated: [Option<Result<VariantResult>>; 3] = [None, None, None];
    triphase_par::scope(|s| {
        for ((slot, out), vname) in variants
            .iter_mut()
            .zip(evaluated.iter_mut())
            .zip(VARIANT_NAMES)
        {
            let nl = slot.take().expect("variant present");
            let fault = &cfg.fault;
            s.spawn(move || {
                let site = format!("flow.variant.{vname}");
                let r = catch_unwind(AssertUnwindSafe(|| {
                    if matches!(fault_at(fault, &site), Some(Fault::Panic)) {
                        injected_panic(&site);
                    }
                    evaluate(nl, lib, cfg, drive)
                }));
                *out = Some(r.unwrap_or_else(|payload| Err(Error::from_panic(&site, payload))));
            });
        }
    });
    let [ff, ms, three_phase] = evaluated.map(|r| r.expect("scope joined all variants"));
    let (ff, ms, three_phase) = (ff?, ms?, three_phase?);

    Ok(FlowReport {
        name: nl.name.clone(),
        ff,
        ms,
        three_phase,
        preprocess,
        ilp_cost: ilp.cost,
        ilp_optimal: ilp.optimal,
        ilp_seconds,
        ilp_rung: ilp.rung,
        ilp_status: ilp.status,
        ilp_fallbacks: ilp.fallbacks,
        sim_backend,
        activity_source,
        activity_correlation_rate,
        convert: convert_report,
        retime: retime_report,
        cg,
        convert_seconds,
        equiv_ms,
        equiv_3p,
        lint: lint_reports,
        equiv_formal,
        dfa: dfa_reports,
    })
}

/// Place, simulate, and estimate power for one variant.
fn evaluate(
    mut nl: Netlist,
    lib: &Library,
    cfg: &FlowConfig,
    drive: &Drive<'_>,
) -> Result<VariantResult> {
    // Technology-independent cleanup (constant folding, dead logic,
    // buffer sweep) — the paper's post-retiming re-optimization, applied
    // to every variant equally.
    triphase_netlist::opt::optimize(&mut nl);
    let nl = nl.compact();
    let layout: Layout = place_and_route(&nl, lib, &cfg.pnr)?;
    let t0 = Instant::now();
    let activity = drive(&nl, cfg.sim_cycles)?;
    let sim_seconds = t0.elapsed().as_secs_f64();
    let power = estimate_power(&nl, lib, &activity, Some(&layout))?;
    let idx = nl.index();
    let timing = analyze_smo(&nl, lib, &idx, Some(&layout.net_wire_cap));
    let (setup, hold) = match &timing {
        Ok(r) => (r.worst_setup_slack_ps, r.worst_hold_slack_ps),
        Err(_) => (f64::NEG_INFINITY, f64::NEG_INFINITY),
    };
    let stats = nl.stats();
    let area_um2 = nl.cell_area(lib) + layout.clock_buffer_area();
    Ok(VariantResult {
        stats,
        area_um2,
        power,
        clock_sinks: layout.clock_trees.iter().map(|t| t.sinks).sum(),
        clock_buffers: layout.clock_buffers(),
        wirelength_um: layout.total_wirelength_um,
        worst_setup_slack_ps: setup,
        worst_hold_slack_ps: hold,
        pnr_seconds: layout.place_seconds + layout.route_seconds,
        sim_seconds,
        netlist: nl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_circuits::iscas::{generate_iscas, IscasProfile};
    use triphase_circuits::pipeline::linear_pipeline;

    fn quick_cfg() -> FlowConfig {
        FlowConfig {
            sim_cycles: 48,
            equiv_cycles: 96,
            pnr: PnrOptions {
                moves_per_cell: 4,
                ..PnrOptions::default()
            },
            ..FlowConfig::default()
        }
    }

    #[test]
    fn pipeline_flow_end_to_end() {
        let lib = Library::synthetic_28nm();
        let nl = linear_pipeline(5, 6, 2, 900.0);
        let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
        assert_eq!(report.equiv_ms, Some(true));
        assert_eq!(report.equiv_3p, Some(true));
        // Headline shape: fewer regs than M-S, register saving vs 2×FF.
        assert!(report.three_phase.registers() < report.ms.registers());
        assert!(report.reg_saving_vs_2ff() > 0.0);
        assert!(report.reg_saving_vs_ms() > 0.0);
        // Without enables to gate, 3-phase clock power lands near the FF
        // baseline (the paper itself reports negative clock savings on
        // several rows): latch pins are cheaper but there are 1.5x more
        // sinks on three trees.
        assert!(
            report.three_phase.power.clock.total() < report.ff.power.clock.total() * 1.4,
            "3P clock {} vs FF clock {}",
            report.three_phase.power.clock.total(),
            report.ff.power.clock.total()
        );
        // Master-slave is strictly worse on clock power (2x full-cap sinks).
        assert!(report.ms.power.clock.total() > report.three_phase.power.clock.total());
        assert!(report.ilp_optimal);
        assert!(report.ilp_seconds < 5.0);
    }

    #[test]
    fn control_dominated_design_shows_no_reg_benefit() {
        // All-feedback profile (the s1488 observation): every FF is
        // back-to-back, so 3-phase uses as many latches as M-S.
        let lib = Library::synthetic_28nm();
        let profile = IscasProfile {
            name: "ctrl",
            n_ff: 12,
            n_pi: 6,
            n_po: 4,
            n_gates: 80,
            selfloop_frac: 1.0,
            enable_frac: 0.0,
            n_layers: 2,
            period_ps: 1000.0,
        };
        let nl = generate_iscas(&profile, 7);
        let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
        assert_eq!(report.equiv_3p, Some(true));
        assert_eq!(
            report.convert.singles, 0,
            "feedback forces all FFs back-to-back"
        );
        assert!(report.reg_saving_vs_2ff() <= 1.0, "no latch-count benefit");
    }

    #[test]
    fn gated_iscas_flow_end_to_end() {
        let lib = Library::synthetic_28nm();
        let profile = IscasProfile {
            name: "mix",
            n_ff: 24,
            n_pi: 8,
            n_po: 6,
            n_gates: 150,
            selfloop_frac: 0.3,
            enable_frac: 0.5,
            n_layers: 3,
            period_ps: 1000.0,
        };
        let nl = generate_iscas(&profile, 3);
        let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
        assert_eq!(report.equiv_3p, Some(true));
        assert_eq!(report.equiv_ms, Some(true));
        assert!(report.preprocess.icgs_inserted > 0);
        assert!(report.three_phase.registers() <= report.ms.registers());
    }

    #[test]
    fn lint_checkpoints_run_per_stage_and_deny_passes() {
        let lib = Library::synthetic_28nm();
        let nl = linear_pipeline(4, 4, 1, 900.0);
        let cfg = FlowConfig {
            lint: LintPolicy::Deny,
            ..quick_cfg()
        };
        let report = run_flow(&nl, &lib, &cfg).unwrap();
        // preprocess, convert, retime, clockgate.
        assert_eq!(report.lint.len(), 4);
        assert!(report.lint.iter().all(|r| r.is_clean()));
        let stages: Vec<_> = report.lint.iter().filter_map(|r| r.stage).collect();
        assert_eq!(
            stages,
            vec![
                LintStage::Preprocess,
                LintStage::Convert,
                LintStage::Retime,
                LintStage::ClockGate
            ]
        );

        let cfg = FlowConfig {
            lint: LintPolicy::Off,
            ..quick_cfg()
        };
        assert!(run_flow(&nl, &lib, &cfg).unwrap().lint.is_empty());
    }

    #[test]
    fn formal_equiv_checkpoints_prove_conversion_and_retime() {
        let lib = Library::synthetic_28nm();
        let nl = linear_pipeline(3, 5, 1, 900.0);
        let cfg = FlowConfig {
            equiv: EquivPolicy::Deny,
            ..quick_cfg()
        };
        let report = run_flow(&nl, &lib, &cfg).unwrap();
        let stages: Vec<&str> = report
            .equiv_formal
            .iter()
            .map(|(s, _)| s.as_str())
            .collect();
        assert_eq!(stages, ["conversion", "retime"]);
        assert!(report
            .equiv_formal
            .iter()
            .all(|(_, o)| o.verdict.is_equivalent()));

        // Off (the default) skips the formal pass entirely.
        let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
        assert!(report.equiv_formal.is_empty());
    }

    #[test]
    fn dfa_checkpoints_run_per_stage_and_deny_passes() {
        let lib = Library::synthetic_28nm();
        let nl = linear_pipeline(4, 4, 1, 900.0);
        let cfg = FlowConfig {
            dfa: DfaPolicy::Deny,
            ..quick_cfg()
        };
        let report = run_flow(&nl, &lib, &cfg).unwrap();
        let checkpoints: Vec<_> = report
            .dfa
            .iter()
            .map(|r| (r.analysis, r.stage.as_deref()))
            .collect();
        assert_eq!(
            checkpoints,
            vec![
                ("const", Some("preprocess")),
                ("const", Some("clockgate")),
                ("reset", Some("clockgate")),
                ("race", Some("clockgate")),
            ]
        );
        assert!(report.dfa.iter().all(|r| r.is_clean()));

        let cfg = FlowConfig {
            dfa: DfaPolicy::Off,
            ..quick_cfg()
        };
        assert!(run_flow(&nl, &lib, &cfg).unwrap().dfa.is_empty());
    }

    #[test]
    fn conversion_preserves_reset_defined_state() {
        // Regression for the reset-reachability checkpoint on stateful
        // designs: direct conversion (no P&R) keeps the test fast. The
        // pipeline's registers are input-fed (trivially X after reset);
        // the CPU keeps a PC/state loop that must stay reset-defined.
        use triphase_circuits::cpu::{cpu_core, generate_program, m0_like};
        for nl in [linear_pipeline(4, 4, 1, 900.0), {
            let cpu = m0_like();
            cpu_core(&cpu, &generate_program(&cpu, 11))
        }] {
            let mut pre = nl.clone();
            gated_clock_style(&mut pre, 32).unwrap();
            let pre = pre.compact();
            let idx = pre.index();
            let graph = extract_ff_graph(&pre, &idx).unwrap();
            let assignment = assign_phases(&graph, &PhaseConfig::default());
            let (tp, _) = to_three_phase(&pre, &assignment).unwrap();
            let report = triphase_dfa::reset_report(
                &pre,
                &tp,
                triphase_dfa::DEFAULT_RESET_CYCLES,
                Some("convert"),
            )
            .unwrap();
            assert!(
                report.is_clean(),
                "{}: conversion lost reset-defined state: {report}",
                nl.name
            );
        }
    }

    #[test]
    fn malformed_netlists_are_typed_errors_not_panics() {
        let lib = Library::synthetic_28nm();
        // No clock specification.
        let mut nl = linear_pipeline(3, 2, 1, 900.0);
        nl.clock = None;
        assert!(matches!(
            run_flow(&nl, &lib, &quick_cfg()),
            Err(Error::BadInput(_))
        ));
        // Dangling pins after an adversarial net removal.
        let mut nl = linear_pipeline(3, 2, 1, 900.0);
        let net = nl.nets().next().expect("has nets").0;
        nl.remove_net(net);
        assert!(matches!(
            run_flow(&nl, &lib, &quick_cfg()),
            Err(Error::Netlist(_))
        ));
    }

    #[test]
    fn injected_variant_panic_is_contained_as_typed_error() {
        use triphase_fault::{Fault, FaultPlan};
        let lib = Library::synthetic_28nm();
        let nl = linear_pipeline(3, 3, 1, 900.0);
        let cfg = FlowConfig {
            fault: Some(
                FaultPlan::new(3)
                    .inject("flow.variant.ms", Fault::Panic)
                    .shared(),
            ),
            ..quick_cfg()
        };
        let err = run_flow(&nl, &lib, &cfg).unwrap_err();
        assert!(matches!(err, Error::Panic(_)), "{err}");
        assert!(err.to_string().contains("flow.variant.ms"), "{err}");
        // The contained panic must not poison the pool: the same process
        // immediately runs a clean flow to completion.
        let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
        assert_eq!(report.equiv_3p, Some(true));
    }

    #[test]
    fn injected_empty_activity_surfaces_as_typed_error() {
        use triphase_fault::{Fault, FaultPlan};
        let lib = Library::synthetic_28nm();
        let nl = linear_pipeline(3, 3, 1, 900.0);
        let cfg = FlowConfig {
            fault: Some(
                FaultPlan::new(5)
                    .inject("flow.drive", Fault::EmptyActivity)
                    .shared(),
            ),
            ..quick_cfg()
        };
        let err = run_flow(&nl, &lib, &cfg).unwrap_err();
        assert!(
            matches!(err, Error::Sim(_) | Error::Power(_)),
            "zero-cycle activity must become a typed error, got {err}"
        );
    }

    #[test]
    fn degraded_solver_budget_is_recorded_in_the_report() {
        // A node budget of zero degrades the phase assignment to the
        // greedy incumbent in place: the flow still completes and the
        // report carries the distinguishable status.
        let lib = Library::synthetic_28nm();
        let nl = linear_pipeline(4, 4, 1, 900.0);
        let cfg = FlowConfig {
            phase_cfg: PhaseConfig {
                max_nodes: 0,
                ..PhaseConfig::default()
            },
            ..quick_cfg()
        };
        let report = run_flow(&nl, &lib, &cfg).unwrap();
        assert!(!report.ilp_optimal);
        assert_eq!(report.ilp_status, Status::NodeLimit);
        assert_eq!(report.ilp_rung, SolveRung::Exact);
        assert_eq!(report.equiv_3p, Some(true), "degraded result is valid");
    }

    #[test]
    fn static_activity_drives_flow_by_default_and_ablates_cleanly() {
        let lib = Library::synthetic_28nm();
        let nl = linear_pipeline(4, 4, 1, 900.0);
        // Default: static source, correlation rate recorded, still
        // cycle-exact equivalent.
        let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
        assert_eq!(report.activity_source, "static");
        let rate = report.activity_correlation_rate.unwrap();
        assert!((0.0..=1.0).contains(&rate), "rate {rate}");
        assert_eq!(report.equiv_3p, Some(true));

        // Disabled: measured path, no model, same functional outcome.
        let cfg = FlowConfig {
            activity: crate::flow::ActivityCfg {
                enabled: false,
                ..Default::default()
            },
            ..quick_cfg()
        };
        let measured = run_flow(&nl, &lib, &cfg).unwrap();
        assert_eq!(measured.activity_source, "measured");
        assert_eq!(measured.activity_correlation_rate, None);
        assert_eq!(measured.equiv_3p, Some(true));

        // An impossible correlation ceiling forces the Warn-style
        // fallback while still reporting the measured rate.
        let cfg = FlowConfig {
            activity: crate::flow::ActivityCfg {
                max_correlation_rate: -1.0,
                ..Default::default()
            },
            ..quick_cfg()
        };
        let fell_back = run_flow(&nl, &lib, &cfg).unwrap();
        assert_eq!(fell_back.activity_source, "measured");
        assert!(fell_back.activity_correlation_rate.is_some());
        assert_eq!(fell_back.equiv_3p, Some(true));
    }

    #[test]
    fn ablation_flags_disable_stages() {
        let lib = Library::synthetic_28nm();
        let nl = linear_pipeline(4, 4, 1, 900.0);
        let cfg = FlowConfig {
            retime: false,
            common_enable_cg: false,
            m2: false,
            ddcg: false,
            ..quick_cfg()
        };
        let report = run_flow(&nl, &lib, &cfg).unwrap();
        assert!(report.retime.is_none());
        assert_eq!(report.cg, CgReport::default());
        assert_eq!(report.equiv_3p, Some(true));
    }
}
