//! Stage-granular checkpoint/resume for the conversion flow.
//!
//! After each major flow stage (preprocess, convert, retime, clock
//! gating — the same sites as the lint checkpoints) the flow can persist
//! its cumulative state: every intermediate netlist (via the exact
//! [`triphase_netlist::snapshot`] text format) plus the per-stage report
//! scalars. A resumed flow loads the latest checkpoint whose fingerprint
//! matches the current input + configuration, skips the proven stages,
//! and recomputes only what follows. Lint, formal-equivalence, and
//! stream-validation checkpoints always re-run on resume (they are cheap
//! and deterministic given the restored netlists), so a resumed
//! [`crate::FlowReport`] is bit-identical to an uninterrupted one in
//! everything but wall-clock timings.
//!
//! Checkpoint files are plain text, written atomically (temp file +
//! rename) as `<design>.stage<N>.ckpt` under the configured directory.
//! A file that is truncated, malformed, or fingerprint-mismatched is
//! skipped in favor of an earlier stage — resume never trusts a stale or
//! torn checkpoint.

use crate::clockgate::CgReport;
use crate::convert::ConvertReport;
use crate::error::{Error, Result};
use crate::flow::FlowConfig;
use crate::preprocess::PreprocessReport;
use crate::retiming::RetimeReport;
use std::path::{Path, PathBuf};
use triphase_fault::fnv1a64;
use triphase_ilp::{SolveRung, Status};
use triphase_netlist::{snapshot, Netlist};

/// Where and how the flow checkpoints its stages.
#[derive(Debug, Clone)]
pub struct CheckpointCfg {
    /// Directory for checkpoint files (created on first write).
    pub dir: PathBuf,
    /// Attempt to resume from the latest matching checkpoint before
    /// running; stale or mismatched checkpoints are ignored.
    pub resume: bool,
}

impl CheckpointCfg {
    /// Checkpoint into `dir`, with resume enabled.
    pub fn resume_in(dir: impl Into<PathBuf>) -> CheckpointCfg {
        CheckpointCfg {
            dir: dir.into(),
            resume: true,
        }
    }
}

/// The flow stages that checkpoint, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Gated-clock preprocessing done (`pre` netlist final).
    Preprocess,
    /// Phase assignment + FF-to-latch conversion done.
    Convert,
    /// Modified retiming done.
    Retime,
    /// Clock gating done (final 3-phase netlist).
    ClockGate,
}

impl Stage {
    /// Stable lower-case name (used in filenames and fault sites).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Preprocess => "preprocess",
            Stage::Convert => "convert",
            Stage::Retime => "retime",
            Stage::ClockGate => "clockgate",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Preprocess => 1,
            Stage::Convert => 2,
            Stage::Retime => 3,
            Stage::ClockGate => 4,
        }
    }

    /// Inverse of [`Stage::name`] (used when parsing journaled stage
    /// records back into typed entries).
    pub fn from_name(s: &str) -> Option<Stage> {
        Some(match s {
            "preprocess" => Stage::Preprocess,
            "convert" => Stage::Convert,
            "retime" => Stage::Retime,
            "clockgate" => Stage::ClockGate,
            _ => return None,
        })
    }

    const ALL: [Stage; 4] = [
        Stage::Preprocess,
        Stage::Convert,
        Stage::Retime,
        Stage::ClockGate,
    ];
}

/// Summary of the phase-assignment solve carried by the convert stage —
/// in checkpoint files, and across processes in
/// [`crate::StageData::Convert`] memoization entries (which is why the
/// type is public).
#[derive(Debug, Clone)]
pub struct IlpOutcome {
    /// ILP objective value (p2 insertions).
    pub cost: usize,
    /// Whether the solve reached proven optimality.
    pub optimal: bool,
    /// Solve wall-clock (s) — replayed verbatim on resume/memo hits so
    /// the reported solver time is the time actually spent solving.
    pub seconds: f64,
    /// Which rung of the ILP → exact → greedy chain answered.
    pub rung: SolveRung,
    /// Solver termination status.
    pub status: Status,
    /// Rungs that failed before `rung` produced the answer.
    pub fallbacks: usize,
}

/// Cumulative flow state at some checkpointed stage.
#[derive(Debug, Clone)]
pub(crate) struct FlowState {
    pub fingerprint: u64,
    pub stage: Stage,
    pub pre: Netlist,
    pub preprocess: PreprocessReport,
    pub ilp: Option<IlpOutcome>,
    pub convert: Option<(Netlist, ConvertReport)>,
    pub retime: Option<(Netlist, RetimeReport)>,
    pub clockgate: Option<(Netlist, CgReport, f64)>,
}

/// Fingerprint of the flow input: the exact netlist snapshot plus every
/// configuration field that influences a checkpointed stage. Policies
/// (lint/equiv), validation cycle counts, and the fault hook are
/// deliberately excluded — they never change stage artifacts, and a
/// resume run routinely uses a different fault plan than the run that
/// crashed.
///
/// Exported as `flow_fingerprint`: it doubles as the whole-flow
/// memoization key for services caching conversion results, exactly
/// because two runs with equal fingerprints produce bit-identical stage
/// artifacts.
pub fn fingerprint(nl: &Netlist, cfg: &FlowConfig) -> u64 {
    use std::fmt::Write;
    let mut s = snapshot::to_text(nl);
    let time_ns = cfg.phase_cfg.time_limit.map_or(u128::MAX, |d| d.as_nanos());
    let _ = write!(
        s,
        "cfg {} {} {} {:016x} {} {} {} {:016x} {} {} {} {:016x} {} {:016x} {:016x} {} {} {:032x} {} {} {:016x}",
        cfg.seed,
        cfg.sim_cycles,
        cfg.retime as u8,
        cfg.retime_target_ratio.to_bits(),
        cfg.common_enable_cg as u8,
        cfg.m2 as u8,
        cfg.ddcg as u8,
        cfg.ddcg_threshold.to_bits(),
        cfg.cg_max_fanout,
        cfg.pnr.seed,
        cfg.pnr.moves_per_cell,
        cfg.pnr.utilization.to_bits(),
        cfg.pnr.cts_max_fanout,
        cfg.pnr.wire_cap_per_um.to_bits(),
        cfg.pnr.clock_wire_cap_per_um.to_bits(),
        cfg.phase_cfg.max_nodes,
        cfg.phase_cfg.ilp_max_vars,
        time_ns,
        cfg.activity.enabled as u8,
        cfg.activity.cut_budget,
        cfg.activity.max_correlation_rate.to_bits(),
    );
    fnv1a64(s.as_bytes())
}

/// Memoization key for one flow stage: the exact snapshot of the stage's
/// *input* netlist plus only the configuration fields that stage reads.
///
/// This is deliberately finer-grained than [`fingerprint`]: an edit that
/// only perturbs downstream logic leaves upstream stage keys unchanged,
/// so an incremental (ECO-style) resubmission re-runs exactly the stages
/// at/after the first divergent key. The per-stage field subsets:
///
/// - **Preprocess** (input: the source netlist): `cg_max_fanout` — the
///   ICG fan-out cap used when rewriting enable muxes to gated clocks.
/// - **Convert** (input: the preprocessed netlist): the ILP budget
///   (`phase_cfg.max_nodes` / `ilp_max_vars` / `time_limit`) and the
///   static-activity knobs that select and parameterize the weighted
///   objective (`activity.*`).
/// - **Retime** (input: the pristine 3-phase netlist):
///   `retime_target_ratio`.
/// - **ClockGate** (input: the retimed netlist): every gating flag and
///   threshold, the P&R options (DDCG runs a trial placement), the
///   stimulus seed + cycle count (the measured-activity fallback), the
///   `activity.*` knobs, and `extra` — the caller passes the flow's
///   `static_ok` decision bit, which is computed on the *preprocessed*
///   netlist and therefore not derivable from this stage's input alone.
///
/// `extra` is reserved-zero for the other three stages.
pub fn stage_key(stage: Stage, input: &Netlist, cfg: &FlowConfig, extra: u64) -> u64 {
    use std::fmt::Write;
    let mut s = snapshot::to_text(input);
    let _ = write!(s, "stage {} extra {:016x} ", stage.name(), extra);
    match stage {
        Stage::Preprocess => {
            let _ = write!(s, "{}", cfg.cg_max_fanout);
        }
        Stage::Convert => {
            let time_ns = cfg.phase_cfg.time_limit.map_or(u128::MAX, |d| d.as_nanos());
            let _ = write!(
                s,
                "{} {} {:032x} {} {} {:016x}",
                cfg.phase_cfg.max_nodes,
                cfg.phase_cfg.ilp_max_vars,
                time_ns,
                cfg.activity.enabled as u8,
                cfg.activity.cut_budget,
                cfg.activity.max_correlation_rate.to_bits(),
            );
        }
        Stage::Retime => {
            let _ = write!(s, "{:016x}", cfg.retime_target_ratio.to_bits());
        }
        Stage::ClockGate => {
            let _ = write!(
                s,
                "{} {} {} {:016x} {} {} {} {:016x} {} {:016x} {:016x} {} {} {} {} {:016x}",
                cfg.common_enable_cg as u8,
                cfg.m2 as u8,
                cfg.ddcg as u8,
                cfg.ddcg_threshold.to_bits(),
                cfg.cg_max_fanout,
                cfg.pnr.seed,
                cfg.pnr.moves_per_cell,
                cfg.pnr.utilization.to_bits(),
                cfg.pnr.cts_max_fanout,
                cfg.pnr.wire_cap_per_um.to_bits(),
                cfg.pnr.clock_wire_cap_per_um.to_bits(),
                cfg.seed,
                cfg.sim_cycles,
                cfg.activity.enabled as u8,
                cfg.activity.cut_budget,
                cfg.activity.max_correlation_rate.to_bits(),
            );
        }
    }
    fnv1a64(s.as_bytes())
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if s.is_empty() {
        s.push('_');
    }
    s
}

fn stage_path(dir: &Path, design: &str, stage: Stage) -> PathBuf {
    dir.join(format!("{}.stage{}.ckpt", sanitize(design), stage.index()))
}

fn push_netlist(out: &mut String, section: &str, nl: &Netlist) {
    let text = snapshot::to_text(nl);
    out.push_str(&format!("netlist {section} {}\n", text.lines().count()));
    out.push_str(&text);
    if !text.ends_with('\n') {
        out.push('\n');
    }
}

fn serialize(st: &FlowState) -> String {
    let mut s = String::new();
    s.push_str("triphase checkpoint v1\n");
    s.push_str(&format!("fingerprint {:016x}\n", st.fingerprint));
    s.push_str(&format!("stage {}\n", st.stage.name()));
    s.push_str(&format!(
        "preprocess {} {}\n",
        st.preprocess.converted_ffs, st.preprocess.icgs_inserted
    ));
    push_netlist(&mut s, "pre", &st.pre);
    if let Some(ilp) = &st.ilp {
        s.push_str(&format!(
            "ilp {} {} {:016x} {} {} {}\n",
            ilp.cost,
            ilp.optimal as u8,
            ilp.seconds.to_bits(),
            ilp.rung.name(),
            ilp.status.name(),
            ilp.fallbacks
        ));
    }
    if let Some((nl, r)) = &st.convert {
        s.push_str(&format!(
            "convert {} {} {} {}\n",
            r.singles, r.back_to_back, r.pi_latches, r.icgs_duplicated
        ));
        push_netlist(&mut s, "convert", nl);
    }
    if let Some((nl, r)) = &st.retime {
        s.push_str(&format!(
            "retime {} {} {:016x} {:016x} {} {} {} {}\n",
            r.ran as u8,
            r.fell_back as u8,
            r.original_ps.to_bits(),
            r.achieved_ps.to_bits(),
            r.met_target as u8,
            r.movable,
            r.pinned,
            r.p2_after
        ));
        push_netlist(&mut s, "retime", nl);
    }
    if let Some((nl, r, secs)) = &st.clockgate {
        s.push_str(&format!(
            "clockgate {} {} {} {} {} {:016x}\n",
            r.common_enable_gated,
            r.m1_cells,
            r.m2_replaced,
            r.ddcg_groups,
            r.ddcg_gated,
            secs.to_bits()
        ));
        push_netlist(&mut s, "clockgate", nl);
    }
    s.push_str("end\n");
    s
}

/// Atomically write the checkpoint for `st.stage`.
///
/// # Errors
///
/// [`Error::Checkpoint`] on any I/O failure (unwritable directory, full
/// disk, rename failure).
pub(crate) fn save(dir: &Path, design: &str, st: &FlowState) -> Result<()> {
    let io = |e: std::io::Error| Error::Checkpoint(format!("write {}: {e}", dir.display()));
    std::fs::create_dir_all(dir).map_err(io)?;
    let path = stage_path(dir, design, st.stage);
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, serialize(st)).map_err(io)?;
    std::fs::rename(&tmp, &path).map_err(io)?;
    Ok(())
}

struct Reader<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Reader<'a> {
    fn next(&mut self) -> Option<&'a str> {
        self.lines.next()
    }
}

fn parse(text: &str) -> Option<FlowState> {
    let mut r = Reader {
        lines: text.lines(),
    };
    if r.next()? != "triphase checkpoint v1" {
        return None;
    }
    let fingerprint = u64::from_str_radix(r.next()?.strip_prefix("fingerprint ")?, 16).ok()?;
    let stage = Stage::from_name(r.next()?.strip_prefix("stage ")?)?;
    let mut pp = r.next()?.strip_prefix("preprocess ")?.split(' ');
    let preprocess = PreprocessReport {
        converted_ffs: pp.next()?.parse().ok()?,
        icgs_inserted: pp.next()?.parse().ok()?,
    };
    let pre = parse_netlist(&mut r, "pre")?;
    let mut ilp = None;
    let mut convert = None;
    let mut retime = None;
    let mut clockgate = None;
    loop {
        let line = r.next()?;
        if line == "end" {
            break;
        }
        if let Some(rest) = line.strip_prefix("ilp ") {
            let mut f = rest.split(' ');
            ilp = Some(IlpOutcome {
                cost: f.next()?.parse().ok()?,
                optimal: parse_bool(f.next()?)?,
                seconds: parse_f64(f.next()?)?,
                rung: rung_from(f.next()?)?,
                status: status_from(f.next()?)?,
                fallbacks: f.next()?.parse().ok()?,
            });
        } else if let Some(rest) = line.strip_prefix("convert ") {
            let mut f = rest.split(' ');
            let report = ConvertReport {
                singles: f.next()?.parse().ok()?,
                back_to_back: f.next()?.parse().ok()?,
                pi_latches: f.next()?.parse().ok()?,
                icgs_duplicated: f.next()?.parse().ok()?,
            };
            convert = Some((parse_netlist(&mut r, "convert")?, report));
        } else if let Some(rest) = line.strip_prefix("retime ") {
            let mut f = rest.split(' ');
            let report = RetimeReport {
                ran: parse_bool(f.next()?)?,
                fell_back: parse_bool(f.next()?)?,
                original_ps: parse_f64(f.next()?)?,
                achieved_ps: parse_f64(f.next()?)?,
                met_target: parse_bool(f.next()?)?,
                movable: f.next()?.parse().ok()?,
                pinned: f.next()?.parse().ok()?,
                p2_after: f.next()?.parse().ok()?,
            };
            retime = Some((parse_netlist(&mut r, "retime")?, report));
        } else if let Some(rest) = line.strip_prefix("clockgate ") {
            let mut f = rest.split(' ');
            let report = CgReport {
                common_enable_gated: f.next()?.parse().ok()?,
                m1_cells: f.next()?.parse().ok()?,
                m2_replaced: f.next()?.parse().ok()?,
                ddcg_groups: f.next()?.parse().ok()?,
                ddcg_gated: f.next()?.parse().ok()?,
            };
            let secs = parse_f64(f.next()?)?;
            clockgate = Some((parse_netlist(&mut r, "clockgate")?, report, secs));
        } else {
            return None;
        }
    }
    // The stage implies which cumulative sections must be present. The
    // retime section is required only at exactly `Stage::Retime`: a flow
    // with retiming disabled legitimately checkpoints `ClockGate`
    // without one.
    if stage >= Stage::Convert && (ilp.is_none() || convert.is_none()) {
        return None;
    }
    if stage == Stage::Retime && retime.is_none() {
        return None;
    }
    if stage >= Stage::ClockGate && clockgate.is_none() {
        return None;
    }
    Some(FlowState {
        fingerprint,
        stage,
        pre,
        preprocess,
        ilp,
        convert,
        retime,
        clockgate,
    })
}

fn parse_netlist(r: &mut Reader<'_>, section: &str) -> Option<Netlist> {
    let header = r.next()?;
    let rest = header.strip_prefix("netlist ")?;
    let rest = rest.strip_prefix(section)?;
    let n_lines: usize = rest.trim().parse().ok()?;
    let mut text = String::new();
    for _ in 0..n_lines {
        text.push_str(r.next()?);
        text.push('\n');
    }
    snapshot::from_text(&text).ok()
}

fn parse_bool(s: &str) -> Option<bool> {
    match s {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

fn parse_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn rung_from(s: &str) -> Option<SolveRung> {
    Some(match s {
        "ilp" => SolveRung::Ilp,
        "exact" => SolveRung::Exact,
        "greedy" => SolveRung::Greedy,
        _ => return None,
    })
}

fn status_from(s: &str) -> Option<Status> {
    Some(match s {
        "optimal" => Status::Optimal,
        "feasible" => Status::Feasible,
        "node-limit" => Status::NodeLimit,
        "time-limit" => Status::TimeLimit,
        "infeasible" => Status::Infeasible,
        "unbounded" => Status::Unbounded,
        "aborted" => Status::Aborted,
        _ => return None,
    })
}

/// Serialize one memoized stage entry ([`crate::StageData`]) to the
/// checkpoint text format — the building block of `triphase-serve`'s
/// durable job journal. The payload reuses the exact per-stage field
/// encodings of the whole-flow checkpoint (bit-patterned floats, exact
/// snapshot text), so a replayed entry is byte-identical to the value
/// the original run recorded.
pub fn stage_data_to_text(data: &crate::StageData) -> String {
    use crate::StageData;
    let mut s = String::new();
    s.push_str("triphase stagedata v1\n");
    match data {
        StageData::Preprocess(nl, rep) => {
            s.push_str(&format!(
                "preprocess {} {}\n",
                rep.converted_ffs, rep.icgs_inserted
            ));
            push_netlist(&mut s, "data", nl);
        }
        StageData::Convert {
            ilp,
            netlist,
            report,
        } => {
            s.push_str(&format!(
                "ilp {} {} {:016x} {} {} {}\n",
                ilp.cost,
                ilp.optimal as u8,
                ilp.seconds.to_bits(),
                ilp.rung.name(),
                ilp.status.name(),
                ilp.fallbacks
            ));
            s.push_str(&format!(
                "convert {} {} {} {}\n",
                report.singles, report.back_to_back, report.pi_latches, report.icgs_duplicated
            ));
            push_netlist(&mut s, "data", netlist);
        }
        StageData::Retime(nl, rep) => {
            s.push_str(&format!(
                "retime {} {} {:016x} {:016x} {} {} {} {}\n",
                rep.ran as u8,
                rep.fell_back as u8,
                rep.original_ps.to_bits(),
                rep.achieved_ps.to_bits(),
                rep.met_target as u8,
                rep.movable,
                rep.pinned,
                rep.p2_after
            ));
            push_netlist(&mut s, "data", nl);
        }
        StageData::ClockGate(nl, rep, secs) => {
            s.push_str(&format!(
                "clockgate {} {} {} {} {} {:016x}\n",
                rep.common_enable_gated,
                rep.m1_cells,
                rep.m2_replaced,
                rep.ddcg_groups,
                rep.ddcg_gated,
                secs.to_bits()
            ));
            push_netlist(&mut s, "data", nl);
        }
    }
    s.push_str("end\n");
    s
}

/// Parse a [`stage_data_to_text`] payload. Returns `None` on any
/// truncation or field corruption — a journal replaying entries through
/// this function silently drops torn records instead of adopting them.
pub fn stage_data_from_text(text: &str) -> Option<crate::StageData> {
    use crate::StageData;
    let mut r = Reader {
        lines: text.lines(),
    };
    if r.next()? != "triphase stagedata v1" {
        return None;
    }
    let head = r.next()?;
    let data = if let Some(rest) = head.strip_prefix("preprocess ") {
        let mut f = rest.split(' ');
        let rep = PreprocessReport {
            converted_ffs: f.next()?.parse().ok()?,
            icgs_inserted: f.next()?.parse().ok()?,
        };
        StageData::Preprocess(parse_netlist(&mut r, "data")?, rep)
    } else if let Some(rest) = head.strip_prefix("ilp ") {
        let mut f = rest.split(' ');
        let ilp = IlpOutcome {
            cost: f.next()?.parse().ok()?,
            optimal: parse_bool(f.next()?)?,
            seconds: parse_f64(f.next()?)?,
            rung: rung_from(f.next()?)?,
            status: status_from(f.next()?)?,
            fallbacks: f.next()?.parse().ok()?,
        };
        let mut c = r.next()?.strip_prefix("convert ")?.split(' ');
        let report = ConvertReport {
            singles: c.next()?.parse().ok()?,
            back_to_back: c.next()?.parse().ok()?,
            pi_latches: c.next()?.parse().ok()?,
            icgs_duplicated: c.next()?.parse().ok()?,
        };
        StageData::Convert {
            ilp,
            netlist: parse_netlist(&mut r, "data")?,
            report,
        }
    } else if let Some(rest) = head.strip_prefix("retime ") {
        let mut f = rest.split(' ');
        let rep = RetimeReport {
            ran: parse_bool(f.next()?)?,
            fell_back: parse_bool(f.next()?)?,
            original_ps: parse_f64(f.next()?)?,
            achieved_ps: parse_f64(f.next()?)?,
            met_target: parse_bool(f.next()?)?,
            movable: f.next()?.parse().ok()?,
            pinned: f.next()?.parse().ok()?,
            p2_after: f.next()?.parse().ok()?,
        };
        StageData::Retime(parse_netlist(&mut r, "data")?, rep)
    } else if let Some(rest) = head.strip_prefix("clockgate ") {
        let mut f = rest.split(' ');
        let rep = CgReport {
            common_enable_gated: f.next()?.parse().ok()?,
            m1_cells: f.next()?.parse().ok()?,
            m2_replaced: f.next()?.parse().ok()?,
            ddcg_groups: f.next()?.parse().ok()?,
            ddcg_gated: f.next()?.parse().ok()?,
        };
        let secs = parse_f64(f.next()?)?;
        StageData::ClockGate(parse_netlist(&mut r, "data")?, rep, secs)
    } else {
        return None;
    };
    if r.next()? != "end" {
        return None;
    }
    Some(data)
}

/// Load the latest-stage checkpoint for `design` whose fingerprint is
/// `fp`. Torn, malformed, or mismatched files are skipped silently —
/// resume falls back to the most recent trustworthy stage (or a fresh
/// run when none exists).
pub(crate) fn load_latest(dir: &Path, design: &str, fp: u64) -> Option<FlowState> {
    for stage in Stage::ALL.iter().rev() {
        let path = stage_path(dir, design, *stage);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        if let Some(st) = parse(&text) {
            if st.fingerprint == fp && st.stage == *stage {
                return Some(st);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_circuits::pipeline::linear_pipeline;

    fn state(stage: Stage) -> FlowState {
        let pre = linear_pipeline(3, 2, 1, 900.0);
        let tp = linear_pipeline(2, 2, 0, 900.0);
        FlowState {
            fingerprint: 0xdead_beef_cafe_f00d,
            stage,
            pre,
            preprocess: PreprocessReport {
                converted_ffs: 3,
                icgs_inserted: 1,
            },
            ilp: (stage >= Stage::Convert).then_some(IlpOutcome {
                cost: 4,
                optimal: true,
                seconds: 0.125,
                rung: SolveRung::Exact,
                status: Status::Optimal,
                fallbacks: 1,
            }),
            convert: (stage >= Stage::Convert).then(|| {
                (
                    tp.clone(),
                    ConvertReport {
                        singles: 2,
                        back_to_back: 1,
                        pi_latches: 1,
                        icgs_duplicated: 0,
                    },
                )
            }),
            retime: (stage >= Stage::Retime).then(|| {
                (
                    tp.clone(),
                    RetimeReport {
                        ran: true,
                        fell_back: false,
                        original_ps: 612.5,
                        achieved_ps: 450.0,
                        met_target: true,
                        movable: 2,
                        pinned: 1,
                        p2_after: 3,
                    },
                )
            }),
            clockgate: (stage >= Stage::ClockGate).then(|| {
                (
                    tp.clone(),
                    CgReport {
                        common_enable_gated: 1,
                        m1_cells: 1,
                        m2_replaced: 0,
                        ddcg_groups: 1,
                        ddcg_gated: 2,
                    },
                    1.5,
                )
            }),
        }
    }

    #[test]
    fn round_trip_every_stage() {
        for stage in Stage::ALL {
            let st = state(stage);
            let text = serialize(&st);
            let back = parse(&text).expect("parses");
            assert_eq!(back.stage, stage);
            assert_eq!(back.fingerprint, st.fingerprint);
            assert_eq!(
                snapshot::to_text(&back.pre),
                snapshot::to_text(&st.pre),
                "pre netlist exact"
            );
            assert_eq!(back.ilp.is_some(), st.ilp.is_some());
            if let (Some(a), Some(b)) = (&back.ilp, &st.ilp) {
                assert_eq!(a.cost, b.cost);
                assert_eq!(a.rung, b.rung);
                assert_eq!(a.status, b.status);
                assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
            }
            if let (Some((na, ra)), Some((nb, rb))) = (&back.retime, &st.retime) {
                assert_eq!(snapshot::to_text(na), snapshot::to_text(nb));
                assert_eq!(ra.achieved_ps.to_bits(), rb.achieved_ps.to_bits());
            }
            if let (Some((_, ra, sa)), Some((_, rb, sb))) = (&back.clockgate, &st.clockgate) {
                assert_eq!(ra, rb);
                assert_eq!(sa.to_bits(), sb.to_bits());
            }
        }
    }

    #[test]
    fn truncated_or_corrupt_checkpoints_are_rejected() {
        let st = state(Stage::ClockGate);
        let text = serialize(&st);
        assert!(parse(&text).is_some());
        // Any truncation loses the end marker or a section → reject.
        for frac in [10, 30, 50, 70, 90] {
            let cut = text.len() * frac / 100;
            assert!(parse(&text[..cut]).is_none(), "cut at {frac}%");
        }
        // A clockgate-stage header whose section is mangled → reject.
        let lying = text.replacen("clockgate 1 1 0 1 2", "garbage 1 1 0 1 2", 1);
        assert!(parse(&lying).is_none());
    }

    #[test]
    fn save_and_load_latest_prefers_later_stage_and_matching_fingerprint() {
        let dir = std::env::temp_dir().join("triphase_ckpt_test_a");
        let _ = std::fs::remove_dir_all(&dir);
        let early = state(Stage::Preprocess);
        let late = state(Stage::Retime);
        save(&dir, "d1", &early).unwrap();
        save(&dir, "d1", &late).unwrap();
        let got = load_latest(&dir, "d1", early.fingerprint).expect("loads");
        assert_eq!(got.stage, Stage::Retime);
        // Wrong fingerprint: nothing trustworthy.
        assert!(load_latest(&dir, "d1", 42).is_none());
        // Corrupt the late file: falls back to the earlier stage.
        let path = dir.join("d1.stage3.ckpt");
        std::fs::write(&path, "triphase checkpoint v1\ngarbage").unwrap();
        let got = load_latest(&dir, "d1", early.fingerprint).expect("falls back");
        assert_eq!(got.stage, Stage::Preprocess);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stage_data_round_trips_and_rejects_truncation() {
        use crate::StageData;
        let nl = linear_pipeline(3, 2, 1, 900.0);
        let entries = [
            StageData::Preprocess(
                nl.clone(),
                PreprocessReport {
                    converted_ffs: 3,
                    icgs_inserted: 1,
                },
            ),
            StageData::Convert {
                ilp: IlpOutcome {
                    cost: 4,
                    optimal: false,
                    seconds: 0.25,
                    rung: SolveRung::Ilp,
                    status: Status::Feasible,
                    fallbacks: 0,
                },
                netlist: nl.clone(),
                report: ConvertReport {
                    singles: 2,
                    back_to_back: 1,
                    pi_latches: 0,
                    icgs_duplicated: 1,
                },
            },
            StageData::Retime(
                nl.clone(),
                RetimeReport {
                    ran: true,
                    fell_back: false,
                    original_ps: 612.5,
                    achieved_ps: 450.0,
                    met_target: true,
                    movable: 2,
                    pinned: 1,
                    p2_after: 3,
                },
            ),
            StageData::ClockGate(
                nl.clone(),
                CgReport {
                    common_enable_gated: 1,
                    m1_cells: 1,
                    m2_replaced: 0,
                    ddcg_groups: 1,
                    ddcg_gated: 2,
                },
                1.5,
            ),
        ];
        for entry in &entries {
            let text = stage_data_to_text(entry);
            let back = stage_data_from_text(&text).expect("round-trips");
            assert_eq!(back.stage(), entry.stage());
            assert_eq!(stage_data_to_text(&back), text, "byte-identical replay");
            // Any truncation must be rejected, never half-adopted.
            for frac in [10, 40, 70, 95] {
                let cut = text.len() * frac / 100;
                assert!(
                    stage_data_from_text(&text[..cut]).is_none(),
                    "{} cut at {frac}%",
                    entry.stage().name()
                );
            }
        }
    }

    #[test]
    fn fingerprint_tracks_config_and_input() {
        let nl = linear_pipeline(3, 2, 1, 900.0);
        let cfg = FlowConfig::default();
        let a = fingerprint(&nl, &cfg);
        assert_eq!(a, fingerprint(&nl, &cfg.clone()), "deterministic");
        let mut c2 = cfg.clone();
        c2.seed = 999;
        assert_ne!(a, fingerprint(&nl, &c2), "seed is load-bearing");
        let mut c3 = cfg.clone();
        c3.ddcg_threshold += 0.01;
        assert_ne!(a, fingerprint(&nl, &c3));
        let other = linear_pipeline(4, 2, 1, 900.0);
        assert_ne!(a, fingerprint(&other, &cfg));
        // Policies and fault hooks are not fingerprinted: a resume run
        // may use a different fault plan than the crashed run.
        let mut c4 = cfg.clone();
        c4.lint = crate::LintPolicy::Deny;
        c4.fault = Some(triphase_fault::FaultPlan::new(7).shared());
        assert_eq!(a, fingerprint(&nl, &c4));
    }
}
