//! Kill-and-resume certification for the stage checkpoint system.
//!
//! The flow is killed (via an injected panic) right after the retime
//! stage checkpoint becomes durable, then resumed in a fresh
//! configuration. The resumed report must be bit-exact against an
//! uninterrupted run — and the resume must actually *skip* the proven
//! stages, which is proven by arming the phase solver with a numeric
//! fault in the resume configuration: had the ILP stage re-run, the
//! fallback chain would have answered from the greedy rung.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use triphase_cells::Library;
use triphase_circuits::pipeline::linear_pipeline;
use triphase_core::{run_flow, CheckpointCfg, FlowConfig, FlowReport};
use triphase_fault::{Fault, FaultPlan};
use triphase_ilp::{PhaseConfig, SolveRung};
use triphase_pnr::PnrOptions;

fn quick_cfg() -> FlowConfig {
    FlowConfig {
        sim_cycles: 48,
        equiv_cycles: 96,
        pnr: PnrOptions {
            moves_per_cell: 4,
            ..PnrOptions::default()
        },
        ..FlowConfig::default()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("triphase_ckpt_{}_{tag}", std::process::id()))
}

fn assert_bit_exact(a: &FlowReport, b: &FlowReport) {
    for (va, vb, name) in [
        (&a.ff, &b.ff, "ff"),
        (&a.ms, &b.ms, "ms"),
        (&a.three_phase, &b.three_phase, "3p"),
    ] {
        assert_eq!(
            va.power.total_mw().to_bits(),
            vb.power.total_mw().to_bits(),
            "{name} total power"
        );
        assert_eq!(
            va.power.clock.total().to_bits(),
            vb.power.clock.total().to_bits(),
            "{name} clock power"
        );
        assert_eq!(va.area_um2.to_bits(), vb.area_um2.to_bits(), "{name} area");
        assert_eq!(va.stats, vb.stats, "{name} stats");
        assert_eq!(
            va.wirelength_um.to_bits(),
            vb.wirelength_um.to_bits(),
            "{name} wirelength"
        );
    }
    assert_eq!(a.ilp_cost, b.ilp_cost);
    assert_eq!(a.ilp_optimal, b.ilp_optimal);
    assert_eq!(a.convert, b.convert);
    assert_eq!(a.cg, b.cg);
    assert_eq!(a.equiv_3p, b.equiv_3p);
    assert_eq!(a.equiv_ms, b.equiv_ms);
}

#[test]
fn kill_after_retime_then_resume_reproduces_bit_exact_report() {
    let lib = Library::synthetic_28nm();
    let nl = linear_pipeline(4, 4, 1, 900.0);
    let dir = tmp_dir("kill_retime");
    let _ = std::fs::remove_dir_all(&dir);

    // Reference: uninterrupted run, no checkpointing at all.
    let reference = run_flow(&nl, &lib, &quick_cfg()).unwrap();

    // Crashing run: dies right after the retime checkpoint is durable.
    let crash_cfg = FlowConfig {
        checkpoint: Some(CheckpointCfg {
            dir: dir.clone(),
            resume: false,
        }),
        fault: Some(
            FaultPlan::new(11)
                .inject("flow.stage.retime", Fault::Panic)
                .shared(),
        ),
        ..quick_cfg()
    };
    let crashed = catch_unwind(AssertUnwindSafe(|| run_flow(&nl, &lib, &crash_cfg)));
    assert!(crashed.is_err(), "the injected crash must fire");
    let written = std::fs::read_dir(&dir).unwrap().count();
    assert!(
        written >= 3,
        "preprocess, convert, and retime checkpoints must be durable \
         before the crash (found {written})"
    );

    // Resume run: the phase solver is armed with a numeric fault. If the
    // ILP stage were re-executed, the fallback chain would degrade to
    // the greedy rung — so an `Exact` rung in the resumed report proves
    // the stage was genuinely skipped.
    let resume_cfg = FlowConfig {
        checkpoint: Some(CheckpointCfg::resume_in(dir.clone())),
        phase_cfg: PhaseConfig {
            hook: Some(FaultPlan::new(1).inject("phase.", Fault::Numeric).shared()),
            ..PhaseConfig::default()
        },
        ..quick_cfg()
    };
    let resumed = run_flow(&nl, &lib, &resume_cfg).unwrap();
    assert_eq!(
        resumed.ilp_rung,
        SolveRung::Exact,
        "resume must skip the solved ILP stage (a re-run would have \
         fallen back to the greedy rung under the armed numeric fault)"
    );
    assert_eq!(resumed.ilp_fallbacks, 0);
    assert_bit_exact(&reference, &resumed);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_stale_fingerprint_recomputes_from_scratch() {
    let lib = Library::synthetic_28nm();
    let nl = linear_pipeline(3, 3, 1, 900.0);
    let dir = tmp_dir("stale_fp");
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = FlowConfig {
        checkpoint: Some(CheckpointCfg::resume_in(dir.clone())),
        ..quick_cfg()
    };
    run_flow(&nl, &lib, &cfg).unwrap();

    // Same directory, different seed: every stored stage is stale. The
    // armed numeric fault proves the solver really re-ran.
    let cfg2 = FlowConfig {
        seed: 77,
        checkpoint: Some(CheckpointCfg::resume_in(dir.clone())),
        phase_cfg: PhaseConfig {
            hook: Some(FaultPlan::new(1).inject("phase.", Fault::Numeric).shared()),
            ..PhaseConfig::default()
        },
        ..quick_cfg()
    };
    let report = run_flow(&nl, &lib, &cfg2).unwrap();
    assert_eq!(
        report.ilp_rung,
        SolveRung::Greedy,
        "stale checkpoints must not be adopted"
    );
    assert_eq!(report.equiv_3p, Some(true), "greedy result is still valid");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_checkpoint_resume_skips_everything_and_stays_bit_exact() {
    // Resume from a *complete* checkpoint set (all four stages durable):
    // all transform stages skip, validation re-runs, report identical.
    let lib = Library::synthetic_28nm();
    let nl = linear_pipeline(3, 4, 1, 900.0);
    let dir = tmp_dir("full");
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = FlowConfig {
        checkpoint: Some(CheckpointCfg {
            dir: dir.clone(),
            resume: false,
        }),
        ..quick_cfg()
    };
    let first = run_flow(&nl, &lib, &cfg).unwrap();

    let resume_cfg = FlowConfig {
        checkpoint: Some(CheckpointCfg::resume_in(dir.clone())),
        ..quick_cfg()
    };
    let second = run_flow(&nl, &lib, &resume_cfg).unwrap();
    assert_bit_exact(&first, &second);
    assert_eq!(first.lint.len(), second.lint.len());

    let _ = std::fs::remove_dir_all(&dir);
}
