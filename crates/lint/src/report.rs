//! Diagnostics and reports produced by the linter.

use std::fmt;
use triphase_netlist::{CellId, NetId, PortId};

use crate::LintStage;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never fails a flow.
    Info,
    /// Suspicious but tolerated structure (e.g. dead logic).
    Warn,
    /// A structural or phase-legality violation; fails a `Deny` flow.
    Error,
}

impl Severity {
    /// Lower-case name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the netlist a diagnostic points.
///
/// The object's name is captured at diagnosis time so the location stays
/// meaningful even after the netlist is compacted (ids are not stable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// A cell instance.
    Cell {
        /// Arena id at diagnosis time.
        id: CellId,
        /// Instance name.
        name: String,
    },
    /// A net.
    Net {
        /// Arena id at diagnosis time.
        id: NetId,
        /// Net name.
        name: String,
    },
    /// A top-level port.
    Port {
        /// Arena id at diagnosis time.
        id: PortId,
        /// Port name.
        name: String,
    },
    /// The design as a whole (e.g. a missing clock spec).
    Design,
}

impl Location {
    /// The `cell` / `net` / `port` / `design` kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Location::Cell { .. } => "cell",
            Location::Net { .. } => "net",
            Location::Port { .. } => "port",
            Location::Design => "design",
        }
    }

    /// The located object's name (empty for [`Location::Design`]).
    pub fn name(&self) -> &str {
        match self {
            Location::Cell { name, .. }
            | Location::Net { name, .. }
            | Location::Port { name, .. } => name,
            Location::Design => "",
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Cell { id, name } => write!(f, "cell {name} ({id})"),
            Location::Net { id, name } => write!(f, "net {name} ({id})"),
            Location::Port { id, name } => write!(f, "port {name} ({id})"),
            Location::Design => f.write_str("design"),
        }
    }
}

/// One finding of one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code, e.g. `S001` or `P002`.
    pub code: &'static str,
    /// Kebab-case rule name, e.g. `comb-loop`.
    pub rule: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {}] {}: {}",
            self.severity, self.code, self.rule, self.location, self.message
        )
    }
}

/// The result of one linter run over one netlist at one flow stage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    /// Design name of the linted netlist.
    pub design: String,
    /// The flow stage the netlist was linted at.
    pub stage: Option<LintStage>,
    /// All findings, in rule-registry order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Findings at [`Severity::Error`].
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.with_severity(Severity::Error)
    }

    /// Findings at [`Severity::Warn`].
    pub fn warnings(&self) -> Vec<&Diagnostic> {
        self.with_severity(Severity::Warn)
    }

    fn with_severity(&self, s: Severity) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == s)
            .collect()
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when the report contains no error-severity findings.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// Codes of all findings, in order (convenient for asserting).
    pub fn codes(&self) -> Vec<&'static str> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// `true` if any finding carries `code`.
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Serialize the report as a machine-readable JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"design\":{},", json_str(&self.design)));
        out.push_str(&format!(
            "\"stage\":{},",
            self.stage
                .map_or("null".to_owned(), |s| json_str(s.as_str()))
        ));
        out.push_str(&format!(
            "\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{}}},",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"rule\":{},\"severity\":{},\"location\":{{\"kind\":{},\"name\":{}}},\"message\":{}}}",
                json_str(d.code),
                json_str(d.rule),
                json_str(d.severity.as_str()),
                json_str(d.location.kind()),
                json_str(d.location.name()),
                json_str(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = self.stage.map_or("-", |s| s.as_str());
        writeln!(
            f,
            "lint {} @{stage}: {} error(s), {} warning(s)",
            self.design,
            self.count(Severity::Error),
            self.count(Severity::Warn)
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Minimal JSON string encoder (the toolkit has no serializer dependency).
/// Shared with `triphase-dfa`, whose reports use the same JSON schema.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            design: "d\"x".to_owned(),
            stage: Some(LintStage::Convert),
            diagnostics: vec![
                Diagnostic {
                    code: "S001",
                    rule: "comb-loop",
                    severity: Severity::Error,
                    location: Location::Cell {
                        id: CellId::from_index(3),
                        name: "u\t1".to_owned(),
                    },
                    message: "loop".to_owned(),
                },
                Diagnostic {
                    code: "S005",
                    rule: "dead-logic",
                    severity: Severity::Warn,
                    location: Location::Net {
                        id: NetId::from_index(0),
                        name: "n".to_owned(),
                    },
                    message: "dead".to_owned(),
                },
                Diagnostic {
                    code: "X000",
                    rule: "note",
                    severity: Severity::Info,
                    location: Location::Design,
                    message: "fyi".to_owned(),
                },
            ],
        }
    }

    #[test]
    fn severity_filters_and_counts() {
        let r = sample();
        assert_eq!(r.errors().len(), 1);
        assert_eq!(r.warnings().len(), 1);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(!r.is_clean());
        assert!(r.has("S001"));
        assert!(!r.has("S002"));
        assert_eq!(r.codes(), vec!["S001", "S005", "X000"]);
    }

    #[test]
    fn json_escapes_and_summarizes() {
        let j = sample().to_json();
        assert!(j.contains("\"design\":\"d\\\"x\""), "{j}");
        assert!(j.contains("\"stage\":\"convert\""), "{j}");
        assert!(j.contains("\"errors\":1,\"warnings\":1,\"infos\":1"), "{j}");
        assert!(j.contains("\"name\":\"u\\t1\""), "{j}");
        assert!(j.contains("\"kind\":\"design\""), "{j}");
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn display_is_line_oriented() {
        let text = sample().to_string();
        assert!(text.contains("1 error(s), 1 warning(s)"), "{text}");
        assert!(text.contains("error [S001 comb-loop]"), "{text}");
    }
}
