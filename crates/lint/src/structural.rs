//! Structural DRC rules (`S0xx`): netlist well-formedness checks that
//! apply at every flow stage.

use crate::{Diagnostic, LintContext, Location, Rule, Severity};
use triphase_cells::{CellKind, PinClass, PinDir};
use triphase_netlist::{graph, CellId, Error, NetId, Netlist, PortDir};

/// All structural rules, in code order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(CombLoop),
        Box::new(MultiDrivenNet),
        Box::new(UndrivenNet),
        Box::new(DanglingPin),
        Box::new(DeadLogic),
        Box::new(ClockFeedsData),
        Box::new(NameCollision),
    ]
}

fn cell_loc(nl: &Netlist, id: CellId) -> Location {
    Location::Cell {
        id,
        name: nl.cell(id).name.clone(),
    }
}

fn net_loc(nl: &Netlist, id: NetId) -> Location {
    Location::Net {
        id,
        name: nl
            .try_net(id)
            .map_or_else(|| format!("{id}"), |n| n.name.clone()),
    }
}

/// `S001`: the combinational fabric must be acyclic.
pub struct CombLoop;

impl Rule for CombLoop {
    fn code(&self) -> &'static str {
        "S001"
    }
    fn name(&self) -> &'static str {
        "comb-loop"
    }
    fn description(&self) -> &'static str {
        "combinational logic must be acyclic (no latch/FF-free cycles)"
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        if let Err(Error::CombLoop(name)) = graph::comb_topo_order(cx.nl, &cx.idx) {
            let location = cx
                .nl
                .cells()
                .find(|(_, c)| c.name == name)
                .map(|(id, _)| cell_loc(cx.nl, id))
                .unwrap_or(Location::Design);
            out.push(Diagnostic {
                code: self.code(),
                rule: self.name(),
                severity: Severity::Error,
                location,
                message: format!("combinational cycle through cell {name}"),
            });
        }
    }
}

/// `S002`: every net has at most one driver.
pub struct MultiDrivenNet;

impl Rule for MultiDrivenNet {
    fn code(&self) -> &'static str {
        "S002"
    }
    fn name(&self) -> &'static str {
        "multi-driven-net"
    }
    fn description(&self) -> &'static str {
        "a net must be driven by exactly one cell output or input port"
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (net, count) in driver_counts(cx.nl) {
            if count > 1 {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.name(),
                    severity: Severity::Error,
                    location: net_loc(cx.nl, net),
                    message: format!("net has {count} drivers (expected 1)"),
                });
            }
        }
    }
}

/// `S003`: a net with fanout must have a driver.
pub struct UndrivenNet;

impl Rule for UndrivenNet {
    fn code(&self) -> &'static str {
        "S003"
    }
    fn name(&self) -> &'static str {
        "undriven-net"
    }
    fn description(&self) -> &'static str {
        "a net read by any pin or output port must have a driver"
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (net, count) in driver_counts(cx.nl) {
            if count == 0 && cx.idx.fanout_count(net) > 0 {
                let readers = cx.idx.fanout_count(net);
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.name(),
                    severity: Severity::Error,
                    location: net_loc(cx.nl, net),
                    message: format!("net has no driver but {readers} reader(s)"),
                });
            }
        }
    }
}

/// Drivers per live net: cell output pins plus input ports.
fn driver_counts(nl: &Netlist) -> Vec<(NetId, u32)> {
    let mut counts: Vec<u32> = vec![0; nl.net_capacity()];
    for port in nl.ports() {
        if port.dir == PortDir::Input {
            if let Some(c) = counts.get_mut(port.net.index()) {
                *c += 1;
            }
        }
    }
    for (_, cell) in nl.cells() {
        for (pin, &net) in cell.pins().iter().enumerate() {
            if cell.kind.pin_def(pin).dir == PinDir::Output {
                if let Some(c) = counts.get_mut(net.index()) {
                    *c += 1;
                }
            }
        }
    }
    nl.nets().map(|(id, _)| (id, counts[id.index()])).collect()
}

/// `S004`: every cell pin must reference a live net.
pub struct DanglingPin;

impl Rule for DanglingPin {
    fn code(&self) -> &'static str {
        "S004"
    }
    fn name(&self) -> &'static str {
        "dangling-pin"
    }
    fn description(&self) -> &'static str {
        "cell pins and ports must connect to live (non-removed) nets"
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (id, cell) in cx.nl.cells() {
            for (pin, &net) in cell.pins().iter().enumerate() {
                if cx.nl.try_net(net).is_none() {
                    out.push(Diagnostic {
                        code: self.code(),
                        rule: self.name(),
                        severity: Severity::Error,
                        location: cell_loc(cx.nl, id),
                        message: format!(
                            "pin {} ({}) references dead net {net}",
                            cell.kind.pin_name(pin),
                            pin
                        ),
                    });
                }
            }
        }
        for port in cx.nl.ports() {
            if cx.nl.try_net(port.net).is_none() {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.name(),
                    severity: Severity::Error,
                    location: Location::Design,
                    message: format!("port {} references dead net {}", port.name, port.net),
                });
            }
        }
    }
}

/// `S005`: a cell whose output reaches neither a pin nor a port is dead.
pub struct DeadLogic;

impl Rule for DeadLogic {
    fn code(&self) -> &'static str {
        "S005"
    }
    fn name(&self) -> &'static str {
        "dead-logic"
    }
    fn description(&self) -> &'static str {
        "cells with unused outputs are dead and should be swept"
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (id, cell) in cx.nl.cells() {
            let net = cell.output();
            if cx.nl.try_net(net).is_some() && cx.idx.fanout_count(net) == 0 {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.name(),
                    severity: Severity::Warn,
                    location: cell_loc(cx.nl, id),
                    message: format!("{} output {} has no readers", cell.kind, net),
                });
            }
        }
    }
}

/// `S006`: clock-network nets must not feed data, select, or enable pins.
pub struct ClockFeedsData;

impl Rule for ClockFeedsData {
    fn code(&self) -> &'static str {
        "S006"
    }
    fn name(&self) -> &'static str {
        "clock-feeds-data"
    }
    fn description(&self) -> &'static str {
        "clock nets may only drive clock pins, clock buffers, and clock gates"
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let cone = graph::clock_cone(cx.nl, &cx.idx);
        for (net, _) in cx.nl.nets() {
            if !cone[net.index()] {
                continue;
            }
            for load in cx.idx.loads(net) {
                let cell = cx.nl.cell(load.cell);
                if cell.kind == CellKind::ClkBuf {
                    continue; // clock-tree fabric, not a data consumer
                }
                let class = cell.kind.pin_def(load.pin).class;
                if matches!(class, PinClass::Data | PinClass::Select | PinClass::Enable) {
                    out.push(Diagnostic {
                        code: self.code(),
                        rule: self.name(),
                        severity: Severity::Error,
                        location: cell_loc(cx.nl, load.cell),
                        message: format!(
                            "clock net {} drives non-clock pin {} of {}",
                            cx.nl.net(net).name,
                            cell.kind.pin_name(load.pin),
                            cell.kind
                        ),
                    });
                }
            }
        }
    }
}

/// `S007`: instance, port, and net names must not collide.
pub struct NameCollision;

impl Rule for NameCollision {
    fn code(&self) -> &'static str {
        "S007"
    }
    fn name(&self) -> &'static str {
        "name-collision"
    }
    fn description(&self) -> &'static str {
        "duplicate instance/port names are errors; duplicate net names warn"
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        use std::collections::HashMap;
        let mut cells: HashMap<&str, CellId> = HashMap::new();
        for (id, cell) in cx.nl.cells() {
            if cells.insert(cell.name.as_str(), id).is_some() {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.name(),
                    severity: Severity::Error,
                    location: cell_loc(cx.nl, id),
                    message: format!("duplicate instance name {}", cell.name),
                });
            }
        }
        let mut ports: HashMap<&str, PortDir> = HashMap::new();
        for port in cx.nl.ports() {
            if ports.insert(port.name.as_str(), port.dir).is_some() {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.name(),
                    severity: Severity::Error,
                    location: Location::Design,
                    message: format!("duplicate port name {}", port.name),
                });
            }
        }
        let mut nets: HashMap<&str, NetId> = HashMap::new();
        for (id, net) in cx.nl.nets() {
            if nets.insert(net.name.as_str(), id).is_some() {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.name(),
                    severity: Severity::Warn,
                    location: net_loc(cx.nl, id),
                    message: format!("duplicate net name {}", net.name),
                });
            }
        }
    }
}
