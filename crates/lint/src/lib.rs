//! Rule-based static analyzer for triphase netlists.
//!
//! The linter runs a registry of [`Rule`]s over a
//! [`triphase_netlist::Netlist`] and produces a structured
//! [`Report`] of [`Diagnostic`]s (rule code, [`Severity`], [`Location`],
//! message) that can be printed for humans or serialized to JSON.
//!
//! Two rule families are built in:
//!
//! - **Structural DRC** (`S0xx`, [`structural`]): combinational loops,
//!   multi-driven and undriven nets, dangling pins, dead logic, clock nets
//!   leaking into data pins, name collisions. These apply at every flow
//!   stage.
//! - **Phase legality** (`P0xx`, [`phase`]): the 3-phase invariants of the
//!   paper's conversion — every latch-to-latch combinational path advances
//!   to a legal successor phase in the `p1 → p2 → p3` cycle, clock gates
//!   are rooted at declared phases and never nested, every storage cell
//!   resolves to a phase of the attached `ClockSpec`, and no flip-flops
//!   survive conversion. These apply only at post-conversion stages
//!   ([`LintStage::post_conversion`]).
//!
//! # Examples
//!
//! ```
//! use triphase_lint::{LintStage, Linter};
//! use triphase_netlist::{CellKind, Netlist};
//!
//! let mut nl = Netlist::new("loop");
//! let (_, a) = nl.add_input("a");
//! let x = nl.add_net("x");
//! let y = nl.add_net("y");
//! nl.add_cell("u1", CellKind::And(2), vec![a, y, x]);
//! nl.add_cell("u2", CellKind::Inv, vec![x, y]);
//! nl.add_output("y", y);
//! let report = Linter::new().run(&nl, LintStage::Input);
//! assert!(report.has("S001")); // combinational loop
//! ```

pub mod phase;
mod report;
pub mod structural;

use std::collections::HashMap;
use triphase_netlist::{graph, CellId, ConnIndex, Netlist};

pub use report::{json_str, Diagnostic, Location, Report, Severity};

/// The flow stage a netlist is linted at. Rules can opt out of stages
/// where their invariant is not yet (or no longer) meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintStage {
    /// Raw input design (FF-based, single-phase clock).
    Input,
    /// After preprocessing (`gated_clock_style` + compaction).
    Preprocess,
    /// After FF-to-3-phase-latch conversion.
    Convert,
    /// After constrained retiming of `p2` latches.
    Retime,
    /// After the clock-gating stages (common-enable, M2, DDCG).
    ClockGate,
}

impl LintStage {
    /// Lower-case stage name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            LintStage::Input => "input",
            LintStage::Preprocess => "preprocess",
            LintStage::Convert => "convert",
            LintStage::Retime => "retime",
            LintStage::ClockGate => "clockgate",
        }
    }

    /// `true` for stages where the design is 3-phase latch-based.
    pub fn post_conversion(self) -> bool {
        matches!(
            self,
            LintStage::Convert | LintStage::Retime | LintStage::ClockGate
        )
    }
}

/// Everything a rule may inspect, computed once per linter run.
pub struct LintContext<'a> {
    /// The netlist under analysis.
    pub nl: &'a Netlist,
    /// Connectivity index of `nl`.
    pub idx: ConnIndex,
    /// The flow stage being checked.
    pub stage: LintStage,
    /// Storage cell → clock phase index, for cells whose clock pin traces
    /// to a declared phase port. Cells with an untraceable clock or a root
    /// that is not a phase port are absent (rule `P003` reports them).
    pub phases: HashMap<CellId, usize>,
}

impl<'a> LintContext<'a> {
    /// Build the context (index + storage phase map) for one run.
    pub fn new(nl: &'a Netlist, stage: LintStage) -> LintContext<'a> {
        let idx = nl.index();
        let mut phases = HashMap::new();
        if let Some(clock) = &nl.clock {
            for (id, cell) in nl.cells() {
                let Some(ck) = cell.kind.clock_pin() else {
                    continue;
                };
                if !cell.kind.is_storage() {
                    continue;
                }
                if let Ok(trace) = graph::trace_clock_root(nl, &idx, cell.pin(ck)) {
                    if let Some(p) = clock.phase_of_port(trace.root) {
                        phases.insert(id, p);
                    }
                }
            }
        }
        LintContext {
            nl,
            idx,
            stage,
            phases,
        }
    }
}

/// One named, coded check over a netlist.
pub trait Rule {
    /// Stable code, e.g. `S001`.
    fn code(&self) -> &'static str;
    /// Kebab-case name, e.g. `comb-loop`.
    fn name(&self) -> &'static str;
    /// One-line description for the rule catalog.
    fn description(&self) -> &'static str;
    /// Whether the rule runs at `stage` (default: every stage).
    fn applies(&self, stage: LintStage) -> bool {
        let _ = stage;
        true
    }
    /// Append findings for this rule to `out`.
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// A rule registry: run all registered rules over a netlist.
pub struct Linter {
    rules: Vec<Box<dyn Rule>>,
}

impl Linter {
    /// The full registry: structural DRC plus phase legality.
    pub fn new() -> Linter {
        let mut l = Linter::empty();
        for r in structural::all() {
            l.rules.push(r);
        }
        for r in phase::all() {
            l.rules.push(r);
        }
        l
    }

    /// Structural DRC rules only.
    pub fn structural() -> Linter {
        Linter {
            rules: structural::all(),
        }
    }

    /// Phase-legality rules only.
    pub fn phase() -> Linter {
        Linter {
            rules: phase::all(),
        }
    }

    /// An empty registry; combine with [`Linter::with_rule`].
    pub fn empty() -> Linter {
        Linter { rules: Vec::new() }
    }

    /// Add one rule to the registry.
    pub fn with_rule(mut self, rule: Box<dyn Rule>) -> Linter {
        self.rules.push(rule);
        self
    }

    /// The registered rules, in execution order.
    pub fn rules(&self) -> &[Box<dyn Rule>] {
        &self.rules
    }

    /// Run every applicable rule over `nl` at `stage`.
    pub fn run(&self, nl: &Netlist, stage: LintStage) -> Report {
        let cx = LintContext::new(nl, stage);
        let mut diagnostics = Vec::new();
        for rule in &self.rules {
            if rule.applies(stage) {
                rule.check(&cx, &mut diagnostics);
            }
        }
        Report {
            design: nl.name.clone(),
            stage: Some(stage),
            diagnostics,
        }
    }
}

impl Default for Linter {
    fn default() -> Self {
        Linter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_both_families_with_unique_codes() {
        let l = Linter::new();
        assert!(l.rules().len() >= 8, "rule catalog too small");
        let mut codes: Vec<_> = l.rules().iter().map(|r| r.code()).collect();
        assert!(codes.iter().any(|c| c.starts_with('S')));
        assert!(codes.iter().any(|c| c.starts_with('P')));
        codes.sort_unstable();
        let n = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate rule codes");
        for r in l.rules() {
            assert!(!r.name().is_empty());
            assert!(!r.description().is_empty());
        }
    }

    #[test]
    fn family_registries_are_disjoint_subsets() {
        let s = Linter::structural().rules().len();
        let p = Linter::phase().rules().len();
        assert_eq!(s + p, Linter::new().rules().len());
        assert_eq!(Linter::empty().rules().len(), 0);
    }

    #[test]
    fn stage_names_and_post_conversion() {
        assert_eq!(LintStage::Input.as_str(), "input");
        assert_eq!(LintStage::ClockGate.as_str(), "clockgate");
        assert!(!LintStage::Input.post_conversion());
        assert!(!LintStage::Preprocess.post_conversion());
        assert!(LintStage::Convert.post_conversion());
        assert!(LintStage::Retime.post_conversion());
        assert!(LintStage::ClockGate.post_conversion());
    }
}
