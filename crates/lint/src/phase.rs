//! Phase-legality rules (`P0xx`): the 3-phase invariants of the paper's
//! FF-to-latch conversion. They run only at post-conversion stages
//! ([`LintStage::post_conversion`]).
//!
//! # Legal phase adjacency
//!
//! With the ILP constraints `G(u)+K(u) ≥ 1` and `G(u) ≥ K(u)+K(v)−1`,
//! converted designs only ever contain these latch-to-latch combinational
//! adjacencies:
//!
//! - `p1 → p2` and `p3 → p2` (a `G = 1` register feeds its inserted `p2`
//!   output latch),
//! - `p2 → p1` and `p2 → p3` (an inserted `p2` latch feeds the fanout
//!   registers),
//! - `p1 → p3` (a `G = 0` register: `K(u) = 1`, all fanout `K(v) = 0`).
//!
//! Same-phase pairs would be co-transparent (constraint C2 violation) and
//! `p3 → p1` would cross the cycle boundary backwards; both are illegal.

use crate::{Diagnostic, LintContext, LintStage, Location, Rule, Severity};
use triphase_netlist::{graph, CellId, Netlist};

/// All phase-legality rules, in code order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(PhaseOrder),
        Box::new(IcgPhase),
        Box::new(UnassignedPhase),
        Box::new(ResidualFf),
    ]
}

fn cell_loc(nl: &Netlist, id: CellId) -> Location {
    Location::Cell {
        id,
        name: nl.cell(id).name.clone(),
    }
}

/// Phases (as a bitmask) a latch of phase `p` may legally feed through
/// combinational logic. Indices are phase positions in the `ClockSpec`
/// (`0 = p1`, `1 = p2`, `2 = p3`).
const LEGAL_SUCCESSORS: [u8; 3] = [
    0b110, // p1 → {p2, p3}
    0b101, // p2 → {p1, p3}
    0b010, // p3 → {p2}
];

fn phase_name(p: usize) -> String {
    format!("p{}", p + 1)
}

fn mask_names(mask: u8) -> String {
    (0..3)
        .filter(|i| mask & (1 << i) != 0)
        .map(phase_name)
        .collect::<Vec<_>>()
        .join("/")
}

/// `P001`: every latch-to-latch combinational path advances to a legal
/// successor phase of the `p1 → p2 → p3` cycle.
pub struct PhaseOrder;

impl Rule for PhaseOrder {
    fn code(&self) -> &'static str {
        "P001"
    }
    fn name(&self) -> &'static str {
        "phase-order"
    }
    fn description(&self) -> &'static str {
        "latch-to-latch paths must advance one legal phase (no same-phase or p3→p1 pairs)"
    }
    fn applies(&self, stage: LintStage) -> bool {
        stage.post_conversion()
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        if cx.nl.clock.as_ref().is_none_or(|c| c.phases.len() != 3) {
            return; // not a 3-phase design; P003 reports a missing spec
        }
        // Which source-latch phases reach each net through comb logic.
        let Ok(order) = graph::comb_topo_order(cx.nl, &cx.idx) else {
            return; // S001 reports the loop; propagation is undefined
        };
        let mut mask: Vec<u8> = vec![0; cx.nl.net_capacity()];
        for (id, cell) in cx.nl.cells() {
            if cell.kind.is_latch() {
                if let Some(&p) = cx.phases.get(&id) {
                    mask[cell.output().index()] |= 1 << p;
                }
            }
        }
        for id in order {
            let cell = cx.nl.cell(id);
            let mut m = 0u8;
            for &input in cell.inputs() {
                m |= mask[input.index()];
            }
            mask[cell.output().index()] |= m;
        }
        for (id, cell) in cx.nl.cells() {
            if !cell.kind.is_latch() {
                continue;
            }
            let Some(&pv) = cx.phases.get(&id) else {
                continue; // P003 reports unassigned latches
            };
            let Some(dp) = cell.kind.data_pin() else {
                continue;
            };
            let d = cell.pin(dp);
            let arriving = mask[d.index()];
            for (ps, &legal) in LEGAL_SUCCESSORS.iter().enumerate() {
                if arriving & (1 << ps) == 0 {
                    continue;
                }
                if legal & (1 << pv) == 0 {
                    out.push(Diagnostic {
                        code: self.code(),
                        rule: self.name(),
                        severity: Severity::Error,
                        location: cell_loc(cx.nl, id),
                        message: format!(
                            "{} latch is fed combinationally from a {} latch \
                             (legal successors of {} are {})",
                            phase_name(pv),
                            phase_name(ps),
                            phase_name(ps),
                            mask_names(legal)
                        ),
                    });
                }
            }
        }
    }
}

/// `P002`: clock gates are rooted at declared phases, never nested, and an
/// `IcgM1`'s auxiliary `P3` pin carries the successor of its gated phase.
pub struct IcgPhase;

impl Rule for IcgPhase {
    fn code(&self) -> &'static str {
        "P002"
    }
    fn name(&self) -> &'static str {
        "icg-phase"
    }
    fn description(&self) -> &'static str {
        "clock gates must gate a declared phase directly (no nesting, correct M1 aux phase)"
    }
    fn applies(&self, stage: LintStage) -> bool {
        stage.post_conversion()
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(clock) = &cx.nl.clock else {
            return;
        };
        let k = clock.phases.len();
        for (id, cell) in cx.nl.cells() {
            if !cell.kind.is_clock_gate() {
                continue;
            }
            let Some(ckp) = cell.kind.clock_pin() else {
                continue;
            };
            let ck = cell.pin(ckp);
            let ck_phase = match graph::trace_clock_root(cx.nl, &cx.idx, ck) {
                Err(e) => {
                    out.push(self.diag(cx.nl, id, format!("clock pin untraceable: {e}")));
                    continue;
                }
                Ok(trace) => {
                    if !trace.gates.is_empty() {
                        let inner = cx.nl.cell(trace.gates[0]).name.clone();
                        out.push(self.diag(
                            cx.nl,
                            id,
                            format!("nested clock gating (clock passes through {inner})"),
                        ));
                    }
                    match clock.phase_of_port(trace.root) {
                        None => {
                            let root = cx.nl.port(trace.root).name.clone();
                            out.push(self.diag(
                                cx.nl,
                                id,
                                format!("clock root {root} is not a declared phase"),
                            ));
                            continue;
                        }
                        Some(p) => p,
                    }
                }
            };
            // M1's enable latch is clocked by the successor phase (p3 for
            // the paper's p2 gating).
            if cell.kind == triphase_cells::CellKind::IcgM1 {
                let aux = cell.pin(1);
                let aux_phase = graph::trace_clock_root(cx.nl, &cx.idx, aux)
                    .ok()
                    .and_then(|t| clock.phase_of_port(t.root));
                let want = (ck_phase + 1) % k.max(1);
                if aux_phase != Some(want) {
                    out.push(self.diag(
                        cx.nl,
                        id,
                        format!(
                            "M1 aux pin carries {}, expected {} (successor of {})",
                            aux_phase.map_or_else(|| "no phase".to_owned(), phase_name),
                            phase_name(want),
                            phase_name(ck_phase)
                        ),
                    ));
                }
            }
        }
    }
}

impl IcgPhase {
    fn diag(&self, nl: &Netlist, id: CellId, message: String) -> Diagnostic {
        Diagnostic {
            code: self.code(),
            rule: self.name(),
            severity: Severity::Error,
            location: cell_loc(nl, id),
            message,
        }
    }
}

/// `P003`: every storage cell's clock resolves to a declared phase of the
/// attached `ClockSpec`.
pub struct UnassignedPhase;

impl Rule for UnassignedPhase {
    fn code(&self) -> &'static str {
        "P003"
    }
    fn name(&self) -> &'static str {
        "unassigned-phase"
    }
    fn description(&self) -> &'static str {
        "every sequential cell must be clocked by a declared phase"
    }
    fn applies(&self, stage: LintStage) -> bool {
        stage.post_conversion()
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        if cx.nl.clock.is_none() {
            if cx.nl.cells().any(|(_, c)| c.kind.is_storage()) {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.name(),
                    severity: Severity::Error,
                    location: Location::Design,
                    message: "sequential design has no clock spec attached".to_owned(),
                });
            }
            return;
        }
        for (id, cell) in cx.nl.cells() {
            if cell.kind.is_storage() && !cx.phases.contains_key(&id) {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.name(),
                    severity: Severity::Error,
                    location: cell_loc(cx.nl, id),
                    message: format!(
                        "{} clock does not trace to a declared phase port",
                        cell.kind
                    ),
                });
            }
        }
    }
}

/// `P004`: no flip-flops survive the FF-to-latch conversion.
pub struct ResidualFf;

impl Rule for ResidualFf {
    fn code(&self) -> &'static str {
        "P004"
    }
    fn name(&self) -> &'static str {
        "residual-ff"
    }
    fn description(&self) -> &'static str {
        "post-conversion designs must contain latches only, no flip-flops"
    }
    fn applies(&self, stage: LintStage) -> bool {
        stage.post_conversion()
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (id, cell) in cx.nl.cells() {
            if cell.kind.is_ff() {
                out.push(Diagnostic {
                    code: self.code(),
                    rule: self.name(),
                    severity: Severity::Error,
                    location: cell_loc(cx.nl, id),
                    message: format!("{} survived conversion", cell.kind),
                });
            }
        }
    }
}
