//! One positive and one negative test per lint rule.
//!
//! Structural rules (`S0xx`) are exercised at [`LintStage::Input`];
//! phase-legality rules (`P0xx`) at [`LintStage::Convert`], where they
//! become active.

use triphase_cells::CellKind;
use triphase_lint::{LintStage, Linter, Report, Severity};
use triphase_netlist::{ClockSpec, NetId, Netlist};

fn lint(nl: &Netlist, stage: LintStage) -> Report {
    Linter::new().run(nl, stage)
}

/// Three clock-phase input ports with an attached 3-phase `ClockSpec`.
fn three_phase(nl: &mut Netlist, period: f64) -> [NetId; 3] {
    let (pp1, p1) = nl.add_input("p1");
    let (pp2, p2) = nl.add_input("p2");
    let (pp3, p3) = nl.add_input("p3");
    nl.clock = Some(ClockSpec::equal_phases(&[pp1, pp2, pp3], period));
    [p1, p2, p3]
}

/// Transparent-high latch `name` with data `d` gated by `g`; returns `Q`.
fn latch(nl: &mut Netlist, name: &str, d: NetId, g: NetId) -> NetId {
    let q = nl.add_net(format!("{name}_q"));
    nl.add_cell(name, CellKind::LatchH, vec![d, g, q]);
    q
}

fn inv(nl: &mut Netlist, name: &str, a: NetId) -> NetId {
    let y = nl.add_net(format!("{name}_y"));
    nl.add_cell(name, CellKind::Inv, vec![a, y]);
    y
}

// ---- S001 comb-loop -------------------------------------------------------

#[test]
fn s001_flags_combinational_cycle() {
    let mut nl = Netlist::new("loop");
    let a = nl.add_net("a");
    let b = nl.add_net("b");
    nl.add_cell("i1", CellKind::Inv, vec![a, b]);
    nl.add_cell("i2", CellKind::Inv, vec![b, a]);
    let report = lint(&nl, LintStage::Input);
    assert!(report.has("S001"), "missing S001 in: {report}");
}

#[test]
fn s001_accepts_latch_broken_cycle() {
    // The same topological cycle, but a latch in the feedback path makes
    // the *combinational* fabric acyclic.
    let mut nl = Netlist::new("seq-loop");
    let [p1, _, _] = three_phase(&mut nl, 900.0);
    let a = nl.add_net("a");
    let b = inv(&mut nl, "i1", a);
    let q = latch(&mut nl, "l1", b, p1);
    nl.add_cell("i2", CellKind::Inv, vec![q, a]);
    nl.add_output("out", q);
    let report = lint(&nl, LintStage::Input);
    assert!(!report.has("S001"), "spurious S001 in: {report}");
    assert!(report.errors().is_empty(), "unexpected errors: {report}");
}

// ---- S002 multi-driven-net ------------------------------------------------

#[test]
fn s002_flags_two_drivers_on_one_net() {
    let mut nl = Netlist::new("short");
    let (_, a) = nl.add_input("a");
    let y = nl.add_net("y");
    nl.add_cell("i1", CellKind::Inv, vec![a, y]);
    nl.add_cell("b1", CellKind::Buf, vec![a, y]);
    nl.add_output("out", y);
    let report = lint(&nl, LintStage::Input);
    assert!(report.has("S002"), "missing S002 in: {report}");
}

#[test]
fn s002_accepts_single_driver_with_high_fanout() {
    let mut nl = Netlist::new("fanout");
    let (_, a) = nl.add_input("a");
    let y = inv(&mut nl, "i1", a);
    for k in 0..4 {
        let z = inv(&mut nl, &format!("sink{k}"), y);
        nl.add_output(&format!("out{k}"), z);
    }
    let report = lint(&nl, LintStage::Input);
    assert!(!report.has("S002"), "spurious S002 in: {report}");
}

// ---- S003 undriven-net ----------------------------------------------------

#[test]
fn s003_flags_floating_net_with_readers() {
    let mut nl = Netlist::new("float");
    let x = nl.add_net("x"); // no driver, no port
    let y = inv(&mut nl, "i1", x);
    nl.add_output("out", y);
    let report = lint(&nl, LintStage::Input);
    assert!(report.has("S003"), "missing S003 in: {report}");
}

#[test]
fn s003_ignores_floating_net_with_no_readers() {
    let mut nl = Netlist::new("orphan");
    let (_, a) = nl.add_input("a");
    nl.add_net("unused"); // floating but unread: not a hazard
    let y = inv(&mut nl, "i1", a);
    nl.add_output("out", y);
    let report = lint(&nl, LintStage::Input);
    assert!(!report.has("S003"), "spurious S003 in: {report}");
    assert!(report.errors().is_empty(), "unexpected errors: {report}");
}

// ---- S004 dangling-pin ----------------------------------------------------

#[test]
fn s004_flags_pin_on_removed_net() {
    let mut nl = Netlist::new("dangle");
    let (_, a) = nl.add_input("a");
    let mid = inv(&mut nl, "i1", a);
    let y = inv(&mut nl, "i2", mid);
    nl.add_output("out", y);
    nl.remove_net(mid); // i1's output and i2's input now dangle
    let report = lint(&nl, LintStage::Input);
    assert!(report.has("S004"), "missing S004 in: {report}");
}

#[test]
fn s004_accepts_all_live_connections() {
    let mut nl = Netlist::new("live");
    let (_, a) = nl.add_input("a");
    let y = inv(&mut nl, "i1", a);
    nl.add_output("out", y);
    let report = lint(&nl, LintStage::Input);
    assert!(!report.has("S004"), "spurious S004 in: {report}");
}

// ---- S005 dead-logic ------------------------------------------------------

#[test]
fn s005_warns_on_unread_output() {
    let mut nl = Netlist::new("dead");
    let (_, a) = nl.add_input("a");
    let y = inv(&mut nl, "i1", a);
    let _unread = inv(&mut nl, "i2", a);
    nl.add_output("out", y);
    let report = lint(&nl, LintStage::Input);
    assert!(report.has("S005"), "missing S005 in: {report}");
    assert!(
        report.errors().is_empty(),
        "S005 must be warn-level: {report}"
    );
    assert_eq!(report.count(Severity::Warn), 1);
}

#[test]
fn s005_counts_output_ports_as_readers() {
    let mut nl = Netlist::new("observed");
    let (_, a) = nl.add_input("a");
    let y = inv(&mut nl, "i1", a);
    nl.add_output("out", y); // port observation keeps i1 alive
    let report = lint(&nl, LintStage::Input);
    assert!(!report.has("S005"), "spurious S005 in: {report}");
}

// ---- S006 clock-feeds-data ------------------------------------------------

#[test]
fn s006_flags_clock_net_on_data_pin() {
    let mut nl = Netlist::new("ck-data");
    let (pck, ck) = nl.add_input("ck");
    nl.clock = Some(ClockSpec::single(pck, 1000.0));
    let (_, a) = nl.add_input("a");
    let y = nl.add_net("y");
    nl.add_cell("g1", CellKind::And(2), vec![ck, a, y]);
    nl.add_output("out", y);
    let report = lint(&nl, LintStage::Input);
    assert!(report.has("S006"), "missing S006 in: {report}");
}

#[test]
fn s006_accepts_clock_on_clock_pins_only() {
    let mut nl = Netlist::new("ck-clean");
    let (pck, ck) = nl.add_input("ck");
    nl.clock = Some(ClockSpec::single(pck, 1000.0));
    let (_, d) = nl.add_input("d");
    let buffered = nl.add_net("ckb");
    nl.add_cell("cb1", CellKind::ClkBuf, vec![ck, buffered]);
    let q = nl.add_net("q");
    nl.add_cell("ff1", CellKind::Dff, vec![d, buffered, q]);
    nl.add_output("out", q);
    let report = lint(&nl, LintStage::Input);
    assert!(!report.has("S006"), "spurious S006 in: {report}");
    assert!(report.errors().is_empty(), "unexpected errors: {report}");
}

// ---- S007 name-collision --------------------------------------------------

#[test]
fn s007_flags_duplicate_instance_and_port_names() {
    let mut nl = Netlist::new("dups");
    let (_, a) = nl.add_input("a");
    let y1 = inv(&mut nl, "dup", a);
    let y2 = inv(&mut nl, "dup", a);
    nl.add_output("out", y1);
    nl.add_output("out", y2);
    let report = lint(&nl, LintStage::Input);
    let dups: Vec<_> = report
        .errors()
        .into_iter()
        .filter(|d| d.code == "S007")
        .collect();
    assert_eq!(dups.len(), 2, "want instance + port collisions: {report}");
}

#[test]
fn s007_duplicate_net_names_only_warn() {
    let mut nl = Netlist::new("net-dups");
    let (_, a) = nl.add_input("a");
    let y1 = nl.add_net("n");
    let y2 = nl.add_net("n");
    nl.add_cell("i1", CellKind::Inv, vec![a, y1]);
    nl.add_cell("i2", CellKind::Inv, vec![a, y2]);
    nl.add_output("o1", y1);
    nl.add_output("o2", y2);
    let report = lint(&nl, LintStage::Input);
    assert!(report.has("S007"), "missing S007 in: {report}");
    assert!(
        report.errors().is_empty(),
        "net dup must be warn-level: {report}"
    );
}

// ---- P001 phase-order -----------------------------------------------------

/// `d -> latch(pa) -> inv -> latch(pb) -> out` with phases by index.
fn latch_pair(pa: usize, pb: usize) -> Netlist {
    let mut nl = Netlist::new(format!("pair-{pa}-{pb}"));
    let phases = three_phase(&mut nl, 900.0);
    let (_, d) = nl.add_input("d");
    let qa = latch(&mut nl, "la", d, phases[pa]);
    let mid = inv(&mut nl, "i1", qa);
    let qb = latch(&mut nl, "lb", mid, phases[pb]);
    nl.add_output("out", qb);
    nl
}

#[test]
fn p001_flags_same_phase_latch_pair() {
    let report = lint(&latch_pair(0, 0), LintStage::Convert);
    assert!(report.has("P001"), "missing P001 in: {report}");
}

#[test]
fn p001_flags_p3_to_p1_wraparound() {
    let report = lint(&latch_pair(2, 0), LintStage::Convert);
    assert!(report.has("P001"), "missing P001 in: {report}");
}

#[test]
fn p001_accepts_all_legal_adjacencies() {
    for (pa, pb) in [(0, 1), (0, 2), (1, 0), (1, 2), (2, 1)] {
        let report = lint(&latch_pair(pa, pb), LintStage::Convert);
        assert!(
            report.errors().is_empty(),
            "p{}->p{} should be legal: {report}",
            pa + 1,
            pb + 1
        );
    }
}

#[test]
fn p001_is_inactive_before_conversion() {
    let report = lint(&latch_pair(0, 0), LintStage::Input);
    assert!(!report.has("P001"), "P001 must not run at input: {report}");
}

// ---- P002 icg-phase -------------------------------------------------------

#[test]
fn p002_flags_icg_rooted_off_phase() {
    let mut nl = Netlist::new("icg-bad-root");
    let phases = three_phase(&mut nl, 900.0);
    let (_, en) = nl.add_input("en");
    let (_, ck) = nl.add_input("free_ck"); // not a declared phase
    let gck = nl.add_net("gck");
    nl.add_cell("cg1", CellKind::Icg, vec![en, ck, gck]);
    let (_, d) = nl.add_input("d");
    let q = latch(&mut nl, "l1", d, gck);
    let q2 = latch(&mut nl, "l2", q, phases[2]);
    nl.add_output("out", q2);
    let report = lint(&nl, LintStage::Convert);
    assert!(report.has("P002"), "missing P002 in: {report}");
}

#[test]
fn p002_flags_wrong_m1_aux_phase() {
    let mut nl = Netlist::new("icg-bad-aux");
    let phases = three_phase(&mut nl, 900.0);
    let (_, en) = nl.add_input("en");
    let gck = nl.add_net("gck");
    // Gates p2, so the enable latch must be clocked by p3 — wire p1 instead.
    nl.add_cell("cg1", CellKind::IcgM1, vec![en, phases[0], phases[1], gck]);
    let (_, d) = nl.add_input("d");
    let q = latch(&mut nl, "l1", d, gck);
    let q2 = latch(&mut nl, "l2", q, phases[2]);
    nl.add_output("out", q2);
    let report = lint(&nl, LintStage::Convert);
    assert!(report.has("P002"), "missing P002 in: {report}");
}

#[test]
fn p002_accepts_well_rooted_gates() {
    let mut nl = Netlist::new("icg-ok");
    let phases = three_phase(&mut nl, 900.0);
    let (_, en) = nl.add_input("en");
    let gck = nl.add_net("gck");
    nl.add_cell("cg1", CellKind::IcgM1, vec![en, phases[2], phases[1], gck]);
    let (_, d) = nl.add_input("d");
    let q = latch(&mut nl, "l1", d, gck);
    let q2 = latch(&mut nl, "l2", q, phases[2]);
    nl.add_output("out", q2);
    let report = lint(&nl, LintStage::Convert);
    assert!(report.errors().is_empty(), "unexpected errors: {report}");
}

// ---- P003 unassigned-phase ------------------------------------------------

#[test]
fn p003_flags_latch_clocked_off_spec() {
    let mut nl = Netlist::new("stray-gate");
    let _ = three_phase(&mut nl, 900.0);
    let (_, g) = nl.add_input("free_g"); // not a declared phase
    let (_, d) = nl.add_input("d");
    let q = latch(&mut nl, "l1", d, g);
    nl.add_output("out", q);
    let report = lint(&nl, LintStage::Convert);
    assert!(report.has("P003"), "missing P003 in: {report}");
}

#[test]
fn p003_flags_sequential_design_without_clock_spec() {
    let mut nl = Netlist::new("no-spec");
    let (_, g) = nl.add_input("g");
    let (_, d) = nl.add_input("d");
    let q = latch(&mut nl, "l1", d, g);
    nl.add_output("out", q);
    let report = lint(&nl, LintStage::Convert);
    assert!(report.has("P003"), "missing P003 in: {report}");
}

#[test]
fn p003_accepts_combinational_design_without_clock_spec() {
    let mut nl = Netlist::new("comb-only");
    let (_, a) = nl.add_input("a");
    let y = inv(&mut nl, "i1", a);
    nl.add_output("out", y);
    let report = lint(&nl, LintStage::Convert);
    assert!(report.is_clean(), "comb design needs no clock: {report}");
}

// ---- P004 residual-ff -----------------------------------------------------

#[test]
fn p004_flags_surviving_ff_after_conversion() {
    let mut nl = Netlist::new("residual");
    let phases = three_phase(&mut nl, 900.0);
    let (_, d) = nl.add_input("d");
    let q = nl.add_net("q");
    nl.add_cell("ff1", CellKind::Dff, vec![d, phases[0], q]);
    nl.add_output("out", q);
    let report = lint(&nl, LintStage::Convert);
    assert!(report.has("P004"), "missing P004 in: {report}");
}

#[test]
fn p004_allows_ffs_before_conversion() {
    let mut nl = Netlist::new("pre-conversion");
    let (pck, ck) = nl.add_input("ck");
    nl.clock = Some(ClockSpec::single(pck, 1000.0));
    let (_, d) = nl.add_input("d");
    let q = nl.add_net("q");
    nl.add_cell("ff1", CellKind::Dff, vec![d, ck, q]);
    nl.add_output("out", q);
    for stage in [LintStage::Input, LintStage::Preprocess] {
        let report = lint(&nl, stage);
        assert!(!report.has("P004"), "spurious P004 at {stage:?}: {report}");
        assert!(
            report.is_clean(),
            "FF design is clean pre-conversion: {report}"
        );
    }
}
