//! Static switching-activity analysis: signal probability and transition
//! density propagation (Najm-style) over the netlist, with no simulation.
//!
//! For every net the analysis computes
//!
//! - **signal probability** `P(net = 1)` under stationary inputs,
//! - **transition density** — expected toggles per clock cycle in the
//!   zero-delay (glitch-free) model, the quantity a cycle-accurate
//!   simulator measures, and
//! - a **topological upper bound** on density (every input transition
//!   may propagate), bracketing the glitching regime from above.
//!
//! Values start at primary inputs (default `p = 0.5`, `d = 0.5`
//! toggles/cycle for random stimulus, overridable per net) and at state
//! elements, and flow through the combinational fabric in
//! `comb_topo_order`. Three mechanisms keep the numbers honest:
//!
//! 1. **Supergate collapsing** — each net carries its Boolean function as
//!    a truth table over a bounded *support* of independent sources
//!    (inputs, state outputs, cut points). Reconvergent fan-out inside
//!    the support is evaluated exactly: `XOR(a, a)` has probability
//!    exactly `0`, not the `0.5` the naive independence rule yields.
//!    When a support union would exceed [`AnalysisOptions::cut_budget`],
//!    the fan-ins are cut into fresh independent sources; if the cut
//!    separates overlapping supports the net (and everything downstream)
//!    is tagged with a **correlation-error flag** instead of silently
//!    assuming independence.
//! 2. **Sequential fixpoint** — storage outputs are pseudo-primary
//!    sources; their statistics (`p_Q = p_D`, `d_Q = d_D`, exact in the
//!    zero-delay model) are iterated with the combinational pass until
//!    convergence. Storage elements that feed themselves combinationally
//!    (counters, FSM state) carry *temporal* correlation a stationary
//!    model cannot see, so their outputs are correlation-flagged.
//! 3. **3-phase clock awareness** — clock phase roots get `p = duty`,
//!    `d = 2/cycle`; ICGs attenuate downstream clock density by their
//!    enable probability, and a gated storage element's output density is
//!    scaled by the product of enable probabilities on its clock path.
//!
//! The result feeds three consumers: the DDCG gating-efficacy scorer
//! ([`gating_scores`]), per-FF weights on the phase-assignment ILP
//! objective, and the zero-simulation fast path of
//! `triphase_power::estimate_power`.
//!
//! # Examples
//!
//! ```
//! use triphase_netlist::{Netlist, CellKind};
//! use triphase_activity::{analyze, AnalysisOptions};
//!
//! let mut nl = Netlist::new("reconv");
//! let (_, a) = nl.add_input("a");
//! let x = nl.add_net("x");
//! nl.add_cell("u_xor", CellKind::Xor(2), vec![a, a, x]);
//! nl.add_output("x", x);
//! let model = analyze(&nl, &AnalysisOptions::default()).unwrap();
//! let s = model.net(x);
//! assert_eq!(s.probability, 0.0); // exact, not 0.5 · independence
//! assert_eq!(s.density, 0.0);
//! ```

use std::collections::VecDeque;
use std::fmt;
use triphase_cells::CellKind;
use triphase_netlist::graph::{comb_topo_order, fanin_cone_starts, trace_clock_root, ConeStart};
use triphase_netlist::{CellId, ConnIndex, NetId, Netlist, PortDir, PortId};

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The combinational fabric contains a cycle (no topological order).
    CombLoop(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::CombLoop(name) => write!(f, "combinational loop at {name}"),
        }
    }
}

impl std::error::Error for Error {}

/// Hard cap on supergate support size (truth tables are dense bitsets).
const MAX_BUDGET: usize = 12;

/// Analysis options.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Maximum supergate support size before fan-ins are cut into fresh
    /// independent sources (clamped to `1..=12`). Larger budgets resolve
    /// more reconvergence exactly at exponential truth-table cost.
    pub cut_budget: usize,
    /// Maximum sequential fixpoint iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on per-net probability/density deltas.
    pub tolerance: f64,
    /// Default signal probability of primary data inputs.
    pub input_probability: f64,
    /// Default transition density (toggles/cycle) of primary data inputs.
    pub input_density: f64,
    /// Per-net `(probability, density)` overrides for source nets —
    /// typically primary inputs seeded from a measured profile.
    pub overrides: Vec<(NetId, f64, f64)>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            cut_budget: 6,
            max_iterations: 24,
            tolerance: 1e-9,
            input_probability: 0.5,
            input_density: 0.5,
            overrides: Vec::new(),
        }
    }
}

/// Static statistics of one net.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Stationary probability the net is logic 1.
    pub probability: f64,
    /// Expected toggles per cycle, zero-delay (glitch-free lower bound).
    pub density: f64,
    /// Topological upper bound on toggles per cycle (worst-case glitching).
    pub density_upper: f64,
    /// Independence was assumed across overlapping supports somewhere in
    /// this net's sequential fan-in (or temporal correlation at a
    /// self-feeding register) — `density` is an estimate, not exact.
    pub correlated: bool,
}

/// Result of [`analyze`]: per-net statistics plus model provenance.
#[derive(Debug, Clone)]
pub struct ActivityModel {
    stats: Vec<NetStats>,
    /// Nets driven by combinational cells (correlation-rate denominator).
    pub comb_nets: usize,
    /// Combinational nets carrying the correlation-error flag.
    pub flagged_nets: usize,
    /// Sequential fixpoint iterations performed.
    pub iterations: usize,
    /// Whether the fixpoint converged within the iteration budget.
    pub converged: bool,
}

impl ActivityModel {
    /// Statistics of `net`.
    pub fn net(&self, net: NetId) -> NetStats {
        self.stats.get(net.index()).copied().unwrap_or_default()
    }

    /// Transition density (toggles/cycle) of `net`.
    pub fn density(&self, net: NetId) -> f64 {
        self.net(net).density
    }

    /// Signal probability of `net`.
    pub fn probability(&self, net: NetId) -> f64 {
        self.net(net).probability
    }

    /// Whether `net` carries the correlation-error flag.
    pub fn correlated(&self, net: NetId) -> bool {
        self.net(net).correlated
    }

    /// Per-net statistics indexed by [`NetId::index`].
    pub fn stats(&self) -> &[NetStats] {
        &self.stats
    }

    /// Fraction of combinational nets whose density is correlation-flagged.
    pub fn correlation_rate(&self) -> f64 {
        if self.comb_nets == 0 {
            0.0
        } else {
            self.flagged_nets as f64 / self.comb_nets as f64
        }
    }

    /// Per-net densities indexed by [`NetId::index`] — the layout
    /// `triphase_power`'s static fast path consumes.
    pub fn densities(&self) -> Vec<f64> {
        self.stats.iter().map(|s| s.density).collect()
    }

    /// Synthesize per-net toggle counts for a virtual run of `cycles`
    /// cycles (rounded), for consumers that expect a measured-activity
    /// shape (e.g. the DDCG pass).
    pub fn pseudo_toggles(&self, cycles: u64) -> Vec<u64> {
        self.stats
            .iter()
            .map(|s| (s.density * cycles as f64).round() as u64)
            .collect()
    }
}

/// A net's Boolean function as a truth table over a support of
/// independent source variables (sorted source ids; `tt` is a dense
/// little-endian bitset of `2^support.len()` rows).
#[derive(Debug, Clone)]
struct Gate {
    support: Vec<u32>,
    tt: Vec<u64>,
}

impl Gate {
    fn identity(source: u32) -> Gate {
        Gate {
            support: vec![source],
            tt: vec![0b10],
        }
    }

    fn bit(&self, row: usize) -> bool {
        (self.tt.get(row >> 6).copied().unwrap_or(0) >> (row & 63)) & 1 == 1
    }
}

/// One storage element with its data net, output net, and the enable
/// nets that attenuate its update rate (own `EN` pin plus the `EN` of
/// every ICG on its clock path).
struct StorageInfo {
    dnet: NetId,
    qnet: NetId,
    en_nets: Vec<NetId>,
    /// The element's data cone reaches its own output combinationally
    /// (counter/FSM bit): temporal correlation the model cannot see.
    self_loop: bool,
}

/// Run the static analysis. See the crate docs for the model.
///
/// # Errors
///
/// [`Error::CombLoop`] if the combinational fabric is cyclic.
pub fn analyze(nl: &Netlist, opts: &AnalysisOptions) -> Result<ActivityModel> {
    let idx = nl.index();
    let order = match comb_topo_order(nl, &idx) {
        Ok(order) => order,
        Err(e) => return Err(Error::CombLoop(e.to_string())),
    };
    let ncap = nl.net_capacity();
    let budget = opts.cut_budget.clamp(1, MAX_BUDGET);

    let mut p = vec![0.5f64; ncap];
    let mut d = vec![0.0f64; ncap];
    let mut up = vec![0.0f64; ncap];
    let mut flag = vec![false; ncap];

    // Structural prep: storage elements, clock roots, input seeds.
    let storages = collect_storage(nl, &idx);
    let phase_roots = phase_root_stats(nl);
    let is_phase_root: Vec<bool> = {
        let mut mask = vec![false; ncap];
        for &(net, _) in &phase_roots {
            mask[net.index()] = true;
        }
        mask
    };
    let mut seed: Vec<Option<(f64, f64)>> = vec![None; ncap];
    for i in 0..nl.ports().len() {
        let port = nl.port(PortId::from_index(i));
        if port.dir == PortDir::Input && !is_phase_root[port.net.index()] {
            seed[port.net.index()] = Some((opts.input_probability, opts.input_density));
        }
    }
    for &(net, po, de) in &opts.overrides {
        if net.index() < ncap {
            seed[net.index()] = Some((po.clamp(0.0, 1.0), de.clamp(0.0, 2.0)));
        }
    }

    // Storage outputs start at the uninformative fixpoint seed.
    for s in &storages {
        p[s.qnet.index()] = 0.5;
        d[s.qnet.index()] = 0.5;
        up[s.qnet.index()] = 0.5;
    }

    let mut gates: Vec<Option<Gate>> = vec![None; ncap];
    let mut source_of: Vec<Option<u32>> = vec![None; ncap];
    let mut sources: Vec<(f64, f64)> = Vec::new();

    let mut iterations = 0usize;
    let mut converged = false;
    for iter in 0..opts.max_iterations.max(1) {
        iterations = iter + 1;

        // Primary-input and clock-network seeds.
        for (i, s) in seed.iter().enumerate() {
            if let Some((po, de)) = s {
                p[i] = *po;
                d[i] = *de;
                up[i] = *de;
                flag[i] = false;
            }
        }
        propagate_clock(nl, &idx, &phase_roots, &mut p, &mut d, &mut up, &mut flag);

        // Fresh source/supergate tables for this pass.
        gates.iter_mut().for_each(|g| *g = None);
        source_of.iter_mut().for_each(|s| *s = None);
        sources.clear();

        // Combinational pass in topological order.
        for &id in &order {
            step_cell(
                nl,
                id,
                budget,
                &mut p,
                &mut d,
                &mut up,
                &mut flag,
                &mut gates,
                &mut source_of,
                &mut sources,
            );
        }

        // Storage update (Gauss-Seidel) and convergence test.
        let mut delta = 0.0f64;
        for s in &storages {
            let mut en = 1.0f64;
            let mut f = flag[s.dnet.index()] || s.self_loop;
            for &e in &s.en_nets {
                en *= p[e.index()].clamp(0.0, 1.0);
                f |= flag[e.index()];
            }
            let qi = s.qnet.index();
            let pq = p[s.dnet.index()].clamp(0.0, 1.0);
            let dq = (d[s.dnet.index()] * en).clamp(0.0, 1.0);
            delta = delta.max((p[qi] - pq).abs()).max((d[qi] - dq).abs());
            p[qi] = pq;
            d[qi] = dq;
            up[qi] = dq;
            flag[qi] = flag[qi] || f;
        }
        if delta < opts.tolerance {
            converged = true;
            break;
        }
    }

    // Assemble per-net stats; count combinational nets for the rate.
    let mut stats = vec![NetStats::default(); ncap];
    for (i, s) in stats.iter_mut().enumerate() {
        s.probability = p[i].clamp(0.0, 1.0);
        s.density = d[i].clamp(0.0, 2.0);
        s.density_upper = up[i].max(s.density);
        s.correlated = flag[i];
    }
    let mut comb_nets = 0usize;
    let mut flagged_nets = 0usize;
    for &id in &order {
        let out = nl.cell(id).output().index();
        comb_nets += 1;
        if flag[out] {
            flagged_nets += 1;
        }
    }
    Ok(ActivityModel {
        stats,
        comb_nets,
        flagged_nets,
        iterations,
        converged,
    })
}

/// Phase-root nets with their duty cycles.
fn phase_root_stats(nl: &Netlist) -> Vec<(NetId, f64)> {
    let Some(clock) = &nl.clock else {
        return Vec::new();
    };
    let period = clock.period_ps;
    clock
        .phases
        .iter()
        .map(|ph| {
            let width = if ph.fall_ps >= ph.rise_ps {
                ph.fall_ps - ph.rise_ps
            } else {
                period - ph.rise_ps + ph.fall_ps
            };
            let duty = if period > 0.0 && width.is_finite() {
                (width / period).clamp(0.0, 1.0)
            } else {
                0.5
            };
            (nl.port(ph.port).net, duty)
        })
        .collect()
}

/// Propagate clock-network statistics: phase roots (`p = duty`,
/// `d = 2/cycle`), clock buffers copy, ICGs attenuate by their enable
/// probability. Mirrors `graph::clock_cone`'s expansion rule.
#[allow(clippy::too_many_arguments)]
fn propagate_clock(
    nl: &Netlist,
    idx: &ConnIndex,
    phase_roots: &[(NetId, f64)],
    p: &mut [f64],
    d: &mut [f64],
    up: &mut [f64],
    flag: &mut [bool],
) {
    let mut queue: VecDeque<NetId> = VecDeque::new();
    let mut visited = vec![false; nl.net_capacity()];
    for &(net, duty) in phase_roots {
        p[net.index()] = duty;
        d[net.index()] = 2.0;
        up[net.index()] = 2.0;
        flag[net.index()] = false;
        if !visited[net.index()] {
            visited[net.index()] = true;
            queue.push_back(net);
        }
    }
    while let Some(n) = queue.pop_front() {
        for load in idx.loads(n) {
            let cell = nl.cell(load.cell);
            let out = match cell.kind {
                CellKind::ClkBuf => {
                    let out = cell.output();
                    p[out.index()] = p[n.index()];
                    d[out.index()] = d[n.index()];
                    flag[out.index()] = flag[n.index()];
                    out
                }
                k if k.is_clock_gate() && Some(load.pin) == k.clock_pin() => {
                    let out = cell.output();
                    let pe = k
                        .enable_pin()
                        .map(|ep| p[cell.pin(ep).index()].clamp(0.0, 1.0))
                        .unwrap_or(1.0);
                    p[out.index()] = p[n.index()] * pe;
                    d[out.index()] = d[n.index()] * pe;
                    flag[out.index()] = flag[n.index()]
                        || k.enable_pin()
                            .map(|ep| flag[cell.pin(ep).index()])
                            .unwrap_or(false);
                    out
                }
                _ => continue,
            };
            up[out.index()] = d[out.index()];
            if !visited[out.index()] {
                visited[out.index()] = true;
                queue.push_back(out);
            }
        }
    }
    // Clock buffers outside the declared clock cone still copy their
    // input (e.g. clockless test netlists).
    for (_, cell) in nl.cells() {
        if cell.kind == CellKind::ClkBuf && !visited[cell.output().index()] {
            let input = cell.pin(0);
            let out = cell.output();
            p[out.index()] = p[input.index()];
            d[out.index()] = d[input.index()];
            up[out.index()] = up[input.index()];
            flag[out.index()] = flag[input.index()];
        }
    }
}

/// Storage elements with their enable chains and self-loop tags.
fn collect_storage(nl: &Netlist, idx: &ConnIndex) -> Vec<StorageInfo> {
    let mut out = Vec::new();
    for (id, cell) in nl.cells() {
        if !cell.kind.is_storage() {
            continue;
        }
        let Some(dpin) = cell.kind.data_pin() else {
            continue;
        };
        let dnet = cell.pin(dpin);
        let qnet = cell.output();
        let mut en_nets = Vec::new();
        if let Some(ep) = cell.kind.enable_pin() {
            en_nets.push(cell.pin(ep));
        }
        if let Some(ckpin) = cell.kind.clock_pin() {
            if let Ok(trace) = trace_clock_root(nl, idx, cell.pin(ckpin)) {
                for gate in trace.gates {
                    let gcell = nl.cell(gate);
                    if let Some(ep) = gcell.kind.enable_pin() {
                        en_nets.push(gcell.pin(ep));
                    }
                }
            }
        }
        let self_loop = fanin_cone_starts(nl, idx, dnet)
            .iter()
            .any(|s| matches!(s, ConeStart::Storage(c) if *c == id));
        out.push(StorageInfo {
            dnet,
            qnet,
            en_nets,
            self_loop,
        });
    }
    out
}

/// Process one combinational cell: build the output supergate (cutting
/// fan-ins into fresh sources beyond the budget) and compute the output
/// net's probability, zero-delay density, upper bound, and flag.
#[allow(clippy::too_many_arguments)]
fn step_cell(
    nl: &Netlist,
    id: CellId,
    budget: usize,
    p: &mut [f64],
    d: &mut [f64],
    up: &mut [f64],
    flag: &mut [bool],
    gates: &mut [Option<Gate>],
    source_of: &mut [Option<u32>],
    sources: &mut Vec<(f64, f64)>,
) {
    let cell = nl.cell(id);
    let out = cell.output().index();
    let ins = cell.inputs();

    // Every fan-in needs a gate; gateless nets (inputs, storage outputs,
    // clock-derived or undriven nets) become fresh sources.
    for &inet in ins {
        if gates[inet.index()].is_none() {
            let sid = materialize_source(inet, p, d, source_of, sources);
            gates[inet.index()] = Some(Gate::identity(sid));
        }
    }

    // Union of fan-in supports; cut to per-net sources beyond the budget.
    let mut union: Vec<u32> = Vec::new();
    for &inet in ins {
        if let Some(g) = &gates[inet.index()] {
            for &s in &g.support {
                if let Err(pos) = union.binary_search(&s) {
                    union.insert(pos, s);
                }
            }
        }
    }
    let mut lossy_cut = false;
    let mut cut_gates: Vec<Option<Gate>> = Vec::new();
    if union.len() > budget {
        // Does the cut separate overlapping supports? (A source shared
        // by two *different* fan-in nets is correlation we now discard;
        // the same net used twice keeps its sharing through the common
        // cut source, so it stays exact.)
        let mut seen_in: Vec<(u32, NetId)> = Vec::new();
        'outer: for &inet in ins {
            if let Some(g) = &gates[inet.index()] {
                for &s in &g.support {
                    if let Some(&(_, first)) = seen_in.iter().find(|(sid, _)| *sid == s) {
                        if first != inet {
                            lossy_cut = true;
                            break 'outer;
                        }
                    } else {
                        seen_in.push((s, inet));
                    }
                }
            }
        }
        union.clear();
        cut_gates = ins
            .iter()
            .map(|&inet| {
                let sid = materialize_source(inet, p, d, source_of, sources);
                if let Err(pos) = union.binary_search(&sid) {
                    union.insert(pos, sid);
                }
                Some(Gate::identity(sid))
            })
            .collect();
    }

    // Truth table over the union support.
    let k = union.len();
    let rows = 1usize << k;
    let mut tt = vec![0u64; rows.div_ceil(64)];
    // Per-input projection: positions of its support bits in the union.
    let projections: Vec<(Vec<usize>, &Gate)> = ins
        .iter()
        .enumerate()
        .filter_map(|(j, &inet)| {
            let g = if cut_gates.is_empty() {
                gates[inet.index()].as_ref()
            } else {
                cut_gates.get(j).and_then(|g| g.as_ref())
            }?;
            let pos: Vec<usize> = g
                .support
                .iter()
                .map(|s| union.binary_search(s).unwrap_or(0))
                .collect();
            Some((pos, g))
        })
        .collect();
    let mut vals = vec![false; projections.len()];
    for row in 0..rows {
        for (v, (pos, g)) in vals.iter_mut().zip(&projections) {
            let mut local = 0usize;
            for (j, &up_pos) in pos.iter().enumerate() {
                local |= ((row >> up_pos) & 1) << j;
            }
            *v = g.bit(local);
        }
        if cell.kind.eval_comb(&vals) {
            tt[row >> 6] |= 1u64 << (row & 63);
        }
    }

    let gate = Gate { support: union, tt };
    let (po, de) = eval_stats(&gate, sources);
    p[out] = po;
    d[out] = de;
    up[out] = ins
        .iter()
        .map(|n| up[n.index()])
        .sum::<f64>()
        .max(de)
        .min(2.0 * ins.len().max(1) as f64);
    flag[out] = lossy_cut || ins.iter().any(|n| flag[n.index()]);
    gates[out] = Some(gate);
}

/// Intern `net` as an independent source with its current statistics.
fn materialize_source(
    net: NetId,
    p: &[f64],
    d: &[f64],
    source_of: &mut [Option<u32>],
    sources: &mut Vec<(f64, f64)>,
) -> u32 {
    if let Some(sid) = source_of[net.index()] {
        return sid;
    }
    let sid = sources.len() as u32;
    sources.push((
        p[net.index()].clamp(0.0, 1.0),
        d[net.index()].clamp(0.0, 2.0),
    ));
    source_of[net.index()] = Some(sid);
    sid
}

/// Probability and zero-delay density of a supergate over independent
/// sources.
///
/// Probability is the weighted ON-set mass. Density uses each source's
/// stationary 2×2 cycle-transition matrix `M_i` (`P01 = P10 = d_i/2`):
/// the joint ON–ON mass across consecutive cycles is
/// `J = f^T (⊗_i M_i) f`, computed by contracting one axis at a time,
/// and `P(toggle) = P(prev=1) + P(cur=1) − 2J = 2p − 2J`.
fn eval_stats(gate: &Gate, sources: &[(f64, f64)]) -> (f64, f64) {
    let k = gate.support.len();
    let rows = 1usize << k;

    // ON-set probability.
    let mut prob = 0.0f64;
    for row in 0..rows {
        if !gate.bit(row) {
            continue;
        }
        let mut w = 1.0f64;
        for (i, &s) in gate.support.iter().enumerate() {
            let pi = sources.get(s as usize).map(|&(pi, _)| pi).unwrap_or(0.5);
            w *= if (row >> i) & 1 == 1 { pi } else { 1.0 - pi };
        }
        prob += w;
    }
    let prob = prob.clamp(0.0, 1.0);

    // v = (⊗ M_i) f, axis by axis; J = f · v.
    let mut v: Vec<f64> = (0..rows)
        .map(|row| f64::from(gate.bit(row) as u8))
        .collect();
    for (i, &s) in gate.support.iter().enumerate() {
        let (pi, di) = sources.get(s as usize).copied().unwrap_or((0.5, 0.5));
        let half = (di / 2.0).min(pi).min(1.0 - pi).max(0.0);
        let m00 = 1.0 - pi - half;
        let m11 = pi - half;
        let stride = 1usize << i;
        let mut base = 0usize;
        while base < rows {
            for m in base..base + stride {
                let a = v[m];
                let b = v[m + stride];
                v[m] = m00 * a + half * b;
                v[m + stride] = half * a + m11 * b;
            }
            base += stride << 1;
        }
    }
    let mut joint = 0.0f64;
    for (row, w) in v.iter().enumerate() {
        if gate.bit(row) {
            joint += *w;
        }
    }
    let density = (2.0 * prob - 2.0 * joint).clamp(0.0, 2.0);
    (prob, density)
}

/// Expected clock-pin toggles saved per cycle by data-driven gating of
/// one storage element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateScore {
    /// The candidate storage cell.
    pub cell: CellId,
    /// Static density of its data input (toggles/cycle).
    pub data_density: f64,
    /// Static density of its clock pin (toggles/cycle).
    pub clock_density: f64,
    /// Expected clock toggles saved per cycle if the element is gated on
    /// data change: `clock_density × (1 − data_density)`.
    pub saved_per_cycle: f64,
    /// The data density is correlation-flagged (estimate, not exact).
    pub correlated: bool,
}

/// Rank storage cells by expected toggles saved when data-driven clock
/// gating is applied, best first (ties broken by cell id for
/// determinism). Cells without data/clock pins score zero.
pub fn gating_scores(nl: &Netlist, model: &ActivityModel, candidates: &[CellId]) -> Vec<GateScore> {
    let mut scores: Vec<GateScore> = candidates
        .iter()
        .map(|&id| {
            let cell = nl.cell(id);
            let data = cell.kind.data_pin().map(|pin| cell.pin(pin));
            let clock = cell.kind.clock_pin().map(|pin| cell.pin(pin));
            let dd = data.map(|n| model.density(n).min(1.0)).unwrap_or(1.0);
            let cd = clock.map(|n| model.density(n)).unwrap_or(0.0);
            GateScore {
                cell: id,
                data_density: dd,
                clock_density: cd,
                saved_per_cycle: cd * (1.0 - dd).max(0.0),
                correlated: data.map(|n| model.correlated(n)).unwrap_or(false),
            }
        })
        .collect();
    scores.sort_by(|a, b| {
        b.saved_per_cycle
            .partial_cmp(&a.saved_per_cycle)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cell.index().cmp(&b.cell.index()))
    });
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::ClockSpec;

    #[test]
    fn independent_and_gate() {
        let mut nl = Netlist::new("and");
        let (_, a) = nl.add_input("a");
        let (_, b) = nl.add_input("b");
        let x = nl.add_net("x");
        nl.add_cell("u", CellKind::And(2), vec![a, b, x]);
        nl.add_output("x", x);
        let m = analyze(&nl, &AnalysisOptions::default()).unwrap();
        let s = m.net(x);
        assert!((s.probability - 0.25).abs() < 1e-12);
        assert!(!s.correlated);
        assert!(s.density > 0.0 && s.density <= s.density_upper);
    }

    #[test]
    fn buffer_chain_preserves_density() {
        let mut nl = Netlist::new("chain");
        let (_, a) = nl.add_input("a");
        let mut prev = a;
        let mut last = a;
        for i in 0..8 {
            let n = nl.add_net(format!("n{i}"));
            let kind = if i % 2 == 0 {
                CellKind::Buf
            } else {
                CellKind::Inv
            };
            nl.add_cell(format!("u{i}"), kind, vec![prev, n]);
            prev = n;
            last = n;
        }
        nl.add_output("y", last);
        let opts = AnalysisOptions {
            overrides: vec![(a, 0.5, 0.375)],
            ..AnalysisOptions::default()
        };
        let m = analyze(&nl, &opts).unwrap();
        assert_eq!(m.net(last).density, 0.375);
        assert!(!m.net(last).correlated);
    }

    #[test]
    fn clock_density_and_icg_attenuation() {
        let mut nl = Netlist::new("clk");
        let (ckp, ck) = nl.add_input("ck");
        let (_, en) = nl.add_input("en");
        let (_, dn) = nl.add_input("d");
        let gck = nl.add_net("gck");
        let q = nl.add_net("q");
        nl.add_cell("icg", CellKind::Icg, vec![en, ck, gck]);
        nl.add_cell("ff", CellKind::Dff, vec![dn, gck, q]);
        nl.add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let m = analyze(&nl, &AnalysisOptions::default()).unwrap();
        assert_eq!(m.density(ck), 2.0);
        assert!((m.density(gck) - 1.0).abs() < 1e-12, "2.0 × P(en)=0.5");
        // Gated FF output density: d_D × P(en) = 0.5 × 0.5.
        assert!((m.density(q) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn self_loop_register_is_flagged() {
        let mut nl = Netlist::new("tflop");
        let (ckp, ck) = nl.add_input("ck");
        let q = nl.add_net("q");
        let dn = nl.add_net("d");
        nl.add_cell("u_inv", CellKind::Inv, vec![q, dn]);
        nl.add_cell("ff", CellKind::Dff, vec![dn, ck, q]);
        nl.add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let m = analyze(&nl, &AnalysisOptions::default()).unwrap();
        assert!(m.net(q).correlated, "temporal self-loop must be flagged");
    }

    #[test]
    fn pipeline_register_is_not_flagged() {
        let mut nl = Netlist::new("pipe");
        let (ckp, ck) = nl.add_input("ck");
        let (_, a) = nl.add_input("a");
        let q1 = nl.add_net("q1");
        let q2 = nl.add_net("q2");
        nl.add_cell("f1", CellKind::Dff, vec![a, ck, q1]);
        nl.add_cell("f2", CellKind::Dff, vec![q1, ck, q2]);
        nl.add_output("q", q2);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let m = analyze(&nl, &AnalysisOptions::default()).unwrap();
        assert!(!m.net(q2).correlated);
        assert_eq!(m.net(q2).density, 0.5);
        assert!(m.converged);
    }

    #[test]
    fn gating_scores_rank_quiet_data_first() {
        let mut nl = Netlist::new("rank");
        let (ckp, ck) = nl.add_input("ck");
        let (_, a) = nl.add_input("a");
        let (_, b) = nl.add_input("b");
        let busy = nl.add_net("busy");
        let quiet = nl.add_net("quiet");
        let q1 = nl.add_net("q1");
        let q2 = nl.add_net("q2");
        nl.add_cell("u_buf", CellKind::Buf, vec![a, busy]);
        nl.add_cell("u_and", CellKind::And(2), vec![a, b, quiet]);
        let f1 = nl.add_cell("f1", CellKind::Dff, vec![busy, ck, q1]);
        let f2 = nl.add_cell("f2", CellKind::Dff, vec![quiet, ck, q2]);
        nl.add_output("q1", q1);
        nl.add_output("q2", q2);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let m = analyze(&nl, &AnalysisOptions::default()).unwrap();
        let scores = gating_scores(&nl, &m, &[f1, f2]);
        assert_eq!(scores[0].cell, f2, "AND output toggles less than buffer");
        assert!(scores[0].saved_per_cycle > scores[1].saved_per_cycle);
    }
}
