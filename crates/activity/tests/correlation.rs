//! Regression tests for correlation handling: reconvergent fan-out
//! inside the cut budget must be exact, and beyond-budget cuts must be
//! flagged — never silently assumed independent.

use triphase_activity::{analyze, AnalysisOptions};
use triphase_netlist::{CellKind, Netlist};

#[test]
fn xor_of_a_net_with_itself_is_exactly_zero() {
    let mut nl = Netlist::new("xaa");
    let (_, a) = nl.add_input("a");
    let x = nl.add_net("x");
    nl.add_cell("u", CellKind::Xor(2), vec![a, a, x]);
    nl.add_output("x", x);
    let m = analyze(&nl, &AnalysisOptions::default()).unwrap();
    let s = m.net(x);
    assert_eq!(s.probability, 0.0, "XOR(a,a) is constant 0, not 0.5");
    assert_eq!(s.density, 0.0);
    assert!(!s.correlated, "resolved exactly, no correlation error");
}

#[test]
fn and_of_a_net_with_its_complement_is_exactly_zero() {
    let mut nl = Netlist::new("ana");
    let (_, a) = nl.add_input("a");
    let na = nl.add_net("na");
    let x = nl.add_net("x");
    nl.add_cell("u_inv", CellKind::Inv, vec![a, na]);
    nl.add_cell("u_and", CellKind::And(2), vec![a, na, x]);
    nl.add_output("x", x);
    let m = analyze(&nl, &AnalysisOptions::default()).unwrap();
    let s = m.net(x);
    assert_eq!(s.probability, 0.0, "AND(a,!a) is constant 0");
    assert_eq!(s.density, 0.0);
    assert!(!s.correlated);
}

#[test]
fn reconvergence_survives_deeper_supergates() {
    // XNOR(a, a) via two inverter branches: still exactly constant 1.
    let mut nl = Netlist::new("deep");
    let (_, a) = nl.add_input("a");
    let n1 = nl.add_net("n1");
    let n2 = nl.add_net("n2");
    let x = nl.add_net("x");
    nl.add_cell("i1", CellKind::Inv, vec![a, n1]);
    nl.add_cell("i2", CellKind::Inv, vec![a, n2]);
    nl.add_cell("u", CellKind::Xnor(2), vec![n1, n2, x]);
    nl.add_output("x", x);
    let m = analyze(&nl, &AnalysisOptions::default()).unwrap();
    assert_eq!(m.net(x).probability, 1.0);
    assert_eq!(m.net(x).density, 0.0);
}

/// x = AND(a,b), y = OR(b,c), z = XOR(x,y): with `cut_budget = 2` the
/// union {a,b,c} exceeds the budget and the cut separates the shared
/// `b` — the flag must be set rather than silently assuming
/// independence.
#[test]
fn beyond_budget_overlapping_cut_sets_the_flag() {
    let mut nl = Netlist::new("cut");
    let (_, a) = nl.add_input("a");
    let (_, b) = nl.add_input("b");
    let (_, c) = nl.add_input("c");
    let x = nl.add_net("x");
    let y = nl.add_net("y");
    let z = nl.add_net("z");
    nl.add_cell("u_and", CellKind::And(2), vec![a, b, x]);
    nl.add_cell("u_or", CellKind::Or(2), vec![b, c, y]);
    nl.add_cell("u_xor", CellKind::Xor(2), vec![x, y, z]);
    nl.add_output("z", z);
    let opts = AnalysisOptions {
        cut_budget: 2,
        ..AnalysisOptions::default()
    };
    let m = analyze(&nl, &opts).unwrap();
    assert!(m.net(z).correlated, "lossy cut must set the flag");
    assert!(!m.net(x).correlated, "fan-ins inside budget stay exact");
    assert!(!m.net(y).correlated);
    assert!(m.correlation_rate() > 0.0);
    // With the default budget the same cone resolves exactly: no flag,
    // and the truth-table probability differs from the naive
    // independence estimate.
    let exact = analyze(&nl, &AnalysisOptions::default()).unwrap();
    assert!(!exact.net(z).correlated);
    assert!(
        (exact.net(z).probability - 0.5).abs() < 1e-12,
        "by symmetry"
    );
}

/// Disjoint supports cut losslessly: no flag, probability unchanged vs
/// the exact supergate.
#[test]
fn beyond_budget_disjoint_cut_is_clean() {
    let mut nl = Netlist::new("disjoint");
    let (_, a) = nl.add_input("a");
    let (_, b) = nl.add_input("b");
    let (_, c) = nl.add_input("c");
    let (_, e) = nl.add_input("e");
    let x = nl.add_net("x");
    let y = nl.add_net("y");
    let z = nl.add_net("z");
    nl.add_cell("u_and", CellKind::And(2), vec![a, b, x]);
    nl.add_cell("u_or", CellKind::Or(2), vec![c, e, y]);
    nl.add_cell("u_xor", CellKind::Xor(2), vec![x, y, z]);
    nl.add_output("z", z);
    let cut = analyze(
        &nl,
        &AnalysisOptions {
            cut_budget: 2,
            ..AnalysisOptions::default()
        },
    )
    .unwrap();
    let exact = analyze(&nl, &AnalysisOptions::default()).unwrap();
    assert!(!cut.net(z).correlated, "disjoint cut is lossless");
    assert!((cut.net(z).probability - exact.net(z).probability).abs() < 1e-12);
    assert!((cut.net(z).density - exact.net(z).density).abs() < 1e-12);
}
