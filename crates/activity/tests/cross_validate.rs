//! Cross-validation against the packed simulator on a correlation-free
//! chain circuit, where the independence assumption is exact: static
//! density must equal the measured toggle rate *exactly* (same f64).

use triphase_activity::{analyze, AnalysisOptions};
use triphase_netlist::{CellKind, ClockSpec, Netlist};
use triphase_sim::collect_activity_packed;

/// PI → buffer chain (plus a side register so the clocked simulator is
/// happy). Every chain net carries exactly the PI's transitions — an
/// inverting chain would add one reset-boundary toggle per lane when the
/// simulator's forced-zero reset state flips to the evaluated complement.
fn chain(len: usize) -> (Netlist, Vec<triphase_netlist::NetId>) {
    let mut nl = Netlist::new("chain");
    let (ckp, ck) = nl.add_input("ck");
    let (_, a) = nl.add_input("a");
    let mut nets = vec![a];
    let mut prev = a;
    for i in 0..len {
        let n = nl.add_net(format!("n{i}"));
        nl.add_cell(format!("u{i}"), CellKind::Buf, vec![prev, n]);
        nets.push(n);
        prev = n;
    }
    nl.add_output("y", prev);
    let q = nl.add_net("q");
    nl.add_cell("ff", CellKind::Dff, vec![a, ck, q]);
    nl.add_output("q", q);
    nl.clock = Some(ClockSpec::single(ckp, 1000.0));
    (nl, nets)
}

#[test]
fn static_density_equals_measured_rate_exactly_on_a_chain() {
    let (nl, nets) = chain(12);
    let cycles: u64 = 1024; // dyadic, so toggles/cycles is exact in f64
    let activity = collect_activity_packed(&nl, 7, cycles).unwrap();
    let a = nets[0];
    let measured_pi = activity.net_toggles[a.index()] as f64 / activity.cycles as f64;
    assert!(measured_pi > 0.0, "stimulus must toggle the input");

    // Seed the static model's input from the measured profile; the
    // chain then has zero correlation and zero modeling slack, so every
    // downstream net must match the simulator bit-for-bit.
    let opts = AnalysisOptions {
        overrides: vec![(a, 0.5, measured_pi)],
        ..AnalysisOptions::default()
    };
    let model = analyze(&nl, &opts).unwrap();
    for &net in &nets {
        let measured = activity.net_toggles[net.index()] as f64 / activity.cycles as f64;
        let s = model.net(net);
        assert!(!s.correlated, "chain is correlation-free");
        assert_eq!(
            s.density, measured,
            "static == measured must hold exactly on net {net:?}"
        );
    }
}

#[test]
fn registered_chain_matches_within_one_boundary_toggle() {
    // Through a flip-flop the toggle stream is delayed one cycle, so
    // counts may differ by the window boundary — but no more.
    let (nl, _) = chain(4);
    let cycles: u64 = 2048;
    let activity = collect_activity_packed(&nl, 11, cycles).unwrap();
    let a = nl.find_port("a").map(|p| nl.port(p).net).unwrap();
    let q = nl.find_port("q").map(|p| nl.port(p).net).unwrap();
    let measured_pi = activity.net_toggles[a.index()] as f64 / activity.cycles as f64;
    let opts = AnalysisOptions {
        overrides: vec![(a, 0.5, measured_pi)],
        ..AnalysisOptions::default()
    };
    let model = analyze(&nl, &opts).unwrap();
    let measured_q = activity.net_toggles[q.index()] as f64 / activity.cycles as f64;
    let lanes_slack = 64.0 / cycles as f64; // one boundary toggle per packed lane
    assert!(
        (model.net(q).density - measured_q).abs() <= lanes_slack,
        "static {} vs measured {}",
        model.net(q).density,
        measured_q
    );
}
