//! Cell kinds and their pin interfaces.
//!
//! Every cell in a netlist is an instance of a [`CellKind`]. Pins are
//! *positional*; the conventions are:
//!
//! - every kind has exactly one output, which is always the **last** pin
//!   (except [`CellKind::Const0`]/[`CellKind::Const1`], whose only pin is
//!   the output);
//! - multi-input gates take their arity as payload, e.g. `And(4)`;
//! - sequential and clock cells have fixed pin orders documented on each
//!   variant.

use std::fmt;

/// Direction of a pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinDir {
    /// The pin reads a value from its net.
    Input,
    /// The pin drives its net.
    Output,
}

/// Functional class of a pin, used for clock-network tracing and for the
/// power report's Clock/Seq/Comb grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinClass {
    /// Ordinary data input.
    Data,
    /// Clock input (FF `CK`, latch `G`, ICG `CK`/`P3`) or gated-clock output.
    Clock,
    /// Enable input of an enabled FF or a clock-gating cell.
    Enable,
    /// Select input of a mux.
    Select,
    /// Data output (`Q`/`Y`).
    Out,
}

/// Static description of one pin of a [`CellKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PinDef {
    /// Whether the pin reads or drives its net.
    pub dir: PinDir,
    /// Functional class of the pin.
    pub class: PinClass,
}

impl PinDef {
    const fn new(dir: PinDir, class: PinClass) -> Self {
        PinDef { dir, class }
    }
}

const IN_DATA: PinDef = PinDef::new(PinDir::Input, PinClass::Data);
const IN_CLK: PinDef = PinDef::new(PinDir::Input, PinClass::Clock);
const IN_EN: PinDef = PinDef::new(PinDir::Input, PinClass::Enable);
const IN_SEL: PinDef = PinDef::new(PinDir::Input, PinClass::Select);
const OUT: PinDef = PinDef::new(PinDir::Output, PinClass::Out);
const OUT_CLK: PinDef = PinDef::new(PinDir::Output, PinClass::Clock);

/// The kind of a cell: its logic function and pin interface.
///
/// Arities of multi-input gates must be in `2..=MAX_ARITY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Constant logic 0. Pins: `Y`.
    Const0,
    /// Constant logic 1. Pins: `Y`.
    Const1,
    /// Buffer. Pins: `A`, `Y`.
    Buf,
    /// Dedicated clock-tree buffer (electrically a strong buffer; kept as a
    /// separate kind so clock-network power can be attributed). Pins: `A`, `Y`.
    ClkBuf,
    /// Inverter. Pins: `A`, `Y`.
    Inv,
    /// N-input AND. Pins: `A0..A{n-1}`, `Y`.
    And(u8),
    /// N-input OR.
    Or(u8),
    /// N-input NAND.
    Nand(u8),
    /// N-input NOR.
    Nor(u8),
    /// N-input XOR (odd parity).
    Xor(u8),
    /// N-input XNOR (even parity).
    Xnor(u8),
    /// 2:1 multiplexer. Pins: `D0`, `D1`, `S`, `Y` — `Y = S ? D1 : D0`.
    Mux2,
    /// Rising-edge D flip-flop. Pins: `D`, `CK`, `Q`.
    Dff,
    /// Rising-edge D flip-flop with synchronous enable ("enabled clock",
    /// paper Fig. 2(a)). Pins: `D`, `EN`, `CK`, `Q` — loads `D` when `EN`.
    DffEn,
    /// Active-high (transparent-high) D latch. Pins: `D`, `G`, `Q`.
    LatchH,
    /// Active-low (transparent-low) D latch. Pins: `D`, `G`, `Q`.
    LatchL,
    /// Conventional integrated clock-gating cell (paper Fig. 3(c0)):
    /// an active-low latch on `EN` plus an AND.
    /// Pins: `EN`, `CK`, `GCK` — `GCK = CK & latch(EN, transparent when !CK)`.
    Icg,
    /// Modified ICG for `p2` latches (paper Fig. 3(c1), modification M1):
    /// the enable latch is clocked by `p3` instead of the inverted `p2`,
    /// removing the internal inverter.
    /// Pins: `EN`, `P3`, `CK`, `GCK` — `GCK = CK & latch(EN, transparent when P3)`.
    IcgM1,
    /// Latch-free ICG (paper Fig. 3(c2), modification M2), legal when the
    /// enable cone guarantees stability during the gated phase.
    /// Pins: `EN`, `CK`, `GCK` — `GCK = CK & EN`.
    IcgM2,
}

/// Maximum supported arity of multi-input gates.
pub const MAX_ARITY: u8 = 16;

impl CellKind {
    /// Arity payload for multi-input gates, `None` otherwise.
    fn arity(self) -> Option<u8> {
        match self {
            CellKind::And(n)
            | CellKind::Or(n)
            | CellKind::Nand(n)
            | CellKind::Nor(n)
            | CellKind::Xor(n)
            | CellKind::Xnor(n) => Some(n),
            _ => None,
        }
    }

    /// Total number of pins (inputs + the single output).
    pub fn pin_count(self) -> usize {
        match self {
            CellKind::Const0 | CellKind::Const1 => 1,
            CellKind::Buf | CellKind::ClkBuf | CellKind::Inv => 2,
            CellKind::Mux2 => 4,
            CellKind::Dff => 3,
            CellKind::DffEn => 4,
            CellKind::LatchH | CellKind::LatchL => 3,
            CellKind::Icg => 3,
            CellKind::IcgM1 => 4,
            CellKind::IcgM2 => 3,
            k => k.arity().expect("arity kind") as usize + 1,
        }
    }

    /// Index of the output pin (always the last pin).
    pub fn output_pin(self) -> usize {
        self.pin_count() - 1
    }

    /// Number of input pins.
    pub fn input_count(self) -> usize {
        self.pin_count() - 1
    }

    /// Static definition of pin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.pin_count()`.
    pub fn pin_def(self, i: usize) -> PinDef {
        let n = self.pin_count();
        assert!(i < n, "pin index {i} out of range for {self:?}");
        if i == n - 1 {
            return match self {
                CellKind::Icg | CellKind::IcgM1 | CellKind::IcgM2 | CellKind::ClkBuf => OUT_CLK,
                _ => OUT,
            };
        }
        match self {
            CellKind::Mux2 => {
                if i == 2 {
                    IN_SEL
                } else {
                    IN_DATA
                }
            }
            CellKind::Dff => {
                if i == 1 {
                    IN_CLK
                } else {
                    IN_DATA
                }
            }
            CellKind::DffEn => match i {
                1 => IN_EN,
                2 => IN_CLK,
                _ => IN_DATA,
            },
            CellKind::LatchH | CellKind::LatchL => {
                if i == 1 {
                    IN_CLK
                } else {
                    IN_DATA
                }
            }
            CellKind::Icg | CellKind::IcgM2 => {
                if i == 0 {
                    IN_EN
                } else {
                    IN_CLK
                }
            }
            CellKind::IcgM1 => {
                if i == 0 {
                    IN_EN
                } else {
                    IN_CLK
                }
            }
            _ => IN_DATA,
        }
    }

    /// Human-readable name of pin `i` (used by the Verilog writer).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.pin_count()`.
    pub fn pin_name(self, i: usize) -> String {
        let n = self.pin_count();
        assert!(i < n, "pin index {i} out of range for {self:?}");
        match self {
            CellKind::Const0 | CellKind::Const1 => "Y".to_owned(),
            CellKind::Buf | CellKind::ClkBuf | CellKind::Inv => {
                if i == 0 { "A" } else { "Y" }.to_owned()
            }
            CellKind::Mux2 => ["D0", "D1", "S", "Y"][i].to_owned(),
            CellKind::Dff => ["D", "CK", "Q"][i].to_owned(),
            CellKind::DffEn => ["D", "EN", "CK", "Q"][i].to_owned(),
            CellKind::LatchH | CellKind::LatchL => ["D", "G", "Q"][i].to_owned(),
            CellKind::Icg | CellKind::IcgM2 => ["EN", "CK", "GCK"][i].to_owned(),
            CellKind::IcgM1 => ["EN", "P3", "CK", "GCK"][i].to_owned(),
            _ => {
                if i == n - 1 {
                    "Y".to_owned()
                } else {
                    format!("A{i}")
                }
            }
        }
    }

    /// Index of the clock pin for sequential and clock-gating cells.
    ///
    /// For [`CellKind::IcgM1`] this is the `CK` pin (the gated phase);
    /// its auxiliary `P3` pin is index 1.
    pub fn clock_pin(self) -> Option<usize> {
        match self {
            CellKind::Dff => Some(1),
            CellKind::DffEn => Some(2),
            CellKind::LatchH | CellKind::LatchL => Some(1),
            CellKind::Icg | CellKind::IcgM2 => Some(1),
            CellKind::IcgM1 => Some(2),
            _ => None,
        }
    }

    /// Index of the `D` data pin for storage cells.
    pub fn data_pin(self) -> Option<usize> {
        match self {
            CellKind::Dff | CellKind::DffEn | CellKind::LatchH | CellKind::LatchL => Some(0),
            _ => None,
        }
    }

    /// Index of the enable pin for enabled FFs and clock-gating cells.
    pub fn enable_pin(self) -> Option<usize> {
        match self {
            CellKind::DffEn => Some(1),
            CellKind::Icg | CellKind::IcgM1 | CellKind::IcgM2 => Some(0),
            _ => None,
        }
    }

    /// `true` for purely combinational kinds (constants count as
    /// combinational sources).
    pub fn is_comb(self) -> bool {
        !self.is_storage() && !self.is_clock_gate()
    }

    /// `true` for flip-flops.
    pub fn is_ff(self) -> bool {
        matches!(self, CellKind::Dff | CellKind::DffEn)
    }

    /// `true` for level-sensitive latches.
    pub fn is_latch(self) -> bool {
        matches!(self, CellKind::LatchH | CellKind::LatchL)
    }

    /// `true` for state-holding cells (FFs and latches).
    pub fn is_storage(self) -> bool {
        self.is_ff() || self.is_latch()
    }

    /// `true` for clock-gating cells.
    pub fn is_clock_gate(self) -> bool {
        matches!(self, CellKind::Icg | CellKind::IcgM1 | CellKind::IcgM2)
    }

    /// Evaluate a purely combinational kind on boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if the kind is not combinational or if `inputs.len()` does not
    /// match [`CellKind::input_count`].
    pub fn eval_comb(self, inputs: &[bool]) -> bool {
        assert!(self.is_comb(), "eval_comb on non-combinational {self:?}");
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "wrong input count for {self:?}"
        );
        match self {
            CellKind::Const0 => false,
            CellKind::Const1 => true,
            CellKind::Buf | CellKind::ClkBuf => inputs[0],
            CellKind::Inv => !inputs[0],
            CellKind::And(_) => inputs.iter().all(|&b| b),
            CellKind::Or(_) => inputs.iter().any(|&b| b),
            CellKind::Nand(_) => !inputs.iter().all(|&b| b),
            CellKind::Nor(_) => !inputs.iter().any(|&b| b),
            CellKind::Xor(_) => inputs.iter().fold(false, |a, &b| a ^ b),
            CellKind::Xnor(_) => !inputs.iter().fold(false, |a, &b| a ^ b),
            CellKind::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            _ => unreachable!(),
        }
    }

    /// Check that the kind is well-formed (arities in range).
    pub fn validate(self) -> bool {
        match self.arity() {
            Some(n) => (2..=MAX_ARITY).contains(&n),
            None => true,
        }
    }

    /// Canonical library cell name, e.g. `AND4_X1`, `DFF_X1`.
    pub fn lib_name(self) -> String {
        match self {
            CellKind::Const0 => "TIELO".to_owned(),
            CellKind::Const1 => "TIEHI".to_owned(),
            CellKind::Buf => "BUF_X1".to_owned(),
            CellKind::ClkBuf => "CLKBUF_X4".to_owned(),
            CellKind::Inv => "INV_X1".to_owned(),
            CellKind::And(n) => format!("AND{n}_X1"),
            CellKind::Or(n) => format!("OR{n}_X1"),
            CellKind::Nand(n) => format!("NAND{n}_X1"),
            CellKind::Nor(n) => format!("NOR{n}_X1"),
            CellKind::Xor(n) => format!("XOR{n}_X1"),
            CellKind::Xnor(n) => format!("XNOR{n}_X1"),
            CellKind::Mux2 => "MUX2_X1".to_owned(),
            CellKind::Dff => "DFF_X1".to_owned(),
            CellKind::DffEn => "DFFEN_X1".to_owned(),
            CellKind::LatchH => "LATCHH_X1".to_owned(),
            CellKind::LatchL => "LATCHL_X1".to_owned(),
            CellKind::Icg => "ICG_X1".to_owned(),
            CellKind::IcgM1 => "ICGM1_X1".to_owned(),
            CellKind::IcgM2 => "ICGM2_X1".to_owned(),
        }
    }

    /// Parse a canonical library cell name produced by [`CellKind::lib_name`].
    pub fn from_lib_name(name: &str) -> Option<CellKind> {
        let base = name
            .strip_suffix("_X1")
            .or(name.strip_suffix("_X4"))
            .unwrap_or(name);
        let fixed = match base {
            "TIELO" => Some(CellKind::Const0),
            "TIEHI" => Some(CellKind::Const1),
            "BUF" => Some(CellKind::Buf),
            "CLKBUF" => Some(CellKind::ClkBuf),
            "INV" => Some(CellKind::Inv),
            "MUX2" => Some(CellKind::Mux2),
            "DFF" => Some(CellKind::Dff),
            "DFFEN" => Some(CellKind::DffEn),
            "LATCHH" => Some(CellKind::LatchH),
            "LATCHL" => Some(CellKind::LatchL),
            "ICG" => Some(CellKind::Icg),
            "ICGM1" => Some(CellKind::IcgM1),
            "ICGM2" => Some(CellKind::IcgM2),
            _ => None,
        };
        if fixed.is_some() {
            return fixed;
        }
        for (prefix, ctor) in [
            ("AND", CellKind::And as fn(u8) -> CellKind),
            ("NAND", CellKind::Nand),
            ("XNOR", CellKind::Xnor),
            ("XOR", CellKind::Xor),
            ("NOR", CellKind::Nor),
            ("OR", CellKind::Or),
        ] {
            if let Some(rest) = base.strip_prefix(prefix) {
                if let Ok(n) = rest.parse::<u8>() {
                    let kind = ctor(n);
                    if kind.validate() {
                        return Some(kind);
                    }
                }
            }
        }
        None
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.lib_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_counts_and_output_last() {
        for kind in [
            CellKind::Const0,
            CellKind::Const1,
            CellKind::Buf,
            CellKind::ClkBuf,
            CellKind::Inv,
            CellKind::And(3),
            CellKind::Or(2),
            CellKind::Nand(4),
            CellKind::Nor(2),
            CellKind::Xor(2),
            CellKind::Xnor(5),
            CellKind::Mux2,
            CellKind::Dff,
            CellKind::DffEn,
            CellKind::LatchH,
            CellKind::LatchL,
            CellKind::Icg,
            CellKind::IcgM1,
            CellKind::IcgM2,
        ] {
            let n = kind.pin_count();
            assert!(n >= 1);
            assert_eq!(kind.output_pin(), n - 1);
            assert_eq!(kind.pin_def(n - 1).dir, PinDir::Output);
            for i in 0..n - 1 {
                assert_eq!(kind.pin_def(i).dir, PinDir::Input, "{kind:?} pin {i}");
            }
            // Pin names must be unique.
            let names: Vec<_> = (0..n).map(|i| kind.pin_name(i)).collect();
            let mut dedup = names.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), names.len(), "{kind:?} duplicate pin names");
        }
    }

    #[test]
    fn classification() {
        assert!(CellKind::And(2).is_comb());
        assert!(!CellKind::Dff.is_comb());
        assert!(CellKind::Dff.is_ff());
        assert!(CellKind::DffEn.is_ff());
        assert!(CellKind::LatchH.is_latch());
        assert!(!CellKind::LatchH.is_ff());
        assert!(CellKind::Icg.is_clock_gate());
        assert!(CellKind::IcgM1.is_clock_gate());
        assert!(!CellKind::Icg.is_comb());
        assert!(CellKind::Const0.is_comb());
    }

    #[test]
    fn clock_data_enable_pins() {
        assert_eq!(CellKind::Dff.clock_pin(), Some(1));
        assert_eq!(CellKind::DffEn.clock_pin(), Some(2));
        assert_eq!(CellKind::DffEn.enable_pin(), Some(1));
        assert_eq!(CellKind::LatchL.clock_pin(), Some(1));
        assert_eq!(CellKind::Icg.clock_pin(), Some(1));
        assert_eq!(CellKind::IcgM1.clock_pin(), Some(2));
        assert_eq!(CellKind::IcgM1.enable_pin(), Some(0));
        assert_eq!(CellKind::Dff.data_pin(), Some(0));
        assert_eq!(CellKind::And(2).clock_pin(), None);
    }

    #[test]
    fn eval_gates() {
        assert!(CellKind::And(3).eval_comb(&[true, true, true]));
        assert!(!CellKind::And(3).eval_comb(&[true, false, true]));
        assert!(CellKind::Nand(2).eval_comb(&[true, false]));
        assert!(CellKind::Or(2).eval_comb(&[false, true]));
        assert!(!CellKind::Nor(2).eval_comb(&[false, true]));
        assert!(CellKind::Xor(3).eval_comb(&[true, true, true]));
        assert!(!CellKind::Xor(2).eval_comb(&[true, true]));
        assert!(CellKind::Xnor(2).eval_comb(&[true, true]));
        assert!(CellKind::Inv.eval_comb(&[false]));
        assert!(CellKind::Buf.eval_comb(&[true]));
        assert!(!CellKind::Const0.eval_comb(&[]));
        assert!(CellKind::Const1.eval_comb(&[]));
        // Mux: Y = S ? D1 : D0
        assert!(CellKind::Mux2.eval_comb(&[true, false, false]));
        assert!(!CellKind::Mux2.eval_comb(&[true, false, true]));
    }

    #[test]
    fn lib_name_roundtrip() {
        for kind in [
            CellKind::Const0,
            CellKind::Buf,
            CellKind::ClkBuf,
            CellKind::Inv,
            CellKind::And(8),
            CellKind::Nor(3),
            CellKind::Xnor(2),
            CellKind::Or(2),
            CellKind::Xor(4),
            CellKind::Nand(2),
            CellKind::Mux2,
            CellKind::Dff,
            CellKind::DffEn,
            CellKind::LatchH,
            CellKind::LatchL,
            CellKind::Icg,
            CellKind::IcgM1,
            CellKind::IcgM2,
        ] {
            assert_eq!(CellKind::from_lib_name(&kind.lib_name()), Some(kind));
        }
        assert_eq!(CellKind::from_lib_name("FOO_X1"), None);
        assert_eq!(CellKind::from_lib_name("AND99_X1"), None);
    }

    #[test]
    fn validate_arity() {
        assert!(CellKind::And(2).validate());
        assert!(CellKind::And(16).validate());
        assert!(!CellKind::And(1).validate());
        assert!(!CellKind::And(17).validate());
        assert!(CellKind::Dff.validate());
    }
}
