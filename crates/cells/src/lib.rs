//! Standard-cell library model for the `triphase` toolkit.
//!
//! This crate defines the *technology view* of a design: which cell kinds
//! exist ([`CellKind`]), what pins they have ([`PinDef`]), and their
//! electrical characteristics ([`LibCell`], [`Library`]).
//!
//! The paper evaluates on an industrial 28-nm FDSOI library which we cannot
//! ship; [`Library::synthetic_28nm`] provides a synthetic library whose
//! *relative* parameters encode the paper's premise — latches are roughly
//! half the area and clock-pin capacitance of flip-flops — so the conversion
//! results keep the same shape (see DESIGN.md §1).
//!
//! # Examples
//!
//! ```
//! use triphase_cells::{CellKind, Library};
//!
//! let lib = Library::synthetic_28nm();
//! let dff = lib.cell(CellKind::Dff);
//! let latch = lib.cell(CellKind::LatchH);
//! assert!(latch.area < dff.area);
//! assert!(latch.clock_pin_cap() < dff.clock_pin_cap());
//! ```

mod kind;
pub mod liberty;
mod library;

pub use kind::{CellKind, PinClass, PinDef, PinDir};
pub use library::{LibCell, Library, TimingParams};

/// Supply voltage (volts) assumed by the synthetic library.
pub const VDD: f64 = 0.90;
