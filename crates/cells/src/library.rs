//! Electrical characterization of cells and the synthetic library.
//!
//! Delays use a linear load model: `delay_ps = intrinsic_ps + resistance *
//! load_fF`. Power uses per-toggle internal energy (fJ) plus net switching
//! energy computed by the power crate from capacitances (fF) at [`crate::VDD`].

use crate::kind::{CellKind, PinClass, PinDir};

/// Sequential timing parameters of a storage cell (picoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimingParams {
    /// Setup time relative to the capturing clock edge.
    pub setup_ps: f64,
    /// Hold time relative to the capturing clock edge.
    pub hold_ps: f64,
    /// Clock-to-Q (or enable-to-Q for a transparent latch) delay.
    pub clk_to_q_ps: f64,
    /// D-to-Q delay while transparent (latches only; 0 for FFs).
    pub d_to_q_ps: f64,
}

/// Electrical view of one library cell.
#[derive(Debug, Clone, PartialEq)]
pub struct LibCell {
    /// The logical kind this cell implements.
    pub kind: CellKind,
    /// Cell area in µm².
    pub area: f64,
    /// Capacitance of ordinary data/enable/select input pins (fF).
    pub input_cap_ff: f64,
    /// Capacitance of clock-class input pins (fF); falls back to
    /// `input_cap_ff` for kinds without clock pins.
    pub clock_cap_ff: f64,
    /// Intrinsic delay of the input-to-output arc (ps).
    pub intrinsic_ps: f64,
    /// Output drive resistance (ps per fF of load).
    pub res_ps_per_ff: f64,
    /// Internal energy dissipated per output transition (fJ).
    pub internal_energy_fj: f64,
    /// Internal energy dissipated per *clock* transition even when the
    /// output does not toggle (fJ); nonzero for sequential/clock cells.
    pub clock_energy_fj: f64,
    /// Leakage power (nW).
    pub leakage_nw: f64,
    /// Sequential constraints; zeroed for combinational cells.
    pub timing: TimingParams,
}

impl LibCell {
    /// Capacitance presented by input pin `pin` (fF).
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range or is an output pin.
    pub fn pin_cap(&self, pin: usize) -> f64 {
        let def = self.kind.pin_def(pin);
        assert_eq!(def.dir, PinDir::Input, "pin_cap on output pin");
        match def.class {
            PinClass::Clock => self.clock_cap_ff,
            _ => self.input_cap_ff,
        }
    }

    /// Clock-pin capacitance (fF); for cells without a clock pin this is the
    /// plain input capacitance.
    pub fn clock_pin_cap(&self) -> f64 {
        self.clock_cap_ff
    }

    /// Worst-case gate delay driving `load_ff` femtofarads (ps).
    pub fn delay_ps(&self, load_ff: f64) -> f64 {
        self.intrinsic_ps + self.res_ps_per_ff * load_ff
    }
}

/// A collection of characterized cells, one per [`CellKind`] instance used.
///
/// Kinds with arity payloads are characterized parametrically: caps, area,
/// and delay grow with arity.
#[derive(Debug, Clone)]
pub struct Library {
    /// Library name (appears in reports).
    pub name: String,
    params: SynthParams,
}

/// Knobs of the synthetic library generator.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SynthParams {
    inv_area: f64,
    inv_cap: f64,
    inv_delay: f64,
    inv_res: f64,
    inv_energy: f64,
    inv_leak: f64,
}

impl Library {
    /// Synthetic 28-nm-class library.
    ///
    /// Calibration targets (encoding the paper's premises):
    /// - latch area ≈ 0.55 × DFF area,
    /// - latch clock-pin cap ≈ 0.54 × DFF clock-pin cap,
    /// - enabled FF (`DFFEN`) costs an extra internal mux,
    /// - `ICGM1` saves the conventional ICG's inverter, `ICGM2` additionally
    ///   drops the internal latch.
    pub fn synthetic_28nm() -> Library {
        Library {
            name: "synth28".to_owned(),
            params: SynthParams {
                inv_area: 0.49,
                inv_cap: 0.90,
                inv_delay: 9.0,
                inv_res: 4.0,
                inv_energy: 0.12,
                inv_leak: 1.4,
            },
        }
    }

    /// Characterization of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` fails [`CellKind::validate`].
    pub fn cell(&self, kind: CellKind) -> LibCell {
        assert!(kind.validate(), "invalid cell kind {kind:?}");
        self.characterize(kind)
    }

    fn characterize(&self, kind: CellKind) -> LibCell {
        let p = self.params;
        // Helper to scale relative to the unit inverter.
        let mk = |area_x: f64, cap_x: f64, delay_x: f64, res_x: f64, energy_x: f64, leak_x: f64| {
            LibCell {
                kind,
                area: p.inv_area * area_x,
                input_cap_ff: p.inv_cap * cap_x,
                clock_cap_ff: p.inv_cap * cap_x,
                intrinsic_ps: p.inv_delay * delay_x,
                res_ps_per_ff: p.inv_res * res_x,
                internal_energy_fj: p.inv_energy * energy_x,
                clock_energy_fj: 0.0,
                leakage_nw: p.inv_leak * leak_x,
                timing: TimingParams::default(),
            }
        };
        let narity = |n: u8| n as f64;
        match kind {
            CellKind::Const0 | CellKind::Const1 => {
                let mut c = mk(0.5, 0.0, 0.0, 4.0, 0.0, 0.3);
                c.input_cap_ff = 0.0;
                c
            }
            CellKind::Inv => mk(1.0, 1.0, 1.0, 1.0, 1.0, 1.0),
            CellKind::Buf => mk(1.6, 1.05, 2.0, 0.8, 1.6, 1.6),
            // Clock buffer: strong drive, larger input cap.
            CellKind::ClkBuf => mk(3.2, 1.6, 1.8, 0.25, 3.0, 3.4),
            CellKind::And(n) | CellKind::Or(n) => {
                let n = narity(n);
                mk(
                    1.2 + 0.45 * n,
                    1.05,
                    1.6 + 0.35 * n,
                    1.1,
                    1.2 + 0.25 * n,
                    1.2 + 0.4 * n,
                )
            }
            CellKind::Nand(n) | CellKind::Nor(n) => {
                let n = narity(n);
                mk(
                    0.7 + 0.4 * n,
                    1.1,
                    1.0 + 0.3 * n,
                    1.15,
                    1.0 + 0.22 * n,
                    0.9 + 0.38 * n,
                )
            }
            CellKind::Xor(n) | CellKind::Xnor(n) => {
                let n = narity(n);
                mk(
                    1.4 + 1.2 * n,
                    2.0,
                    2.2 + 1.1 * n,
                    1.4,
                    2.4 + 0.8 * n,
                    1.6 + 0.9 * n,
                )
            }
            CellKind::Mux2 => mk(3.1, 1.3, 2.9, 1.2, 2.2, 2.6),
            CellKind::Dff => {
                let mut c = mk(9.2, 1.1, 6.2, 1.1, 7.0, 8.6);
                c.clock_cap_ff = 2.10;
                c.clock_energy_fj = 0.85;
                c.timing = TimingParams {
                    setup_ps: 32.0,
                    hold_ps: 8.0,
                    clk_to_q_ps: 58.0,
                    d_to_q_ps: 0.0,
                };
                c
            }
            CellKind::DffEn => {
                // DFF plus internal recirculation mux.
                let mut c = mk(12.4, 1.1, 6.6, 1.1, 7.6, 11.0);
                c.clock_cap_ff = 2.20;
                c.clock_energy_fj = 0.92;
                c.timing = TimingParams {
                    setup_ps: 40.0,
                    hold_ps: 8.0,
                    clk_to_q_ps: 58.0,
                    d_to_q_ps: 0.0,
                };
                c
            }
            CellKind::LatchH | CellKind::LatchL => {
                // A latch is half of a master-slave FF: internal energy
                // lands well below half (no internal clock inverter pair,
                // single stage) — this is what drives the paper's large
                // "Seq" savings on the CPU rows.
                let mut c = mk(5.05, 1.0, 4.6, 1.1, 2.8, 4.7);
                c.clock_cap_ff = 1.10;
                c.clock_energy_fj = 0.30;
                c.timing = TimingParams {
                    setup_ps: 24.0,
                    hold_ps: 6.0,
                    clk_to_q_ps: 44.0,
                    d_to_q_ps: 36.0,
                };
                c
            }
            CellKind::Icg => {
                // Latch + AND + inverter.
                let mut c = mk(6.6, 0.95, 4.4, 0.5, 4.4, 6.2);
                c.clock_cap_ff = 2.20;
                c.clock_energy_fj = 0.95;
                c.timing = TimingParams {
                    setup_ps: 36.0,
                    hold_ps: 6.0,
                    clk_to_q_ps: 36.0,
                    d_to_q_ps: 0.0,
                };
                c
            }
            CellKind::IcgM1 => {
                // M1: conventional ICG minus the internal inverter; the
                // enable latch clock comes in on the extra P3 pin.
                let mut c = mk(5.9, 0.95, 4.1, 0.5, 4.0, 5.6);
                c.clock_cap_ff = 2.00;
                c.clock_energy_fj = 0.80;
                c.timing = TimingParams {
                    setup_ps: 36.0,
                    hold_ps: 6.0,
                    clk_to_q_ps: 34.0,
                    d_to_q_ps: 0.0,
                };
                c
            }
            CellKind::IcgM2 => {
                // M2: a bare AND gate used as a clock gate.
                let mut c = mk(2.1, 0.95, 2.3, 0.55, 1.7, 2.0);
                c.clock_cap_ff = 1.60;
                c.clock_energy_fj = 0.30;
                c.timing = TimingParams {
                    setup_ps: 0.0,
                    hold_ps: 0.0,
                    clk_to_q_ps: 20.0,
                    d_to_q_ps: 0.0,
                };
                c
            }
        }
    }

    /// Total area of a bag of kinds (µm²) — convenience for reports.
    pub fn area_of<I: IntoIterator<Item = CellKind>>(&self, kinds: I) -> f64 {
        kinds.into_iter().map(|k| self.cell(k).area).sum()
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::synthetic_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_vs_ff_ratios_match_premise() {
        let lib = Library::synthetic_28nm();
        let dff = lib.cell(CellKind::Dff);
        let latch = lib.cell(CellKind::LatchH);
        let ratio_area = latch.area / dff.area;
        let ratio_ckcap = latch.clock_cap_ff / dff.clock_cap_ff;
        assert!(
            (0.45..=0.65).contains(&ratio_area),
            "latch/FF area ratio {ratio_area}"
        );
        assert!(
            (0.45..=0.65).contains(&ratio_ckcap),
            "latch/FF clock cap ratio {ratio_ckcap}"
        );
        // Two latches cost more than one FF (so master-slave loses on area).
        assert!(2.0 * latch.area > dff.area);
    }

    #[test]
    fn icg_modifications_get_cheaper() {
        let lib = Library::synthetic_28nm();
        let icg = lib.cell(CellKind::Icg);
        let m1 = lib.cell(CellKind::IcgM1);
        let m2 = lib.cell(CellKind::IcgM2);
        assert!(m1.area < icg.area, "M1 drops the inverter");
        assert!(m2.area < m1.area, "M2 additionally drops the latch");
        assert!(m1.clock_energy_fj < icg.clock_energy_fj);
        assert!(m2.clock_energy_fj < m1.clock_energy_fj);
    }

    #[test]
    fn delay_monotone_in_load_and_arity() {
        let lib = Library::synthetic_28nm();
        let and2 = lib.cell(CellKind::And(2));
        let and8 = lib.cell(CellKind::And(8));
        assert!(and2.delay_ps(2.0) > and2.delay_ps(0.5));
        assert!(and8.intrinsic_ps > and2.intrinsic_ps);
        assert!(and8.area > and2.area);
    }

    #[test]
    fn pin_caps_by_class() {
        let lib = Library::synthetic_28nm();
        let dff = lib.cell(CellKind::Dff);
        // D pin is data, CK pin is clock.
        assert_eq!(dff.pin_cap(0), dff.input_cap_ff);
        assert_eq!(dff.pin_cap(1), dff.clock_cap_ff);
        let icg = lib.cell(CellKind::IcgM1);
        assert_eq!(icg.pin_cap(0), icg.input_cap_ff); // EN
        assert_eq!(icg.pin_cap(1), icg.clock_cap_ff); // P3
        assert_eq!(icg.pin_cap(2), icg.clock_cap_ff); // CK
    }

    #[test]
    #[should_panic(expected = "pin_cap on output pin")]
    fn pin_cap_rejects_output() {
        let lib = Library::synthetic_28nm();
        lib.cell(CellKind::Inv).pin_cap(1);
    }

    #[test]
    fn dffen_costlier_than_dff() {
        let lib = Library::synthetic_28nm();
        assert!(lib.cell(CellKind::DffEn).area > lib.cell(CellKind::Dff).area);
    }

    #[test]
    fn area_of_sums() {
        let lib = Library::synthetic_28nm();
        let total = lib.area_of([CellKind::Inv, CellKind::Dff]);
        let expect = lib.cell(CellKind::Inv).area + lib.cell(CellKind::Dff).area;
        assert!((total - expect).abs() < 1e-12);
    }
}
