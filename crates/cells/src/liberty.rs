//! Liberty-format (`.lib`) export of a [`crate::Library`].
//!
//! Emits a minimal but well-formed Liberty description (areas, pin
//! directions and capacitances, linear timing arcs, leakage) so the
//! synthetic library can be inspected with standard EDA tooling or
//! diffed against a real characterization.

use crate::kind::{CellKind, PinDir};
use crate::library::Library;
use std::fmt::Write as _;

/// All cell kinds exported by [`to_liberty`] (one arity per multi-input
/// family at sizes 2 and 4, plus every fixed-interface cell).
pub fn exported_kinds() -> Vec<CellKind> {
    let mut kinds = vec![
        CellKind::Const0,
        CellKind::Const1,
        CellKind::Buf,
        CellKind::ClkBuf,
        CellKind::Inv,
        CellKind::Mux2,
        CellKind::Dff,
        CellKind::DffEn,
        CellKind::LatchH,
        CellKind::LatchL,
        CellKind::Icg,
        CellKind::IcgM1,
        CellKind::IcgM2,
    ];
    for n in [2u8, 3, 4] {
        kinds.extend([
            CellKind::And(n),
            CellKind::Or(n),
            CellKind::Nand(n),
            CellKind::Nor(n),
            CellKind::Xor(n),
            CellKind::Xnor(n),
        ]);
    }
    kinds
}

/// Render the library in Liberty syntax.
pub fn to_liberty(lib: &Library) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library ({}) {{", lib.name);
    let _ = writeln!(out, "  time_unit : \"1ps\";");
    let _ = writeln!(out, "  capacitive_load_unit (1, ff);");
    let _ = writeln!(out, "  leakage_power_unit : \"1nW\";");
    let _ = writeln!(out, "  voltage_unit : \"1V\";");
    let _ = writeln!(out, "  nom_voltage : {:.2};", crate::VDD);
    for kind in exported_kinds() {
        let cell = lib.cell(kind);
        let _ = writeln!(out, "  cell ({}) {{", kind.lib_name());
        let _ = writeln!(out, "    area : {:.3};", cell.area);
        let _ = writeln!(out, "    cell_leakage_power : {:.3};", cell.leakage_nw);
        if kind.is_ff() {
            let _ = writeln!(
                out,
                "    ff (IQ, IQN) {{ clocked_on : \"CK\"; next_state : \"D\"; }}"
            );
        } else if kind.is_latch() {
            let _ = writeln!(
                out,
                "    latch (IQ, IQN) {{ enable : \"G\"; data_in : \"D\"; }}"
            );
        } else if kind.is_clock_gate() {
            let _ = writeln!(out, "    clock_gating_integrated_cell : \"latch_posedge\";");
        }
        for pin in 0..kind.pin_count() {
            let def = kind.pin_def(pin);
            let name = kind.pin_name(pin);
            let _ = writeln!(out, "    pin ({name}) {{");
            match def.dir {
                PinDir::Input => {
                    let _ = writeln!(out, "      direction : input;");
                    let _ = writeln!(out, "      capacitance : {:.3};", cell.pin_cap(pin));
                    if kind.clock_pin() == Some(pin) {
                        let _ = writeln!(out, "      clock : true;");
                    }
                }
                PinDir::Output => {
                    let _ = writeln!(out, "      direction : output;");
                    let _ = writeln!(out, "      timing () {{");
                    let _ = writeln!(
                        out,
                        "        /* linear model: delay = {:.2} + {:.2} * load */",
                        cell.intrinsic_ps, cell.res_ps_per_ff
                    );
                    let _ = writeln!(
                        out,
                        "        cell_rise (scalar) {{ values (\"{:.2}\"); }}",
                        cell.intrinsic_ps
                    );
                    let _ = writeln!(
                        out,
                        "        cell_fall (scalar) {{ values (\"{:.2}\"); }}",
                        cell.intrinsic_ps
                    );
                    let _ = writeln!(out, "      }}");
                }
            }
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_every_kind_once() {
        let lib = Library::synthetic_28nm();
        let text = to_liberty(&lib);
        for kind in exported_kinds() {
            let marker = format!("cell ({}) {{", kind.lib_name());
            assert_eq!(
                text.matches(&marker).count(),
                1,
                "{marker} missing or duplicated"
            );
        }
        assert!(text.starts_with("library (synth28)"));
    }

    #[test]
    fn braces_balance() {
        let lib = Library::synthetic_28nm();
        let text = to_liberty(&lib);
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn sequential_cells_marked() {
        let lib = Library::synthetic_28nm();
        let text = to_liberty(&lib);
        assert!(text.contains("clocked_on : \"CK\""));
        assert!(text.contains("enable : \"G\""));
        assert!(text.contains("clock_gating_integrated_cell"));
        assert!(text.contains("clock : true;"));
    }
}
