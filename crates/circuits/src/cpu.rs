//! Parameterized pipelined CPU generator ("TinyRISC") with a
//! cycle-accurate software golden model.
//!
//! Stands in for the paper's Plasma / RISC-V Rocket / ARM-M0 cores (see
//! DESIGN.md §1): the conversion results on CPUs are driven by pipeline
//! structure — few FFs with combinational feedback, a large register file
//! behind write enables (clock-gating material), always-on counters — all
//! of which this generator reproduces at three sizes.
//!
//! **Architecture = implementation.** The ISA semantics are *defined by
//! the pipeline* (exposed branch delay slots, delayed register
//! write-back); [`CpuModel`] replicates the pipeline cycle for cycle, and
//! the gate level is equivalence-tested against it.
//!
//! The instruction ROM holds two program segments with different
//! instruction mixes ("dhrystone-like" in the lower half,
//! "coremark-like" in the upper half); the `mode` input pins the fetch
//! address MSB, so the *same netlist* runs either workload — exactly what
//! the paper's Fig. 4 needs.

use crate::iscas::SplitMix;
use triphase_netlist::{Builder, CellKind, ClockSpec, NetId, Netlist, Word};

/// Opcodes (field `instr[3:0]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Op {
    Add = 0,
    Sub = 1,
    And = 2,
    Or = 3,
    Xor = 4,
    Slt = 5,
    Shl1 = 6,
    Shr1 = 7,
    Addi = 8,
    Ldi = 9,
    In = 10,
    Out = 11,
    Beqz = 12,
    Jmp = 13,
    Nop = 15,
}

impl Op {
    fn from_bits(bits: u32) -> Op {
        match bits & 0xf {
            0 => Op::Add,
            1 => Op::Sub,
            2 => Op::And,
            3 => Op::Or,
            4 => Op::Xor,
            5 => Op::Slt,
            6 => Op::Shl1,
            7 => Op::Shr1,
            8 => Op::Addi,
            9 => Op::Ldi,
            10 => Op::In,
            11 => Op::Out,
            12 => Op::Beqz,
            13 => Op::Jmp,
            _ => Op::Nop,
        }
    }

    fn writes_rd(self) -> bool {
        (self as u8) <= 10
    }
}

/// CPU configuration.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Design name.
    pub name: &'static str,
    /// Number of architectural registers (power of two, ≤ 32).
    pub nregs: usize,
    /// Register width in bits (≤ 32).
    pub width: usize,
    /// Pipeline depth: 3 (F/E/W) or 5 (F/D/E/M/W).
    pub stages: usize,
    /// Extra gated state registers (a write-gated shift chain), modeling
    /// CSR/TLB-ish side state; good multi-bit DDCG material.
    pub chain_regs: usize,
    /// Clock period (ps).
    pub period_ps: f64,
}

/// A 3-stage MIPS-class configuration (Plasma-like).
pub fn plasma_like() -> CpuConfig {
    CpuConfig {
        name: "plasma",
        nregs: 32,
        width: 32,
        stages: 3,
        chain_regs: 12,
        period_ps: 2000.0, // 500 MHz
    }
}

/// A 5-stage RV-class configuration (Rocket-lite).
pub fn rocket_lite() -> CpuConfig {
    CpuConfig {
        name: "riscv",
        nregs: 32,
        width: 32,
        stages: 5,
        chain_regs: 40,
        period_ps: 3000.0, // 333 MHz
    }
}

/// A compact 3-stage configuration (M0-like).
pub fn m0_like() -> CpuConfig {
    CpuConfig {
        name: "armm0",
        nregs: 16,
        width: 32,
        stages: 3,
        chain_regs: 24,
        period_ps: 3000.0, // 333 MHz
    }
}

/// Instruction-mix workload kinds (Fig. 4's benchmark axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Integer/branch heavy (the lower ROM segment).
    DhrystoneLike,
    /// Logic/shift/IO heavy (the upper ROM segment).
    CoremarkLike,
}

impl Workload {
    /// The `mode` input level selecting this workload's ROM segment.
    pub fn mode_bit(self) -> bool {
        matches!(self, Workload::CoremarkLike)
    }
}

const ROM_WORDS: usize = 256;
const PC_BITS: usize = 7; // plus the mode MSB

fn encode(op: Op, rd: u32, rs1: u32, rs2: u32, imm: u32) -> u32 {
    (op as u32 & 0xf)
        | ((rd & 0x1f) << 4)
        | ((rs1 & 0x1f) << 9)
        | ((rs2 & 0x1f) << 14)
        | ((imm & 0xff) << 24)
}

/// Generate the two-segment program ROM for a configuration.
pub fn generate_program(cfg: &CpuConfig, seed: u64) -> Vec<u32> {
    let mut rom = vec![encode(Op::Nop, 0, 0, 0, 0); ROM_WORDS];
    let mut rng = SplitMix(seed ^ 0xC0DE_C0DE_0000_0001);
    let half = ROM_WORDS / 2;
    for (seg, workload) in [
        (0usize, Workload::DhrystoneLike),
        (1, Workload::CoremarkLike),
    ] {
        let base = seg * half;
        for i in 0..half {
            let pick = rng.below(100);
            let rd = rng.below(cfg.nregs) as u32;
            let rs1 = rng.below(cfg.nregs) as u32;
            let rs2 = rng.below(cfg.nregs) as u32;
            let imm = (rng.next_u64() & 0xff) as u32;
            // Branch target inside the segment (7-bit field; mode supplies
            // the MSB).
            let tgt = rng.below(half) as u32;
            let instr = match workload {
                Workload::DhrystoneLike => match pick {
                    0..=24 => encode(Op::Add, rd, rs1, rs2, 0),
                    25..=34 => encode(Op::Sub, rd, rs1, rs2, 0),
                    35..=44 => encode(Op::And, rd, rs1, rs2, 0),
                    45..=52 => encode(Op::Or, rd, rs1, rs2, 0),
                    53..=64 => encode(Op::Beqz, 0, rs1, 0, tgt),
                    65..=74 => encode(Op::Ldi, rd, 0, 0, imm),
                    75..=84 => encode(Op::Addi, rd, rs1, 0, imm),
                    85..=91 => encode(Op::In, rd, rs1, 0, 0),
                    92..=95 => encode(Op::Out, 0, rs1, 0, 0),
                    _ => encode(Op::Slt, rd, rs1, rs2, 0),
                },
                Workload::CoremarkLike => match pick {
                    0..=19 => encode(Op::Xor, rd, rs1, rs2, 0),
                    20..=31 => encode(Op::Add, rd, rs1, rs2, 0),
                    32..=41 => encode(Op::Shl1, rd, rs1, 0, 0),
                    42..=51 => encode(Op::Shr1, rd, rs1, 0, 0),
                    52..=61 => encode(Op::Slt, rd, rs1, rs2, 0),
                    62..=69 => encode(Op::Beqz, 0, rs1, 0, tgt),
                    70..=79 => encode(Op::In, rd, rs1, 0, 0),
                    80..=87 => encode(Op::And, rd, rs1, rs2, 0),
                    88..=93 => encode(Op::Ldi, rd, 0, 0, imm),
                    _ => encode(Op::Out, 0, rs1, 0, 0),
                },
            };
            rom[base + i] = instr;
        }
        // Segment tail: jump back to the segment start.
        rom[base + half - 1] = encode(Op::Jmp, 0, 0, 0, 0);
    }
    rom
}

// ---- golden model -----------------------------------------------------------

/// Decoded fields used by both the model and the generator.
#[derive(Debug, Clone, Copy)]
struct Fields {
    op: Op,
    rd: usize,
    rs1: usize,
    rs2: usize,
    imm: u32,
    tgt: u32,
}

fn decode(instr: u32, nregs: usize) -> Fields {
    Fields {
        op: Op::from_bits(instr),
        rd: ((instr >> 4) as usize) & (nregs - 1),
        rs1: ((instr >> 9) as usize) & (nregs - 1),
        rs2: ((instr >> 14) as usize) & (nregs - 1),
        imm: (instr >> 24) & 0xff,
        tgt: (instr >> 24) & 0x7f,
    }
}

fn alu(op: Op, a: u32, b: u32, imm: u32, io_in: u32, mask: u32) -> u32 {
    (match op {
        Op::Add => a.wrapping_add(b),
        Op::Sub => a.wrapping_sub(b),
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Slt => u32::from((a & mask) < (b & mask)),
        Op::Shl1 => a << 1,
        Op::Shr1 => (a & mask) >> 1,
        Op::Addi => a.wrapping_add(imm),
        Op::Ldi => imm,
        Op::In => a ^ io_in,
        Op::Out => a,
        _ => 0,
    }) & mask
}

/// Cycle-accurate software model of the generated pipeline.
#[derive(Debug, Clone)]
pub struct CpuModel {
    cfg: CpuConfig,
    rom: Vec<u32>,
    mask: u32,
    /// Architectural + micro-architectural state.
    regs: Vec<u32>,
    pc: u32,
    // 3-stage: ir_e; 5-stage: ir_d plus decoded E-stage registers.
    ir_e: u32,
    ir_d: u32,
    e_a: u32,
    e_b: u32,
    e_instr: u32,
    // M stage (5-stage only).
    m_val: u32,
    m_rd: usize,
    m_wen: bool,
    m_out: bool,
    // WB stage.
    wb_val: u32,
    wb_rd: usize,
    wb_wen: bool,
    wb_out: bool,
    io_out: u32,
    cycle_ctr: u32,
    chain: Vec<u32>,
}

impl CpuModel {
    /// New model with all state zero (matching the simulator's reset).
    pub fn new(cfg: &CpuConfig, rom: Vec<u32>) -> CpuModel {
        assert!(cfg.nregs.is_power_of_two() && cfg.nregs <= 32);
        assert!(cfg.width <= 32 && cfg.width >= 8);
        assert!(cfg.stages == 3 || cfg.stages == 5);
        assert_eq!(rom.len(), ROM_WORDS);
        let mask = if cfg.width == 32 {
            u32::MAX
        } else {
            (1u32 << cfg.width) - 1
        };
        CpuModel {
            cfg: cfg.clone(),
            rom,
            mask,
            regs: vec![0; cfg.nregs],
            pc: 0,
            ir_e: 0,
            ir_d: 0,
            e_a: 0,
            e_b: 0,
            e_instr: 0,
            m_val: 0,
            m_rd: 0,
            m_wen: false,
            m_out: false,
            wb_val: 0,
            wb_rd: 0,
            wb_wen: false,
            wb_out: false,
            io_out: 0,
            cycle_ctr: 0,
            chain: vec![0; cfg.chain_regs],
        }
    }

    /// The io_out register value.
    pub fn io_out(&self) -> u32 {
        self.io_out
    }

    /// Fetch program counter (7 bits, without the mode MSB).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Architectural registers.
    pub fn regs(&self) -> &[u32] {
        &self.regs
    }

    /// Advance one cycle with the given `io_in` and `mode` inputs.
    pub fn step(&mut self, io_in: u32, mode: bool) {
        let io_in = io_in & self.mask;
        let rom_addr = (self.pc as usize & 0x7f) | (usize::from(mode) << PC_BITS);
        let fetched = self.rom[rom_addr];

        // E stage combinational results (from *current* registers).
        let (e_fields, a, b) = if self.cfg.stages == 3 {
            let f = decode(self.ir_e, self.cfg.nregs);
            (f, self.regs[f.rs1], self.regs[f.rs2])
        } else {
            let f = decode(self.e_instr, self.cfg.nregs);
            (f, self.e_a, self.e_b)
        };
        let result = alu(e_fields.op, a, b, e_fields.imm, io_in, self.mask);
        let wen = e_fields.op.writes_rd();
        let is_out = e_fields.op == Op::Out;
        let taken = e_fields.op == Op::Jmp || (e_fields.op == Op::Beqz && a == 0);

        // D stage (5-stage): regfile read.
        let d_fields = decode(self.ir_d, self.cfg.nregs);
        let (d_a, d_b) = (self.regs[d_fields.rs1], self.regs[d_fields.rs2]);

        // ---- commit edge ----
        // Register file write from the retiring stage.
        if self.wb_wen {
            self.regs[self.wb_rd] = self.wb_val;
        }
        if self.wb_out {
            self.io_out = self.wb_val;
        }
        // Chain shifts on retiring writes.
        if self.wb_wen {
            let mut prev = self.wb_val;
            for c in self.chain.iter_mut() {
                std::mem::swap(c, &mut prev);
            }
        }
        // WB <- (M for 5-stage, E for 3-stage).
        if self.cfg.stages == 5 {
            self.wb_val = self.m_val;
            self.wb_rd = self.m_rd;
            self.wb_wen = self.m_wen;
            self.wb_out = self.m_out;
            self.m_val = result;
            self.m_rd = e_fields.rd;
            self.m_wen = wen;
            self.m_out = is_out;
            self.e_instr = self.ir_d;
            self.e_a = d_a;
            self.e_b = d_b;
            self.ir_d = fetched;
        } else {
            self.wb_val = result;
            self.wb_rd = e_fields.rd;
            self.wb_wen = wen;
            self.wb_out = is_out;
            self.ir_e = fetched;
        }
        self.pc = if taken {
            e_fields.tgt
        } else {
            (self.pc + 1) & 0x7f
        };
        self.cycle_ctr = self.cycle_ctr.wrapping_add(1) & self.mask;
    }
}

// ---- gate level --------------------------------------------------------------

/// N:1 word mux with an LSB-first select word.
fn mux_many(b: &mut Builder, words: &[Word], sel: &Word) -> Word {
    assert_eq!(words.len(), 1 << sel.width());
    let mut level: Vec<Word> = words.to_vec();
    for s in 0..sel.width() {
        let bit = sel.bit(s);
        level = level
            .chunks(2)
            .map(|pair| b.mux_word(&pair[0], &pair[1], bit))
            .collect();
    }
    level.pop().expect("one left")
}

fn zext(b: &mut Builder, w: &Word, width: usize) -> Word {
    let zero = b.const0();
    (0..width)
        .map(|i| if i < w.width() { w.bit(i) } else { zero })
        .collect()
}

fn shl1(b: &mut Builder, w: &Word) -> Word {
    let zero = b.const0();
    (0..w.width())
        .map(|i| if i == 0 { zero } else { w.bit(i - 1) })
        .collect()
}

fn shr1(b: &mut Builder, w: &Word) -> Word {
    let zero = b.const0();
    (0..w.width())
        .map(|i| {
            if i + 1 < w.width() {
                w.bit(i + 1)
            } else {
                zero
            }
        })
        .collect()
}

fn is_op(b: &mut Builder, op_field: &Word, op: Op) -> NetId {
    b.eq_const(op_field, op as u64)
}

/// Generate the CPU netlist.
///
/// Ports: `ck`, `mode`, `io_in_0..W`; outputs `io_out_0..W`,
/// `pc_out_0..7`.
pub fn cpu_core(cfg: &CpuConfig, rom: &[u32]) -> Netlist {
    assert_eq!(rom.len(), ROM_WORDS);
    let w = cfg.width;
    let rb = cfg.nregs.trailing_zeros() as usize;
    let mut nl = Netlist::new(cfg.name);
    let mut b = Builder::new(&mut nl, "c");
    let (ckp, ck) = b.netlist().add_input("ck");
    let (_, mode) = b.netlist().add_input("mode");
    let io_in = b.word_input("io_in", w);

    let mk_reg = |b: &mut Builder, name: &str, width: usize| -> Word {
        (0..width)
            .map(|i| b.netlist().add_net(format!("{name}{i}")))
            .collect()
    };
    let dff_in = |b: &mut Builder, q: &Word, d: &Word, name: &str| {
        for (i, (&qn, &dn)) in q.bits().iter().zip(d.bits()).enumerate() {
            b.netlist()
                .add_cell(format!("ff_{name}{i}"), CellKind::Dff, vec![dn, ck, qn]);
        }
    };

    // State registers.
    let pc = mk_reg(&mut b, "pc_", PC_BITS);
    let regs: Vec<Word> = (0..cfg.nregs)
        .map(|r| mk_reg(&mut b, &format!("x{r}_"), w))
        .collect();
    let ir_e = mk_reg(&mut b, "ire_", 32);
    // 5-stage extras.
    let five = cfg.stages == 5;
    let ir_d = if five {
        mk_reg(&mut b, "ird_", 32)
    } else {
        Word(vec![])
    };
    let e_a = if five {
        mk_reg(&mut b, "ea_", w)
    } else {
        Word(vec![])
    };
    let e_b = if five {
        mk_reg(&mut b, "eb_", w)
    } else {
        Word(vec![])
    };
    let m_val = if five {
        mk_reg(&mut b, "mv_", w)
    } else {
        Word(vec![])
    };
    let m_rd = if five {
        mk_reg(&mut b, "mrd_", rb)
    } else {
        Word(vec![])
    };
    let m_flags = if five {
        mk_reg(&mut b, "mf_", 2)
    } else {
        Word(vec![])
    }; // wen, out
    let wb_val = mk_reg(&mut b, "wbv_", w);
    let wb_rd = mk_reg(&mut b, "wbrd_", rb);
    let wb_flags = mk_reg(&mut b, "wbf_", 2); // wen, out
    let io_out = mk_reg(&mut b, "ioout_", w);
    let cycle_ctr = mk_reg(&mut b, "cyc_", w);
    let chain: Vec<Word> = (0..cfg.chain_regs)
        .map(|i| mk_reg(&mut b, &format!("ch{i}_"), w))
        .collect();

    // ROM fetch.
    let addr: Word = Word(
        pc.bits()
            .iter()
            .copied()
            .chain(std::iter::once(mode))
            .collect(),
    );
    let rom_table: Vec<u64> = rom.iter().map(|&v| v as u64).collect();
    let fetched = {
        let mut padded = vec![0u64; 256];
        padded.copy_from_slice(&rom_table);
        b.sop(&addr, 32, &padded)
    };

    // Instruction in E (both depths stage it through `ir_e`).
    let e_src = &ir_e;
    let op_f = e_src.slice(0, 4);
    let rd_f = e_src.slice(4, rb);
    let rs1_f = e_src.slice(9, rb);
    let rs2_f = e_src.slice(14, rb);
    let imm_f = e_src.slice(24, 8);
    let tgt_f = e_src.slice(24, PC_BITS);

    // Operand read: 3-stage reads the regfile in E; 5-stage reads in D and
    // uses registered operands.
    let (a_val, b_val) = if five {
        (e_a.clone(), e_b.clone())
    } else {
        let a = mux_many(&mut b, &regs, &rs1_f);
        let bb = mux_many(&mut b, &regs, &rs2_f);
        (a, bb)
    };

    // ALU.
    let imm_w = zext(&mut b, &imm_f, w);
    let add = b.add(&a_val, &b_val, None).0;
    let (sub, no_borrow) = b.sub(&a_val, &b_val);
    let and_w = b.and_word(&a_val, &b_val);
    let or_w = b.or_word(&a_val, &b_val);
    let xor_w = b.xor_word(&a_val, &b_val);
    let borrow = b.not(no_borrow);
    let slt = zext(&mut b, &Word(vec![borrow]), w);
    let shl = shl1(&mut b, &a_val);
    let shr = shr1(&mut b, &a_val);
    let addi = b.add(&a_val, &imm_w, None).0;
    let inw = b.xor_word(&a_val, &io_in);
    let zero_w = b.const_word(0, w);
    let candidates = vec![
        add,
        sub,
        and_w,
        or_w,
        xor_w,
        slt,
        shl,
        shr,
        addi,
        imm_w.clone(),
        inw,
        a_val.clone(),
        zero_w.clone(),
        zero_w.clone(),
        zero_w.clone(),
        zero_w.clone(),
    ];
    let result = mux_many(&mut b, &candidates, &op_f);

    // Control.
    let op3 = op_f.bit(3);
    let op2 = op_f.bit(2);
    let op1 = op_f.bit(1);
    let op0 = op_f.bit(0);
    // wen = !(op >= 11): 11..15 have op3 & (op2 | (op1 & op0)).
    let t_1100 = b.and(&[op1, op0]);
    let hi = b.or(&[op2, t_1100]);
    let ge11 = b.and(&[op3, hi]);
    let wen = b.not(ge11);
    let is_out = is_op(&mut b, &op_f, Op::Out);
    let is_jmp = is_op(&mut b, &op_f, Op::Jmp);
    let is_beqz = is_op(&mut b, &op_f, Op::Beqz);
    let a_zero = {
        let any = b.or(a_val.bits());
        b.not(any)
    };
    let beqz_taken = b.and(&[is_beqz, a_zero]);
    let taken = b.or(&[is_jmp, beqz_taken]);

    // Next PC.
    let pc_inc = b.add_const(&pc, 1);
    let pc_next = b.mux_word(&pc_inc.slice(0, PC_BITS), &tgt_f, taken);
    dff_in(&mut b, &pc, &pc_next, "pc_");

    // D stage reads (5-stage).
    if five {
        let d_rs1 = ir_d.slice(9, rb);
        let d_rs2 = ir_d.slice(14, rb);
        let da = mux_many(&mut b, &regs, &d_rs1);
        let db = mux_many(&mut b, &regs, &d_rs2);
        dff_in(&mut b, &e_a, &da, "ea_");
        dff_in(&mut b, &e_b, &db, "eb_");
        dff_in(&mut b, &ir_e, &ir_d, "ire_");
        dff_in(&mut b, &ir_d, &fetched, "ird_");
        // M pipeline.
        dff_in(&mut b, &m_val, &result, "mv_");
        dff_in(&mut b, &m_rd, &rd_f, "mrd_");
        dff_in(&mut b, &m_flags, &Word(vec![wen, is_out]), "mf_");
        dff_in(&mut b, &wb_val, &m_val, "wbv_");
        dff_in(&mut b, &wb_rd, &m_rd, "wbrd_");
        dff_in(&mut b, &wb_flags, &m_flags, "wbf_");
    } else {
        dff_in(&mut b, &ir_e, &fetched, "ire_");
        dff_in(&mut b, &wb_val, &result, "wbv_");
        dff_in(&mut b, &wb_rd, &rd_f, "wbrd_");
        dff_in(&mut b, &wb_flags, &Word(vec![wen, is_out]), "wbf_");
    }

    // Register file write (enabled FFs: the flow's clock-gating fodder).
    let wb_wen = wb_flags.bit(0);
    let wb_out = wb_flags.bit(1);
    let rd_dec = b.decoder(&wb_rd);
    for (r, q) in regs.iter().enumerate() {
        let en = b.and(&[rd_dec[r], wb_wen]);
        for (i, &qn) in q.bits().iter().enumerate() {
            b.netlist().add_cell(
                format!("rf_x{r}_{i}"),
                CellKind::DffEn,
                vec![wb_val.bit(i), en, ck, qn],
            );
        }
    }
    // io_out register (enabled).
    for (i, &qn) in io_out.bits().iter().enumerate() {
        b.netlist().add_cell(
            format!("ff_io{i}"),
            CellKind::DffEn,
            vec![wb_val.bit(i), wb_out, ck, qn],
        );
    }
    // Chain registers (enabled by retiring writes).
    let mut prev = wb_val.clone();
    for (ci, c) in chain.iter().enumerate() {
        for (i, &qn) in c.bits().iter().enumerate() {
            b.netlist().add_cell(
                format!("ff_ch{ci}_{i}"),
                CellKind::DffEn,
                vec![prev.bit(i), wb_wen, ck, qn],
            );
        }
        prev = c.clone();
    }
    // Cycle counter (always on: a self-loop FF bank).
    let cyc_next = b.add_const(&cycle_ctr, 1);
    dff_in(&mut b, &cycle_ctr, &cyc_next, "cyc_");

    b.word_output("io_out", &io_out);
    b.word_output("pc_out", &pc);
    nl.clock = Some(ClockSpec::single(ckp, cfg.period_ps));
    nl
}

/// Convenience: generate a configured CPU with its seeded program.
pub fn build_cpu(cfg: &CpuConfig, seed: u64) -> (Netlist, Vec<u32>) {
    let rom = generate_program(cfg, seed);
    (cpu_core(cfg, &rom), rom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_sim::{Logic, Simulator};

    fn run_and_compare(cfg: &CpuConfig, seed: u64, cycles: usize, mode: bool) {
        let (nl, rom) = build_cpu(cfg, seed);
        nl.validate().unwrap();
        let mut model = CpuModel::new(cfg, rom);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        let mode_p = nl.find_port("mode").unwrap();
        let io_ports: Vec<_> = (0..cfg.width)
            .map(|i| nl.find_port(&format!("io_in_{i}")).unwrap())
            .collect();
        let out_ports: Vec<_> = (0..cfg.width)
            .map(|i| nl.find_port(&format!("io_out_{i}")).unwrap())
            .collect();
        let pc_ports: Vec<_> = (0..PC_BITS)
            .map(|i| nl.find_port(&format!("pc_out_{i}")).unwrap())
            .collect();
        let mut rng = SplitMix(seed ^ 0x10);
        // Inputs are applied after the capture edge, so the edge inside
        // step N commits the cycle that ran with the *previous* inputs.
        let mut pending: (u32, bool) = (0, false);
        for cycle in 0..cycles {
            let io = (rng.next_u64() as u32)
                & (if cfg.width == 32 {
                    u32::MAX
                } else {
                    (1 << cfg.width) - 1
                });
            sim.set_input(mode_p, Logic::from_bool(mode));
            for (i, &p) in io_ports.iter().enumerate() {
                sim.set_input(p, Logic::from_bool((io >> i) & 1 == 1));
            }
            sim.step_cycle();
            model.step(pending.0, pending.1);
            pending = (io, mode);
            let got_pc: u32 = pc_ports
                .iter()
                .enumerate()
                .map(|(i, &p)| u32::from(sim.output(p) == Logic::One) << i)
                .sum();
            assert_eq!(got_pc, model.pc(), "pc at cycle {cycle}");
            let got_out: u32 = out_ports
                .iter()
                .enumerate()
                .map(|(i, &p)| u32::from(sim.output(p) == Logic::One) << i)
                .sum();
            assert_eq!(got_out, model.io_out(), "io_out at cycle {cycle}");
        }
    }

    #[test]
    fn three_stage_matches_model_dhrystone() {
        let mut cfg = m0_like();
        cfg.chain_regs = 2; // keep the test light
        run_and_compare(&cfg, 11, 120, false);
    }

    #[test]
    fn three_stage_matches_model_coremark() {
        let mut cfg = m0_like();
        cfg.chain_regs = 2;
        run_and_compare(&cfg, 11, 120, true);
    }

    #[test]
    fn five_stage_matches_model() {
        let mut cfg = rocket_lite();
        cfg.chain_regs = 2;
        run_and_compare(&cfg, 13, 120, false);
    }

    #[test]
    fn ff_counts_in_profile_range() {
        for (cfg, lo, hi) in [
            (plasma_like(), 1300usize, 1900usize),
            (rocket_lite(), 2400, 3200),
            (m0_like(), 1100, 1700),
        ] {
            let (nl, _) = build_cpu(&cfg, 1);
            let ffs = nl.stats().ffs;
            assert!(
                (lo..=hi).contains(&ffs),
                "{}: {} FFs not in {lo}..={hi}",
                cfg.name,
                ffs
            );
        }
    }

    #[test]
    fn program_segments_loop() {
        let cfg = m0_like();
        let rom = generate_program(&cfg, 5);
        assert_eq!(rom.len(), ROM_WORDS);
        // Both segment tails are JMPs.
        assert_eq!(Op::from_bits(rom[127]), Op::Jmp);
        assert_eq!(Op::from_bits(rom[255]), Op::Jmp);
        // Segments differ (different mixes).
        assert_ne!(&rom[..127], &rom[128..255]);
    }

    #[test]
    fn workloads_have_distinct_activity() {
        let mut cfg = m0_like();
        cfg.chain_regs = 2;
        let (nl, _) = build_cpu(&cfg, 3);
        // Drive mode=0 vs mode=1 manually, compare io_out toggle totals.
        let toggles = |mode: bool| -> u64 {
            let mut sim = Simulator::new(&nl).unwrap();
            sim.reset_zero();
            let mode_p = nl.find_port("mode").unwrap();
            let mut rng = SplitMix(99);
            for _ in 0..200 {
                sim.set_input(mode_p, Logic::from_bool(mode));
                for i in 0..cfg.width {
                    let p = nl.find_port(&format!("io_in_{i}")).unwrap();
                    sim.set_input(p, Logic::from_bool(rng.next_u64() & 1 == 1));
                }
                sim.step_cycle();
            }
            sim.activity().net_toggles.iter().sum()
        };
        let t0 = toggles(false);
        let t1 = toggles(true);
        assert_ne!(t0, t1, "workload mixes must differ in activity");
    }
}
