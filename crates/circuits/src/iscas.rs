//! ISCAS89-class benchmark circuits.
//!
//! We do not redistribute the original ISCAS89 netlists. Instead:
//!
//! - the tiny, well-known `s27` circuit is embedded verbatim (in `.bench`
//!   format) as a parser/golden sample;
//! - the eleven Table-I circuits are generated synthetically from
//!   published *profiles* — FF count, approximate PI/PO/gate counts, and a
//!   control-dominance knob (`selfloop_frac`, the fraction of FFs with
//!   combinational feedback). The conversion statistics the paper reports
//!   depend on exactly these structural properties, so the profile-matched
//!   synthetics reproduce the experiment's shape (e.g. `s1488`, a
//!   re-synthesized controller, is generated fully feedback-dominated and
//!   shows no latch-count benefit, as in the paper).

use triphase_netlist::{bench_fmt, Builder, CellKind, ClockSpec, NetId, Netlist};

pub use triphase_cells::CellKind as GateKind;

/// The real `s27` benchmark in `.bench` format (public-domain circuit
/// description, 4 PIs / 1 PO / 3 DFFs / 10 gates).
pub const S27_BENCH: &str = "\
# s27 — ISCAS89 sequential benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// Parse the embedded `s27` at the given clock period.
///
/// # Panics
///
/// Never panics in practice — the embedded text is valid (covered by
/// tests).
pub fn s27(period_ps: f64) -> Netlist {
    bench_fmt::from_bench(S27_BENCH, "s27", period_ps).expect("embedded s27 is valid")
}

/// Structural profile of an ISCAS-class circuit.
#[derive(Debug, Clone)]
pub struct IscasProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Flip-flop count (matches the paper's Table I "FF" column).
    pub n_ff: usize,
    /// Primary inputs.
    pub n_pi: usize,
    /// Primary outputs.
    pub n_po: usize,
    /// Approximate combinational gate count.
    pub n_gates: usize,
    /// Fraction of FFs with combinational feedback (self-loops in the FF
    /// fan-out graph) — the paper's "control-dominated" knob.
    pub selfloop_frac: f64,
    /// Fraction of FFs behind enables (synthesized as `DFFEN`, converted
    /// to gated clocks by the flow's preprocessing).
    pub enable_frac: f64,
    /// Datapath pipeline layers (the non-feedback FFs form a layered
    /// structure, as real sequential benchmarks do; odd layer counts give
    /// the conversion more single-latch opportunities).
    pub n_layers: usize,
    /// Clock period (ps). The paper runs ISCAS at 1 GHz.
    pub period_ps: f64,
}

/// Profiles for the eleven Table-I ISCAS89 circuits.
///
/// FF counts are the paper's; PI/PO/gate counts follow the published
/// benchmark statistics (approximate); the feedback fractions encode the
/// paper's observations (`s1488`/`s1196`/`s1238` are re-synthesized
/// controllers dominated by FF feedback, the large circuits are more
/// pipeline-like).
pub fn iscas_profiles() -> Vec<IscasProfile> {
    let p = |name, n_ff, n_pi, n_po, n_gates, selfloop_frac, enable_frac, n_layers| IscasProfile {
        name,
        n_ff,
        n_pi,
        n_po,
        n_gates,
        selfloop_frac,
        enable_frac,
        n_layers,
        period_ps: 1000.0,
    };
    // The (selfloop_frac, n_layers) pairs are calibrated so each row's
    // register saving vs 2xFF lands on the paper's Table I value (the
    // saving is a pure function of the FF-graph shape; see EXPERIMENTS.md
    // for the calibration table).
    // enable_frac is high because the paper's flow deliberately maximizes
    // clock gating during synthesis ("we take care to enable clock
    // gating", §IV-B) — most datapath registers end up behind enables.
    vec![
        p("s1196", 18, 14, 14, 529, 0.00, 0.60, 5),
        p("s1238", 18, 14, 14, 508, 0.00, 0.60, 5),
        p("s1423", 81, 17, 5, 657, 0.60, 0.60, 2),
        p("s1488", 6, 8, 19, 653, 1.00, 0.00, 2),
        p("s5378", 163, 35, 49, 2779, 0.00, 0.70, 3),
        p("s9234", 140, 36, 39, 2027, 0.05, 0.65, 3),
        p("s13207", 457, 62, 152, 2573, 0.20, 0.75, 3),
        p("s15850", 454, 77, 150, 3448, 0.25, 0.70, 3),
        p("s35932", 1728, 35, 320, 12204, 0.35, 0.70, 3),
        p("s38417", 1489, 28, 106, 8709, 0.35, 0.70, 3),
        p("s38584", 1319, 38, 304, 11448, 0.75, 0.65, 2),
    ]
}

/// Deterministic generator of an ISCAS-class circuit from a profile.
///
/// The construction mirrors how real sequential benchmarks are shaped:
///
/// - the non-feedback FFs form `n_layers` **datapath layers**; a random
///   combinational cloud sits between consecutive layers (so FF fan-out
///   edges only go layer → next layer, like a pipelined datapath);
/// - `selfloop_frac` of the FFs form a **control FSM**: their next-state
///   cones mix their own outputs back in (guaranteed combinational
///   feedback) and their outputs feed the datapath clouds;
/// - `enable_frac` of the datapath FFs sit behind shared enables
///   (synthesized as `DFFEN`, lowered to gated clocks by the flow's
///   preprocessing pass).
pub fn generate_iscas(profile: &IscasProfile, seed: u64) -> Netlist {
    let mut rng = SplitMix(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let mut nl = Netlist::new(profile.name);
    let mut b = Builder::new(&mut nl, "g");
    let (ckp, ck) = b.netlist().add_input("CK");

    let pis: Vec<NetId> = (0..profile.n_pi)
        .map(|i| b.netlist().add_input(&format!("PI{i}")).1)
        .collect();

    // Partition FFs: control (self-loop) vs layered datapath.
    let n_ctrl = (profile.n_ff as f64 * profile.selfloop_frac).round() as usize;
    let n_data = profile.n_ff - n_ctrl;
    let layers = profile.n_layers.max(1).min(n_data.max(1));
    let q_ctrl: Vec<NetId> = (0..n_ctrl)
        .map(|i| b.netlist().add_net(format!("qc{i}")))
        .collect();
    let mut q_layers: Vec<Vec<NetId>> = Vec::with_capacity(layers);
    {
        let mut remaining = n_data;
        for l in 0..layers {
            let take = remaining / (layers - l);
            q_layers.push(
                (0..take)
                    .map(|i| b.netlist().add_net(format!("qd{l}_{i}")))
                    .collect(),
            );
            remaining -= take;
        }
    }

    // Per-stage combinational clouds. Cloud `l` reads layer `l-1` (or the
    // PIs for cloud 0) plus the control state, and feeds layer `l`.
    let kinds: [fn(u8) -> CellKind; 4] =
        [CellKind::And, CellKind::Or, CellKind::Nand, CellKind::Nor];
    let gates_per_cloud = (profile.n_gates / (layers + 1)).max(1);
    let mut cloud_outs: Vec<Vec<NetId>> = Vec::with_capacity(layers + 1);
    for l in 0..=layers {
        let mut pool: Vec<NetId> = if l == 0 {
            pis.clone()
        } else {
            q_layers[l - 1].clone()
        };
        if pool.is_empty() {
            pool = pis.clone();
        }
        pool.extend(q_ctrl.iter().copied());
        let mut outs: Vec<NetId> = Vec::with_capacity(gates_per_cloud);
        for _ in 0..gates_per_cloud {
            let arity = 2 + rng.below(3) as u8;
            let mut ins = Vec::with_capacity(arity as usize);
            for _ in 0..arity {
                let from_gates = !outs.is_empty() && rng.below(100) < 45;
                let net = if from_gates {
                    outs[rng.below(outs.len())]
                } else {
                    pool[rng.below(pool.len())]
                };
                if !ins.contains(&net) {
                    ins.push(net);
                }
            }
            if ins.len() < 2 {
                ins.push(pool[rng.below(pool.len())]);
            }
            let out = if rng.below(100) < 10 {
                if ins.len() >= 2 && rng.below(2) == 0 {
                    b.gate(CellKind::Xor(2), &[ins[0], ins[1]])
                } else {
                    b.gate(CellKind::Inv, &[ins[0]])
                }
            } else {
                b.gate(kinds[rng.below(4)](ins.len() as u8), &ins)
            };
            outs.push(out);
        }
        cloud_outs.push(outs);
    }

    // Shared enables for the gated datapath FFs.
    let n_enabled = (n_data as f64 * profile.enable_frac).round() as usize;
    let n_en_groups = n_enabled.div_ceil(24).max(1);
    // Enables are sparse (AND of two primary inputs, ~25% duty under
    // random stimulus) — idle-most-of-the-time registers are what makes
    // clock gating worth the cells, in real circuits and here. Both
    // sources are PIs: mixing in control state can AND with a bit whose
    // FSM provably never leaves reset, producing a never-enabled gate
    // (dead silicon the static analysis rightly flags).
    let enables: Vec<NetId> = (0..n_en_groups)
        .map(|_| {
            let a = pis[rng.below(pis.len().max(1))];
            let c = pis[rng.below(pis.len().max(1))];
            b.gate(CellKind::And(2), &[a, c])
        })
        .collect();

    // Datapath FFs: layer l latches cloud l outputs.
    let mut enabled_so_far = 0usize;
    for (l, qs) in q_layers.iter().enumerate() {
        let outs = &cloud_outs[l];
        for (i, &q) in qs.iter().enumerate() {
            let d = outs[rng.below(outs.len())];
            let name = format!("ff_d{l}_{i}");
            if enabled_so_far < n_enabled {
                let en = enables[enabled_so_far % enables.len()];
                b.netlist()
                    .add_cell(name, CellKind::DffEn, vec![d, en, ck, q]);
                enabled_so_far += 1;
            } else {
                b.netlist().add_cell(name, CellKind::Dff, vec![d, ck, q]);
            }
        }
    }
    // Control FFs: guaranteed combinational feedback.
    for (i, &q) in q_ctrl.iter().enumerate() {
        let cloud = &cloud_outs[rng.below(cloud_outs.len())];
        let base = cloud[rng.below(cloud.len())];
        let d = b.gate(CellKind::Xor(2), &[base, q]);
        b.netlist()
            .add_cell(format!("ff_c{i}"), CellKind::Dff, vec![d, ck, q]);
    }

    // POs from the final cloud (plus overflow from earlier ones).
    let last = cloud_outs.last().expect("at least one cloud");
    for i in 0..profile.n_po {
        let net = if i % 3 == 0 && cloud_outs.len() > 1 {
            let c = &cloud_outs[rng.below(cloud_outs.len())];
            c[rng.below(c.len())]
        } else {
            last[rng.below(last.len())]
        };
        b.netlist().add_output(&format!("PO{i}"), net);
    }

    nl.clock = Some(ClockSpec::single(ckp, profile.period_ps));
    nl
}

/// Deterministic splitmix64-style generator (shared workspace RNG).
pub(crate) use triphase_netlist::rng::SplitMix64 as SplitMix;

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::graph;

    #[test]
    fn s27_parses_and_validates() {
        let nl = s27(1000.0);
        let s = nl.stats();
        assert_eq!(s.ffs, 3);
        assert_eq!(s.comb, 10);
        assert_eq!(s.inputs, 5); // 4 PIs + CK
        assert_eq!(s.outputs, 1);
        nl.validate().unwrap();
        let idx = nl.index();
        graph::comb_topo_order(&nl, &idx).unwrap();
    }

    #[test]
    fn s27_simulates_known_behaviour() {
        use triphase_sim::{Logic, Simulator};
        let nl = s27(1000.0);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        // With all state 0 and all inputs 0: G14 = NOT(0) = 1,
        // G11 = NOR(G5, G9); first cycle propagates deterministically —
        // just check the output is driven and the sim is stable.
        for p in ["G0", "G1", "G2", "G3"] {
            let port = nl.find_port(p).unwrap();
            sim.set_input(port, Logic::Zero);
        }
        sim.step_cycle();
        let g17 = nl.find_port("G17").unwrap();
        assert!(sim.output(g17).is_known());
    }

    #[test]
    fn profiles_cover_table1() {
        let profiles = iscas_profiles();
        assert_eq!(profiles.len(), 11);
        let ff_total: usize = profiles.iter().map(|p| p.n_ff).sum();
        // Paper Table I FF column sums to 5873.
        assert_eq!(ff_total, 5873);
        assert!(profiles.iter().any(|p| p.selfloop_frac == 1.0), "s1488");
    }

    #[test]
    fn generated_matches_profile() {
        for p in iscas_profiles().iter().take(6) {
            let nl = generate_iscas(p, 42);
            nl.validate().unwrap();
            let s = nl.stats();
            assert_eq!(s.ffs, p.n_ff, "{}", p.name);
            assert_eq!(s.inputs, p.n_pi + 1, "{}", p.name);
            assert_eq!(s.outputs, p.n_po, "{}", p.name);
            // Gate count within 20% (enable logic and feedback mixers add).
            assert!(
                s.comb as f64 >= p.n_gates as f64 * 0.9 && s.comb as f64 <= p.n_gates as f64 * 1.35,
                "{}: {} vs {}",
                p.name,
                s.comb,
                p.n_gates
            );
            let idx = nl.index();
            graph::comb_topo_order(&nl, &idx).expect("no comb loops");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = &iscas_profiles()[0];
        let a = generate_iscas(p, 7);
        let b = generate_iscas(p, 7);
        assert_eq!(a.cell_count(), b.cell_count());
        assert_eq!(
            triphase_netlist::verilog::to_verilog(&a),
            triphase_netlist::verilog::to_verilog(&b)
        );
        let c = generate_iscas(p, 8);
        assert_ne!(
            triphase_netlist::verilog::to_verilog(&a),
            triphase_netlist::verilog::to_verilog(&c)
        );
    }

    #[test]
    fn selfloops_present_as_designed() {
        use triphase_netlist::graph::reach_storage;
        let p = IscasProfile {
            name: "toy",
            n_ff: 10,
            n_pi: 4,
            n_po: 2,
            n_gates: 60,
            selfloop_frac: 0.5,
            enable_frac: 0.0,
            n_layers: 2,
            period_ps: 1000.0,
        };
        let nl = generate_iscas(&p, 3);
        let idx = nl.index();
        let mut selfloops = 0;
        for (id, cell) in nl.cells() {
            if cell.kind.is_ff() {
                let r = reach_storage(&nl, &idx, cell.output());
                if r.storage.contains(&id) {
                    selfloops += 1;
                }
            }
        }
        assert!(
            selfloops >= 5,
            "at least the designed self-loops: {selfloops}"
        );
    }

    #[test]
    fn generated_simulates() {
        use triphase_sim::run_random;
        let p = &iscas_profiles()[0]; // s1196
        let nl = generate_iscas(p, 42);
        let sim = run_random(&nl, 1, 32).unwrap();
        assert_eq!(sim.activity().cycles, 32);
    }
}
