//! Gate-level pipelined AES-128 (encrypt), CEP-style.
//!
//! The MIT-LL CEP evaluates a pipelined AES core; this module generates a
//! functionally real one: ten pipelined round stages with the key schedule
//! expanded alongside in the pipeline. The S-box truth table is computed
//! from GF(2⁸) inversion plus the affine map and lowered to two-level
//! logic; everything else (ShiftRows, MixColumns, AddRoundKey, key
//! expansion) is XOR/wiring. The companion software model
//! ([`aes128_encrypt_sw`]) validates the generator against the FIPS-197
//! test vector and drives the equivalence tests.
//!
//! Bit conventions: port `pt_{8·i+j}` is bit `j` (LSB first) of plaintext
//! byte `i` in FIPS byte order; likewise `key_*` and `ct_*`.

use triphase_netlist::{Builder, ClockSpec, NetId, Netlist, Word};

/// AES irreducible polynomial x⁸+x⁴+x³+x+1.
const POLY: u16 = 0x11b;

fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= (POLY & 0xff) as u8;
        }
        b >>= 1;
    }
    acc
}

fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 in GF(2^8).
    let mut result = 1u8;
    let mut base = a;
    let mut e = 254u8;
    while e > 0 {
        if e & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        e >>= 1;
    }
    result
}

/// The AES S-box, computed (not transcribed).
pub fn sbox() -> [u8; 256] {
    let mut table = [0u8; 256];
    for (x, out) in table.iter_mut().enumerate() {
        let b = gf_inv(x as u8);
        let mut s = 0u8;
        for i in 0..8 {
            let bit = (b >> i)
                ^ (b >> ((i + 4) % 8))
                ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8))
                ^ (b >> ((i + 7) % 8))
                ^ (0x63 >> i);
            s |= (bit & 1) << i;
        }
        *out = s;
    }
    table
}

fn xtime(b: u8) -> u8 {
    gf_mul(b, 2)
}

/// Software AES-128 encryption of one block (FIPS-197 order).
pub fn aes128_encrypt_sw(key: &[u8; 16], pt: &[u8; 16]) -> [u8; 16] {
    let sb = sbox();
    let mut rk = *key;
    let mut state = [0u8; 16];
    for i in 0..16 {
        state[i] = pt[i] ^ rk[i];
    }
    let mut rcon = 1u8;
    for round in 1..=10 {
        // SubBytes.
        for b in state.iter_mut() {
            *b = sb[*b as usize];
        }
        // ShiftRows: s'[r + 4c] = s[r + 4((c+r)%4)].
        let mut shifted = [0u8; 16];
        for r in 0..4 {
            for c in 0..4 {
                shifted[r + 4 * c] = state[r + 4 * ((c + r) % 4)];
            }
        }
        state = shifted;
        // MixColumns (skipped in the last round).
        if round != 10 {
            for c in 0..4 {
                let col = [
                    state[4 * c],
                    state[4 * c + 1],
                    state[4 * c + 2],
                    state[4 * c + 3],
                ];
                for r in 0..4 {
                    state[4 * c + r] = xtime(col[r])
                        ^ (xtime(col[(r + 1) % 4]) ^ col[(r + 1) % 4])
                        ^ col[(r + 2) % 4]
                        ^ col[(r + 3) % 4];
                }
            }
        }
        // Key schedule + AddRoundKey.
        rk = next_round_key(&rk, rcon, &sb);
        rcon = xtime(rcon);
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }
    state
}

fn next_round_key(rk: &[u8; 16], rcon: u8, sb: &[u8; 256]) -> [u8; 16] {
    let mut out = [0u8; 16];
    // temp = SubWord(RotWord(W3)) ^ rcon.
    let temp = [
        sb[rk[13] as usize] ^ rcon,
        sb[rk[14] as usize],
        sb[rk[15] as usize],
        sb[rk[12] as usize],
    ];
    for i in 0..4 {
        out[i] = rk[i] ^ temp[i];
    }
    for w in 1..4 {
        for i in 0..4 {
            out[4 * w + i] = rk[4 * w + i] ^ out[4 * (w - 1) + i];
        }
    }
    out
}

/// One byte as an 8-bit LSB-first [`Word`].
type ByteW = Word;

fn sbox_gate(b: &mut Builder, byte: &ByteW, table: &[u64; 256]) -> ByteW {
    b.sop(byte, 8, table)
}

fn xtime_gate(b: &mut Builder, x: &ByteW) -> ByteW {
    let b7 = x.bit(7);
    Word(vec![
        b7,
        b.gate(triphase_cells::CellKind::Xor(2), &[x.bit(0), b7]),
        x.bit(1),
        b.gate(triphase_cells::CellKind::Xor(2), &[x.bit(2), b7]),
        b.gate(triphase_cells::CellKind::Xor(2), &[x.bit(3), b7]),
        x.bit(4),
        x.bit(5),
        x.bit(6),
    ])
}

fn xor_bytes(b: &mut Builder, x: &ByteW, y: &ByteW) -> ByteW {
    b.xor_word(x, y)
}

/// XOR a byte with a constant (free: selective inverters).
fn xor_const(b: &mut Builder, x: &ByteW, k: u8) -> ByteW {
    (0..8)
        .map(|i| {
            if (k >> i) & 1 == 1 {
                b.not(x.bit(i))
            } else {
                x.bit(i)
            }
        })
        .collect()
}

fn mix_columns(b: &mut Builder, state: &[ByteW; 16]) -> [ByteW; 16] {
    let mut out: Vec<ByteW> = Vec::with_capacity(16);
    for c in 0..4 {
        let col: Vec<&ByteW> = (0..4).map(|r| &state[4 * c + r]).collect();
        let x2: Vec<ByteW> = col.iter().map(|w| xtime_gate(b, w)).collect();
        for r in 0..4 {
            // out[r] = 2·a[r] ^ 3·a[r+1] ^ a[r+2] ^ a[r+3]
            let t1 = xor_bytes(b, &x2[r], &x2[(r + 1) % 4]);
            let t2 = xor_bytes(b, &t1, col[(r + 1) % 4]);
            let t3 = xor_bytes(b, &t2, col[(r + 2) % 4]);
            out.push(xor_bytes(b, &t3, col[(r + 3) % 4]));
        }
    }
    // out was filled column-major r within c, matching state layout.
    out.try_into().expect("16 bytes")
}

fn shift_rows(state: &[ByteW; 16]) -> [ByteW; 16] {
    let mut out: Vec<ByteW> = vec![Word(vec![]); 16];
    for r in 0..4 {
        for c in 0..4 {
            out[r + 4 * c] = state[r + 4 * ((c + r) % 4)].clone();
        }
    }
    out.try_into().expect("16 bytes")
}

fn key_expand_gate(b: &mut Builder, rk: &[ByteW; 16], rcon: u8, table: &[u64; 256]) -> [ByteW; 16] {
    let s13 = sbox_gate(b, &rk[13], table);
    let s14 = sbox_gate(b, &rk[14], table);
    let s15 = sbox_gate(b, &rk[15], table);
    let s12 = sbox_gate(b, &rk[12], table);
    let temp = [xor_const(b, &s13, rcon), s14, s15, s12];
    let mut out: Vec<ByteW> = Vec::with_capacity(16);
    for i in 0..4 {
        out.push(xor_bytes(b, &rk[i], &temp[i]));
    }
    for w in 1..4 {
        for i in 0..4 {
            let prev = out[4 * (w - 1) + i].clone();
            out.push(xor_bytes(b, &rk[4 * w + i], &prev));
        }
    }
    out.try_into().expect("16 bytes")
}

/// Register a 16-byte block. The CEP AES RTL is a free-running pipeline
/// with no enables, so the registers are plain DFFs — under the
/// self-check-style stimulus (sparse blocks, idle between) this is what
/// makes the FF baseline's always-on clock tree expensive and the
/// converted design's DDCG effective, as in the paper's AES row.
fn reg_block(b: &mut Builder, blk: &[ByteW; 16], ck: NetId) -> [ByteW; 16] {
    let regs: Vec<ByteW> = blk.iter().map(|w| b.dff_word(w, ck)).collect();
    regs.try_into().expect("16 bytes")
}

/// Generate the pipelined AES-128 encryption core.
///
/// Ports: `ck`, `valid_in`, `pt_0..128`, `key_0..128`; outputs
/// `ct_0..128`, `valid_out`. Latency is 11 cycles (input register + 10
/// round stages); a new block can enter every cycle.
pub fn aes128_pipelined(period_ps: f64) -> Netlist {
    let table_u8 = sbox();
    let mut table = [0u64; 256];
    for (i, &v) in table_u8.iter().enumerate() {
        table[i] = v as u64;
    }
    let mut nl = Netlist::new("aes128");
    let mut b = Builder::new(&mut nl, "a");
    let (ckp, ck) = b.netlist().add_input("ck");
    let (_, valid_in) = b.netlist().add_input("valid_in");
    let pt_bits = b.word_input("pt", 128);
    let key_bits = b.word_input("key", 128);
    let as_block = |w: &Word| -> [ByteW; 16] {
        (0..16)
            .map(|i| w.slice(8 * i, 8))
            .collect::<Vec<_>>()
            .try_into()
            .expect("16 bytes")
    };
    let pt = as_block(&pt_bits);
    let key = as_block(&key_bits);

    // Stage 0: initial AddRoundKey, registered; key enters its pipeline.
    // Every stage's data registers are enabled by the valid bit entering
    // the stage.
    let mut state: [ByteW; 16] = {
        let mixed: Vec<ByteW> = (0..16)
            .map(|i| xor_bytes(&mut b, &pt[i], &key[i]))
            .collect();
        let arr: [ByteW; 16] = mixed.try_into().expect("16 bytes");
        reg_block(&mut b, &arr, ck)
    };
    let mut rkey: [ByteW; 16] = reg_block(&mut b, &key, ck);
    let mut valid = b.dff(valid_in, ck);

    let mut rcon = 1u8;
    for round in 1..=10 {
        // SubBytes.
        let subbed: Vec<ByteW> = state.iter().map(|w| sbox_gate(&mut b, w, &table)).collect();
        let subbed: [ByteW; 16] = subbed.try_into().expect("16");
        let shifted = shift_rows(&subbed);
        let pre_key: [ByteW; 16] = if round != 10 {
            mix_columns(&mut b, &shifted)
        } else {
            shifted
        };
        let next_rk = key_expand_gate(&mut b, &rkey, rcon, &table);
        rcon = xtime(rcon);
        let mixed: Vec<ByteW> = (0..16)
            .map(|i| xor_bytes(&mut b, &pre_key[i], &next_rk[i]))
            .collect();
        let arr: [ByteW; 16] = mixed.try_into().expect("16");
        state = reg_block(&mut b, &arr, ck);
        rkey = reg_block(&mut b, &next_rk, ck);
        valid = b.dff(valid, ck);
    }

    let ct: Word = state.iter().flat_map(|w| w.bits().to_vec()).collect();
    b.word_output("ct", &ct);
    b.netlist().add_output("valid_out", valid);
    nl.clock = Some(ClockSpec::single(ckp, period_ps));
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_sim::{Logic, Simulator};

    #[test]
    fn sbox_known_entries() {
        let sb = sbox();
        assert_eq!(sb[0x00], 0x63);
        assert_eq!(sb[0x01], 0x7c);
        assert_eq!(sb[0x53], 0xed);
        // Bijectivity.
        let mut seen = [false; 256];
        for &v in sb.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn software_matches_fips197() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expect: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(aes128_encrypt_sw(&key, &pt), expect);
    }

    #[test]
    fn gf_inverse_property() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a = {a}");
        }
    }

    fn set_block(sim: &mut Simulator, nl: &Netlist, prefix: &str, bytes: &[u8; 16]) {
        for (i, &byte) in bytes.iter().enumerate() {
            for j in 0..8 {
                let port = nl.find_port(&format!("{prefix}_{}", 8 * i + j)).unwrap();
                sim.set_input(port, Logic::from_bool((byte >> j) & 1 == 1));
            }
        }
    }

    fn read_block(sim: &Simulator, nl: &Netlist, prefix: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, byte) in out.iter_mut().enumerate() {
            for j in 0..8 {
                let port = nl.find_port(&format!("{prefix}_{}", 8 * i + j)).unwrap();
                if sim.output(port) == Logic::One {
                    *byte |= 1 << j;
                }
            }
        }
        out
    }

    #[test]
    fn gate_level_matches_software() {
        let nl = aes128_pipelined(2000.0);
        nl.validate().unwrap();
        let stats = nl.stats();
        assert_eq!(stats.ffs, 10 * 256 + 256 + 11, "pipelined registers");
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        set_block(&mut sim, &nl, "pt", &pt);
        set_block(&mut sim, &nl, "key", &key);
        let vin = nl.find_port("valid_in").unwrap();
        sim.set_input(vin, Logic::One);
        sim.step_cycle(); // inputs land after this cycle's edge
        sim.set_input(vin, Logic::Zero);
        for _ in 0..11 {
            sim.step_cycle();
        }
        let vout = nl.find_port("valid_out").unwrap();
        assert_eq!(
            sim.output(vout),
            Logic::One,
            "valid 11 cycles after capture"
        );
        let ct = read_block(&sim, &nl, "ct");
        assert_eq!(ct, aes128_encrypt_sw(&key, &pt), "FIPS-197 vector");
    }

    #[test]
    fn pipeline_accepts_back_to_back_blocks() {
        let nl = aes128_pipelined(2000.0);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        let k1 = [0u8; 16];
        let k2 = [0xffu8; 16];
        let p1 = [0x5au8; 16];
        let p2 = [0xa5u8; 16];
        let vin = nl.find_port("valid_in").unwrap();
        set_block(&mut sim, &nl, "pt", &p1);
        set_block(&mut sim, &nl, "key", &k1);
        sim.set_input(vin, Logic::One);
        sim.step_cycle();
        set_block(&mut sim, &nl, "pt", &p2);
        set_block(&mut sim, &nl, "key", &k2);
        sim.set_input(vin, Logic::One);
        sim.step_cycle();
        sim.set_input(vin, Logic::Zero);
        for _ in 0..10 {
            sim.step_cycle();
        }
        assert_eq!(read_block(&sim, &nl, "ct"), aes128_encrypt_sw(&k1, &p1));
        sim.step_cycle();
        assert_eq!(read_block(&sim, &nl, "ct"), aes128_encrypt_sw(&k2, &p2));
    }
}
