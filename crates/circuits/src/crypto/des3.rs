//! DES3-like triple-Feistel core.
//!
//! The original DES S-box tables are not reproduced here; instead a
//! *seeded* Feistel network with the same structure is generated: 48
//! rounds (3 × 16), 32+32-bit halves, a rotating 64-bit key register,
//! per-round 48-bit subkey selection, an expansion permutation, eight
//! seeded 6→4 S-boxes, and a P permutation. This preserves the workload
//! shape the paper's DES3 row exercises (wide XOR/permute datapath, round
//! registers, no combinational FF feedback beyond the Feistel swap) —
//! see DESIGN.md §1 for the substitution note.
//!
//! The companion software model mirrors the generated structure exactly,
//! so the gate level is still equivalence-tested.

use crate::iscas::SplitMix;
use triphase_netlist::{Builder, CellKind, ClockSpec, Netlist, Word};

/// Structure of a generated DES3-like cipher (shared by the software
/// model and the gate generator).
#[derive(Debug, Clone)]
pub struct Des3Spec {
    /// 48 entries mapping expanded-bit -> source bit of R (with repeats).
    pub expansion: Vec<usize>,
    /// Eight 6-in/4-out S-box tables.
    pub sboxes: Vec<[u8; 64]>,
    /// 32-entry output permutation.
    pub perm: Vec<usize>,
    /// Per-round subkey bit selection from the 64-bit key register.
    pub key_sel: Vec<usize>,
    /// Per-round key rotation amount.
    pub key_rot: usize,
}

impl Des3Spec {
    /// Deterministically generate a cipher structure from a seed.
    pub fn new(seed: u64) -> Des3Spec {
        let mut rng = SplitMix(seed ^ 0xDE53_DE53_DE53_DE53);
        // Expansion: every R bit used at least once, plus 16 repeats.
        let mut expansion: Vec<usize> = (0..32).collect();
        for _ in 0..16 {
            expansion.push(rng.below(32));
        }
        // Shuffle.
        for i in (1..expansion.len()).rev() {
            expansion.swap(i, rng.below(i + 1));
        }
        let sboxes: Vec<[u8; 64]> = (0..8)
            .map(|_| {
                let mut t = [0u8; 64];
                for e in t.iter_mut() {
                    *e = (rng.next_u64() & 0xf) as u8;
                }
                t
            })
            .collect();
        let mut perm: Vec<usize> = (0..32).collect();
        for i in (1..32).rev() {
            perm.swap(i, rng.below(i + 1));
        }
        let key_sel: Vec<usize> = (0..48).map(|_| rng.below(64)).collect();
        Des3Spec {
            expansion,
            sboxes,
            perm,
            key_sel,
            key_rot: 3,
        }
    }

    /// Feistel round function on a 32-bit half with a 48-bit subkey.
    fn round_fn(&self, r: u32, subkey: u64) -> u32 {
        let mut expanded = 0u64;
        for (i, &src) in self.expansion.iter().enumerate() {
            expanded |= (((r >> src) & 1) as u64) << i;
        }
        expanded ^= subkey;
        let mut sout = 0u32;
        for (s, table) in self.sboxes.iter().enumerate() {
            let chunk = ((expanded >> (6 * s)) & 0x3f) as usize;
            sout |= (table[chunk] as u32) << (4 * s);
        }
        let mut permuted = 0u32;
        for (i, &src) in self.perm.iter().enumerate() {
            permuted |= ((sout >> src) & 1) << i;
        }
        permuted
    }

    fn subkey(&self, key: u64) -> u64 {
        let mut sk = 0u64;
        for (i, &src) in self.key_sel.iter().enumerate() {
            sk |= ((key >> src) & 1) << i;
        }
        sk
    }

    /// Software encryption of one 64-bit block (48 rounds, key rotated
    /// each round — matching the generated hardware cycle for cycle).
    pub fn encrypt_sw(&self, key: u64, block: u64) -> u64 {
        let mut l = (block & 0xffff_ffff) as u32;
        let mut r = (block >> 32) as u32;
        let mut k = key;
        for _ in 0..48 {
            let f = self.round_fn(r, self.subkey(k));
            let nl = r;
            r = l ^ f;
            l = nl;
            k = k.rotate_left(self.key_rot as u32);
        }
        (l as u64) | ((r as u64) << 32)
    }
}

/// Generate the DES3-like core.
///
/// Ports: `ck`, `load`, `block_0..64`, `key_0..64`; outputs `out_0..64`,
/// `done`. Pulse `load`, run 48 cycles, read `out`.
pub fn des3_core(spec: &Des3Spec, period_ps: f64) -> Netlist {
    let mut nl = Netlist::new("des3");
    let mut b = Builder::new(&mut nl, "d");
    let (ckp, ck) = b.netlist().add_input("ck");
    let (_, load) = b.netlist().add_input("load");
    let block = b.word_input("block", 64);
    let key_in = b.word_input("key", 64);

    // Bus-interface capture stage (CEP cores are bus-attached; loading
    // core state straight from pins would make every register's phase
    // assignment pay a primary-input penalty in the conversion ILP).
    let block_r = b.dffen_word(&block, load, ck);
    let key_r = b.dffen_word(&key_in, load, ck);
    let load_d = b.dff(load, ck);

    let mk_reg = |b: &mut Builder, name: &str, width: usize| -> Word {
        (0..width)
            .map(|i| b.netlist().add_net(format!("{name}{i}")))
            .collect()
    };
    let l_reg = mk_reg(&mut b, "l_", 32);
    let r_reg = mk_reg(&mut b, "r_", 32);
    let k_reg = mk_reg(&mut b, "k_", 64);
    let t_reg = mk_reg(&mut b, "t_", 6);

    // Round function on R.
    let expanded: Word = spec.expansion.iter().map(|&src| r_reg.bit(src)).collect();
    let subkey: Word = spec.key_sel.iter().map(|&src| k_reg.bit(src)).collect();
    let mixed = b.xor_word(&expanded, &subkey);
    let mut sbox_out_bits = Vec::with_capacity(32);
    for (s, table) in spec.sboxes.iter().enumerate() {
        let chunk = mixed.slice(6 * s, 6);
        let t: Vec<u64> = table.iter().map(|&v| v as u64).collect();
        let out = b.sop(&chunk, 4, &t);
        sbox_out_bits.extend(out.bits());
    }
    let sout = Word(sbox_out_bits);
    let permuted: Word = spec.perm.iter().map(|&src| sout.bit(src)).collect();
    let f = permuted;
    let new_r = b.xor_word(&l_reg, &f);
    let new_l = r_reg.clone();
    let new_k = k_reg.rotl(spec.key_rot);

    // Counter.
    let t_inc = b.add_const(&t_reg, 1);
    let at_end = b.eq_const(&t_reg, 48);
    let t_hold = b.mux_word(&t_inc, &t_reg, at_end);
    let zero6 = b.const_word(0, 6);
    let t_next = b.mux_word(&t_hold, &zero6, load_d);
    let running = b.not(at_end);

    // Enabled FFs instead of recirculation muxes (see sha256.rs note).
    let en = b.or(&[load_d, running]);
    let clock_in = |b: &mut Builder, q: &Word, next: &Word, loadv: &Word, name: &str| {
        let d = b.mux_word(next, loadv, load_d);
        for (i, (&qn, &dn)) in q.bits().iter().zip(d.bits()).enumerate() {
            b.netlist().add_cell(
                format!("ff_{name}{i}"),
                CellKind::DffEn,
                vec![dn, en, ck, qn],
            );
        }
    };
    clock_in(&mut b, &l_reg.clone(), &new_l, &block_r.slice(0, 32), "l_");
    clock_in(&mut b, &r_reg.clone(), &new_r, &block_r.slice(32, 32), "r_");
    clock_in(&mut b, &k_reg.clone(), &new_k, &key_r, "k_");
    for (i, (&qn, &dn)) in t_reg.bits().iter().zip(t_next.bits()).enumerate() {
        b.netlist()
            .add_cell(format!("ff_t{i}"), CellKind::Dff, vec![dn, ck, qn]);
    }

    let out = l_reg.concat(&r_reg);
    b.word_output("out", &out);
    b.netlist().add_output("done", at_end);
    nl.clock = Some(ClockSpec::single(ckp, period_ps));
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_sim::{Logic, Simulator};

    #[test]
    fn spec_is_deterministic_and_covering() {
        let a = Des3Spec::new(1);
        let b = Des3Spec::new(1);
        assert_eq!(a.expansion, b.expansion);
        assert_eq!(a.perm, b.perm);
        // Every R bit appears in the expansion.
        for bit in 0..32 {
            assert!(a.expansion.contains(&bit), "bit {bit} missing");
        }
        // perm is a permutation.
        let mut seen = [false; 32];
        for &p in &a.perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        let c = Des3Spec::new(2);
        assert_ne!(a.expansion, c.expansion);
    }

    #[test]
    fn software_diffusion() {
        // Flipping one plaintext bit changes many output bits.
        let spec = Des3Spec::new(7);
        let k = 0x0123_4567_89ab_cdef;
        let c1 = spec.encrypt_sw(k, 0);
        let c2 = spec.encrypt_sw(k, 1);
        let diff = (c1 ^ c2).count_ones();
        assert!(diff > 16, "only {diff} bits differ");
        // Key sensitivity too.
        let c3 = spec.encrypt_sw(k ^ 1, 0);
        assert_ne!(c1, c3);
    }

    #[test]
    fn gate_level_matches_software() {
        let spec = Des3Spec::new(7);
        let nl = des3_core(&spec, 2000.0);
        nl.validate().unwrap();
        assert_eq!(
            nl.stats().ffs,
            32 + 32 + 64 + 6 + 128 + 1,
            "core + bus capture + load delay"
        );
        let key = 0x0123_4567_89ab_cdefu64;
        let block = 0xdead_beef_cafe_f00du64;
        let expect = spec.encrypt_sw(key, block);

        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        for j in 0..64 {
            let p = nl.find_port(&format!("block_{j}")).unwrap();
            sim.set_input(p, Logic::from_bool((block >> j) & 1 == 1));
            let pk = nl.find_port(&format!("key_{j}")).unwrap();
            sim.set_input(pk, Logic::from_bool((key >> j) & 1 == 1));
        }
        let load = nl.find_port("load").unwrap();
        sim.set_input(load, Logic::One);
        sim.step_cycle(); // load lands after this cycle's edge
        sim.set_input(load, Logic::Zero);
        for _ in 0..50 {
            sim.step_cycle(); // +1 for the bus-capture stage
        }
        assert_eq!(sim.output(nl.find_port("done").unwrap()), Logic::One);
        let mut got = 0u64;
        for j in 0..64 {
            let p = nl.find_port(&format!("out_{j}")).unwrap();
            if sim.output(p) == Logic::One {
                got |= 1 << j;
            }
        }
        assert_eq!(got, expect);
    }
}
