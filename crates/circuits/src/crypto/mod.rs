//! Functionally real crypto cores standing in for the MIT-LL CEP
//! submodules the paper evaluates (AES, DES3, SHA256, MD5).

pub mod aes;
pub mod des3;
pub mod md5;
pub mod sha256;
