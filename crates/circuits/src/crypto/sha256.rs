//! Gate-level SHA-256 compression core (one round per cycle).
//!
//! Functionally real: the round constants are derived integer-exactly
//! (cube roots of the first 64 primes), the message schedule and working
//! variables follow FIPS 180-4, and the software model reproduces the
//! published digest of `"abc"`. The core compresses one 512-bit block in
//! 64 cycles.
//!
//! Bit conventions: port `block_{32·w+j}` is bit `j` (LSB first) of
//! big-endian message word `W_w`; `digest_{32·w+j}` likewise.

use triphase_netlist::{Builder, CellKind, ClockSpec, NetId, Netlist, Word};

fn primes(n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut x = 2u64;
    while out.len() < n {
        if out.iter().all(|&p| !x.is_multiple_of(p)) {
            out.push(x);
        }
        x += 1;
    }
    out
}

fn icbrt(x: u128) -> u128 {
    let mut lo = 0u128;
    let mut hi = 1u128 << 40;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid * mid * mid <= x {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

fn isqrt(x: u128) -> u128 {
    let mut lo = 0u128;
    let mut hi = 1u128 << 40;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid * mid <= x {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// The 64 round constants (integer-exact fractional cube roots).
pub fn k_constants() -> [u32; 64] {
    let ps = primes(64);
    let mut k = [0u32; 64];
    for (i, &p) in ps.iter().enumerate() {
        k[i] = (icbrt((p as u128) << 96) & 0xffff_ffff) as u32;
    }
    k
}

/// The 8 initial hash values (integer-exact fractional square roots).
pub fn iv() -> [u32; 8] {
    let ps = primes(8);
    let mut h = [0u32; 8];
    for (i, &p) in ps.iter().enumerate() {
        h[i] = (isqrt((p as u128) << 64) & 0xffff_ffff) as u32;
    }
    h
}

/// Software compression of one 512-bit block into the running state.
pub fn compress_sw(state: &[u32; 8], block: &[u32; 16]) -> [u32; 8] {
    let k = k_constants();
    let mut w = [0u32; 64];
    w[..16].copy_from_slice(block);
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(k[t])
            .wrapping_add(w[t]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    [
        state[0].wrapping_add(a),
        state[1].wrapping_add(b),
        state[2].wrapping_add(c),
        state[3].wrapping_add(d),
        state[4].wrapping_add(e),
        state[5].wrapping_add(f),
        state[6].wrapping_add(g),
        state[7].wrapping_add(h),
    ]
}

/// Software SHA-256 of a byte message (for golden tests).
pub fn sha256_sw(msg: &[u8]) -> [u8; 32] {
    let mut state = iv();
    let bitlen = (msg.len() as u64) * 8;
    let mut padded = msg.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bitlen.to_be_bytes());
    for chunk in padded.chunks(64) {
        let mut block = [0u32; 16];
        for (w, bytes) in block.iter_mut().zip(chunk.chunks(4)) {
            *w = u32::from_be_bytes(bytes.try_into().unwrap());
        }
        state = compress_sw(&state, &block);
    }
    let mut out = [0u8; 32];
    for (i, s) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&s.to_be_bytes());
    }
    out
}

// ---- gate level -----------------------------------------------------------

/// Logical shift right by a constant (zero fill).
fn shr_gate(b: &mut Builder, w: &Word, k: usize) -> Word {
    let zero = b.const0();
    (0..w.width())
        .map(|i| {
            if i + k < w.width() {
                w.bit(i + k)
            } else {
                zero
            }
        })
        .collect()
}

fn xor3(b: &mut Builder, x: &Word, y: &Word, z: &Word) -> Word {
    (0..x.width())
        .map(|i| b.gate(CellKind::Xor(3), &[x.bit(i), y.bit(i), z.bit(i)]))
        .collect()
}

fn add_mod(b: &mut Builder, x: &Word, y: &Word) -> Word {
    b.add(x, y, None).0
}

/// Word loaded from a constant table indexed by the round counter.
fn table_word(b: &mut Builder, t: &Word, table: &[u32]) -> Word {
    let mut padded = vec![0u64; 1 << t.width()];
    for (i, &v) in table.iter().enumerate() {
        padded[i] = v as u64;
    }
    b.sop(t, 32, &padded)
}

/// Generate the SHA-256 compression core.
///
/// Ports: `ck`, `load`, `block_0..512`; outputs `digest_0..256`, `done`.
/// Pulse `load` with the block applied, then run 64 cycles; `done` rises
/// and `digest` holds IV+state (single-block compression with the
/// standard initial value).
pub fn sha256_core(period_ps: f64) -> Netlist {
    let mut nl = Netlist::new("sha256");
    let mut b = Builder::new(&mut nl, "s");
    let (ckp, ck) = b.netlist().add_input("ck");
    let (_, load) = b.netlist().add_input("load");
    let block = b.word_input("block", 512);
    // Bus-interface capture stage (see des3.rs note).
    let block_r = b.dffen_word(&block, load, ck);
    let load_d = b.dff(load, ck);
    let ivs = iv();
    let ks = k_constants();

    // Registers, with q nets created first so next-state logic can close
    // the loops.
    let mk_reg = |b: &mut Builder, name: &str, width: usize| -> Word {
        (0..width)
            .map(|i| b.netlist().add_net(format!("{name}{i}")))
            .collect()
    };
    let w_regs: Vec<Word> = (0..16)
        .map(|i| mk_reg(&mut b, &format!("w{i}_"), 32))
        .collect();
    let vars: Vec<Word> = (0..8)
        .map(|i| mk_reg(&mut b, &format!("v{i}_"), 32))
        .collect();
    let t_reg: Word = mk_reg(&mut b, "t_", 7);

    let (a, e) = (vars[0].clone(), vars[4].clone());
    // Round computation.
    let s1 = xor3(&mut b, &e.rotr(6), &e.rotr(11), &e.rotr(25));
    let ef = b.and_word(&e, &vars[5]);
    let ne = b.not_word(&e);
    let neg = b.and_word(&ne, &vars[6]);
    let ch = b.xor_word(&ef, &neg);
    let kt = table_word(&mut b, &Word(t_reg.bits()[..6].to_vec()), &ks);
    let t1a = add_mod(&mut b, &vars[7], &s1);
    let t1b = add_mod(&mut b, &t1a, &ch);
    let t1c = add_mod(&mut b, &t1b, &kt);
    let t1 = add_mod(&mut b, &t1c, &w_regs[0]);
    let s0 = xor3(&mut b, &a.rotr(2), &a.rotr(13), &a.rotr(22));
    let ab = b.and_word(&a, &vars[1]);
    let ac = b.and_word(&a, &vars[2]);
    let bc = b.and_word(&vars[1], &vars[2]);
    let maj = xor3(&mut b, &ab, &ac, &bc);
    let t2 = add_mod(&mut b, &s0, &maj);
    let new_a = add_mod(&mut b, &t1, &t2);
    let new_e = add_mod(&mut b, &vars[3], &t1);

    // Message schedule.
    let sig0 = {
        let r7 = w_regs[1].rotr(7);
        let r18 = w_regs[1].rotr(18);
        let sh3 = shr_gate(&mut b, &w_regs[1], 3);
        xor3(&mut b, &r7, &r18, &sh3)
    };
    let sig1 = {
        let r17 = w_regs[14].rotr(17);
        let r19 = w_regs[14].rotr(19);
        let sh10 = shr_gate(&mut b, &w_regs[14], 10);
        xor3(&mut b, &r17, &r19, &sh10)
    };
    let wa = add_mod(&mut b, &w_regs[0], &sig0);
    let wb = add_mod(&mut b, &wa, &w_regs[9]);
    let w_new = add_mod(&mut b, &wb, &sig1);

    // Round counter: t' = load ? 0 : (t == 64 ? t : t + 1).
    let t_inc = b.add_const(&t_reg, 1);
    let at_end = b.eq_const(&t_reg, 64);
    let t_hold = b.mux_word(&t_inc, &t_reg, at_end);
    let zero7 = b.const_word(0, 7);
    let t_next = b.mux_word(&t_hold, &zero7, load_d);
    let running = b.not(at_end);

    // Register updates: enabled FFs (EN = load | running) instead of
    // recirculation muxes — the synthesized form a clock-gating-aware
    // flow produces, and what keeps these registers free of artificial
    // combinational self-loops (paper §IV-B).
    let en = b.or(&[load_d, running]);
    let clock_in = |b: &mut Builder, q: &Word, next: &Word, loadv: &Word, name: &str| {
        let d = b.mux_word(next, loadv, load_d);
        for (i, (&qn, &dn)) in q.bits().iter().zip(d.bits()).enumerate() {
            b.netlist().add_cell(
                format!("ff_{name}{i}"),
                CellKind::DffEn,
                vec![dn, en, ck, qn],
            );
        }
    };
    // W shift register.
    for i in 0..16 {
        let next = if i < 15 {
            w_regs[i + 1].clone()
        } else {
            w_new.clone()
        };
        let loadv = block_r.slice(32 * i, 32);
        clock_in(&mut b, &w_regs[i].clone(), &next, &loadv, &format!("w{i}_"));
    }
    // Working variables: (a..h) <- (t1+t2, a, b, c, d+t1, e, f, g).
    let nexts = [
        new_a.clone(),
        vars[0].clone(),
        vars[1].clone(),
        vars[2].clone(),
        new_e.clone(),
        vars[4].clone(),
        vars[5].clone(),
        vars[6].clone(),
    ];
    for (i, next) in nexts.iter().enumerate() {
        let ivw = b.const_word(ivs[i] as u64, 32);
        clock_in(&mut b, &vars[i].clone(), next, &ivw, &format!("v{i}_"));
    }
    // Counter (loads zero).
    {
        let q = t_reg.clone();
        for (i, (&qn, &dn)) in q.bits().iter().zip(t_next.bits()).enumerate() {
            b.netlist()
                .add_cell(format!("ff_t{i}"), CellKind::Dff, vec![dn, ck, qn]);
        }
    }

    // Digest: state + IV, available once done.
    let mut digest_bits: Vec<NetId> = Vec::with_capacity(256);
    for i in 0..8 {
        let ivw = b.const_word(ivs[i] as u64, 32);
        let sum = add_mod(&mut b, &vars[i], &ivw);
        digest_bits.extend(sum.bits());
    }
    b.word_output("digest", &Word(digest_bits));
    b.netlist().add_output("done", at_end);
    nl.clock = Some(ClockSpec::single(ckp, period_ps));
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_sim::{Logic, Simulator};

    #[test]
    fn constants_match_fips() {
        let k = k_constants();
        assert_eq!(k[0], 0x428a_2f98);
        assert_eq!(k[1], 0x7137_4491);
        assert_eq!(k[2], 0xb5c0_fbcf);
        assert_eq!(k[3], 0xe9b5_dba5);
        assert_eq!(k[63], 0xc671_78f2);
        let h = iv();
        assert_eq!(h[0], 0x6a09_e667);
        assert_eq!(h[7], 0x5be0_cd19);
    }

    #[test]
    fn software_digest_of_abc() {
        let d = sha256_sw(b"abc");
        let expect: [u8; 32] = [
            0xba, 0x78, 0x16, 0xbf, 0x8f, 0x01, 0xcf, 0xea, 0x41, 0x41, 0x40, 0xde, 0x5d, 0xae,
            0x22, 0x23, 0xb0, 0x03, 0x61, 0xa3, 0x96, 0x17, 0x7a, 0x9c, 0xb4, 0x10, 0xff, 0x61,
            0xf2, 0x00, 0x15, 0xad,
        ];
        assert_eq!(d, expect);
    }

    #[test]
    fn gate_level_matches_software() {
        let nl = sha256_core(2000.0);
        nl.validate().unwrap();
        let s = nl.stats();
        assert_eq!(
            s.ffs,
            512 + 256 + 7 + 512 + 1,
            "core + bus capture + load delay"
        );
        // Compress the padded "abc" block.
        let mut block = [0u32; 16];
        let mut padded = b"abc".to_vec();
        padded.push(0x80);
        while padded.len() % 64 != 56 {
            padded.push(0);
        }
        padded.extend_from_slice(&(24u64).to_be_bytes());
        for (w, bytes) in block.iter_mut().zip(padded.chunks(4)) {
            *w = u32::from_be_bytes(bytes.try_into().unwrap());
        }
        let expect = compress_sw(&iv(), &block);

        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        for (w, &word) in block.iter().enumerate() {
            for j in 0..32 {
                let p = nl.find_port(&format!("block_{}", 32 * w + j)).unwrap();
                sim.set_input(p, Logic::from_bool((word >> j) & 1 == 1));
            }
        }
        let load = nl.find_port("load").unwrap();
        sim.set_input(load, Logic::One);
        sim.step_cycle(); // load lands after this cycle's edge
        sim.set_input(load, Logic::Zero);
        for _ in 0..66 {
            sim.step_cycle(); // +1 for the bus-capture stage
        }
        let done = nl.find_port("done").unwrap();
        assert_eq!(sim.output(done), Logic::One);
        for (w, &want) in expect.iter().enumerate() {
            let mut got = 0u32;
            for j in 0..32 {
                let p = nl.find_port(&format!("digest_{}", 32 * w + j)).unwrap();
                if sim.output(p) == Logic::One {
                    got |= 1 << j;
                }
            }
            assert_eq!(got, want, "digest word {w}");
        }
    }

    #[test]
    fn done_holds_after_completion() {
        let nl = sha256_core(2000.0);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        let load = nl.find_port("load").unwrap();
        sim.set_input(load, Logic::One);
        sim.step_cycle();
        sim.set_input(load, Logic::Zero);
        for _ in 0..70 {
            sim.step_cycle();
        }
        let done = nl.find_port("done").unwrap();
        assert_eq!(sim.output(done), Logic::One, "holds past 64 rounds");
    }
}
