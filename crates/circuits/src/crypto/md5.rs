//! Gate-level MD5 compression core (one round per cycle).
//!
//! Functionally real (RFC 1321): the sine-derived constants are computed,
//! the variable per-round rotation is a 16:1 mux over constant rotations,
//! and the message word selection follows the four round permutations.
//! The software model reproduces the published digest of the empty
//! message. One 512-bit block compresses in 64 cycles.

use triphase_netlist::{Builder, CellKind, ClockSpec, Netlist, Word};

/// MD5 initial state.
pub const IV: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];

/// Per-group rotation amounts.
pub const SHIFTS: [[u32; 4]; 4] = [
    [7, 12, 17, 22],
    [5, 9, 14, 20],
    [4, 11, 16, 23],
    [6, 10, 15, 21],
];

/// The 64 sine-derived constants.
pub fn k_constants() -> [u32; 64] {
    let mut k = [0u32; 64];
    for (i, out) in k.iter_mut().enumerate() {
        let s = ((i + 1) as f64).sin().abs();
        *out = (s * 4294967296.0).floor() as u32;
    }
    k
}

/// Message word index for round `i`.
pub fn g_index(i: usize) -> usize {
    match i / 16 {
        0 => i % 16,
        1 => (5 * i + 1) % 16,
        2 => (3 * i + 5) % 16,
        _ => (7 * i) % 16,
    }
}

/// Software compression of one block into the running state.
pub fn compress_sw(state: &[u32; 4], m: &[u32; 16]) -> [u32; 4] {
    let k = k_constants();
    let [mut a, mut b, mut c, mut d] = *state;
    for i in 0..64 {
        let f = match i / 16 {
            0 => (b & c) | (!b & d),
            1 => (d & b) | (!d & c),
            2 => b ^ c ^ d,
            _ => c ^ (b | !d),
        };
        let total = a
            .wrapping_add(f)
            .wrapping_add(k[i])
            .wrapping_add(m[g_index(i)]);
        let s = SHIFTS[i / 16][i % 4];
        let nb = b.wrapping_add(total.rotate_left(s));
        a = d;
        d = c;
        c = b;
        b = nb;
    }
    [
        state[0].wrapping_add(a),
        state[1].wrapping_add(b),
        state[2].wrapping_add(c),
        state[3].wrapping_add(d),
    ]
}

/// Software MD5 of a byte message.
pub fn md5_sw(msg: &[u8]) -> [u8; 16] {
    let mut state = IV;
    let bitlen = (msg.len() as u64) * 8;
    let mut padded = msg.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bitlen.to_le_bytes());
    for chunk in padded.chunks(64) {
        let mut m = [0u32; 16];
        for (w, bytes) in m.iter_mut().zip(chunk.chunks(4)) {
            *w = u32::from_le_bytes(bytes.try_into().unwrap());
        }
        state = compress_sw(&state, &m);
    }
    let mut out = [0u8; 16];
    for (i, s) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&s.to_le_bytes());
    }
    out
}

// ---- gate level -----------------------------------------------------------

/// N:1 word mux with an LSB-first select word (`words.len() == 2^sel bits`).
fn mux_many(b: &mut Builder, words: &[Word], sel: &Word) -> Word {
    assert_eq!(words.len(), 1 << sel.width(), "mux size mismatch");
    let mut level: Vec<Word> = words.to_vec();
    for s in 0..sel.width() {
        let bit = sel.bit(s);
        level = level
            .chunks(2)
            .map(|pair| b.mux_word(&pair[0], &pair[1], bit))
            .collect();
    }
    level.pop().expect("one word left")
}

fn table_word(b: &mut Builder, t: &Word, table: &[u32]) -> Word {
    let mut padded = vec![0u64; 1 << t.width()];
    for (i, &v) in table.iter().enumerate() {
        padded[i] = v as u64;
    }
    b.sop(t, 32, &padded)
}

/// Generate the MD5 compression core.
///
/// Ports: `ck`, `load`, `block_0..512` (little-endian words); outputs
/// `digest_0..128`, `done`. Pulse `load` with the block applied, run 64
/// cycles, read `digest` (state + IV).
pub fn md5_core(period_ps: f64) -> Netlist {
    let mut nl = Netlist::new("md5");
    let mut b = Builder::new(&mut nl, "m");
    let (ckp, ck) = b.netlist().add_input("ck");
    let (_, load) = b.netlist().add_input("load");
    let block = b.word_input("block", 512);
    // Bus-interface capture stage (see des3.rs note).
    let block_r = b.dffen_word(&block, load, ck);
    let load_d = b.dff(load, ck);
    let ks = k_constants();

    let mk_reg = |b: &mut Builder, name: &str, width: usize| -> Word {
        (0..width)
            .map(|i| b.netlist().add_net(format!("{name}{i}")))
            .collect()
    };
    let m_regs: Vec<Word> = (0..16)
        .map(|i| mk_reg(&mut b, &format!("m{i}_"), 32))
        .collect();
    let va = mk_reg(&mut b, "a_", 32);
    let vb = mk_reg(&mut b, "b_", 32);
    let vc = mk_reg(&mut b, "c_", 32);
    let vd = mk_reg(&mut b, "d_", 32);
    let t_reg = mk_reg(&mut b, "t_", 7);

    let t6 = Word(t_reg.bits()[..6].to_vec());
    // f by round group.
    let f0 = {
        let x = b.and_word(&vb, &vc);
        let nb = b.not_word(&vb);
        let y = b.and_word(&nb, &vd);
        b.or_word(&x, &y)
    };
    let f1 = {
        let x = b.and_word(&vd, &vb);
        let nd = b.not_word(&vd);
        let y = b.and_word(&nd, &vc);
        b.or_word(&x, &y)
    };
    let f2 = {
        let x = b.xor_word(&vb, &vc);
        b.xor_word(&x, &vd)
    };
    let f3 = {
        let nd = b.not_word(&vd);
        let x = b.or_word(&vb, &nd);
        b.xor_word(&vc, &x)
    };
    let t4 = t_reg.bit(4);
    let t5 = t_reg.bit(5);
    let f01 = b.mux_word(&f0, &f1, t4);
    let f23 = b.mux_word(&f2, &f3, t4);
    let f = b.mux_word(&f01, &f23, t5);

    // K[t] and M[g(t)].
    let kt = table_word(&mut b, &t6, &ks);
    let g_table: Vec<u32> = (0..64).map(|i| g_index(i) as u32).collect();
    let g_sel_w = {
        let mut padded = vec![0u64; 64];
        for (i, &v) in g_table.iter().enumerate() {
            padded[i] = v as u64;
        }
        b.sop(&t6, 4, &padded)
    };
    let mg = mux_many(&mut b, &m_regs, &g_sel_w);

    // total = a + f + K + M[g]; b' = b + rotl(total, s(t)).
    let s1 = b.add(&va, &f, None).0;
    let s2 = b.add(&s1, &kt, None).0;
    let total = b.add(&s2, &mg, None).0;
    // 16 candidate rotations selected by (t0, t1, t4, t5).
    let rot_candidates: Vec<Word> = (0..16)
        .map(|idx| {
            let group = idx / 4;
            let pos = idx % 4;
            total.rotl(SHIFTS[group][pos] as usize)
        })
        .collect();
    let rot_sel = Word(vec![t_reg.bit(0), t_reg.bit(1), t4, t5]);
    let rotated = mux_many(&mut b, &rot_candidates, &rot_sel);
    let new_b = b.add(&vb, &rotated, None).0;

    // Counter.
    let t_inc = b.add_const(&t_reg, 1);
    let at_end = b.eq_const(&t_reg, 64);
    let t_hold = b.mux_word(&t_inc, &t_reg, at_end);
    let zero7 = b.const_word(0, 7);
    let t_next = b.mux_word(&t_hold, &zero7, load_d);
    let running = b.not(at_end);

    // Enabled FFs instead of recirculation muxes (see sha256.rs note).
    let en = b.or(&[load_d, running]);
    let clock_in = |b: &mut Builder, q: &Word, next: &Word, loadv: &Word, name: &str| {
        let d = b.mux_word(next, loadv, load_d);
        for (i, (&qn, &dn)) in q.bits().iter().zip(d.bits()).enumerate() {
            b.netlist().add_cell(
                format!("ff_{name}{i}"),
                CellKind::DffEn,
                vec![dn, en, ck, qn],
            );
        }
    };
    // Message registers only ever change on load.
    for (i, m) in m_regs.iter().enumerate() {
        let loadv = block_r.slice(32 * i, 32);
        for (j, (&qn, &dn)) in m.bits().iter().zip(loadv.bits()).enumerate() {
            b.netlist().add_cell(
                format!("ff_m{i}_{j}"),
                CellKind::DffEn,
                vec![dn, load_d, ck, qn],
            );
        }
    }
    // (a, b, c, d) <- (d, b + rot, b, c)
    let iva = b.const_word(IV[0] as u64, 32);
    let ivb = b.const_word(IV[1] as u64, 32);
    let ivc = b.const_word(IV[2] as u64, 32);
    let ivd = b.const_word(IV[3] as u64, 32);
    clock_in(&mut b, &va.clone(), &vd.clone(), &iva, "a_");
    clock_in(&mut b, &vb.clone(), &new_b, &ivb, "b_");
    clock_in(&mut b, &vc.clone(), &vb.clone(), &ivc, "c_");
    clock_in(&mut b, &vd.clone(), &vc.clone(), &ivd, "d_");
    for (i, (&qn, &dn)) in t_reg.bits().iter().zip(t_next.bits()).enumerate() {
        b.netlist()
            .add_cell(format!("ff_t{i}"), CellKind::Dff, vec![dn, ck, qn]);
    }

    // Digest = state + IV (little-endian word order a, b, c, d).
    let mut digest_bits = Vec::with_capacity(128);
    for (reg, ivv) in [(&va, IV[0]), (&vb, IV[1]), (&vc, IV[2]), (&vd, IV[3])] {
        let ivw = b.const_word(ivv as u64, 32);
        let sum = b.add(reg, &ivw, None).0;
        digest_bits.extend(sum.bits());
    }
    b.word_output("digest", &Word(digest_bits));
    b.netlist().add_output("done", at_end);
    nl.clock = Some(ClockSpec::single(ckp, period_ps));
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_sim::{Logic, Simulator};

    #[test]
    fn constants_match_rfc1321() {
        let k = k_constants();
        assert_eq!(k[0], 0xd76a_a478);
        assert_eq!(k[1], 0xe8c7_b756);
        assert_eq!(k[63], 0xeb86_d391);
    }

    #[test]
    fn software_digest_of_empty_and_abc() {
        let empty = md5_sw(b"");
        assert_eq!(
            empty,
            [
                0xd4, 0x1d, 0x8c, 0xd9, 0x8f, 0x00, 0xb2, 0x04, 0xe9, 0x80, 0x09, 0x98, 0xec, 0xf8,
                0x42, 0x7e
            ]
        );
        let abc = md5_sw(b"abc");
        assert_eq!(
            abc,
            [
                0x90, 0x01, 0x50, 0x98, 0x3c, 0xd2, 0x4f, 0xb0, 0xd6, 0x96, 0x3f, 0x7d, 0x28, 0xe1,
                0x7f, 0x72
            ]
        );
    }

    #[test]
    fn g_index_permutations() {
        assert_eq!(g_index(0), 0);
        assert_eq!(g_index(16), 1);
        assert_eq!(g_index(32), 5);
        assert_eq!(g_index(48), 0);
        // Each group visits all 16 message words.
        for group in 0..4 {
            let mut seen = [false; 16];
            for i in 0..16 {
                seen[g_index(16 * group + i)] = true;
            }
            assert!(seen.iter().all(|&s| s), "group {group}");
        }
    }

    #[test]
    fn gate_level_matches_software() {
        let nl = md5_core(2000.0);
        nl.validate().unwrap();
        assert_eq!(
            nl.stats().ffs,
            512 + 128 + 7 + 512 + 1,
            "core + bus capture + load delay"
        );
        // Compress the padded empty-message block.
        let mut padded = vec![0x80u8];
        while padded.len() % 64 != 56 {
            padded.push(0);
        }
        padded.extend_from_slice(&0u64.to_le_bytes());
        let mut m = [0u32; 16];
        for (w, bytes) in m.iter_mut().zip(padded.chunks(4)) {
            *w = u32::from_le_bytes(bytes.try_into().unwrap());
        }
        let expect = compress_sw(&IV, &m);

        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        for (w, &word) in m.iter().enumerate() {
            for j in 0..32 {
                let p = nl.find_port(&format!("block_{}", 32 * w + j)).unwrap();
                sim.set_input(p, Logic::from_bool((word >> j) & 1 == 1));
            }
        }
        let load = nl.find_port("load").unwrap();
        sim.set_input(load, Logic::One);
        sim.step_cycle(); // load lands after this cycle's edge
        sim.set_input(load, Logic::Zero);
        for _ in 0..66 {
            sim.step_cycle(); // +1 for the bus-capture stage
        }
        assert_eq!(
            sim.output(nl.find_port("done").unwrap()),
            Logic::One,
            "done after 64 rounds"
        );
        for (w, &want) in expect.iter().enumerate() {
            let mut got = 0u32;
            for j in 0..32 {
                let p = nl.find_port(&format!("digest_{}", 32 * w + j)).unwrap();
                if sim.output(p) == Logic::One {
                    got |= 1 << j;
                }
            }
            assert_eq!(got, want, "digest word {w}");
        }
    }
}
