//! Benchmark circuit generators for the `triphase` toolkit.
//!
//! Everything the paper evaluates on, rebuilt or substituted (see
//! DESIGN.md §1):
//!
//! - [`pipeline`]: linear FF pipelines (the paper's Fig. 1 special case);
//! - [`iscas`]: the embedded real `s27` plus profile-matched synthetic
//!   ISCAS89-class circuits for the eleven Table-I rows;
//! - [`crypto`]: functionally real AES-128 / SHA-256 / MD5 cores and a
//!   DES3-like Feistel network (the CEP submodules);
//! - [`cpu`]: parameterized pipelined CPUs (Plasma-like / Rocket-lite /
//!   M0-like) with a cycle-accurate golden model and two instruction-mix
//!   workloads (the Fig. 4 axis).
//!
//! All generators are seeded and deterministic.
//!
//! # Examples
//!
//! ```
//! use triphase_circuits::pipeline::linear_pipeline;
//!
//! let nl = linear_pipeline(4, 8, 2, 1000.0);
//! assert_eq!(nl.stats().ffs, 32);
//! nl.validate().unwrap();
//! ```

pub mod cpu;
pub mod crypto;
pub mod iscas;
pub mod pipeline;
