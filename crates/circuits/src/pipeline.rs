//! Linear pipeline generator (the paper's Fig. 1 special case).

use triphase_netlist::{Builder, ClockSpec, Netlist, Word};

/// Generate a linear FF-based pipeline: `stages` register stages of
/// `width` bits with `depth` levels of mixing logic (XOR/rotate) between
/// consecutive stages.
///
/// The special case the paper analyzes: no combinational feedback, so the
/// 3-phase conversion needs exactly one extra latch stage per two original
/// stages.
///
/// # Panics
///
/// Panics if `stages == 0` or `width == 0`.
pub fn linear_pipeline(stages: usize, width: usize, depth: usize, period_ps: f64) -> Netlist {
    assert!(stages > 0 && width > 0, "degenerate pipeline");
    let mut nl = Netlist::new(format!("pipe{stages}x{width}"));
    let mut b = Builder::new(&mut nl, "u");
    let (ckp, ck) = b.netlist().add_input("ck");
    let mut data: Word = b.word_input("din", width);
    for _ in 0..stages {
        for _ in 0..depth {
            let rot = data.rotl(1);
            data = b.xor_word(&data, &rot);
        }
        data = b.dff_word(&data, ck);
    }
    b.word_output("dout", &data);
    nl.clock = Some(ClockSpec::single(ckp, period_ps));
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_scale_with_parameters() {
        let nl = linear_pipeline(4, 8, 2, 1000.0);
        let s = nl.stats();
        assert_eq!(s.ffs, 32);
        assert_eq!(s.inputs, 9); // 8 data + clock
        assert_eq!(s.outputs, 8);
        nl.validate().unwrap();
        // depth XOR layers * width * stages gates.
        assert_eq!(s.comb, 4 * 2 * 8);
    }

    #[test]
    fn zero_depth_pipeline_is_shift_register() {
        let nl = linear_pipeline(3, 4, 0, 500.0);
        assert_eq!(nl.stats().comb, 0);
        assert_eq!(nl.stats().ffs, 12);
        nl.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_zero_stages() {
        linear_pipeline(0, 4, 1, 1000.0);
    }

    #[test]
    fn simulates_as_pipeline() {
        use triphase_sim::{Logic, Simulator};
        let nl = linear_pipeline(2, 4, 0, 1000.0);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        let din0 = nl.find_port("din_0").unwrap();
        let dout0 = nl.find_port("dout_0").unwrap();
        sim.set_input(din0, Logic::One);
        sim.step_cycle(); // input applied after this cycle's edge
        sim.step_cycle(); // captured into stage 1
        sim.step_cycle(); // reaches the output register
        assert_eq!(sim.output(dout0), Logic::One);
    }
}
