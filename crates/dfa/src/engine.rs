//! Generic fixpoint machinery: the ternary value lattice, the levelized
//! cell schedule (shared with `triphase-sim`'s levelization), a monotone
//! worklist fixpoint over net values, and a cycle-detecting sequential
//! iteration harness.

use crate::error::{Error, Result};
use std::collections::HashMap;
use std::hash::Hash;
use triphase_netlist::{graph, Cell, CellId, ConnIndex, Netlist};
use triphase_sim::Logic;

/// A join-semilattice of abstract values.
pub trait Lattice: Copy + PartialEq {
    /// Least upper bound.
    fn join(self, other: Self) -> Self;
}

/// Ternary value-set lattice: `Bot < {Zero, One} < Both`.
///
/// `Bot` means "no value observed yet" (unreachable); `Zero`/`One` mean the
/// net provably holds that constant in every reachable state; `Both` means
/// the net can take either value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tern {
    /// Unreachable / not yet computed.
    #[default]
    Bot,
    /// Provably constant 0.
    Zero,
    /// Provably constant 1.
    One,
    /// May be 0 or 1.
    Both,
}

impl Tern {
    /// `true` when the set contains logic 1.
    pub fn can_be_one(self) -> bool {
        matches!(self, Tern::One | Tern::Both)
    }

    /// `true` when the set contains logic 0.
    pub fn can_be_zero(self) -> bool {
        matches!(self, Tern::Zero | Tern::Both)
    }

    /// `true` when the set is a single known constant.
    pub fn is_const(self) -> bool {
        matches!(self, Tern::Zero | Tern::One)
    }

    /// The 3-valued view used for gate evaluation (`Both` maps to `X`).
    /// Returns `None` for `Bot`.
    pub fn to_logic(self) -> Option<Logic> {
        match self {
            Tern::Bot => None,
            Tern::Zero => Some(Logic::Zero),
            Tern::One => Some(Logic::One),
            Tern::Both => Some(Logic::X),
        }
    }

    /// Inverse of [`Tern::to_logic`] (`X` maps to `Both`).
    pub fn from_logic(l: Logic) -> Tern {
        match l {
            Logic::Zero => Tern::Zero,
            Logic::One => Tern::One,
            Logic::X => Tern::Both,
        }
    }
}

impl Lattice for Tern {
    fn join(self, other: Self) -> Self {
        match (self, other) {
            (Tern::Bot, v) | (v, Tern::Bot) => v,
            (a, b) if a == b => a,
            _ => Tern::Both,
        }
    }
}

/// The levelized cell schedule used by every analysis: the combinational
/// fabric in topological order (the same levelization `triphase-sim` uses),
/// then the clock network, then storage.
#[derive(Debug, Clone)]
pub struct Levelized {
    /// Combinational cells in topological order.
    pub comb: Vec<CellId>,
    /// Clock-network cells (clock buffers and clock gates), unordered —
    /// the fixpoint sweeps absorb their shallow dependencies.
    pub clock: Vec<CellId>,
    /// Storage cells (FFs and latches).
    pub storage: Vec<CellId>,
}

impl Levelized {
    /// Levelize `nl`.
    ///
    /// # Errors
    ///
    /// [`Error::Netlist`] on a combinational loop.
    pub fn new(nl: &Netlist, idx: &ConnIndex) -> Result<Levelized> {
        let comb = graph::comb_topo_order(nl, idx).map_err(Error::Netlist)?;
        let mut clock = Vec::new();
        let mut storage = Vec::new();
        for (id, cell) in nl.cells() {
            if cell.kind.is_clock_gate() || cell.kind == triphase_cells::CellKind::ClkBuf {
                clock.push(id);
            } else if cell.kind.is_storage() {
                storage.push(id);
            }
        }
        Ok(Levelized {
            comb,
            clock,
            storage,
        })
    }

    /// All scheduled cells in sweep order (comb, clock, storage).
    pub fn sweep_order(&self) -> impl Iterator<Item = CellId> + '_ {
        self.comb
            .iter()
            .chain(self.clock.iter())
            .chain(self.storage.iter())
            .copied()
    }
}

/// Monotone worklist fixpoint over per-net abstract values.
///
/// Sweeps the levelized schedule, calling `transfer` per cell; a `Some`
/// result is **joined** into the cell's output-net value (so any monotone
/// transfer terminates on a finite lattice). Returns the number of sweeps
/// used; the cap is generous (`2 * cells + 16`) and only guards against a
/// non-monotone transfer.
pub fn fixpoint<V: Lattice>(
    nl: &Netlist,
    lv: &Levelized,
    values: &mut [V],
    mut transfer: impl FnMut(CellId, &Cell, &[V]) -> Option<V>,
) -> usize {
    let cap = 2 * nl.cell_count() + 16;
    let mut sweeps = 0;
    while sweeps < cap {
        sweeps += 1;
        let mut changed = false;
        for id in lv.sweep_order() {
            let cell = nl.cell(id);
            let Some(v) = transfer(id, cell, values) else {
                continue;
            };
            let out = cell.output().index();
            let joined = values[out].join(v);
            if joined != values[out] {
                values[out] = joined;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    sweeps
}

/// Result of [`iterate_to_cycle`]: the observed state trace and, when a
/// previously-seen state recurred, the index where the loop starts.
#[derive(Debug, Clone)]
pub struct CycleResult<S> {
    /// States in visit order, `states[0]` being the initial state.
    pub states: Vec<S>,
    /// Index into `states` of the first state of the detected loop
    /// (`None` when the step cap was hit first).
    pub loop_start: Option<usize>,
}

impl<S> CycleResult<S> {
    /// The states of the steady-state loop (empty when none was found).
    pub fn loop_states(&self) -> &[S] {
        match self.loop_start {
            Some(i) => &self.states[i..],
            None => &[],
        }
    }
}

/// Drive a sequential system until its state signature repeats.
///
/// `next` advances the system one cycle and returns the new signature;
/// iteration stops when a signature recurs or after `cap` steps.
pub fn iterate_to_cycle<S: Eq + Hash + Clone>(
    initial: S,
    mut next: impl FnMut() -> S,
    cap: usize,
) -> CycleResult<S> {
    let mut seen: HashMap<S, usize> = HashMap::new();
    let mut states = vec![initial.clone()];
    seen.insert(initial, 0);
    for _ in 0..cap {
        let s = next();
        if let Some(&at) = seen.get(&s) {
            return CycleResult {
                states,
                loop_start: Some(at),
            };
        }
        seen.insert(s.clone(), states.len());
        states.push(s);
    }
    CycleResult {
        states,
        loop_start: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tern_join_is_a_lattice() {
        use Tern::{Bot, Both, One, Zero};
        assert_eq!(Bot.join(One), One);
        assert_eq!(Zero.join(Zero), Zero);
        assert_eq!(Zero.join(One), Both);
        assert_eq!(Both.join(Zero), Both);
        assert_eq!(Tern::from_logic(Logic::X), Both);
        assert_eq!(One.to_logic(), Some(Logic::One));
        assert_eq!(Bot.to_logic(), None);
    }

    #[test]
    fn cycle_detected_in_modular_counter() {
        let mut x = 0u32;
        let r = iterate_to_cycle(
            x,
            || {
                x = (x + 3) % 7;
                x
            },
            100,
        );
        assert_eq!(r.loop_start, Some(0), "mod-7 counter loops to start");
        assert_eq!(r.loop_states().len(), 7);
    }

    #[test]
    fn cycle_cap_respected() {
        let mut x = 0u64;
        let r = iterate_to_cycle(
            x,
            || {
                x += 1;
                x
            },
            10,
        );
        assert_eq!(r.loop_start, None);
        assert_eq!(r.states.len(), 11);
    }
}
