//! Diagnostic wrapper around the static min-delay race checker
//! (`triphase_timing::check_min_delay`).
//!
//! Findings:
//!
//! - `D301` (error): the earliest arrival launched through an upstream
//!   transparent latch lands inside the downstream latch's still-open
//!   window (negative hold margin in the SMO local frame);
//! - `D302` (error): an adjacent latch pair is co-transparent — their
//!   windows overlap on the clock circle, so the pair can race at *any*
//!   delay (conversion constraint C2);
//! - `D303`: time-borrowing chains — warning when the worst chain's
//!   cumulative borrow exceeds the clock period, info for steady-state
//!   borrowing cycles (a converged fixpoint proves the cyclic borrow is
//!   bounded — legitimate latch operation, but with no recovery edge on
//!   the loop) and for a diverged setup-side fixed point (min-delay
//!   checking still completed on the min-only fixed point; the setup
//!   failure itself is the SMO slack report's responsibility).

use crate::error::{Error, Result};
use triphase_cells::Library;
use triphase_lint::{Diagnostic, Location, Severity};
use triphase_netlist::{ConnIndex, Netlist};
use triphase_timing::check_min_delay;

/// Aggregate numbers from the race check (exported to BENCH reports).
#[derive(Debug, Clone, Copy, Default)]
pub struct RaceSummary {
    /// Storage-to-storage pairs analyzed.
    pub pairs: usize,
    /// Pairs that race (negative margin or co-transparent).
    pub races: usize,
    /// Worst pair margin (ps; infinite when there are no pairs).
    pub worst_margin_ps: f64,
    /// Latches on the worst time-borrowing chain.
    pub worst_chain_len: usize,
    /// Cumulative borrow of that chain (ps).
    pub worst_chain_borrow_ps: f64,
}

/// Run the min-delay race analysis and turn violations into diagnostics.
///
/// A diverging setup-side fixpoint does not abort the analysis: the
/// checker falls back to a min-only fixed point (see
/// [`RaceReport::setup_diverged`](triphase_timing::RaceReport)) and the
/// divergence is surfaced as an advisory `D303` info — setup failures are
/// the SMO slack report's responsibility, not the race checker's.
///
/// # Errors
///
/// [`Error::Timing`] on structural failures (no clock spec, clock trace,
/// combinational loop).
pub fn analyze_races(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
) -> Result<(RaceSummary, Vec<Diagnostic>)> {
    let report = check_min_delay(nl, lib, idx, None).map_err(Error::Timing)?;

    let mut diagnostics = Vec::new();
    if report.setup_diverged {
        diagnostics.push(Diagnostic {
            code: "D303",
            rule: "borrow-chain",
            severity: Severity::Info,
            location: Location::Design,
            message: "time borrowing diverges around a transparent latch loop; \
                      min-delay checks completed on the min-only fixed point \
                      (see the setup slack report for the borrowing pathology)"
                .into(),
        });
    }
    let name = |c: triphase_netlist::CellId| nl.cell(c).name.clone();
    for p in report.races() {
        if p.margin_ps < 0.0 {
            diagnostics.push(Diagnostic {
                code: "D301",
                rule: "min-delay-race",
                severity: Severity::Error,
                location: Location::Cell {
                    id: p.to,
                    name: name(p.to),
                },
                message: format!(
                    "min-delay race: data from `{}` arrives {:.1} ps before the \
                     hold requirement of `{}`",
                    name(p.from),
                    -p.margin_ps,
                    name(p.to)
                ),
            });
        }
        if p.co_transparent {
            diagnostics.push(Diagnostic {
                code: "D302",
                rule: "co-transparent",
                severity: Severity::Error,
                location: Location::Cell {
                    id: p.to,
                    name: name(p.to),
                },
                message: format!(
                    "latches `{}` and `{}` have overlapping transparency windows (C2)",
                    name(p.from),
                    name(p.to)
                ),
            });
        }
    }

    let mut summary = RaceSummary {
        pairs: report.pairs.len(),
        races: report.races().count(),
        worst_margin_ps: report.worst_margin_ps,
        ..RaceSummary::default()
    };
    if let Some(chain) = &report.worst_chain {
        summary.worst_chain_len = chain.cells.len();
        summary.worst_chain_borrow_ps = chain.borrowed_ps;
        if chain.cyclic {
            // The fixpoint converged, so the cyclic borrow is bounded —
            // steady-state borrowing around a loop is legitimate latch
            // operation (unbounded growth is caught as setup divergence).
            // Still worth surfacing: no edge on the loop has recovery
            // margin, so any delay increase propagates around the cycle.
            diagnostics.push(Diagnostic {
                code: "D303",
                rule: "borrow-chain",
                severity: Severity::Info,
                location: Location::Design,
                message: format!(
                    "a cycle of {} latches borrows time in steady state — \
                     no recovery edge on the loop",
                    chain.cells.len()
                ),
            });
        } else if chain.borrowed_ps > report.period_ps {
            diagnostics.push(Diagnostic {
                code: "D303",
                rule: "borrow-chain",
                severity: Severity::Warn,
                location: Location::Design,
                message: format!(
                    "worst time-borrowing chain spans {} latches and borrows {:.1} ps \
                     (more than the {:.0} ps period)",
                    chain.cells.len(),
                    chain.borrowed_ps,
                    report.period_ps
                ),
            });
        }
    }
    Ok((summary, diagnostics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_cells::CellKind;
    use triphase_netlist::{Builder, ClockSpec};

    fn latch3(period: f64, inv_per_stage: usize) -> Netlist {
        let mut nl = Netlist::new("l3");
        let mut b = Builder::new(&mut nl, "u");
        let (p1, c1) = b.netlist().add_input("p1");
        let (p2, c2) = b.netlist().add_input("p2");
        let (p3, c3) = b.netlist().add_input("p3");
        let (_, d) = b.netlist().add_input("d");
        let mut x = d;
        for (i, g) in [c1, c2, c3].iter().enumerate() {
            let q = b.net(&format!("q{i}"));
            b.netlist()
                .add_cell(format!("lat{i}"), CellKind::LatchH, vec![x, *g, q]);
            x = q;
            for _ in 0..inv_per_stage {
                x = b.not(x);
            }
        }
        b.netlist().add_output("q", x);
        nl.clock = Some(ClockSpec::equal_phases(&[p1, p2, p3], period));
        nl
    }

    #[test]
    fn proper_3_phase_is_clean() {
        let lib = Library::synthetic_28nm();
        let nl = latch3(900.0, 2);
        let idx = nl.index();
        let (summary, diags) = analyze_races(&nl, &lib, &idx).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
        assert!(summary.pairs > 0);
        assert_eq!(summary.races, 0);
    }

    #[test]
    fn same_phase_pair_flagged() {
        let lib = Library::synthetic_28nm();
        let mut nl = Netlist::new("bad");
        let mut b = Builder::new(&mut nl, "u");
        let (p1, c1) = b.netlist().add_input("p1");
        let (p2, _) = b.netlist().add_input("p2");
        let (_, d) = b.netlist().add_input("d");
        let q0 = b.net("q0");
        let q1 = b.net("q1");
        b.netlist()
            .add_cell("l0", CellKind::LatchH, vec![d, c1, q0]);
        let x = b.not(q0);
        b.netlist()
            .add_cell("l1", CellKind::LatchH, vec![x, c1, q1]);
        b.netlist().add_output("q", q1);
        nl.clock = Some(ClockSpec::equal_phases(&[p1, p2], 1000.0));
        let idx = nl.index();
        let (summary, diags) = analyze_races(&nl, &lib, &idx).unwrap();
        assert!(summary.races > 0);
        assert!(diags.iter().any(|d| d.code == "D302"), "{diags:?}");
    }
}
