//! Per-analysis report with the same JSON schema and severity model as
//! `triphase-lint` (the `stage` field is replaced by `analysis`/`stage`).

use triphase_lint::{json_str, Diagnostic, Severity};

/// One dataflow analysis pass over one design.
#[derive(Debug, Clone)]
pub struct DfaReport {
    /// Design name.
    pub design: String,
    /// Analysis id: `const`, `reset`, or `race`.
    pub analysis: &'static str,
    /// Flow stage the analysis ran at (`None` for standalone runs).
    pub stage: Option<String>,
    /// Findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl DfaReport {
    /// Error-severity findings.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.with_severity(Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> Vec<&Diagnostic> {
        self.with_severity(Severity::Warn)
    }

    fn with_severity(&self, s: Severity) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == s)
            .collect()
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when the report has no error-severity findings (the same
    /// convention as `triphase_lint::Report::is_clean`).
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// Number of findings that count against a golden design (warnings
    /// and errors; infos are advisory exports).
    pub fn findings(&self) -> usize {
        self.count(Severity::Error) + self.count(Severity::Warn)
    }

    /// `true` when a diagnostic with `code` is present.
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Serialize as a machine-readable JSON object (same schema as the
    /// lint reports, with `analysis` + `stage` in place of `stage`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"design\":{},", json_str(&self.design)));
        out.push_str(&format!("\"analysis\":{},", json_str(self.analysis)));
        out.push_str(&format!(
            "\"stage\":{},",
            self.stage.as_deref().map_or("null".to_owned(), json_str)
        ));
        out.push_str(&format!(
            "\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{}}},",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"rule\":{},\"severity\":{},\"location\":{{\"kind\":{},\"name\":{}}},\"message\":{}}}",
                json_str(d.code),
                json_str(d.rule),
                json_str(d.severity.as_str()),
                json_str(d.location.kind()),
                json_str(d.location.name()),
                json_str(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Display for DfaReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stage = self.stage.as_deref().unwrap_or("-");
        writeln!(
            f,
            "dfa {} [{}] @{stage}: {} error(s), {} warning(s)",
            self.design,
            self.analysis,
            self.count(Severity::Error),
            self.count(Severity::Warn)
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_lint::Location;

    fn sample() -> DfaReport {
        DfaReport {
            design: "d".into(),
            analysis: "const",
            stage: Some("preprocess".into()),
            diagnostics: vec![
                Diagnostic {
                    code: "D102",
                    rule: "gate-never-enabled",
                    severity: Severity::Error,
                    location: Location::Design,
                    message: "m\"1".into(),
                },
                Diagnostic {
                    code: "D101",
                    rule: "stuck-state",
                    severity: Severity::Info,
                    location: Location::Design,
                    message: "m2".into(),
                },
            ],
        }
    }

    #[test]
    fn counts_and_cleanliness() {
        let r = sample();
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Info), 1);
        assert_eq!(r.findings(), 1, "infos are advisory");
        assert!(!r.is_clean());
        assert!(r.has("D102"));
    }

    #[test]
    fn json_matches_lint_schema() {
        let j = sample().to_json();
        assert!(j.contains("\"analysis\":\"const\""));
        assert!(j.contains("\"stage\":\"preprocess\""));
        assert!(j.contains("\"summary\":{\"errors\":1,\"warnings\":0,\"infos\":1}"));
        assert!(j.contains("\\\"1"), "escaped message");
    }
}
