//! Error type for the dataflow analyses.

use std::fmt;

/// Errors from the dataflow analyses.
#[derive(Debug)]
pub enum Error {
    /// Netlist-level failure (validation, combinational loop, clock trace).
    Netlist(triphase_netlist::Error),
    /// Simulation failure (reset-reachability uses the 3-valued simulator).
    Sim(triphase_sim::Error),
    /// Timing failure (race analysis uses the sequential timing graph).
    Timing(triphase_timing::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Netlist(e) => write!(f, "netlist: {e}"),
            Error::Sim(e) => write!(f, "sim: {e}"),
            Error::Timing(e) => write!(f, "timing: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Netlist(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Timing(e) => Some(e),
        }
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;
