//! Ternary constant / stuck-at propagation.
//!
//! Abstract interpretation of the netlist over the [`Tern`] value-set
//! lattice: primary inputs and clock phases can take any value (`Both`),
//! storage starts at its reset value (`Zero`), and the sequential update
//! joins every capturable data value into the state — a widening that
//! over-approximates the set of reachable values per net. A net whose
//! fixpoint value is still a single constant is provably stuck across all
//! reachable states.
//!
//! Findings:
//!
//! - `D102` (error): a clock-gate enable provably 0 — the gated subtree
//!   never sees a clock edge (always-gated);
//! - `D103` (warn): a clock-gate enable provably 1 — the gate is a no-op
//!   and pure overhead;
//! - `D101`: a state element stuck at its reset value (or another
//!   constant) in every reachable state — dead state, and a prime
//!   clock-gating candidate (exported via [`ConstReport`]).

use crate::engine::{fixpoint, Levelized, Tern};
use crate::error::Result;
use triphase_lint::{Diagnostic, Location, Severity};
use triphase_netlist::{CellId, ConnIndex, NetId, Netlist};
use triphase_sim::{eval_kind, Logic};

/// Result of [`analyze_const`]: diagnostics plus the raw constness facts,
/// exported for gating-candidate selection.
#[derive(Debug, Clone)]
pub struct ConstReport {
    /// Fixpoint sweeps used.
    pub sweeps: usize,
    /// Per-net fixpoint value, indexed by [`NetId::index`].
    pub values: Vec<Tern>,
    /// Combinationally-driven nets that are provably constant (dead
    /// logic), excluding explicit constant cells.
    pub stuck_nets: Vec<(NetId, Tern)>,
    /// Storage cells whose output is provably constant.
    pub stuck_storage: Vec<(CellId, Tern)>,
    /// Clock gates whose enable is provably constant.
    pub const_enables: Vec<(CellId, Tern)>,
    /// Findings (see module docs for codes).
    pub diagnostics: Vec<Diagnostic>,
}

/// Run ternary constant propagation to a fixpoint.
///
/// # Errors
///
/// [`crate::Error::Netlist`] on a combinational loop.
pub fn analyze_const(nl: &Netlist, idx: &ConnIndex) -> Result<ConstReport> {
    let lv = Levelized::new(nl, idx)?;
    let mut values = vec![Tern::Bot; nl.net_capacity()];

    // Seeds: data inputs and clock phases take any value; storage wakes up
    // at its reset value.
    for p in nl.input_ports() {
        values[nl.port(p).net.index()] = Tern::Both;
    }
    for &id in &lv.storage {
        values[nl.cell(id).output().index()] = Tern::Zero;
    }

    let mut inbuf: Vec<Logic> = Vec::new();
    let sweeps = fixpoint(nl, &lv, &mut values, |_, cell, vals| {
        let kind = cell.kind;
        if kind.is_comb() {
            inbuf.clear();
            for &n in cell.inputs() {
                inbuf.push(vals[n.index()].to_logic()?);
            }
            return Some(Tern::from_logic(eval_kind(kind, &inbuf)));
        }
        if kind.is_clock_gate() {
            // GCK = CK & EN: the internal enable latch only subsamples the
            // enable, so its value set is contained in EN's.
            let en = vals[cell.pin(kind.enable_pin()?).index()].to_logic()?;
            let ck = vals[cell.pin(kind.clock_pin()?).index()].to_logic()?;
            return Some(Tern::from_logic(ck.and(en)));
        }
        // Storage: join the data value whenever a capture is possible.
        let d = vals[cell.pin(kind.data_pin()?).index()];
        if d == Tern::Bot {
            return None;
        }
        let ck = vals[cell.pin(kind.clock_pin()?).index()];
        let captures = match kind {
            triphase_cells::CellKind::Dff => ck.can_be_one(),
            triphase_cells::CellKind::DffEn => {
                let en = vals[cell.pin(kind.enable_pin()?).index()];
                ck.can_be_one() && en.can_be_one()
            }
            triphase_cells::CellKind::LatchH => ck.can_be_one(),
            triphase_cells::CellKind::LatchL => ck.can_be_zero(),
            _ => false,
        };
        captures.then_some(d)
    });

    // Harvest facts and findings.
    let mut stuck_nets = Vec::new();
    let mut stuck_storage = Vec::new();
    let mut const_enables = Vec::new();
    let mut diagnostics = Vec::new();
    for (id, cell) in nl.cells() {
        let kind = cell.kind;
        if kind.is_comb()
            && !matches!(
                kind,
                triphase_cells::CellKind::Const0 | triphase_cells::CellKind::Const1
            )
        {
            let out = cell.output();
            let v = values[out.index()];
            if v.is_const() {
                stuck_nets.push((out, v));
            }
        }
        if kind.is_storage() {
            let v = values[cell.output().index()];
            if v.is_const() {
                stuck_storage.push((id, v));
                diagnostics.push(Diagnostic {
                    code: "D101",
                    rule: "stuck-state",
                    severity: Severity::Info,
                    location: Location::Cell {
                        id,
                        name: cell.name.clone(),
                    },
                    message: format!(
                        "state element is provably stuck at {} in every reachable state",
                        tern_str(v)
                    ),
                });
            }
        }
        if kind.is_clock_gate() {
            let Some(en_pin) = kind.enable_pin() else {
                continue;
            };
            let en = values[cell.pin(en_pin).index()];
            if en.is_const() {
                const_enables.push((id, en));
            }
            if en == Tern::Zero {
                diagnostics.push(Diagnostic {
                    code: "D102",
                    rule: "gate-never-enabled",
                    severity: Severity::Error,
                    location: Location::Cell {
                        id,
                        name: cell.name.clone(),
                    },
                    message: "clock-gate enable is provably 0: the gated subtree never clocks"
                        .to_owned(),
                });
            } else if en == Tern::One {
                diagnostics.push(Diagnostic {
                    code: "D103",
                    rule: "gate-always-enabled",
                    severity: Severity::Warn,
                    location: Location::Cell {
                        id,
                        name: cell.name.clone(),
                    },
                    message: "clock-gate enable is provably 1: gating is a no-op".to_owned(),
                });
            }
        }
    }

    Ok(ConstReport {
        sweeps,
        values,
        stuck_nets,
        stuck_storage,
        const_enables,
        diagnostics,
    })
}

fn tern_str(v: Tern) -> &'static str {
    match v {
        Tern::Zero => "0",
        Tern::One => "1",
        Tern::Both => "0/1",
        Tern::Bot => "unreachable",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_cells::CellKind;
    use triphase_netlist::{Builder, ClockSpec};

    /// FF pipeline with live data: nothing is stuck.
    #[test]
    fn clean_pipeline_has_no_findings() {
        let mut nl = Netlist::new("clean");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, d) = b.netlist().add_input("d");
        let q0 = b.dff(d, ck);
        let x = b.not(q0);
        let q1 = b.dff(x, ck);
        b.netlist().add_output("q", q1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let r = analyze_const(&nl, &nl.index()).unwrap();
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(r.stuck_storage.is_empty());
    }

    /// An ICG whose enable is tied to constant 0 is always-gated, and the
    /// storage behind it is stuck at reset.
    #[test]
    fn stuck_enable_flagged() {
        let mut nl = Netlist::new("gated");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, d) = b.netlist().add_input("d");
        let zero = b.net("zero");
        b.netlist().add_cell("tie0", CellKind::Const0, vec![zero]);
        let gck = b.net("gck");
        b.netlist()
            .add_cell("icg", CellKind::Icg, vec![zero, ck, gck]);
        let q = b.net("q");
        b.netlist().add_cell("ff", CellKind::Dff, vec![d, gck, q]);
        b.netlist().add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let r = analyze_const(&nl, &nl.index()).unwrap();
        let codes: Vec<_> = r.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"D102"), "{codes:?}");
        assert!(codes.contains(&"D101"), "stuck FF behind dead gate");
        assert_eq!(r.const_enables.len(), 1);
    }

    /// An enable tied to 1 makes the gate a no-op.
    #[test]
    fn noop_enable_flagged() {
        let mut nl = Netlist::new("noop");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, d) = b.netlist().add_input("d");
        let one = b.net("one");
        b.netlist().add_cell("tie1", CellKind::Const1, vec![one]);
        let gck = b.net("gck");
        b.netlist()
            .add_cell("icg", CellKind::IcgM2, vec![one, ck, gck]);
        let q = b.net("q");
        b.netlist().add_cell("ff", CellKind::Dff, vec![d, gck, q]);
        b.netlist().add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let r = analyze_const(&nl, &nl.index()).unwrap();
        assert!(r.diagnostics.iter().any(|d| d.code == "D103"));
        // The FF itself still sees live data: not stuck.
        assert!(!r.diagnostics.iter().any(|d| d.code == "D101"));
    }

    /// Dead comb logic (a constant-fed AND) shows up in the exported
    /// stuck nets, and the register fed by it is stuck too.
    #[test]
    fn dead_logic_exported() {
        let mut nl = Netlist::new("dead");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, d) = b.netlist().add_input("d");
        let zero = b.net("zero");
        b.netlist().add_cell("tie0", CellKind::Const0, vec![zero]);
        let never = b.gate(CellKind::And(2), &[zero, d]);
        let q = b.dff(never, ck);
        b.netlist().add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let r = analyze_const(&nl, &nl.index()).unwrap();
        assert!(
            r.stuck_nets.iter().any(|&(_, v)| v == Tern::Zero),
            "0 AND x is constant 0"
        );
        assert_eq!(r.stuck_storage.len(), 1);
    }
}
