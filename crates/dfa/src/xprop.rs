//! X-propagation / reset-reachability analysis.
//!
//! Drives the design's own 3-valued simulator (`triphase-sim`, the same
//! levelized engine the flow validates with) from the all-zero reset state
//! with every data input held at `X`, and iterates cycles until the
//! sequential state signature (storage outputs plus clock-gate enable
//! latches) revisits a previous state. The states of that steady loop are
//! the input-independent behavior of the design; a state element (or
//! output port) whose value is *known* in every loop state is **defined
//! after reset** regardless of inputs.
//!
//! [`check_reset_preserved`] compares two reports — the FF design and its
//! 3-phase conversion — and flags every element that loses definedness:
//!
//! - `D201` (error): a state element was reset-defined in the source
//!   design but is X-reachable after conversion;
//! - `D202` (error): an output port was reset-defined but now floats to X.

use crate::engine::iterate_to_cycle;
use crate::error::{Error, Result};
use std::collections::BTreeSet;
use triphase_lint::{Diagnostic, Location, Severity};
use triphase_netlist::Netlist;
use triphase_sim::{data_inputs, data_outputs, Logic, Simulator};

/// Default cycle cap for loop detection: generous for the pipeline depths
/// in this repo while keeping the analysis O(hundreds) of scalar cycles.
pub const DEFAULT_RESET_CYCLES: usize = 192;

/// Result of [`analyze_reset`].
#[derive(Debug, Clone)]
pub struct ResetReport {
    /// Cycles stepped until the loop closed (or the cap).
    pub cycles: usize,
    /// Length of the detected steady-state loop (0 when none found).
    pub loop_len: usize,
    /// `true` when a steady-state loop was found within the cap.
    pub converged: bool,
    /// Total number of state elements (storage cells).
    pub total_state: usize,
    /// Names of state elements with a known value in every loop state.
    pub defined_state: BTreeSet<String>,
    /// Names of output ports with a known value in every loop state.
    pub defined_outputs: BTreeSet<String>,
}

/// Run the reset-reachability analysis with at most `max_cycles` steps.
///
/// # Errors
///
/// [`Error::Sim`] when the simulator rejects the netlist.
pub fn analyze_reset(nl: &Netlist, max_cycles: usize) -> Result<ResetReport> {
    let mut sim = Simulator::new(nl).map_err(Error::Sim)?;
    sim.reset_zero();
    let inputs = data_inputs(nl);
    let outputs = data_outputs(nl);
    let storage: Vec<_> = nl
        .cells()
        .filter(|(_, c)| c.kind.is_storage())
        .map(|(id, c)| (id, c.output(), c.name.clone()))
        .collect();
    let gates: Vec<_> = nl
        .cells()
        .filter(|(_, c)| c.kind.is_clock_gate())
        .map(|(id, _)| id)
        .collect();

    let signature = |sim: &Simulator| -> Vec<Logic> {
        storage
            .iter()
            .map(|&(_, q, _)| sim.net_value(q))
            .chain(gates.iter().map(|&g| sim.icg_state(g)))
            .chain(outputs.iter().map(|&p| sim.output(p)))
            .collect()
    };

    // Warm up until the X inputs are in effect: `set_input` latches one
    // cycle later, and the loop signature assumes stationary inputs.
    let step = |sim: &mut Simulator| {
        for &p in &inputs {
            sim.set_input(p, Logic::X);
        }
        sim.step_cycle();
    };
    const WARMUP: usize = 2;
    for _ in 0..WARMUP {
        step(&mut sim);
    }

    let initial = signature(&sim);
    let result = iterate_to_cycle(
        initial,
        || {
            step(&mut sim);
            signature(&sim)
        },
        max_cycles,
    );

    let loop_states = result.loop_states();
    let converged = result.loop_start.is_some();
    let mut defined_state = BTreeSet::new();
    let mut defined_outputs = BTreeSet::new();
    if converged {
        for (i, (_, _, name)) in storage.iter().enumerate() {
            if loop_states.iter().all(|s| s[i].is_known()) {
                defined_state.insert(name.clone());
            }
        }
        let out_base = storage.len() + gates.len();
        for (k, &p) in outputs.iter().enumerate() {
            if loop_states.iter().all(|s| s[out_base + k].is_known()) {
                defined_outputs.insert(nl.port(p).name.clone());
            }
        }
    }
    Ok(ResetReport {
        cycles: WARMUP + result.states.len() - 1,
        loop_len: loop_states.len(),
        converged,
        total_state: storage.len(),
        defined_state,
        defined_outputs,
    })
}

/// Verify that conversion preserved the reset-initialized set: everything
/// reset-defined in `pre` (the FF design) must still be reset-defined in
/// `post` (the converted design). State elements are matched by instance
/// name — conversion keeps the original register names — and only names
/// present in both designs are compared; output ports always correspond.
///
/// Comparison is skipped (no diagnostics) unless both reports converged.
pub fn check_reset_preserved(
    post_nl: &Netlist,
    pre: &ResetReport,
    post: &ResetReport,
) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    if !pre.converged || !post.converged {
        return diagnostics;
    }
    let post_names: BTreeSet<&str> = post_nl
        .cells()
        .filter(|(_, c)| c.kind.is_storage())
        .map(|(_, c)| c.name.as_str())
        .collect();
    for name in &pre.defined_state {
        if post_names.contains(name.as_str()) && !post.defined_state.contains(name) {
            let location = post_nl
                .cells()
                .find(|(_, c)| &c.name == name)
                .map(|(id, c)| Location::Cell {
                    id,
                    name: c.name.clone(),
                })
                .unwrap_or(Location::Design);
            diagnostics.push(Diagnostic {
                code: "D201",
                rule: "reset-init-lost",
                severity: Severity::Error,
                location,
                message: format!(
                    "state element `{name}` settles after reset in the source design \
                     but is X-reachable after conversion"
                ),
            });
        }
    }
    for name in &pre.defined_outputs {
        if !post.defined_outputs.contains(name) {
            let location = post_nl
                .find_port(name)
                .map(|p| Location::Port {
                    id: p,
                    name: name.clone(),
                })
                .unwrap_or(Location::Design);
            diagnostics.push(Diagnostic {
                code: "D202",
                rule: "reset-output-lost",
                severity: Severity::Error,
                location,
                message: format!(
                    "output `{name}` is reset-defined in the source design \
                     but floats to X after conversion"
                ),
            });
        }
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_cells::CellKind;
    use triphase_netlist::{Builder, ClockSpec};

    /// Self-contained 2-bit counter: all state is reset-defined (its loop
    /// never depends on inputs).
    fn counter2() -> Netlist {
        let mut nl = Netlist::new("cnt2");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let q0 = b.net("q0");
        let q1 = b.net("q1");
        let n0 = b.not(q0);
        let t1 = b.gate(CellKind::Xor(2), &[q1, q0]);
        b.netlist().add_cell("b0", CellKind::Dff, vec![n0, ck, q0]);
        b.netlist().add_cell("b1", CellKind::Dff, vec![t1, ck, q1]);
        b.netlist().add_output("c0", q0);
        b.netlist().add_output("c1", q1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl
    }

    #[test]
    fn counter_state_is_defined() {
        let nl = counter2();
        let r = analyze_reset(&nl, DEFAULT_RESET_CYCLES).unwrap();
        assert!(r.converged);
        assert_eq!(r.loop_len, 4, "2-bit counter has a period-4 loop");
        assert_eq!(r.defined_state.len(), 2);
        assert_eq!(r.defined_outputs.len(), 2);
    }

    #[test]
    fn input_fed_pipeline_goes_x() {
        let mut nl = Netlist::new("pipe");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, d) = b.netlist().add_input("d");
        let q0 = b.dff(d, ck);
        let q1 = b.dff(q0, ck);
        b.netlist().add_output("q", q1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let r = analyze_reset(&nl, DEFAULT_RESET_CYCLES).unwrap();
        assert!(r.converged);
        assert!(
            r.defined_state.is_empty(),
            "X inputs flood the pipeline: {:?}",
            r.defined_state
        );
        assert!(r.defined_outputs.is_empty());
    }

    #[test]
    fn lost_definedness_flagged() {
        let pre_nl = counter2();
        let pre = analyze_reset(&pre_nl, DEFAULT_RESET_CYCLES).unwrap();
        // Sabotage: XOR an input into bit 1's next-state function — its
        // loop value now depends on the (unknown) input.
        let mut post_nl = counter2();
        {
            let mut b = Builder::new(&mut post_nl, "v");
            let (_, noise) = b.netlist().add_input("noise");
            let b1 = b
                .netlist()
                .cells()
                .find(|(_, c)| c.name == "b1")
                .map(|(id, _)| id)
                .unwrap();
            let old_d = b.netlist().cell(b1).pin(0);
            let mixed = b.gate(CellKind::Xor(2), &[old_d, noise]);
            b.netlist().set_pin(b1, 0, mixed);
        }
        let post = analyze_reset(&post_nl, DEFAULT_RESET_CYCLES).unwrap();
        let diags = check_reset_preserved(&post_nl, &pre, &post);
        assert!(
            diags.iter().any(|d| d.code == "D201"),
            "lost state init must be flagged: {diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.code == "D202"),
            "lost output init must be flagged: {diags:?}"
        );
    }

    #[test]
    fn preserved_conversion_is_clean() {
        let nl = counter2();
        let pre = analyze_reset(&nl, DEFAULT_RESET_CYCLES).unwrap();
        let post = analyze_reset(&nl, DEFAULT_RESET_CYCLES).unwrap();
        assert!(check_reset_preserved(&nl, &pre, &post).is_empty());
    }
}
