//! Lattice-based dataflow analyses for the `triphase` toolkit.
//!
//! A small abstract-interpretation framework over the netlist — a generic
//! worklist fixpoint across the levelized combinational graph with
//! sequential feedback ([`engine`]) — instantiated with three analyses
//! aimed at the hazards the FF-to-3-phase-latch conversion introduces:
//!
//! | analysis | module | catches |
//! |----------|--------|---------|
//! | `const`  | [`constprop`] | stuck nets, dead state, clock-gate enables provably 0/1 |
//! | `reset`  | [`xprop`] | state/outputs that lose reset-definedness through conversion |
//! | `race`   | [`race`] | min-delay races through open latch windows, co-transparency, runaway time borrowing |
//!
//! Diagnostics reuse `triphase-lint`'s types and JSON schema, so the `dfa`
//! CLI bin and flow checkpoints behave exactly like their lint
//! counterparts. Diagnostic codes are `D1xx` (const), `D2xx` (reset),
//! `D3xx` (race); see each module's docs.
//!
//! # Examples
//!
//! ```
//! use triphase_netlist::{Netlist, Builder, ClockSpec};
//! use triphase_dfa::analyze_const;
//!
//! let mut nl = Netlist::new("d");
//! let mut b = Builder::new(&mut nl, "u");
//! let (ckp, ck) = b.netlist().add_input("ck");
//! let (_, d) = b.netlist().add_input("d");
//! let q = b.dff(d, ck);
//! b.netlist().add_output("q", q);
//! nl.clock = Some(ClockSpec::single(ckp, 1000.0));
//! let r = analyze_const(&nl, &nl.index())?;
//! assert!(r.diagnostics.is_empty());
//! # Ok::<(), triphase_dfa::Error>(())
//! ```

pub mod constprop;
pub mod engine;
mod error;
pub mod race;
mod report;
pub mod xprop;

pub use constprop::{analyze_const, ConstReport};
pub use engine::{fixpoint, iterate_to_cycle, CycleResult, Lattice, Levelized, Tern};
pub use error::{Error, Result};
pub use race::{analyze_races, RaceSummary};
pub use report::DfaReport;
pub use xprop::{analyze_reset, check_reset_preserved, ResetReport, DEFAULT_RESET_CYCLES};

use triphase_cells::Library;
use triphase_netlist::{ConnIndex, Netlist};

/// Run constant/stuck-at propagation and package the findings.
///
/// # Errors
///
/// Propagates [`analyze_const`] errors.
pub fn const_report(nl: &Netlist, idx: &ConnIndex, stage: Option<&str>) -> Result<DfaReport> {
    let r = analyze_const(nl, idx)?;
    Ok(DfaReport {
        design: nl.name.clone(),
        analysis: "const",
        stage: stage.map(str::to_owned),
        diagnostics: r.diagnostics,
    })
}

/// Run reset-reachability on the source (`pre`) and converted (`post`)
/// designs and package the preservation findings.
///
/// # Errors
///
/// Propagates [`analyze_reset`] errors.
pub fn reset_report(
    pre: &Netlist,
    post: &Netlist,
    max_cycles: usize,
    stage: Option<&str>,
) -> Result<DfaReport> {
    let pre_r = analyze_reset(pre, max_cycles)?;
    let post_r = analyze_reset(post, max_cycles)?;
    Ok(DfaReport {
        design: post.name.clone(),
        analysis: "reset",
        stage: stage.map(str::to_owned),
        diagnostics: check_reset_preserved(post, &pre_r, &post_r),
    })
}

/// Run the min-delay race analysis and package the findings.
///
/// # Errors
///
/// Propagates [`analyze_races`] errors.
pub fn race_report(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
    stage: Option<&str>,
) -> Result<DfaReport> {
    let (_, diagnostics) = analyze_races(nl, lib, idx)?;
    Ok(DfaReport {
        design: nl.name.clone(),
        analysis: "race",
        stage: stage.map(str::to_owned),
        diagnostics,
    })
}
