//! Additional SMO-model tests: time borrowing and min-period behaviour.

use triphase_cells::{CellKind, Library};
use triphase_netlist::{Builder, ClockSpec, Netlist};
use triphase_timing::{analyze_smo, analyze_smo_with_clock, min_period_smo, scale_clock};

/// p1 -> logic -> p2 -> logic -> p3 three-phase chain of latches.
fn ring(period: f64, depths: [usize; 3]) -> Netlist {
    let mut nl = Netlist::new("ring");
    let mut b = Builder::new(&mut nl, "u");
    let (p1, c1) = b.netlist().add_input("p1");
    let (p2, c2) = b.netlist().add_input("p2");
    let (p3, c3) = b.netlist().add_input("p3");
    let (_, din) = b.netlist().add_input("d");
    let mut x = din;
    for (i, (&g, depth)) in [c1, c2, c3].iter().zip(depths).enumerate() {
        let q = b.net(&format!("q{i}"));
        let name = format!("lat{i}");
        b.netlist().add_cell(name, CellKind::LatchH, vec![x, g, q]);
        x = q;
        for _ in 0..depth {
            x = b.not(x);
        }
    }
    b.netlist().add_output("out", x);
    nl.clock = Some(ClockSpec::equal_phases(&[p1, p2, p3], period));
    nl
}

#[test]
fn borrowing_grows_with_imbalance() {
    // At 450 ps the skewed chain's first stage overruns its phase window
    // and must borrow into p2's transparency; the balanced chain fits
    // each stage inside its window and borrows nothing.
    let lib = Library::synthetic_28nm();
    let balanced = ring(450.0, [5, 5, 5]);
    let skewed = ring(450.0, [16, 0, 0]);
    let b_idx = balanced.index();
    let s_idx = skewed.index();
    let rb = analyze_smo(&balanced, &lib, &b_idx, None).unwrap();
    let rs = analyze_smo(&skewed, &lib, &s_idx, None).unwrap();
    assert!(
        rs.total_borrowed_ps > rb.total_borrowed_ps,
        "skewed {} vs balanced {}",
        rs.total_borrowed_ps,
        rb.total_borrowed_ps
    );
    assert!(rs.total_borrowed_ps > 0.0);
    assert!(
        rb.clean() && rs.clean(),
        "both fit with borrowing at 450 ps"
    );
}

#[test]
fn min_period_monotone_in_depth() {
    let lib = Library::synthetic_28nm();
    let shallow = ring(2000.0, [2, 2, 2]);
    let deep = ring(2000.0, [8, 8, 8]);
    let sh_idx = shallow.index();
    let dp_idx = deep.index();
    let t_sh = min_period_smo(&shallow, &lib, &sh_idx, None, 8000.0, 1.0).unwrap();
    let t_dp = min_period_smo(&deep, &lib, &dp_idx, None, 8000.0, 1.0).unwrap();
    assert!(t_dp > t_sh, "{t_dp} vs {t_sh}");
}

#[test]
fn scaling_the_clock_scales_slack() {
    let lib = Library::synthetic_28nm();
    let nl = ring(900.0, [4, 4, 4]);
    let idx = nl.index();
    let spec = nl.clock.clone().unwrap();
    let fast = analyze_smo_with_clock(&nl, &lib, &idx, None, &scale_clock(&spec, 600.0)).unwrap();
    let slow = analyze_smo_with_clock(&nl, &lib, &idx, None, &scale_clock(&spec, 1800.0)).unwrap();
    assert!(slow.worst_setup_slack_ps > fast.worst_setup_slack_ps);
}

#[test]
fn converted_pipeline_borrows_past_bad_stage_boundaries() {
    // The latch-based advantage the paper's §I cites: an FF pipeline with
    // badly balanced stages is limited by its worst stage, while the
    // converted 3-phase design borrows across the boundary. Compare the
    // minimum cycle time of an FF [deep, shallow] pipeline against its
    // conversion.
    use triphase_core::{assign_phases, extract_ff_graph, to_three_phase};
    use triphase_ilp::PhaseConfig;
    let lib = Library::synthetic_28nm();
    let mut ff = Netlist::new("ffchain");
    let mut b = Builder::new(&mut ff, "u");
    let (ckp, ck) = b.netlist().add_input("ck");
    let (_, din) = b.netlist().add_input("d");
    let mut x = din;
    let q0 = b.dff(x, ck);
    x = q0;
    for _ in 0..14 {
        x = b.not(x); // deep stage
    }
    let q1 = b.dff(x, ck);
    x = q1;
    for _ in 0..2 {
        x = b.not(x); // shallow stage
    }
    let q2 = b.dff(x, ck);
    b.netlist().add_output("out", q2);
    ff.clock = Some(ClockSpec::single(ckp, 3000.0));

    let f_idx = ff.index();
    let t_ff = min_period_smo(&ff, &lib, &f_idx, None, 9000.0, 1.0).unwrap();

    let graph = extract_ff_graph(&ff, &f_idx).unwrap();
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (tp, _) = to_three_phase(&ff, &assignment).unwrap();
    let t_idx = tp.index();
    let t_latch = min_period_smo(&tp, &lib, &t_idx, None, 9000.0, 1.0).unwrap();
    // Constraint C3: the converted design meets the original cycle time
    // (the paper keeps all variants at the same frequency; it does not
    // claim a higher Fmax). Borrowing absorbs the imbalance, but each
    // inserted p2 hop also consumes phase budget, so the min period sits
    // between the FF design's worst stage and the paper's safety margin.
    assert!(
        t_latch <= 3000.0,
        "converted design must meet the original 3000 ps clock, needs {t_latch}"
    );
    assert!(
        t_latch <= 1.6 * t_ff,
        "3-phase min period {t_latch} ps should stay near the FF design's {t_ff} ps"
    );
    // And at the design clock, timing is clean with borrowing in play.
    let spec = tp.clock.clone().unwrap();
    let at_clock = analyze_smo_with_clock(&tp, &lib, &t_idx, None, &spec).unwrap();
    assert!(at_clock.clean());
}
