//! Static timing analysis for the `triphase` toolkit.
//!
//! Two analyses over the same collapsed sequential graph ([`graph`]):
//!
//! - [`analyze_ff`]: conventional edge-triggered STA for the original
//!   FF-based designs;
//! - [`analyze_smo`]: the SMO multi-phase latch model (paper §II, Eq. 1–2)
//!   with time borrowing, used for master-slave and 3-phase designs, plus
//!   [`check_c2`] (structural no-co-transparency check of conversion
//!   constraint C2) and [`min_period_smo`].
//!
//! # Examples
//!
//! ```
//! use triphase_netlist::{Netlist, Builder, ClockSpec};
//! use triphase_cells::Library;
//! use triphase_timing::analyze_ff;
//!
//! let mut nl = Netlist::new("d");
//! let mut b = Builder::new(&mut nl, "u");
//! let (ckp, ck) = b.netlist().add_input("ck");
//! let (_, d) = b.netlist().add_input("d");
//! let q0 = b.dff(d, ck);
//! let x = b.not(q0);
//! let q1 = b.dff(x, ck);
//! b.netlist().add_output("q", q1);
//! nl.clock = Some(ClockSpec::single(ckp, 1000.0));
//! let lib = Library::synthetic_28nm();
//! let report = analyze_ff(&nl, &lib, &nl.index(), None)?;
//! assert!(report.clean());
//! # Ok::<(), triphase_timing::Error>(())
//! ```

mod error;
mod ff;
pub mod graph;
mod paths;
mod race;
mod smo;

pub use error::{Error, Result};
pub use ff::{analyze_ff, FfReport};
pub use graph::{extract_seq_graph, net_load, storage_phases, SeqEdge, SeqGraph, SeqNode};
pub use paths::{worst_path, CriticalPath, PathStep};
pub use race::{attribute_races, check_min_delay, BorrowChain, RacePair, RaceReport};
pub use smo::{
    analyze_smo, analyze_smo_with_clock, check_c2, min_period_smo, scale_clock, NodeTiming,
    SmoReport,
};
