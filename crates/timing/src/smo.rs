//! SMO multi-phase latch timing (Sakallah–Mudge–Olukotun model).
//!
//! Implements the General System Timing Constraints the paper quotes as
//! Eq. (1)–(2): phases with closing times `e_i`, the forward phase shift
//! matrix `E_ij`, and per-latch worst-case setup/hold checks with time
//! borrowing via a departure-time fixed point.
//!
//! Every node is analyzed in its **local frame**: time `T` is the node's
//! capture instant (closing edge for latches, active edge for FFs) and
//! time 0 is the previous one. Arrival `A_i` must satisfy
//! `A_i ≤ T − S_i` (setup, Eq. 2 top) and the earliest arrival `a_i ≥ H_i`
//! (hold, Eq. 2 bottom). Latch departures borrow time:
//! `q_j = max(open_j + clk2q, A_j + d2q)`.

use crate::error::{Error, Result};
use crate::graph::{extract_seq_graph, storage_phases, SeqGraph, SeqNode};
use triphase_cells::{CellKind, Library};
use triphase_netlist::{CellId, ClockSpec, ConnIndex, Netlist};

/// Timing of one sequential node in its local frame.
#[derive(Debug, Clone, Copy)]
pub struct NodeTiming {
    /// Latest data arrival (ps, local frame; `-inf` if unconstrained).
    pub arrival_max_ps: f64,
    /// Earliest data arrival (ps; `+inf` if unconstrained).
    pub arrival_min_ps: f64,
    /// Setup slack `(T − S) − A` (ps; `+inf` if unconstrained).
    pub setup_slack_ps: f64,
    /// Hold slack `a − H` (ps; `+inf` if unconstrained).
    pub hold_slack_ps: f64,
    /// Time borrowed past the opening edge (ps, latches only).
    pub borrowed_ps: f64,
}

/// Result of an SMO analysis.
#[derive(Debug, Clone)]
pub struct SmoReport {
    /// Cycle time analyzed (ps).
    pub period_ps: f64,
    /// Worst setup slack over all constrained nodes (ps).
    pub worst_setup_slack_ps: f64,
    /// Worst hold slack (ps).
    pub worst_hold_slack_ps: f64,
    /// Fixed-point iterations used.
    pub iterations: usize,
    /// Per-node detail, indexed like [`SmoReport::graph`]'s nodes.
    pub per_node: Vec<NodeTiming>,
    /// Total borrowed time across latches (ps) — a time-borrowing measure.
    pub total_borrowed_ps: f64,
    /// The sequential graph analyzed.
    pub graph: SeqGraph,
}

impl SmoReport {
    /// `true` when all setup and hold checks pass.
    pub fn clean(&self) -> bool {
        self.worst_setup_slack_ps >= 0.0 && self.worst_hold_slack_ps >= 0.0
    }
}

/// Per-node clocking view derived from the clock spec.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeClock {
    /// Transparency width (ps); 0 for edge-triggered capture.
    pub(crate) width: f64,
    /// Capture instant within the cycle, in `[0, T)`.
    pub(crate) chi: f64,
    pub(crate) setup: f64,
    pub(crate) hold: f64,
    pub(crate) clk_to_q: f64,
    pub(crate) d_to_q: f64,
    pub(crate) checked: bool,
}

pub(crate) fn node_clocks(
    nl: &Netlist,
    lib: &Library,
    clock: &ClockSpec,
    graph: &SeqGraph,
    phases: &std::collections::HashMap<CellId, usize>,
) -> Result<Vec<NodeClock>> {
    let t = clock.period_ps;
    let p0 = &clock.phases[0];
    graph
        .nodes
        .iter()
        .map(|&node| match node {
            SeqNode::Input(_) | SeqNode::Output(_) => Ok(NodeClock {
                width: 0.0,
                chi: p0.rise_ps.rem_euclid(t),
                setup: 0.0,
                hold: 0.0,
                clk_to_q: 0.0,
                d_to_q: 0.0,
                checked: matches!(node, SeqNode::Output(_)),
            }),
            SeqNode::Storage(c) => {
                let kind = nl.cell(c).kind;
                let lc = lib.cell(kind);
                let phase = *phases.get(&c).ok_or(Error::NoClock)?;
                let ph = &clock.phases[phase];
                let (open, close) = match kind {
                    CellKind::LatchH => (ph.rise_ps, ph.fall_ps),
                    CellKind::LatchL => (ph.fall_ps, ph.rise_ps + t),
                    _ => (ph.rise_ps, ph.rise_ps), // FFs: zero-width at edge
                };
                Ok(NodeClock {
                    width: close - open,
                    chi: close.rem_euclid(t),
                    setup: lc.timing.setup_ps,
                    hold: lc.timing.hold_ps,
                    clk_to_q: lc.timing.clk_to_q_ps,
                    d_to_q: lc.timing.d_to_q_ps,
                    checked: true,
                })
            }
        })
        .collect()
}

/// Forward phase shift `E` from node `j`'s capture to node `i`'s capture
/// (Eq. 1 generalized to capture instants): in `(0, T]`.
pub(crate) fn phase_shift(t: f64, chi_j: f64, chi_i: f64) -> f64 {
    let d = (chi_i - chi_j).rem_euclid(t);
    if d <= 1e-9 {
        t
    } else {
        d
    }
}

/// Analyze a (possibly multi-phase, latch-based) design at its declared
/// clock. Also valid for pure FF designs (reduces to classic STA).
///
/// # Errors
///
/// [`Error::NoClock`] without a clock spec; [`Error::NoConvergence`] if
/// departure times diverge (a transparent loop borrows unboundedly).
pub fn analyze_smo(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
    wire_cap: Option<&[f64]>,
) -> Result<SmoReport> {
    let clock = nl.clock.as_ref().ok_or(Error::NoClock)?.clone();
    analyze_smo_with_clock(nl, lib, idx, wire_cap, &clock)
}

/// [`analyze_smo`] with an explicit clock spec (used by period search).
pub fn analyze_smo_with_clock(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
    wire_cap: Option<&[f64]>,
    clock: &ClockSpec,
) -> Result<SmoReport> {
    let t = clock.period_ps;
    let graph = extract_seq_graph(nl, lib, idx, wire_cap)?;
    let phases = storage_phases(nl, idx)?;
    let clocks = node_clocks(nl, lib, clock, &graph, &phases)?;
    let n = graph.nodes.len();
    let in_edges = graph.in_edges();

    let mut arr_max = vec![f64::NEG_INFINITY; n];
    let mut arr_min = vec![f64::INFINITY; n];
    let max_iters = 2 * n + 16;
    let mut iterations = 0;
    let mut converged = false;
    while iterations < max_iters {
        iterations += 1;
        // Departures from current arrivals.
        let q_max: Vec<f64> = (0..n)
            .map(|j| {
                let c = &clocks[j];
                if c.width <= 0.0 {
                    t + c.clk_to_q
                } else {
                    let from_open = (t - c.width) + c.clk_to_q;
                    let from_data = arr_max[j] + c.d_to_q;
                    from_open.max(from_data)
                }
            })
            .collect();
        let q_min: Vec<f64> = (0..n)
            .map(|j| {
                let c = &clocks[j];
                if c.width <= 0.0 {
                    t + c.clk_to_q
                } else if arr_min[j] <= t - c.width {
                    (t - c.width) + c.clk_to_q
                } else {
                    arr_min[j] + c.d_to_q
                }
            })
            .collect();
        let mut changed = false;
        for i in 0..n {
            let mut mx = f64::NEG_INFINITY;
            let mut mn = f64::INFINITY;
            for &ei in &in_edges[i] {
                let e = &graph.edges[ei];
                let shift = phase_shift(t, clocks[e.from].chi, clocks[i].chi);
                mx = mx.max(q_max[e.from] + e.max_ps - shift);
                // PI-launched paths carry no hold obligation (interface
                // input-delay responsibility), matching the FF analyzer.
                if !matches!(graph.nodes[e.from], SeqNode::Input(_)) {
                    mn = mn.min(q_min[e.from] + e.min_ps - shift);
                }
            }
            if (mx - arr_max[i]).abs() > 1e-6 && mx.is_finite() {
                changed = true;
            }
            if (mn - arr_min[i]).abs() > 1e-6 && mn.is_finite() {
                changed = true;
            }
            arr_max[i] = mx;
            arr_min[i] = mn;
            // Divergence guard: borrowing beyond several cycles.
            if arr_max[i] > 10.0 * t {
                return Err(Error::NoConvergence { iterations });
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(Error::NoConvergence { iterations });
    }

    let mut per_node = Vec::with_capacity(n);
    let mut worst_setup = f64::INFINITY;
    let mut worst_hold = f64::INFINITY;
    let mut total_borrowed = 0.0;
    for i in 0..n {
        let c = &clocks[i];
        let (setup_slack, hold_slack, borrowed) = if !c.checked || arr_max[i] == f64::NEG_INFINITY {
            (f64::INFINITY, f64::INFINITY, 0.0)
        } else {
            let s = (t - c.setup) - arr_max[i];
            let h = arr_min[i] - c.hold;
            let b = (arr_max[i] - (t - c.width)).max(0.0);
            (s, h, if c.width > 0.0 { b } else { 0.0 })
        };
        worst_setup = worst_setup.min(setup_slack);
        worst_hold = worst_hold.min(hold_slack);
        total_borrowed += borrowed;
        per_node.push(NodeTiming {
            arrival_max_ps: arr_max[i],
            arrival_min_ps: arr_min[i],
            setup_slack_ps: setup_slack,
            hold_slack_ps: hold_slack,
            borrowed_ps: borrowed,
        });
    }
    if worst_setup == f64::INFINITY {
        worst_setup = t;
    }
    if worst_hold == f64::INFINITY {
        worst_hold = t;
    }
    Ok(SmoReport {
        period_ps: t,
        worst_setup_slack_ps: worst_setup,
        worst_hold_slack_ps: worst_hold,
        iterations,
        per_node,
        total_borrowed_ps: total_borrowed,
        graph,
    })
}

/// Scale a clock spec to a new period, preserving phase proportions.
pub fn scale_clock(spec: &ClockSpec, period_ps: f64) -> ClockSpec {
    let f = period_ps / spec.period_ps;
    ClockSpec {
        period_ps,
        phases: spec
            .phases
            .iter()
            .map(|p| triphase_netlist::PhaseDef {
                port: p.port,
                rise_ps: p.rise_ps * f,
                fall_ps: p.fall_ps * f,
            })
            .collect(),
    }
}

/// Minimum period (ps) at which setup converges and passes, found by
/// binary search over proportionally scaled phases.
///
/// # Errors
///
/// Propagates analysis errors; returns [`Error::NoConvergence`] if even
/// `hi_ps` fails.
pub fn min_period_smo(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
    wire_cap: Option<&[f64]>,
    hi_ps: f64,
    tol_ps: f64,
) -> Result<f64> {
    let spec = nl.clock.as_ref().ok_or(Error::NoClock)?.clone();
    let feasible = |t: f64| -> bool {
        let c = scale_clock(&spec, t);
        matches!(
            analyze_smo_with_clock(nl, lib, idx, wire_cap, &c),
            Ok(r) if r.worst_setup_slack_ps >= 0.0
        )
    };
    if !feasible(hi_ps) {
        return Err(Error::NoConvergence { iterations: 0 });
    }
    let (mut lo, mut hi) = (0.0, hi_ps);
    while hi - lo > tol_ps {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// Structural check of conversion constraint C2: adjacent latches
/// (connected through combinational logic) must never be simultaneously
/// transparent. Returns the violating pairs.
///
/// # Errors
///
/// Propagates graph-extraction and clock-tracing errors.
pub fn check_c2(nl: &Netlist, lib: &Library, idx: &ConnIndex) -> Result<Vec<(CellId, CellId)>> {
    let clock = nl.clock.as_ref().ok_or(Error::NoClock)?;
    let t = clock.period_ps;
    let graph = extract_seq_graph(nl, lib, idx, None)?;
    let phases = storage_phases(nl, idx)?;
    let window = |c: CellId| -> Option<(f64, f64)> {
        let kind = nl.cell(c).kind;
        let ph = &clock.phases[phases[&c]];
        match kind {
            CellKind::LatchH => Some((ph.rise_ps, ph.fall_ps)),
            CellKind::LatchL => Some((ph.fall_ps, ph.rise_ps + t)),
            _ => None,
        }
    };
    let mut violations = Vec::new();
    for e in &graph.edges {
        let (SeqNode::Storage(a), SeqNode::Storage(b)) = (graph.nodes[e.from], graph.nodes[e.to])
        else {
            continue;
        };
        let (Some(w1), Some(w2)) = (window(a), window(b)) else {
            continue;
        };
        if circular_overlap(t, w1, w2) {
            violations.push((a, b));
        }
    }
    Ok(violations)
}

/// Do two half-open intervals on a circle of circumference `t` overlap?
pub(crate) fn circular_overlap(t: f64, (o1, c1): (f64, f64), (o2, c2): (f64, f64)) -> bool {
    for k in [-1.0, 0.0, 1.0] {
        let (a, b) = (o2 + k * t, c2 + k * t);
        if o1 < b - 1e-9 && a < c1 - 1e-9 {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::{Builder, Netlist};

    /// FF -> n inverters -> FF, single phase: must match classic STA.
    fn ff_chain(n_inv: usize, period: f64) -> Netlist {
        let mut nl = Netlist::new("c");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, d) = b.netlist().add_input("d");
        let q0 = b.dff(d, ck);
        let mut x = q0;
        for _ in 0..n_inv {
            x = b.not(x);
        }
        let q1 = b.dff(x, ck);
        b.netlist().add_output("q", q1);
        nl.clock = Some(ClockSpec::single(ckp, period));
        nl
    }

    /// 3-phase latch pipeline: p1 -> logic -> p2 -> logic -> p3 -> p1 ...
    fn latch3(period: f64, inv_per_stage: usize) -> Netlist {
        let mut nl = Netlist::new("l3");
        let mut b = Builder::new(&mut nl, "u");
        let (p1, c1) = b.netlist().add_input("p1");
        let (p2, c2) = b.netlist().add_input("p2");
        let (p3, c3) = b.netlist().add_input("p3");
        let (_, d) = b.netlist().add_input("d");
        let mut x = d;
        for (i, g) in [c1, c2, c3, c1].iter().enumerate() {
            let q = b.net(&format!("q{i}"));
            let name = format!("lat{i}");
            b.netlist().add_cell(name, CellKind::LatchH, vec![x, *g, q]);
            x = q;
            for _ in 0..inv_per_stage {
                x = b.not(x);
            }
        }
        b.netlist().add_output("q", x);
        nl.clock = Some(ClockSpec::equal_phases(&[p1, p2, p3], period));
        nl
    }

    #[test]
    fn reduces_to_classic_sta_for_ffs() {
        let lib = Library::synthetic_28nm();
        let nl = ff_chain(4, 1000.0);
        let idx = nl.index();
        let smo = analyze_smo(&nl, &lib, &idx, None).unwrap();
        let ff = crate::ff::analyze_ff(&nl, &lib, &idx, None).unwrap();
        assert!(
            (smo.worst_setup_slack_ps - ff.worst_setup_slack_ps).abs() < 1.0,
            "SMO {} vs FF {}",
            smo.worst_setup_slack_ps,
            ff.worst_setup_slack_ps
        );
        assert!((smo.worst_hold_slack_ps - ff.worst_hold_slack_ps).abs() < 1.0);
    }

    #[test]
    fn three_phase_pipeline_meets_timing() {
        let lib = Library::synthetic_28nm();
        let nl = latch3(900.0, 4);
        let idx = nl.index();
        let r = analyze_smo(&nl, &lib, &idx, None).unwrap();
        assert!(
            r.clean(),
            "setup {} hold {}",
            r.worst_setup_slack_ps,
            r.worst_hold_slack_ps
        );
    }

    #[test]
    fn borrowing_accrues_with_unbalanced_logic() {
        let lib = Library::synthetic_28nm();
        // Deep logic in one stage borrows into the next phase window.
        let deep = latch3(900.0, 22);
        let idx = deep.index();
        let r = analyze_smo(&deep, &lib, &idx, None).unwrap();
        assert!(r.total_borrowed_ps > 0.0, "expected borrowing");
        let shallow = latch3(900.0, 1);
        let idx2 = shallow.index();
        let r2 = analyze_smo(&shallow, &lib, &idx2, None).unwrap();
        assert!(r2.total_borrowed_ps <= r.total_borrowed_ps);
    }

    #[test]
    fn divergence_detected() {
        let lib = Library::synthetic_28nm();
        // Way too much logic per stage at a tiny period: borrowing diverges
        // around the latch loop or setup fails without convergence issues.
        let nl = latch3(120.0, 30);
        let idx = nl.index();
        match analyze_smo(&nl, &lib, &idx, None) {
            Err(Error::NoConvergence { .. }) => {}
            Ok(r) => assert!(r.worst_setup_slack_ps < 0.0, "must fail timing"),
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn min_period_bisection() {
        let lib = Library::synthetic_28nm();
        let nl = latch3(900.0, 4);
        let idx = nl.index();
        let tmin = min_period_smo(&nl, &lib, &idx, None, 4000.0, 1.0).unwrap();
        assert!(tmin > 50.0 && tmin < 900.0, "tmin = {tmin}");
        // Analyzing right at tmin is clean; 10% below is not.
        let spec = nl.clock.as_ref().unwrap();
        let ok =
            analyze_smo_with_clock(&nl, &lib, &idx, None, &scale_clock(spec, tmin * 1.01)).unwrap();
        assert!(ok.worst_setup_slack_ps >= 0.0);
        let bad = analyze_smo_with_clock(&nl, &lib, &idx, None, &scale_clock(spec, tmin * 0.85));
        match bad {
            Ok(r) => assert!(r.worst_setup_slack_ps < 0.0),
            Err(Error::NoConvergence { .. }) => {}
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn c2_clean_on_proper_3_phase() {
        let lib = Library::synthetic_28nm();
        let nl = latch3(900.0, 2);
        let idx = nl.index();
        assert!(check_c2(&nl, &lib, &idx).unwrap().is_empty());
    }

    #[test]
    fn c2_flags_same_phase_adjacency() {
        let lib = Library::synthetic_28nm();
        let mut nl = Netlist::new("bad");
        let mut b = Builder::new(&mut nl, "u");
        let (p1, c1) = b.netlist().add_input("p1");
        let (p2, _c2) = b.netlist().add_input("p2");
        let (_, d) = b.netlist().add_input("d");
        let q0 = b.net("q0");
        let q1 = b.net("q1");
        b.netlist()
            .add_cell("l0", CellKind::LatchH, vec![d, c1, q0]);
        let x = b.not(q0);
        b.netlist()
            .add_cell("l1", CellKind::LatchH, vec![x, c1, q1]);
        b.netlist().add_output("q", q1);
        nl.clock = Some(ClockSpec::equal_phases(&[p1, p2], 1000.0));
        let idx = nl.index();
        let v = check_c2(&nl, &lib, &idx).unwrap();
        assert_eq!(v.len(), 1, "same-phase latch pair must be flagged");
    }

    #[test]
    fn circular_overlap_cases() {
        let t = 900.0;
        assert!(circular_overlap(t, (0.0, 300.0), (0.0, 300.0)));
        assert!(!circular_overlap(t, (0.0, 300.0), (300.0, 600.0)));
        assert!(circular_overlap(t, (600.0, 1000.0), (0.0, 200.0)), "wraps");
        assert!(!circular_overlap(t, (600.0, 900.0), (0.0, 300.0)));
    }
}
