//! Sequential timing graph extraction.
//!
//! Collapses the combinational fabric into min/max path delays between
//! sequential endpoints (storage cells, primary inputs, primary outputs).
//! Delays use the library's linear load model; per-net wire capacitance can
//! be back-annotated from place-and-route.

use crate::error::{Error, Result};
use std::collections::HashMap;
use triphase_cells::{CellKind, Library, PinClass, PinDir};
use triphase_netlist::{graph, CellId, ConnIndex, NetId, Netlist, PortDir, PortId};

/// A sequential endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeqNode {
    /// A storage cell (FF or latch).
    Storage(CellId),
    /// A primary input (data launch point).
    Input(PortId),
    /// A primary output (data capture point).
    Output(PortId),
}

/// A collapsed combinational path between two sequential endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeqEdge {
    /// Index of the launching node in [`SeqGraph::nodes`].
    pub from: usize,
    /// Index of the capturing node.
    pub to: usize,
    /// Longest combinational delay (ps), excluding the launch cell's
    /// intrinsic clock-to-Q but *including* its load-dependent drive delay.
    pub max_ps: f64,
    /// Shortest combinational delay (ps), same convention.
    pub min_ps: f64,
}

/// Sequential timing graph: endpoints plus min/max collapsed edges.
#[derive(Debug, Clone)]
pub struct SeqGraph {
    /// Endpoints. Storage nodes first, then inputs, then outputs.
    pub nodes: Vec<SeqNode>,
    /// Collapsed edges.
    pub edges: Vec<SeqEdge>,
    node_of_cell: HashMap<CellId, usize>,
}

impl SeqGraph {
    /// Index of the node for storage cell `c`.
    pub fn node_of(&self, c: CellId) -> Option<usize> {
        self.node_of_cell.get(&c).copied()
    }

    /// Edges grouped by capturing node.
    pub fn in_edges(&self) -> Vec<Vec<usize>> {
        let mut by_to = vec![Vec::new(); self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            by_to[e.to].push(i);
        }
        by_to
    }
}

/// Effective capacitive load of `net` (fF): sink pin caps plus optional
/// wire capacitance.
pub fn net_load(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
    wire_cap: Option<&[f64]>,
    net: NetId,
) -> f64 {
    let mut load = 0.0;
    for pin in idx.loads(net) {
        load += lib.cell(nl.cell(pin.cell).kind).pin_cap(pin.pin);
    }
    if let Some(w) = wire_cap {
        load += w.get(net.index()).copied().unwrap_or(0.0);
    }
    load
}

/// Extract the sequential graph of `nl`.
///
/// Clock pins are excluded from data traversal; clock-gate enables are
/// treated as capture endpoints only when `include_cg_enables` is set
/// (they then appear as extra `Output`-less sinks folded onto the ICG's
/// downstream latches — not needed for the paper's analyses, so the
/// default path ignores them).
///
/// # Errors
///
/// Propagates [`triphase_netlist::Error::CombLoop`] (wrapped in
/// [`Error::Netlist`]) from topological ordering.
pub fn extract_seq_graph(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
    wire_cap: Option<&[f64]>,
) -> Result<SeqGraph> {
    let order = graph::comb_topo_order(nl, idx).map_err(Error::Netlist)?;

    let mut nodes = Vec::new();
    let mut node_of_cell = HashMap::new();
    for (id, cell) in nl.cells() {
        if cell.kind.is_storage() {
            node_of_cell.insert(id, nodes.len());
            nodes.push(SeqNode::Storage(id));
        }
    }
    let mut node_of_port = HashMap::new();
    for (i, port) in nl.ports().iter().enumerate() {
        let pid = PortId::from_index(i);
        // Skip clock ports — they are not data launch points.
        if let Some(clock) = &nl.clock {
            if clock.phase_of_port(pid).is_some() {
                continue;
            }
        }
        match port.dir {
            PortDir::Input => {
                node_of_port.insert(pid, nodes.len());
                nodes.push(SeqNode::Input(pid));
            }
            PortDir::Output => {
                node_of_port.insert(pid, nodes.len());
                nodes.push(SeqNode::Output(pid));
            }
        }
    }

    // Per-source forward propagation of (max, min) arrival over the
    // combinational fabric.
    let mut edges: Vec<SeqEdge> = Vec::new();
    let mut edge_index: HashMap<(usize, usize), usize> = HashMap::new();
    let mut arr_max: Vec<f64> = vec![f64::NEG_INFINITY; nl.net_capacity()];
    let mut arr_min: Vec<f64> = vec![f64::INFINITY; nl.net_capacity()];
    let mut touched: Vec<NetId> = Vec::new();

    let sources: Vec<(usize, NetId, f64)> = nodes
        .iter()
        .enumerate()
        .filter_map(|(i, &n)| match n {
            SeqNode::Storage(c) => {
                let cell = nl.cell(c);
                let q = cell.output();
                // Load-dependent part of the launch delay.
                let drive = lib.cell(cell.kind).res_ps_per_ff * net_load(nl, lib, idx, wire_cap, q);
                Some((i, q, drive))
            }
            SeqNode::Input(p) => Some((i, nl.port(p).net, 0.0)),
            SeqNode::Output(_) => None,
        })
        .collect();

    for (src_node, src_net, launch) in sources {
        // Reset touched nets.
        for &n in &touched {
            arr_max[n.index()] = f64::NEG_INFINITY;
            arr_min[n.index()] = f64::INFINITY;
        }
        touched.clear();
        arr_max[src_net.index()] = launch;
        arr_min[src_net.index()] = launch;
        touched.push(src_net);

        for &cid in &order {
            let cell = nl.cell(cid);
            let mut mx = f64::NEG_INFINITY;
            let mut mn = f64::INFINITY;
            for &input in cell.inputs() {
                mx = mx.max(arr_max[input.index()]);
                mn = mn.min(arr_min[input.index()]);
            }
            if mx == f64::NEG_INFINITY {
                continue; // not reached from this source
            }
            let out = cell.output();
            let lc = lib.cell(cell.kind);
            let d = lc.intrinsic_ps + lc.res_ps_per_ff * net_load(nl, lib, idx, wire_cap, out);
            let (new_max, new_min) = (mx + d, mn + d);
            if arr_max[out.index()] == f64::NEG_INFINITY {
                touched.push(out);
            }
            arr_max[out.index()] = arr_max[out.index()].max(new_max);
            arr_min[out.index()] = arr_min[out.index()].min(new_min);
        }

        // Collect captures: storage D/EN pins and output ports.
        let mut record = |to_node: usize, mx: f64, mn: f64| {
            let key = (src_node, to_node);
            match edge_index.get(&key) {
                Some(&i) => {
                    edges[i].max_ps = edges[i].max_ps.max(mx);
                    edges[i].min_ps = edges[i].min_ps.min(mn);
                }
                None => {
                    edge_index.insert(key, edges.len());
                    edges.push(SeqEdge {
                        from: src_node,
                        to: to_node,
                        max_ps: mx,
                        min_ps: mn,
                    });
                }
            }
        };
        for &net in &touched {
            let mx = arr_max[net.index()];
            let mn = arr_min[net.index()];
            for pin in idx.loads(net) {
                let cell = nl.cell(pin.cell);
                if !cell.kind.is_storage() {
                    continue;
                }
                let def = cell.kind.pin_def(pin.pin);
                if def.dir != PinDir::Input || def.class == PinClass::Clock {
                    continue;
                }
                let to = node_of_cell[&pin.cell];
                record(to, mx, mn);
            }
            for &port in idx.observers(net) {
                if let Some(&to) = node_of_port.get(&port) {
                    record(to, mx, mn);
                }
            }
        }
    }

    Ok(SeqGraph {
        nodes,
        edges,
        node_of_cell,
    })
}

/// The clock phase driving each storage cell, traced through clock gates
/// and buffers to a root port of the design's [`triphase_netlist::ClockSpec`].
///
/// # Errors
///
/// [`Error::NoClock`] if the netlist has no clock spec;
/// [`Error::Netlist`] if a clock pin does not trace to a declared phase.
pub fn storage_phases(nl: &Netlist, idx: &ConnIndex) -> Result<HashMap<CellId, usize>> {
    let clock = nl.clock.as_ref().ok_or(Error::NoClock)?;
    let mut phases = HashMap::new();
    for (id, cell) in nl.cells() {
        if !cell.kind.is_storage() {
            continue;
        }
        // Every storage kind defines a clock pin; skip defensively if not.
        let Some(ck_pin) = cell.kind.clock_pin() else {
            continue;
        };
        let trace = graph::trace_clock_root(nl, idx, cell.pin(ck_pin)).map_err(Error::Netlist)?;
        let phase = clock.phase_of_port(trace.root).ok_or_else(|| {
            Error::Netlist(triphase_netlist::Error::Invalid(format!(
                "clock of {} traces to non-phase port {}",
                cell.name,
                nl.port(trace.root).name
            )))
        })?;
        phases.insert(id, phase);
    }
    Ok(phases)
}

/// `true` if `kind` is transparent-high for its phase window (latches);
/// FFs return `false`.
pub fn transparent_high(kind: CellKind) -> bool {
    kind == CellKind::LatchH
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::{Builder, ClockSpec};

    fn pipeline2() -> Netlist {
        let mut nl = Netlist::new("pipe2");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("din");
        let q0 = b.dff(din, ck);
        let x = b.not(q0);
        let y = b.not(x);
        let q1 = b.dff(y, ck);
        b.netlist().add_output("dout", q1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl.validate().unwrap();
        nl
    }

    #[test]
    fn extracts_nodes_and_edges() {
        let nl = pipeline2();
        let lib = Library::synthetic_28nm();
        let idx = nl.index();
        let g = extract_seq_graph(&nl, &lib, &idx, None).unwrap();
        // Nodes: 2 FFs + din input + dout output (ck excluded as clock).
        assert_eq!(g.nodes.len(), 4);
        // Edges: din->ff0, ff0->ff1 (through two inverters), ff1->dout.
        assert_eq!(g.edges.len(), 3);
        let e = g
            .edges
            .iter()
            .find(|e| {
                matches!(g.nodes[e.from], SeqNode::Storage(_))
                    && matches!(g.nodes[e.to], SeqNode::Storage(_))
            })
            .unwrap();
        assert!(e.max_ps > 0.0);
        assert!(e.min_ps <= e.max_ps);
        // Two inverter delays plus launch drive: must exceed 2x intrinsic.
        let inv = lib.cell(CellKind::Inv);
        assert!(e.max_ps >= 2.0 * inv.intrinsic_ps);
    }

    #[test]
    fn min_max_differ_on_reconvergence() {
        let mut nl = Netlist::new("reconv");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("d");
        let q0 = b.dff(din, ck);
        // Short path: direct; long path: 3 inverters.
        let a = b.not(q0);
        let c = b.not(a);
        let d2 = b.not(c);
        let y = b.gate(CellKind::And(2), &[q0, d2]);
        let q1 = b.dff(y, ck);
        b.netlist().add_output("q", q1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let lib = Library::synthetic_28nm();
        let idx = nl.index();
        let g = extract_seq_graph(&nl, &lib, &idx, None).unwrap();
        let e = g
            .edges
            .iter()
            .find(|e| {
                matches!(g.nodes[e.from], SeqNode::Storage(_))
                    && matches!(g.nodes[e.to], SeqNode::Storage(_))
            })
            .unwrap();
        assert!(
            e.max_ps > e.min_ps + 2.0,
            "long path {} vs short {}",
            e.max_ps,
            e.min_ps
        );
    }

    #[test]
    fn wire_caps_increase_delay() {
        let nl = pipeline2();
        let lib = Library::synthetic_28nm();
        let idx = nl.index();
        let bare = extract_seq_graph(&nl, &lib, &idx, None).unwrap();
        let caps = vec![10.0; nl.net_capacity()];
        let loaded = extract_seq_graph(&nl, &lib, &idx, Some(&caps)).unwrap();
        let sum_bare: f64 = bare.edges.iter().map(|e| e.max_ps).sum();
        let sum_loaded: f64 = loaded.edges.iter().map(|e| e.max_ps).sum();
        assert!(sum_loaded > sum_bare);
    }

    #[test]
    fn phases_traced() {
        let nl = pipeline2();
        let idx = nl.index();
        let phases = storage_phases(&nl, &idx).unwrap();
        assert_eq!(phases.len(), 2);
        assert!(phases.values().all(|&p| p == 0));
    }

    #[test]
    fn no_clock_error() {
        let mut nl = pipeline2();
        nl.clock = None;
        let idx = nl.index();
        assert!(matches!(storage_phases(&nl, &idx), Err(Error::NoClock)));
    }
}
