//! Static min-delay race analysis for latch-based designs.
//!
//! While [`analyze_smo`](crate::analyze_smo) reports the *worst* hold slack
//! per capturing node, latch conversion needs the race attributed to the
//! *pair*: which upstream transparent latch can launch data early enough to
//! shoot through the downstream latch's still-open window. This module
//! re-derives the per-edge earliest arrival from the SMO fixed point and
//! checks, per storage-to-storage edge:
//!
//! - **min-delay race**: earliest arrival at the capturing node (its local
//!   frame) vs. the library hold requirement — a negative margin means data
//!   launched through the upstream latch races through the still-open
//!   downstream window;
//! - **co-transparency**: both latch windows overlap on the clock circle
//!   (structural constraint C2 — any overlap makes the pair rate-unsafe
//!   regardless of delays);
//! - **time-borrowing chains**: runs of consecutively borrowing latches
//!   across the phases; a chain whose cumulative borrow approaches the
//!   period (or a borrowing cycle) means the design leans on transparency
//!   end-to-end with no recovery edge.

use crate::error::{Error, Result};
use crate::graph::{extract_seq_graph, storage_phases, SeqGraph, SeqNode};
use crate::smo::{analyze_smo, circular_overlap, node_clocks, phase_shift, NodeClock};
use crate::SmoReport;
use triphase_cells::{CellKind, Library};
use triphase_netlist::{CellId, ConnIndex, Netlist};

/// Min-delay data for one storage-to-storage edge.
#[derive(Debug, Clone, Copy)]
pub struct RacePair {
    /// Launching storage cell.
    pub from: CellId,
    /// Capturing storage cell.
    pub to: CellId,
    /// Earliest arrival at the capturing node contributed by this edge
    /// (ps, capturing node's local frame; previous capture at 0).
    pub arrival_min_ps: f64,
    /// Library hold requirement of the capturing cell (ps).
    pub hold_ps: f64,
    /// `arrival_min_ps - hold_ps`; negative means a min-delay race.
    pub margin_ps: f64,
    /// Both endpoints are latches with overlapping transparency windows.
    pub co_transparent: bool,
}

impl RacePair {
    /// `true` when this pair violates either the hold margin or C2.
    pub fn racing(&self) -> bool {
        self.margin_ps < 0.0 || self.co_transparent
    }
}

/// A maximal run of consecutively borrowing latches.
#[derive(Debug, Clone)]
pub struct BorrowChain {
    /// The latches on the chain, upstream first.
    pub cells: Vec<CellId>,
    /// Cumulative time borrowed along the chain (ps).
    pub borrowed_ps: f64,
    /// The chain closes on itself (a cycle of borrowing latches).
    pub cyclic: bool,
}

/// Result of [`check_min_delay`].
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Cycle time analyzed (ps).
    pub period_ps: f64,
    /// All storage-to-storage edges with min-delay attribution.
    pub pairs: Vec<RacePair>,
    /// Worst pair margin (ps; `+inf` when there are no pairs).
    pub worst_margin_ps: f64,
    /// The worst time-borrowing chain, if any latch borrows.
    pub worst_chain: Option<BorrowChain>,
    /// The setup-side (max-arrival) fixed point diverged and the pairs were
    /// attributed from a min-only fixed point. Earliest departures are
    /// floored at the window opening, so the min side always converges;
    /// borrow chains are unavailable (`worst_chain` is `None`) and the
    /// setup failure is the slack report's responsibility.
    pub setup_diverged: bool,
}

impl RaceReport {
    /// Pairs that race (negative margin or co-transparent).
    pub fn races(&self) -> impl Iterator<Item = &RacePair> {
        self.pairs.iter().filter(|p| p.racing())
    }

    /// `true` when no pair races.
    pub fn clean(&self) -> bool {
        self.races().next().is_none()
    }
}

/// Run the SMO analysis and attribute min-delay races per latch pair.
///
/// When the SMO fixed point diverges (a transparent loop borrows
/// unboundedly — a *setup*-side pathology), the hold side is still
/// checkable: earliest departures are floored at the window opening, so
/// the min-arrival recurrence converges on its own. In that case the
/// pairs are attributed from a min-only fixed point and the report is
/// flagged [`setup_diverged`](RaceReport::setup_diverged).
///
/// # Errors
///
/// Propagates structural [`analyze_smo`] errors (no clock spec, clock
/// trace, combinational loop).
pub fn check_min_delay(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
    wire_cap: Option<&[f64]>,
) -> Result<RaceReport> {
    match analyze_smo(nl, lib, idx, wire_cap) {
        Ok(smo) => attribute_races(nl, lib, idx, &smo),
        Err(Error::NoConvergence { .. }) => min_only_races(nl, lib, idx, wire_cap),
        Err(e) => Err(e),
    }
}

/// Fallback attribution when the setup side diverges: iterate only the
/// earliest-arrival recurrence (same conventions as the SMO fixed point)
/// and build the pairs from it. Min departures are bounded below by the
/// window-opening floor, so this always reaches a fixed point.
fn min_only_races(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
    wire_cap: Option<&[f64]>,
) -> Result<RaceReport> {
    let clock = nl.clock.as_ref().ok_or(Error::NoClock)?;
    let t = clock.period_ps;
    let graph = extract_seq_graph(nl, lib, idx, wire_cap)?;
    let phases = storage_phases(nl, idx)?;
    let clocks = node_clocks(nl, lib, clock, &graph, &phases)?;
    let n = graph.nodes.len();
    let in_edges = graph.in_edges();

    let mut arr_min = vec![f64::INFINITY; n];
    let max_iters = 2 * n + 16;
    for _ in 0..max_iters {
        let q_min = min_departures(t, &clocks, &arr_min);
        let mut changed = false;
        for i in 0..n {
            let mut mn = f64::INFINITY;
            for &ei in &in_edges[i] {
                let e = &graph.edges[ei];
                let shift = phase_shift(t, clocks[e.from].chi, clocks[i].chi);
                // PI-launched paths carry no hold obligation, as in SMO.
                if !matches!(graph.nodes[e.from], SeqNode::Input(_)) {
                    mn = mn.min(q_min[e.from] + e.min_ps - shift);
                }
            }
            if (mn - arr_min[i]).abs() > 1e-6 && mn.is_finite() {
                changed = true;
            }
            arr_min[i] = mn;
        }
        if !changed {
            break;
        }
    }

    let q_min = min_departures(t, &clocks, &arr_min);
    let (pairs, worst) = attribute_pairs(nl, &graph, &clocks, t, &q_min);
    Ok(RaceReport {
        period_ps: t,
        pairs,
        worst_margin_ps: worst,
        worst_chain: None,
        setup_diverged: true,
    })
}

/// Earliest departures from earliest arrivals (the SMO `q_min` rule).
fn min_departures(t: f64, clocks: &[NodeClock], arr_min: &[f64]) -> Vec<f64> {
    clocks
        .iter()
        .zip(arr_min)
        .map(|(c, &a)| {
            if c.width <= 0.0 {
                t + c.clk_to_q
            } else if a <= t - c.width {
                (t - c.width) + c.clk_to_q
            } else {
                a + c.d_to_q
            }
        })
        .collect()
}

/// Per-edge pair attribution shared by the converged and min-only paths.
fn attribute_pairs(
    nl: &Netlist,
    graph: &SeqGraph,
    clocks: &[NodeClock],
    t: f64,
    q_min: &[f64],
) -> (Vec<RacePair>, f64) {
    let is_latch = |node: usize| -> bool {
        matches!(graph.nodes[node], SeqNode::Storage(c)
            if matches!(nl.cell(c).kind, CellKind::LatchH | CellKind::LatchL))
    };
    // Transparency window on the clock circle: (open, close) with
    // close ≡ chi and width from the node clock.
    let window = |node: usize| -> (f64, f64) {
        let c = &clocks[node];
        (c.chi - c.width, c.chi)
    };

    let mut pairs = Vec::new();
    let mut worst = f64::INFINITY;
    for e in &graph.edges {
        let (SeqNode::Storage(a), SeqNode::Storage(b)) = (graph.nodes[e.from], graph.nodes[e.to])
        else {
            continue;
        };
        let shift = phase_shift(t, clocks[e.from].chi, clocks[e.to].chi);
        let arrival_min = q_min[e.from] + e.min_ps - shift;
        let hold = clocks[e.to].hold;
        let co_transparent =
            is_latch(e.from) && is_latch(e.to) && circular_overlap(t, window(e.from), window(e.to));
        let margin = arrival_min - hold;
        worst = worst.min(margin);
        pairs.push(RacePair {
            from: a,
            to: b,
            arrival_min_ps: arrival_min,
            hold_ps: hold,
            margin_ps: margin,
            co_transparent,
        });
    }
    (pairs, worst)
}

/// Pair-level attribution from an existing [`SmoReport`] (avoids re-running
/// the fixed point when the caller already has one).
pub fn attribute_races(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
    smo: &SmoReport,
) -> Result<RaceReport> {
    let clock = nl.clock.as_ref().ok_or(Error::NoClock)?;
    let t = clock.period_ps;
    let graph = &smo.graph;
    let phases = storage_phases(nl, idx)?;
    let clocks = node_clocks(nl, lib, clock, graph, &phases)?;

    // Earliest departures from the converged arrivals (same convention as
    // the SMO fixed point).
    let arr_min: Vec<f64> = smo.per_node.iter().map(|p| p.arrival_min_ps).collect();
    let q_min = min_departures(t, &clocks, &arr_min);
    let (pairs, worst) = attribute_pairs(nl, graph, &clocks, t, &q_min);

    let worst_chain = worst_borrow_chain(graph, smo);
    Ok(RaceReport {
        period_ps: t,
        pairs,
        worst_margin_ps: worst,
        worst_chain,
        setup_diverged: false,
    })
}

/// Longest cumulative-borrow run over the subgraph of borrowing latches;
/// a cycle of borrowing latches is reported as a cyclic chain.
fn worst_borrow_chain(graph: &crate::SeqGraph, smo: &SmoReport) -> Option<BorrowChain> {
    const TOL: f64 = 1e-6;
    let n = graph.nodes.len();
    let borrowing: Vec<bool> = (0..n).map(|i| smo.per_node[i].borrowed_ps > TOL).collect();
    if !borrowing.iter().any(|&b| b) {
        return None;
    }
    // Adjacency restricted to borrowing storage nodes.
    let mut succ = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for e in &graph.edges {
        if borrowing[e.from]
            && borrowing[e.to]
            && e.from != e.to
            && matches!(graph.nodes[e.from], SeqNode::Storage(_))
            && matches!(graph.nodes[e.to], SeqNode::Storage(_))
        {
            succ[e.from].push(e.to);
            indeg[e.to] += 1;
        }
    }
    // Kahn topological order; leftovers are on a borrowing cycle.
    let mut order = Vec::new();
    let mut queue: Vec<usize> = (0..n).filter(|&i| borrowing[i] && indeg[i] == 0).collect();
    while let Some(i) = queue.pop() {
        order.push(i);
        for &j in &succ[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                queue.push(j);
            }
        }
    }
    let on_cycle: Vec<usize> = (0..n).filter(|&i| borrowing[i] && indeg[i] > 0).collect();
    if !on_cycle.is_empty() {
        let cells = on_cycle
            .iter()
            .filter_map(|&i| match graph.nodes[i] {
                SeqNode::Storage(c) => Some(c),
                _ => None,
            })
            .collect::<Vec<_>>();
        let borrowed = on_cycle.iter().map(|&i| smo.per_node[i].borrowed_ps).sum();
        return Some(BorrowChain {
            cells,
            borrowed_ps: borrowed,
            cyclic: true,
        });
    }
    // Acyclic: DP for the maximum cumulative borrow path.
    let mut best = vec![0.0f64; n];
    let mut prev = vec![usize::MAX; n];
    for &i in &order {
        if best[i] == 0.0 {
            best[i] = smo.per_node[i].borrowed_ps;
        }
        for &j in &succ[i] {
            let cand = best[i] + smo.per_node[j].borrowed_ps;
            if cand > best[j] {
                best[j] = cand;
                prev[j] = i;
            }
        }
    }
    let end = order
        .iter()
        .copied()
        .max_by(|&a, &b| best[a].total_cmp(&best[b]))?;
    let mut path = Vec::new();
    let mut cur = end;
    loop {
        path.push(cur);
        if prev[cur] == usize::MAX {
            break;
        }
        cur = prev[cur];
    }
    path.reverse();
    let cells = path
        .iter()
        .filter_map(|&i| match graph.nodes[i] {
            SeqNode::Storage(c) => Some(c),
            _ => None,
        })
        .collect();
    Some(BorrowChain {
        cells,
        borrowed_ps: best[end],
        cyclic: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::{Builder, ClockSpec, Netlist};

    /// 3-phase latch pipeline (same shape as the SMO tests).
    fn latch3(period: f64, inv_per_stage: usize) -> Netlist {
        let mut nl = Netlist::new("l3");
        let mut b = Builder::new(&mut nl, "u");
        let (p1, c1) = b.netlist().add_input("p1");
        let (p2, c2) = b.netlist().add_input("p2");
        let (p3, c3) = b.netlist().add_input("p3");
        let (_, d) = b.netlist().add_input("d");
        let mut x = d;
        for (i, g) in [c1, c2, c3, c1].iter().enumerate() {
            let q = b.net(&format!("q{i}"));
            let name = format!("lat{i}");
            b.netlist().add_cell(name, CellKind::LatchH, vec![x, *g, q]);
            x = q;
            for _ in 0..inv_per_stage {
                x = b.not(x);
            }
        }
        b.netlist().add_output("q", x);
        nl.clock = Some(ClockSpec::equal_phases(&[p1, p2, p3], period));
        nl
    }

    #[test]
    fn staggered_phases_have_margin() {
        let lib = Library::synthetic_28nm();
        let nl = latch3(900.0, 2);
        let idx = nl.index();
        let r = check_min_delay(&nl, &lib, &idx, None).unwrap();
        assert!(!r.pairs.is_empty());
        assert!(r.clean(), "worst margin {}", r.worst_margin_ps);
        // The non-overlap of adjacent phases gives roughly a phase of slack.
        assert!(r.worst_margin_ps > 100.0, "margin {}", r.worst_margin_ps);
    }

    #[test]
    fn same_phase_pair_races() {
        let lib = Library::synthetic_28nm();
        let mut nl = Netlist::new("bad");
        let mut b = Builder::new(&mut nl, "u");
        let (p1, c1) = b.netlist().add_input("p1");
        let (p2, _c2) = b.netlist().add_input("p2");
        let (_, d) = b.netlist().add_input("d");
        let q0 = b.net("q0");
        let q1 = b.net("q1");
        b.netlist()
            .add_cell("l0", CellKind::LatchH, vec![d, c1, q0]);
        let x = b.not(q0);
        b.netlist()
            .add_cell("l1", CellKind::LatchH, vec![x, c1, q1]);
        b.netlist().add_output("q", q1);
        nl.clock = Some(ClockSpec::equal_phases(&[p1, p2], 1000.0));
        let idx = nl.index();
        let r = check_min_delay(&nl, &lib, &idx, None).unwrap();
        assert!(!r.clean(), "same-phase latch pair must race");
        let racing: Vec<_> = r.races().collect();
        assert!(racing.iter().any(|p| p.co_transparent));
    }

    #[test]
    fn borrowing_chain_reported() {
        let lib = Library::synthetic_28nm();
        // Deep logic in every stage: consecutive latches borrow.
        let nl = latch3(900.0, 22);
        let idx = nl.index();
        let r = check_min_delay(&nl, &lib, &idx, None).unwrap();
        let chain = r.worst_chain.expect("expected borrowing");
        assert!(chain.borrowed_ps > 0.0);
        assert!(!chain.cells.is_empty());
    }

    #[test]
    fn diverging_setup_still_yields_min_delay_pairs() {
        let lib = Library::synthetic_28nm();
        // Ring of 3 latches with deep logic in every stage: the loop's
        // total delay exceeds the period, so borrowing never recovers and
        // the max-arrival fixed point diverges.
        let mut nl = Netlist::new("ring");
        let mut b = Builder::new(&mut nl, "u");
        let (p1, c1) = b.netlist().add_input("p1");
        let (p2, c2) = b.netlist().add_input("p2");
        let (p3, c3) = b.netlist().add_input("p3");
        let qs: Vec<_> = (0..3).map(|i| b.net(&format!("q{i}"))).collect();
        let mut d = qs[2];
        for (i, g) in [c1, c2, c3].iter().enumerate() {
            let mut x = d;
            for _ in 0..40 {
                x = b.not(x);
            }
            b.netlist()
                .add_cell(format!("lat{i}"), CellKind::LatchH, vec![x, *g, qs[i]]);
            d = qs[i];
        }
        b.netlist().add_output("q", qs[2]);
        nl.clock = Some(ClockSpec::equal_phases(&[p1, p2, p3], 900.0));
        let idx = nl.index();
        assert!(matches!(
            analyze_smo(&nl, &lib, &idx, None),
            Err(Error::NoConvergence { .. })
        ));
        // The min-only fallback still attributes every latch pair.
        let r = check_min_delay(&nl, &lib, &idx, None).unwrap();
        assert!(r.setup_diverged);
        assert_eq!(r.pairs.len(), 3);
        assert!(r.worst_chain.is_none());
    }

    #[test]
    fn ff_design_reduces_to_hold_check() {
        let lib = Library::synthetic_28nm();
        let mut nl = Netlist::new("ff");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, d) = b.netlist().add_input("d");
        let q0 = b.dff(d, ck);
        let x = b.not(q0);
        let q1 = b.dff(x, ck);
        b.netlist().add_output("q", q1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let idx = nl.index();
        let r = check_min_delay(&nl, &lib, &idx, None).unwrap();
        assert_eq!(r.pairs.len(), 1);
        let p = &r.pairs[0];
        assert!(!p.co_transparent);
        // clk-to-q + one inverter comfortably beats the hold time.
        assert!(p.margin_ps > 0.0, "margin {}", p.margin_ps);
    }
}
