//! Critical-path extraction: the gate-level chain of the worst setup
//! path, for reports and debugging.

use crate::error::Result;
use crate::graph::net_load;
use triphase_cells::Library;
use triphase_cells::{PinClass, PinDir};
use triphase_netlist::{graph, CellId, ConnIndex, NetId, Netlist};

/// One step of a critical path.
#[derive(Debug, Clone)]
pub struct PathStep {
    /// The cell traversed.
    pub cell: CellId,
    /// Instance name (for display).
    pub name: String,
    /// Arrival time at the cell output (ps).
    pub arrival_ps: f64,
}

/// A traced critical path.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Launch-to-capture cell chain (launch register/PI cone first).
    pub steps: Vec<PathStep>,
    /// Total combinational delay (ps).
    pub delay_ps: f64,
}

/// Trace the single worst combinational path of the design (maximum
/// arrival over all storage `D` pins and output ports), walking back
/// through the gate with the latest-arriving input at each step.
///
/// Returns `None` for purely combinational-free designs.
///
/// # Errors
///
/// Propagates combinational-loop errors.
pub fn worst_path(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
    wire_cap: Option<&[f64]>,
) -> Result<Option<CriticalPath>> {
    let order = graph::comb_topo_order(nl, idx)?;
    // Global arrival: storage outputs launch at clk-to-Q, PIs at 0.
    let mut arrival: Vec<f64> = vec![f64::NEG_INFINITY; nl.net_capacity()];
    for (_, cell) in nl.cells() {
        if cell.kind.is_storage() {
            arrival[cell.output().index()] = lib.cell(cell.kind).timing.clk_to_q_ps;
        }
    }
    let clock_ports: Vec<NetId> = nl
        .clock
        .iter()
        .flat_map(|c| c.phases.iter().map(|p| nl.port(p.port).net))
        .collect();
    for port in nl.input_ports() {
        let net = nl.port(port).net;
        if !clock_ports.contains(&net) {
            arrival[net.index()] = arrival[net.index()].max(0.0);
        }
    }
    let mut through: Vec<Option<CellId>> = vec![None; nl.net_capacity()];
    for &cid in &order {
        let cell = nl.cell(cid);
        let mut best = f64::NEG_INFINITY;
        for &input in cell.inputs() {
            best = best.max(arrival[input.index()]);
        }
        if best == f64::NEG_INFINITY {
            continue;
        }
        let out = cell.output();
        let lc = lib.cell(cell.kind);
        let d = lc.intrinsic_ps + lc.res_ps_per_ff * net_load(nl, lib, idx, wire_cap, out);
        if best + d > arrival[out.index()] {
            arrival[out.index()] = best + d;
            through[out.index()] = Some(cid);
        }
    }

    // Worst endpoint: storage data pin or output port.
    let mut worst: Option<(NetId, f64)> = None;
    let mut consider = |net: NetId, a: f64| {
        if a > worst.map_or(f64::NEG_INFINITY, |(_, w)| w) {
            worst = Some((net, a));
        }
    };
    for (_, cell) in nl.cells() {
        if !cell.kind.is_storage() {
            continue;
        }
        for (pin, &net) in cell.pins().iter().enumerate() {
            let def = cell.kind.pin_def(pin);
            if def.dir == PinDir::Input && def.class != PinClass::Clock {
                consider(net, arrival[net.index()]);
            }
        }
    }
    for port in nl.output_ports() {
        let net = nl.port(port).net;
        consider(net, arrival[net.index()]);
    }
    let Some((end_net, delay_ps)) = worst else {
        return Ok(None);
    };
    if delay_ps == f64::NEG_INFINITY {
        return Ok(None);
    }

    // Walk back through the recorded worst drivers.
    let mut steps = Vec::new();
    let mut net = end_net;
    while let Some(cid) = through[net.index()] {
        let cell = nl.cell(cid);
        steps.push(PathStep {
            cell: cid,
            name: cell.name.clone(),
            arrival_ps: arrival[cell.output().index()],
        });
        // Continue from the latest-arriving input.
        let mut best: Option<(NetId, f64)> = None;
        for &input in cell.inputs() {
            let a = arrival[input.index()];
            if a > best.map_or(f64::NEG_INFINITY, |(_, b)| b) {
                best = Some((input, a));
            }
        }
        match best {
            Some((n, a)) if a > f64::NEG_INFINITY => net = n,
            _ => break,
        }
        if steps.len() > nl.cell_count() {
            break; // defensive
        }
    }
    steps.reverse();
    Ok(Some(CriticalPath { steps, delay_ps }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::{Builder, CellKind, ClockSpec};

    #[test]
    fn traces_the_deep_branch() {
        let mut nl = Netlist::new("p");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("d");
        let q0 = b.dff(din, ck);
        // Short branch: 1 inverter; long branch: 5 inverters.
        let short = b.not(q0);
        let mut long = q0;
        for _ in 0..5 {
            long = b.not(long);
        }
        let y = b.gate(CellKind::And(2), &[short, long]);
        let q1 = b.dff(y, ck);
        b.netlist().add_output("q", q1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let lib = Library::synthetic_28nm();
        let idx = nl.index();
        let path = worst_path(&nl, &lib, &idx, None).unwrap().unwrap();
        // 5 inverters + the AND = 6 steps.
        assert_eq!(path.steps.len(), 6, "{:?}", path.steps);
        assert!(path.delay_ps > 60.0);
        // Arrivals are monotonically increasing along the path.
        for w in path.steps.windows(2) {
            assert!(w[0].arrival_ps < w[1].arrival_ps);
        }
    }

    #[test]
    fn no_comb_returns_none_or_short() {
        let mut nl = Netlist::new("s");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("d");
        let q = b.dff(din, ck);
        b.netlist().add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let lib = Library::synthetic_28nm();
        let idx = nl.index();
        let path = worst_path(&nl, &lib, &idx, None).unwrap();
        // Direct FF->FF path: endpoint exists but no comb cells on it.
        match path {
            None => {}
            Some(p) => assert!(p.steps.is_empty()),
        }
    }

    #[test]
    fn wire_caps_lengthen_the_path_delay() {
        let mut nl = Netlist::new("w");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("d");
        let q0 = b.dff(din, ck);
        let x = b.not(q0);
        let q1 = b.dff(x, ck);
        b.netlist().add_output("q", q1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let lib = Library::synthetic_28nm();
        let idx = nl.index();
        let bare = worst_path(&nl, &lib, &idx, None).unwrap().unwrap();
        let caps = vec![25.0; nl.net_capacity()];
        let loaded = worst_path(&nl, &lib, &idx, Some(&caps)).unwrap().unwrap();
        assert!(loaded.delay_ps > bare.delay_ps);
    }
}
