//! Error type of the timing crate.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The netlist carries no clock specification.
    NoClock,
    /// The design mixes storage kinds the requested analysis cannot handle
    /// (e.g. latches given to the FF analyzer).
    WrongAnalysis(String),
    /// An underlying netlist problem (combinational loop, bad clock path).
    Netlist(triphase_netlist::Error),
    /// Latch departure times failed to converge: the design cannot meet
    /// the cycle time regardless of borrowing.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoClock => write!(f, "netlist has no clock specification"),
            Error::WrongAnalysis(msg) => write!(f, "wrong analysis: {msg}"),
            Error::Netlist(e) => write!(f, "netlist error: {e}"),
            Error::NoConvergence { iterations } => {
                write!(
                    f,
                    "latch timing did not converge after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<triphase_netlist::Error> for Error {
    fn from(e: triphase_netlist::Error) -> Self {
        Error::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(Error::NoClock.to_string().contains("clock"));
        assert!(Error::NoConvergence { iterations: 7 }
            .to_string()
            .contains('7'));
        let e = Error::Netlist(triphase_netlist::Error::Invalid("x".into()));
        assert!(e.to_string().contains("x"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
