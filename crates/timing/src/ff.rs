//! Conventional edge-triggered static timing analysis.

use crate::error::{Error, Result};
use crate::graph::{extract_seq_graph, SeqGraph, SeqNode};
use triphase_cells::Library;
use triphase_netlist::{ConnIndex, Netlist};

/// Result of FF-based STA.
#[derive(Debug, Clone)]
pub struct FfReport {
    /// Clock period analyzed (ps).
    pub period_ps: f64,
    /// Worst setup slack over all endpoints (ps, negative = violated).
    pub worst_setup_slack_ps: f64,
    /// Worst hold slack (ps, negative = violated).
    pub worst_hold_slack_ps: f64,
    /// Smallest period at which all setup checks pass (ps).
    pub min_period_ps: f64,
    /// Endpoint node index of the critical (worst-setup) path.
    pub critical_endpoint: Option<usize>,
    /// The extracted sequential graph (for inspection).
    pub graph: SeqGraph,
}

impl FfReport {
    /// `true` when both setup and hold are met.
    pub fn clean(&self) -> bool {
        self.worst_setup_slack_ps >= 0.0 && self.worst_hold_slack_ps >= 0.0
    }
}

/// Analyze a single-clock FF design at its declared clock period.
///
/// Primary inputs launch at the active clock edge; primary outputs must be
/// reached within one period.
///
/// # Errors
///
/// [`Error::WrongAnalysis`] if the design contains latches;
/// [`Error::NoClock`] if no clock spec is attached.
pub fn analyze_ff(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
    wire_cap: Option<&[f64]>,
) -> Result<FfReport> {
    let clock = nl.clock.as_ref().ok_or(Error::NoClock)?;
    let period = clock.period_ps;
    if nl.stats().latches > 0 {
        return Err(Error::WrongAnalysis(
            "design contains latches; use the SMO analyzer".into(),
        ));
    }
    let graph = extract_seq_graph(nl, lib, idx, wire_cap)?;

    let mut worst_setup = f64::INFINITY;
    let mut worst_hold = f64::INFINITY;
    let mut min_period: f64 = 0.0;
    let mut critical = None;
    for edge in &graph.edges {
        // Hold on PI-launched paths is the interface's responsibility
        // (equivalent to an input-delay constraint ≥ hold); skip it, as
        // sign-off flows do without explicit `set_input_delay -min`.
        let (launch, check_hold) = match graph.nodes[edge.from] {
            SeqNode::Storage(c) => (lib.cell(nl.cell(c).kind).timing.clk_to_q_ps, true),
            SeqNode::Input(_) => (0.0, false),
            SeqNode::Output(_) => unreachable!("outputs never launch"),
        };
        let (setup, hold) = match graph.nodes[edge.to] {
            SeqNode::Storage(c) => {
                let t = lib.cell(nl.cell(c).kind).timing;
                (t.setup_ps, t.hold_ps)
            }
            SeqNode::Output(_) => (0.0, 0.0),
            SeqNode::Input(_) => unreachable!("inputs never capture"),
        };
        let arr_max = launch + edge.max_ps;
        let arr_min = launch + edge.min_ps;
        let setup_slack = period - setup - arr_max;
        if setup_slack < worst_setup {
            worst_setup = setup_slack;
            critical = Some(edge.to);
        }
        if check_hold {
            worst_hold = worst_hold.min(arr_min - hold);
        }
        min_period = min_period.max(arr_max + setup);
    }
    if graph.edges.is_empty() {
        worst_setup = period;
    }
    if worst_hold == f64::INFINITY {
        worst_hold = 0.0;
    }
    Ok(FfReport {
        period_ps: period,
        worst_setup_slack_ps: worst_setup,
        worst_hold_slack_ps: worst_hold,
        min_period_ps: min_period,
        critical_endpoint: critical,
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_cells::CellKind;
    use triphase_netlist::{Builder, ClockSpec};

    fn chain(n_inv: usize, period: f64) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("d");
        let q0 = b.dff(din, ck);
        let mut x = q0;
        for _ in 0..n_inv {
            x = b.not(x);
        }
        let q1 = b.dff(x, ck);
        b.netlist().add_output("q", q1);
        nl.clock = Some(ClockSpec::single(ckp, period));
        nl
    }

    #[test]
    fn slack_decreases_with_depth() {
        let lib = Library::synthetic_28nm();
        let shallow = chain(2, 1000.0);
        let deep = chain(40, 1000.0);
        let r1 = analyze_ff(&shallow, &lib, &shallow.index(), None).unwrap();
        let r2 = analyze_ff(&deep, &lib, &deep.index(), None).unwrap();
        assert!(r1.clean());
        assert!(r1.worst_setup_slack_ps > r2.worst_setup_slack_ps);
        assert!(r2.min_period_ps > r1.min_period_ps);
    }

    #[test]
    fn violation_detected() {
        let lib = Library::synthetic_28nm();
        // 100 inverters at ~13 ps each cannot fit in 200 ps.
        let nl = chain(100, 200.0);
        let r = analyze_ff(&nl, &lib, &nl.index(), None).unwrap();
        assert!(r.worst_setup_slack_ps < 0.0);
        assert!(!r.clean());
        assert!(r.min_period_ps > 200.0);
        assert!(r.critical_endpoint.is_some());
    }

    #[test]
    fn hold_met_with_logic() {
        let lib = Library::synthetic_28nm();
        let nl = chain(2, 1000.0);
        let r = analyze_ff(&nl, &lib, &nl.index(), None).unwrap();
        assert!(r.worst_hold_slack_ps >= 0.0);
    }

    #[test]
    fn direct_ff_to_ff_hold() {
        // Zero-logic FF->FF path: hold met because clk_to_q > hold.
        let lib = Library::synthetic_28nm();
        let mut nl = Netlist::new("b2b");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("d");
        let q0 = b.dff(din, ck);
        let q1 = b.dff(q0, ck);
        b.netlist().add_output("q", q1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let r = analyze_ff(&nl, &lib, &nl.index(), None).unwrap();
        assert!(r.worst_hold_slack_ps >= 0.0);
        assert!(r.clean());
    }

    #[test]
    fn rejects_latches() {
        let lib = Library::synthetic_28nm();
        let mut nl = Netlist::new("l");
        let (ckp, ck) = nl.add_input("ck");
        let (_, d) = nl.add_input("d");
        let q = nl.add_net("q");
        nl.add_cell("lat", CellKind::LatchH, vec![d, ck, q]);
        nl.add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        assert!(matches!(
            analyze_ff(&nl, &lib, &nl.index(), None),
            Err(Error::WrongAnalysis(_))
        ));
    }
}
