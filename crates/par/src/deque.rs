//! Chase–Lev work-stealing deque over raw job pointers.
//!
//! The classic algorithm (Chase & Lev, SPAA'05): the owner pushes and
//! pops at the *bottom* in LIFO order, thieves steal from the *top* with
//! a compare-and-swap on the top index. Every slot is an `AtomicPtr` to a
//! heap-allocated job, so the buffer itself never needs element-level
//! synchronization beyond the index protocol.
//!
//! Two deliberate simplifications keep the implementation small and
//! auditable:
//!
//! - all atomics use `SeqCst` — task granularity in this workspace is a
//!   whole benchmark flow or a full packed-simulation run, so index-
//!   protocol overhead is irrelevant next to correctness;
//! - grown-out buffers are *retired*, not freed: they stay allocated
//!   until the deque drops, so a thief holding a stale buffer pointer
//!   always reads valid memory (the standard leak-until-drop scheme that
//!   avoids an epoch reclamation system).

use std::sync::atomic::{AtomicIsize, AtomicPtr, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// A unit of pool work: a lifetime-erased closure. Scope bookkeeping
/// (pending counters, panic capture) is baked into the closure by the
/// spawn site, so the executor just calls it.
pub(crate) struct Job(pub(crate) Box<dyn FnOnce() + Send>);

/// Raw pointer under which jobs travel through the deque slots.
pub(crate) type JobPtr = *mut Job;

const MIN_CAP: usize = 64;

struct Buffer {
    /// Power-of-two slot array; logical index `i` lives at `i & (cap-1)`.
    slots: Box<[AtomicPtr<Job>]>,
}

impl Buffer {
    fn new(cap: usize) -> Box<Buffer> {
        debug_assert!(cap.is_power_of_two());
        let slots: Vec<AtomicPtr<Job>> = (0..cap)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Box::new(Buffer {
            slots: slots.into_boxed_slice(),
        })
    }

    fn cap(&self) -> usize {
        self.slots.len()
    }

    fn at(&self, i: isize) -> &AtomicPtr<Job> {
        &self.slots[(i as usize) & (self.cap() - 1)]
    }
}

struct Inner {
    /// Thieves' end; only ever incremented (by a successful steal or the
    /// owner's last-element pop).
    top: AtomicIsize,
    /// Owner's end.
    bottom: AtomicIsize,
    /// Current buffer; swapped by the owner on growth.
    buf: AtomicPtr<Buffer>,
    /// Grown-out buffers, kept alive until drop (see module docs).
    retired: Mutex<Vec<*mut Buffer>>,
}

// The raw buffer pointers are only dereferenced under the index protocol
// and freed single-threaded at drop.
unsafe impl Send for Inner {}
unsafe impl Sync for Inner {}

impl Drop for Inner {
    fn drop(&mut self) {
        // Sole owner at this point: drop leftover jobs, free all buffers.
        let top = self.top.load(SeqCst);
        let bottom = self.bottom.load(SeqCst);
        let buf = self.buf.load(SeqCst);
        unsafe {
            for i in top..bottom {
                let job = (*buf).at(i).load(SeqCst);
                if !job.is_null() {
                    drop(Box::from_raw(job));
                }
            }
            drop(Box::from_raw(buf));
            for old in self.retired.lock().unwrap().drain(..) {
                drop(Box::from_raw(old));
            }
        }
    }
}

/// One worker's deque. [`Deque::push`]/[`Deque::pop`] must only be called
/// from the owning worker thread; [`Deque::steal`] is safe from any
/// thread. The pool upholds the owner discipline.
#[derive(Clone)]
pub(crate) struct Deque {
    inner: Arc<Inner>,
}

impl Deque {
    pub(crate) fn new() -> Deque {
        Deque {
            inner: Arc::new(Inner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buf: AtomicPtr::new(Box::into_raw(Buffer::new(MIN_CAP))),
                retired: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Owner-only: push a job at the bottom.
    pub(crate) fn push(&self, job: JobPtr) {
        let inner = &self.inner;
        let b = inner.bottom.load(SeqCst);
        let t = inner.top.load(SeqCst);
        let mut buf = unsafe { &*inner.buf.load(SeqCst) };
        if b - t >= buf.cap() as isize {
            self.grow(t, b);
            buf = unsafe { &*inner.buf.load(SeqCst) };
        }
        buf.at(b).store(job, SeqCst);
        inner.bottom.store(b + 1, SeqCst);
    }

    /// Owner-only: pop the most recently pushed job (LIFO).
    pub(crate) fn pop(&self) -> Option<JobPtr> {
        let inner = &self.inner;
        let b = inner.bottom.load(SeqCst) - 1;
        inner.bottom.store(b, SeqCst);
        let t = inner.top.load(SeqCst);
        if t > b {
            // Empty; restore.
            inner.bottom.store(b + 1, SeqCst);
            return None;
        }
        let buf = unsafe { &*inner.buf.load(SeqCst) };
        let job = buf.at(b).load(SeqCst);
        if t == b {
            // Last element: race the thieves for it via the top index.
            let won = inner.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok();
            inner.bottom.store(b + 1, SeqCst);
            return won.then_some(job);
        }
        Some(job)
    }

    /// Steal one job from the top. `None` means empty *or* a lost race —
    /// callers treat both as "try elsewhere, then retry".
    pub(crate) fn steal(&self) -> Option<JobPtr> {
        let inner = &self.inner;
        let t = inner.top.load(SeqCst);
        let b = inner.bottom.load(SeqCst);
        if t >= b {
            return None;
        }
        let buf = unsafe { &*inner.buf.load(SeqCst) };
        let job = buf.at(t).load(SeqCst);
        inner
            .top
            .compare_exchange(t, t + 1, SeqCst, SeqCst)
            .is_ok()
            .then_some(job)
    }

    /// `true` when no jobs are visible (racy, advisory only).
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.inner.top.load(SeqCst) >= self.inner.bottom.load(SeqCst)
    }

    /// Owner-only: double the buffer, copying live entries; the old
    /// buffer is retired, not freed (thieves may still be reading it).
    fn grow(&self, t: isize, b: isize) {
        let inner = &self.inner;
        let old_ptr = inner.buf.load(SeqCst);
        let old = unsafe { &*old_ptr };
        let new = Buffer::new(old.cap() * 2);
        for i in t..b {
            new.at(i).store(old.at(i).load(SeqCst), SeqCst);
        }
        inner.buf.store(Box::into_raw(new), SeqCst);
        inner.retired.lock().unwrap().push(old_ptr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn job(counter: &Arc<AtomicUsize>) -> JobPtr {
        let c = Arc::clone(counter);
        Box::into_raw(Box::new(Job(Box::new(move || {
            c.fetch_add(1, SeqCst);
        }))))
    }

    fn run(ptr: JobPtr) {
        let job = unsafe { Box::from_raw(ptr) };
        (job.0)();
    }

    #[test]
    fn lifo_owner_fifo_thief() {
        let d = Deque::new();
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            d.push(job(&hits));
        }
        // Owner pops newest; thief steals oldest.
        run(d.pop().unwrap());
        run(d.steal().unwrap());
        run(d.pop().unwrap());
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
        assert_eq!(hits.load(SeqCst), 3);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let d = Deque::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let n = MIN_CAP * 4 + 7;
        for _ in 0..n {
            d.push(job(&hits));
        }
        let mut got = 0;
        while let Some(p) = d.pop() {
            run(p);
            got += 1;
        }
        assert_eq!(got, n);
        assert_eq!(hits.load(SeqCst), n);
    }

    #[test]
    fn leftover_jobs_dropped_cleanly() {
        let d = Deque::new();
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            d.push(job(&hits));
        }
        drop(d);
        // Jobs were dropped without running.
        assert_eq!(hits.load(SeqCst), 0);
    }

    #[test]
    fn concurrent_steals_take_each_job_once() {
        let d = Deque::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let n = 10_000;
        for _ in 0..n {
            d.push(job(&hits));
        }
        let taken = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let thief = d.clone();
                let taken = Arc::clone(&taken);
                s.spawn(move || {
                    while taken.load(SeqCst) < n {
                        if let Some(p) = thief.steal() {
                            run(p);
                            taken.fetch_add(1, SeqCst);
                        } else if thief.is_empty() {
                            break;
                        }
                    }
                });
            }
            // Owner pops concurrently.
            while let Some(p) = d.pop() {
                run(p);
                taken.fetch_add(1, SeqCst);
            }
        });
        assert_eq!(taken.load(SeqCst), n, "every job executed exactly once");
        assert_eq!(hits.load(SeqCst), n);
    }
}
