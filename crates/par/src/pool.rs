//! Scoped work-stealing thread pool over [`crate::deque`].
//!
//! Workers are plain `std::thread`s, one Chase–Lev deque each, plus one
//! mutex-protected global injector for jobs spawned from outside the
//! pool. A blocked [`ThreadPool::scope`] *helps*: while waiting for its
//! tasks it pops/steals and runs pool work on its own stack, so nested
//! scopes (a parallel flow inside a parallel benchmark suite) can never
//! deadlock and a 1-worker pool still makes progress from the caller's
//! thread.
//!
//! Determinism: execution *order* depends on thread interleaving, but
//! [`ThreadPool::par_map`] always returns results in input order, so any
//! pipeline built from pure per-item functions produces thread-count-
//! independent output.

use crate::deque::{Deque, Job, JobPtr};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable overriding the global pool's worker count.
pub const THREADS_ENV: &str = "TRIPHASE_THREADS";

struct Shared {
    /// One deque per worker; index `i` is owned by worker thread `i`.
    deques: Vec<Deque>,
    /// Jobs injected from non-worker threads.
    injector: Mutex<VecDeque<JobPtr>>,
    /// Parking for idle workers.
    idle: Mutex<usize>,
    wake: Condvar,
    shutdown: AtomicBool,
}

// The injector holds raw `JobPtr`s only because `Job` travels through the
// deques as a pointer; each points at a uniquely-owned `Box<Job>` whose
// closure is `Send`, so moving the pointer across threads is sound.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

impl Shared {
    /// Grab one job from anywhere: `prefer`'s own deque first (LIFO),
    /// then the injector, then round-robin steals.
    fn find_job(&self, prefer: Option<usize>) -> Option<JobPtr> {
        if let Some(i) = prefer {
            if let Some(job) = self.deques[i].pop() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        let start = prefer.map_or(0, |i| i + 1);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == prefer {
                continue;
            }
            if let Some(job) = self.deques[victim].steal() {
                return Some(job);
            }
        }
        None
    }

    fn wake_one(&self) {
        let idle = self.idle.lock().unwrap();
        if *idle > 0 {
            self.wake.notify_one();
        }
    }
}

thread_local! {
    /// `(pool identity, worker index)` for pool worker threads.
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

fn run_job(ptr: JobPtr) {
    let job = unsafe { Box::from_raw(ptr) };
    (job.0)();
}

/// A scoped work-stealing thread pool (see module docs).
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            deques: (0..threads).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let ident = Arc::as_ptr(&shared) as usize;
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("triphase-par-{i}"))
                    .spawn(move || worker_loop(&shared, ident, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// The global pool: `TRIPHASE_THREADS` workers if set, otherwise the
    /// machine's available parallelism. Created on first use; lives for
    /// the process.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.deques.len()
    }

    /// Identity token used to recognise our own worker threads.
    fn ident(&self) -> usize {
        Arc::as_ptr(&self.shared) as usize
    }

    /// The calling thread's worker index in *this* pool, if any.
    fn current_worker(&self) -> Option<usize> {
        CURRENT_WORKER.with(|c| match c.get() {
            Some((ident, i)) if ident == self.ident() => Some(i),
            _ => None,
        })
    }

    fn inject(&self, job: JobPtr) {
        match self.current_worker() {
            Some(i) => self.shared.deques[i].push(job),
            None => self.shared.injector.lock().unwrap().push_back(job),
        }
        self.shared.wake_one();
    }

    /// Run `f` with a [`Scope`] on the calling thread, then block until
    /// every task spawned on the scope has finished — helping to run pool
    /// work while waiting. The first task panic is re-raised here after
    /// all tasks have settled.
    pub fn scope<'env, R>(&'env self, f: impl FnOnce(&Scope<'env>) -> R) -> R {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
            }),
            _env: PhantomData,
        };
        let result = f(&scope);
        let prefer = self.current_worker();
        let mut idle_spins = 0u32;
        while scope.state.pending.load(SeqCst) > 0 {
            match self.shared.find_job(prefer) {
                Some(job) => {
                    idle_spins = 0;
                    run_job(job);
                }
                None => {
                    // Our tasks are in flight on other threads; back off.
                    idle_spins += 1;
                    if idle_spins < 64 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
            }
        }
        if let Some(payload) = scope.state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        result
    }

    /// Apply `f` to every item in parallel, returning results in input
    /// order (thread-count independent for pure `f`).
    ///
    /// # Panics
    ///
    /// Re-raises the first panic from `f`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if items.len() <= 1 {
            return items.iter().map(&f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (item, slot) in items.iter().zip(&slots) {
                let f = &f;
                s.spawn(move || {
                    *slot.lock().unwrap() = Some(f(item));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("scope waited for all tasks"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, SeqCst);
        {
            let _idle = self.shared.idle.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker count for the global pool (env override, else hardware).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn worker_loop(shared: &Shared, ident: usize, index: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((ident, index))));
    loop {
        match shared.find_job(Some(index)) {
            Some(job) => run_job(job),
            None => {
                if shared.shutdown.load(SeqCst) {
                    return;
                }
                let mut idle = shared.idle.lock().unwrap();
                *idle += 1;
                // Timeout backstops the (benign) lost-wakeup window
                // between the failed find_job and this wait.
                let (guard, _) = shared
                    .wake
                    .wait_timeout(idle, Duration::from_millis(10))
                    .unwrap();
                idle = guard;
                *idle -= 1;
            }
        }
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Handle for spawning tasks that may borrow from the enclosing
/// environment; all tasks are joined before [`ThreadPool::scope`]
/// returns.
pub struct Scope<'env> {
    pool: &'env ThreadPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawn a task onto the pool. The closure may borrow `'env` data;
    /// the scope guarantees it finishes before those borrows expire.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, SeqCst);
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.pending.fetch_sub(1, SeqCst);
        });
        // SAFETY: the scope blocks until `pending` reaches zero, i.e.
        // until this closure has run to completion, so every `'env`
        // borrow it captures outlives its execution.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        self.pool.inject(Box::into_raw(Box::new(Job(task))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..100).collect();
        let out = pool.par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn results_independent_of_thread_count() {
        let items: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = items
            .iter()
            .map(|x| x.wrapping_mul(0x9E37).rotate_left(7))
            .collect();
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.par_map(&items, |&x| x.wrapping_mul(0x9E37).rotate_left(7));
            assert_eq!(out, expect, "{threads} threads");
        }
    }

    #[test]
    fn scope_borrows_environment() {
        let pool = ThreadPool::new(2);
        let mut results = vec![0usize; 8];
        pool.scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move || *slot = i + 1);
            }
        });
        assert_eq!(results, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // More outer tasks than workers, each opening an inner scope: the
        // blocked outer tasks must help instead of starving the inner ones.
        let pool = ThreadPool::new(2);
        let items: Vec<usize> = (0..8).collect();
        let out = pool.par_map(&items, |&i| {
            let inner: Vec<usize> = (0..4).collect();
            pool.par_map(&inner, |&j| i * 10 + j).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panics_propagate_after_all_tasks_settle() {
        let pool = ThreadPool::new(2);
        let items: Vec<usize> = (0..6).collect();
        let hit = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |&i| {
                hit.fetch_add(1, SeqCst);
                assert!(i != 3, "boom");
                i
            })
        }));
        assert!(result.is_err());
        // The pool is still usable afterwards.
        assert_eq!(pool.par_map(&items, |&i| i + 1).len(), 6);
    }

    #[test]
    fn mid_scope_panic_does_not_poison_pool_for_later_work() {
        // A task panicking in the middle of a scope (siblings before and
        // after it) must leave the pool fully serviceable: the sibling
        // tasks still settle, and subsequent scopes and par_maps on the
        // very same pool run normally — across repeated rounds, so a
        // worker wedged by an earlier panic would be caught.
        let pool = ThreadPool::new(2);
        let items: Vec<usize> = (0..16).collect();
        for round in 0..3 {
            let done = AtomicUsize::new(0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    for i in 0..8 {
                        let done = &done;
                        s.spawn(move || {
                            if i == 4 {
                                panic!("injected mid-scope panic");
                            }
                            done.fetch_add(1, SeqCst);
                        });
                    }
                });
            }));
            assert!(result.is_err(), "round {round}: panic re-raised");
            assert_eq!(done.load(SeqCst), 7, "round {round}: siblings settled");
            // Fresh work on the same pool proceeds with correct results.
            let out = pool.par_map(&items, |&x| x + round);
            assert_eq!(out, items.iter().map(|&x| x + round).collect::<Vec<_>>());
        }
        // The global pool (the one the flow uses) shrugs off a panic too.
        let g = ThreadPool::global();
        let r = catch_unwind(AssertUnwindSafe(|| {
            g.scope(|s| s.spawn(|| panic!("global pool panic")));
        }));
        assert!(r.is_err());
        assert_eq!(g.par_map(&items, |&x| x * 2)[15], 30);
    }

    #[test]
    fn single_worker_pool_completes_via_helping() {
        let pool = ThreadPool::new(1);
        let items: Vec<usize> = (0..32).collect();
        let out = pool.par_map(&items, |&i| i * 2);
        assert_eq!(out[31], 62);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = ThreadPool::global();
        let b = ThreadPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
    }

    #[test]
    fn stress_many_small_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..5_000 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, SeqCst);
                });
            }
        });
        assert_eq!(counter.load(SeqCst), 5_000);
    }
}
