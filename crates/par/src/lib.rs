//! `triphase-par` — std-only scoped work-stealing thread pool.
//!
//! The benchmark suite is embarrassingly parallel across circuits, and a
//! single flow run fans out into independent evaluations (pre-conversion,
//! master–slave, 3-phase). This crate supplies the parallel substrate for
//! both without adding any dependency: Chase–Lev per-worker deques built
//! on `std::thread` + atomics, a lifetime-scoped `spawn` API, and an
//! order-preserving [`ThreadPool::par_map`].
//!
//! # Design
//!
//! - **Chase–Lev deques** (the private `deque` module): each worker owns
//!   a deque;
//!   it pushes/pops its own bottom end LIFO, idle workers steal FIFO from
//!   the top with a CAS. Jobs spawned from non-worker threads land in a
//!   mutex-protected global injector.
//! - **Helping scopes**: [`ThreadPool::scope`] blocks until all spawned
//!   tasks finish, and while blocked it executes pool work itself. Nested
//!   scopes (parallel stages inside parallel benchmarks) therefore cannot
//!   deadlock, even on a 1-worker pool.
//! - **Determinism**: [`ThreadPool::par_map`] returns results in input
//!   order. Any pipeline of pure per-item functions produces byte-
//!   identical output regardless of `TRIPHASE_THREADS`.
//! - **Panic safety**: task panics are captured and the first one is
//!   re-raised from `scope` after every task has settled, so borrowed
//!   environment data is never observed mid-write by the caller.
//!
//! # Example
//!
//! ```
//! let pool = triphase_par::ThreadPool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

mod deque;
mod pool;

pub use pool::{default_threads, Scope, ThreadPool, THREADS_ENV};

/// Convenience: [`ThreadPool::par_map`] on the shared global pool.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ThreadPool::global().par_map(items, f)
}

/// Convenience: [`ThreadPool::scope`] on the shared global pool.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R
where
    R: 'env,
{
    ThreadPool::global().scope(f)
}
